// Wire client walkthrough: drives a running fleet service through its
// binary network front door — no HTTP, no curl, just the framed protocol
// from net/wire.h over loopback TCP.
//
// Start the service with a wire port, then point this at the printed
// port:
//
//   ./examples/fleet_service --wire-port 0 6 4 /tmp/imcf_fleet_demo -1 60 &
//   # note the "wire port: NNNN" line
//   ./examples/wire_client NNNN home00
//
// The walkthrough sends one request of each read/write kind (Plan, Query,
// MrtUpdate), then deliberately sends a checksum-valid frame with a
// malformed payload to show the error path: the server answers with an
// in-band error reply and keeps the connection open, which the final
// query proves.
//
//   ./examples/wire_client <port> [tenant]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/client.h"
#include "net/wire.h"
#include "serve/request.h"
#include "trace/dataset.h"

using namespace imcf;

namespace {

serve::Request MakeRequest(const std::string& tenant, serve::RequestKind kind) {
  serve::Request request;
  request.tenant = tenant;
  request.kind = kind;
  request.issue_time = trace::EvaluationStart();
  return request;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <port> [tenant]\n", argv[0]);
    return 1;
  }
  const int port = std::atoi(argv[1]);
  const std::string tenant = argc > 2 ? argv[2] : "home00";

  auto client = net::WireClient::Connect(port);
  if (!client.ok()) return Fail("connect", client.status());
  std::printf("connected to 127.0.0.1:%d as tenant %s\n", port,
              tenant.c_str());

  // 1. Plan: the heavy path — a full planning run on the worker pool.
  serve::Request plan = MakeRequest(tenant, serve::RequestKind::kPlan);
  plan.plan.policy = sim::Policy::kEnergyPlanner;
  auto planned = (*client)->Call(plan);
  if (!planned.ok()) return Fail("plan", planned.status());
  std::printf("plan:   %-18s F_CE %.2f%%  F_E %.1f kWh  %lld commands\n",
              serve::ServeOutcomeName(planned->outcome), planned->plan.fce_pct,
              planned->plan.fe_kwh,
              static_cast<long long>(planned->plan.commands_issued));

  // 2. Query: cheap read of the tenant's served-so-far counters.
  auto queried = (*client)->Call(MakeRequest(tenant, serve::RequestKind::kQuery));
  if (!queried.ok()) return Fail("query", queried.status());
  std::printf("query:  %-18s %lld plans served, %lld devices, %lld units\n",
              serve::ServeOutcomeName(queried->outcome),
              static_cast<long long>(queried->tenant_status.plans_served),
              static_cast<long long>(queried->tenant_status.devices),
              static_cast<long long>(queried->tenant_status.units));

  // 3. MrtUpdate: re-derives the tenant's minimal-risk state.
  serve::Request mrt = MakeRequest(tenant, serve::RequestKind::kMrtUpdate);
  mrt.mrt_update.seed = 7;
  auto updated = (*client)->Call(mrt);
  if (!updated.ok()) return Fail("mrt", updated.status());
  std::printf("mrt:    %-18s\n", serve::ServeOutcomeName(updated->outcome));

  // 4. A malformed payload inside a checksum-valid frame. The stream is
  // still aligned, so the server rejects it in-band and the connection
  // survives — the protocol's error path is an answer, not a hangup.
  const std::string bad =
      net::EncodeFrame(net::FrameType::kRequest, "not a request payload");
  if (!(*client)->SendBytes(bad)) {
    std::fprintf(stderr, "malformed-frame send failed\n");
    return 1;
  }
  auto rejected = (*client)->Receive();
  if (rejected.ok()) {
    std::fprintf(stderr, "malformed frame was not rejected\n");
    return 1;
  }
  std::printf("bad:    rejected in-band (%s)\n",
              rejected.status().ToString().c_str());

  // 5. Prove the connection outlived the rejection.
  auto again = (*client)->Call(MakeRequest(tenant, serve::RequestKind::kQuery));
  if (!again.ok()) return Fail("query after reject", again.status());
  std::printf("query:  %-18s (connection survived the malformed frame)\n",
              serve::ServeOutcomeName(again->outcome));
  std::printf("walkthrough ok\n");
  return 0;
}
