// Live Local-Controller demo: the paper's prototype deployment (§III-F)
// end to end on virtual time. Three residents configure their preferences,
// the configuration is persisted in the embedded table store (the MariaDB
// stand-in), the cron scheduler runs the Energy Planner hourly for a week,
// and every actuation command passes the meta-control firewall. Prints
// Tables IV/V plus a tail of the firewall audit log.
//
//   ./examples/live_controller [store_dir]

#include <cstdio>

#include "controller/prototype.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rules/conflict.h"
#include "rules/parser.h"

using namespace imcf;

int main(int argc, char** argv) {
  controller::PrototypeOptions options;
  if (argc > 1) options.store_dir = argv[1];

  const auto family = controller::DefaultFamily();
  std::printf("Residents and their meta-rules:\n");
  for (const controller::Resident& resident : family) {
    std::printf("  %s:\n", resident.name.c_str());
    for (const rules::MetaRule& rule : resident.rules) {
      std::printf("    %s\n", rules::FormatMetaRule(rule).c_str());
    }
  }
  std::printf("weekly energy cap: %.0f kWh  (EP cron: '0 * * * *', sensor "
              "refresh: '*/15 * * * *')\n\n",
              options.weekly_budget_kwh);

  // Pre-deployment conflict audit of the merged rule table.
  const auto merged = controller::MergeResidents(family);
  if (merged.ok()) {
    std::printf("conflict audit: %s\n",
                rules::FormatConflicts(rules::FindWindowConflicts(*merged))
                    .c_str());
  }

  controller::PrototypeStudy study(options);
  const auto report = study.Run(family);
  if (!report.ok()) {
    std::fprintf(stderr, "prototype run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("Table IV — one week of live operation\n");
  std::printf("  energy consumption F_E : %8.2f kWh (cap %.0f, %s)\n",
              report->fe_kwh, report->budget_kwh,
              report->within_budget ? "within budget" : "EXCEEDED");
  std::printf("  convenience error F_CE : %8.2f %%\n", report->fce_pct);
  std::printf("  planner cron firings   : %8d\n", report->planner_runs);
  std::printf("  sensor refreshes       : %8d\n", report->sensor_refreshes);
  std::printf("  commands issued        : %8lld\n",
              static_cast<long long>(report->commands_issued));
  std::printf("  dropped by firewall    : %8lld\n",
              static_cast<long long>(report->commands_dropped));
  std::printf("  config footprint       : %8.1f bytes/user%s\n",
              report->config_bytes_per_user,
              options.store_dir.empty() ? " (in-memory)" : "");
  if (!options.store_dir.empty()) {
    std::printf("  persisted to           : %s/resident_rules.tlog\n",
                options.store_dir.c_str());
  }

  std::printf("\nTable V — per-resident convenience\n");
  for (const controller::ResidentReport& rr : report->residents) {
    std::printf("  %-10s F_CE %6.3f%%  (satisfaction %.2f%%, %lld rule "
                "activations)\n",
                rr.name.c_str(), rr.fce_pct, 100.0 - rr.fce_pct,
                static_cast<long long>(rr.activations));
  }

  // Final telemetry snapshot: everything the instrumented planner,
  // firewall, scheduler and pool recorded during the week, in Prometheus
  // text format (what a scrape of a real deployment would return).
  std::printf("\nMetrics snapshot (Prometheus text format):\n%s",
              obs::ToPrometheusText(obs::MetricRegistry::Default()).c_str());
  return 0;
}
