// Quickstart: the IMCF public API in one page.
//
// Builds the paper's Table II rule set and Table I consumption profile,
// derives an hourly energy budget with the ECP-based amortization formula,
// and runs the Energy Planner on a single winter-evening slot — printing
// which rules survive the meta-control firewall.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/evaluator.h"
#include "core/hill_climber.h"
#include "devices/energy_model.h"
#include "energy/amortization.h"
#include "firewall/imcf_firewall.h"
#include "rules/meta_rule.h"
#include "trace/dataset.h"

using namespace imcf;

int main() {
  // 1. The user's preference profile (Table II) and energy history
  //    (Table I), plus the long-term budget: 11000 kWh for three years.
  const rules::MetaRuleTable mrt = rules::FlatMrt(/*budget_kwh=*/11000.0);
  const energy::Ecp ecp = energy::FlatEcp();
  std::printf("Meta-Rule-Table: %zu rules (%zu convenience)\n", mrt.size(),
              mrt.convenience_count());

  // 2. Amortize the budget over the period with the ECP-based formula.
  energy::AmortizationOptions amort;
  amort.kind = energy::AmortizationKind::kEaf;
  amort.total_budget_kwh = *mrt.TotalKwhLimit();
  amort.period_start = trace::EvaluationStart();
  amort.period_end =
      amort.period_start +
      static_cast<SimTime>(trace::EvaluationHours()) * kSecondsPerHour;
  const auto plan = energy::AmortizationPlan::Create(amort, ecp);
  if (!plan.ok()) {
    std::fprintf(stderr, "amortization failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // 3. A January evening slot: what can the flat afford at 19:00?
  const SimTime slot = FromCivil(2014, 1, 20, 19, 30);
  const double hourly_budget = plan->HourlyBudget(slot);
  std::printf("slot %s  budget E_p = %.3f kWh\n", FormatTime(slot).c_str(),
              hourly_budget);

  // Ambient conditions from the flat's trace model.
  const trace::DatasetSpec spec = trace::FlatSpec();
  const trace::HourlyAmbient ambient = trace::BuildHourlyAmbient(
      spec, slot - (slot % kSecondsPerHour), 1);
  devices::UnitEnergyModels models;
  models.hvac = devices::HvacEnergyModel(spec.hvac);
  models.light = devices::LightEnergyModel(spec.light);
  std::printf("ambient: %.1f degC, light level %.0f\n", ambient.temp(0, 0),
              ambient.light(0, 0));

  // 4. Build the slot problem and run the Energy Planner.
  core::SlotProblem problem;
  problem.n_rules = static_cast<int>(mrt.convenience_count());
  problem.budget_kwh = hourly_budget;
  problem.groups = {{ambient.temp(0, 0), devices::CommandType::kSetTemperature},
                    {ambient.light(0, 0), devices::CommandType::kSetLight}};
  for (int index : mrt.ActiveAt(slot)) {
    const rules::MetaRule& rule =
        mrt.ConvenienceRule(static_cast<size_t>(index));
    core::ActiveRule active;
    active.rule_index = index;
    active.group =
        rule.TargetKind() == devices::DeviceKind::kLight ? 1 : 0;
    active.desired = rule.value;
    active.type = rule.TargetCommand();
    const double amb =
        problem.groups[static_cast<size_t>(active.group)].ambient;
    active.energy_kwh =
        models.CommandEnergyKwh(active.type, rule.value, amb, 1.0);
    active.drop_error = core::NormalizedError(active.type, rule.value, amb);
    problem.active.push_back(active);
  }

  core::SlotEvaluator evaluator(&problem);
  core::HillClimbingPlanner planner;
  Rng rng(42);
  const core::PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  std::printf("plan: s* = %s  (F_E %.3f kWh, feasible: %s)\n",
              outcome.solution.ToString().c_str(),
              outcome.objectives.energy_kwh,
              outcome.feasible ? "yes" : "no");

  // 5. The firewall enforces the plan on the command stream.
  devices::DeviceRegistry registry;
  const auto ac = *registry.Add("living_room_ac", devices::DeviceKind::kHvac,
                                0, "192.168.0.5");
  const auto light = *registry.Add("living_room_light",
                                   devices::DeviceKind::kLight, 0);
  firewall::MetaControlFirewall fw(&registry);
  std::vector<int> dropped;
  for (const core::ActiveRule& active : problem.active) {
    if (!outcome.solution.adopted(static_cast<size_t>(active.rule_index))) {
      dropped.push_back(
          mrt.convenience_ids()[static_cast<size_t>(active.rule_index)]);
    }
  }
  fw.SetDroppedRules(dropped);

  for (const core::ActiveRule& active : problem.active) {
    const rules::MetaRule& rule =
        mrt.ConvenienceRule(static_cast<size_t>(active.rule_index));
    devices::ActuationCommand cmd;
    cmd.device =
        rule.TargetKind() == devices::DeviceKind::kHvac ? ac : light;
    cmd.type = active.type;
    cmd.value = active.desired;
    cmd.rule_id = rule.id;
    cmd.time = slot;
    cmd.source = "mrt";
    const firewall::Decision decision = fw.Filter(cmd);
    std::printf("  %-18s -> %s %-6g : %s (%s)\n", rule.description.c_str(),
                devices::CommandTypeName(cmd.type), cmd.value,
                firewall::VerdictName(decision.verdict),
                firewall::DecisionReasonName(decision.reason));
  }
  return 0;
}
