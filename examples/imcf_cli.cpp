// imcf_cli: file-driven simulation runner.
//
// Loads a Meta-Rule-Table from the pipe-separated text format, audits it
// for conflicts, runs the chosen policy over the chosen window and prints
// (or appends to a CSV report) the paper's metrics. This is the
// "operate the IMCF framework" workflow of the paper's GUI, scripted.
//
//   ./examples/imcf_cli --mrt rules.txt [--policy EP] [--dataset flat]
//                       [--budget 11000] [--months 12] [--csv report.csv]
//
// Example rules.txt:
//   Night Heat  | 01:00 - 07:00   | Set Temperature | 25
//   Day Lights  | 08:00 - 20:00   | Set Light       | 35
//   Energy Cap  | for three years | Set kWh Limit   | 9000

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "rules/conflict.h"
#include "rules/parser.h"
#include "sim/simulation.h"
#include "storage/csv.h"

using namespace imcf;

namespace {

struct CliOptions {
  std::string mrt_path;
  std::string policy = "EP";
  std::string dataset = "flat";
  double budget_kwh = 0.0;
  int months = 12;
  std::string csv_path;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --mrt <rules.txt> [--policy NR|IFTTT|EP|MR|SA|GA]\n"
               "          [--dataset flat|house|dorms] [--budget kwh]\n"
               "          [--months n] [--csv report.csv]\n",
               argv0);
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--mrt") {
      IMCF_ASSIGN_OR_RETURN(options.mrt_path, next());
    } else if (arg == "--policy") {
      IMCF_ASSIGN_OR_RETURN(options.policy, next());
    } else if (arg == "--dataset") {
      IMCF_ASSIGN_OR_RETURN(options.dataset, next());
    } else if (arg == "--budget") {
      IMCF_ASSIGN_OR_RETURN(std::string v, next());
      IMCF_ASSIGN_OR_RETURN(options.budget_kwh, ParseDouble(v));
    } else if (arg == "--months") {
      IMCF_ASSIGN_OR_RETURN(std::string v, next());
      IMCF_ASSIGN_OR_RETURN(int64_t m, ParseInt(v));
      options.months = static_cast<int>(m);
    } else if (arg == "--csv") {
      IMCF_ASSIGN_OR_RETURN(options.csv_path, next());
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.mrt_path.empty()) {
    return Status::InvalidArgument("--mrt is required");
  }
  if (options.months <= 0 || options.months > 36) {
    return Status::OutOfRange("--months must be in 1..36");
  }
  return options;
}

Result<sim::Policy> PolicyFromName(const std::string& name) {
  if (name == "NR") return sim::Policy::kNoRule;
  if (name == "IFTTT") return sim::Policy::kIfttt;
  if (name == "EP") return sim::Policy::kEnergyPlanner;
  if (name == "MR") return sim::Policy::kMetaRule;
  if (name == "SA") return sim::Policy::kAnnealer;
  if (name == "GA") return sim::Policy::kGenetic;
  return Status::InvalidArgument("unknown policy: " + name);
}

Status RunCli(const CliOptions& options) {
  // Load and audit the rule table.
  IMCF_ASSIGN_OR_RETURN(std::string text,
                        ReadFileToString(options.mrt_path));
  IMCF_ASSIGN_OR_RETURN(rules::MetaRuleTable mrt, rules::ParseMrt(text));
  std::printf("loaded %zu rules (%zu convenience, %zu necessity) from %s\n",
              mrt.size(), mrt.convenience_count(), mrt.necessity_ids().size(),
              options.mrt_path.c_str());
  const auto conflicts = rules::FindWindowConflicts(mrt);
  std::printf("conflict audit: %s",
              rules::FormatConflicts(conflicts).c_str());

  // Dataset and simulation window. The user table replaces the built-in
  // MRT: we wrap it by overriding the spec's unit count to cover every
  // referenced unit and constructing the simulator around the same window.
  sim::SimulationOptions sim_options;
  if (options.dataset == "flat") {
    sim_options.spec = trace::FlatSpec();
  } else if (options.dataset == "house") {
    sim_options.spec = trace::HouseSpec();
  } else if (options.dataset == "dorms") {
    sim_options.spec = trace::DormsSpec();
  } else {
    return Status::InvalidArgument("unknown dataset: " + options.dataset);
  }
  sim_options.hours = options.months * 730;
  if (options.budget_kwh > 0.0) {
    sim_options.budget_kwh = options.budget_kwh;
  } else if (auto limit = mrt.TotalKwhLimit(); limit.has_value()) {
    sim_options.budget_kwh = *limit;
  }
  IMCF_ASSIGN_OR_RETURN(sim::Policy policy, PolicyFromName(options.policy));

  sim::Simulator simulator(sim_options);
  IMCF_RETURN_IF_ERROR(simulator.Prepare());
  IMCF_ASSIGN_OR_RETURN(sim::SimulationReport report,
                        simulator.Run(policy));

  std::printf("\n%-10s %s on %s, %d month(s), budget %.0f kWh\n", "run:",
              report.policy.c_str(), report.dataset.c_str(), options.months,
              simulator.total_budget_kwh());
  std::printf("  F_CE : %8.2f %%\n", report.fce_pct);
  std::printf("  F_E  : %8.1f kWh (%s)\n", report.fe_kwh,
              report.within_budget ? "within budget" : "OVER BUDGET");
  std::printf("  F_T  : %8.3f s\n", report.ft_seconds);
  std::printf("  CO2  : %8.1f kg\n", report.co2_kg);
  std::printf("  firewall: %lld of %lld commands dropped\n",
              static_cast<long long>(report.commands_dropped),
              static_cast<long long>(report.commands_issued));

  if (!options.csv_path.empty()) {
    std::vector<CsvRow> rows;
    // Append to an existing report if present.
    if (auto existing = ReadCsvFile(options.csv_path); existing.ok()) {
      rows = *existing;
    } else {
      rows.push_back({"policy", "dataset", "months", "budget_kwh",
                      "fce_pct", "fe_kwh", "ft_seconds", "co2_kg"});
    }
    rows.push_back({report.policy, report.dataset,
                    StrFormat("%d", options.months),
                    StrFormat("%.1f", simulator.total_budget_kwh()),
                    StrFormat("%.3f", report.fce_pct),
                    StrFormat("%.2f", report.fe_kwh),
                    StrFormat("%.4f", report.ft_seconds),
                    StrFormat("%.2f", report.co2_kg)});
    IMCF_RETURN_IF_ERROR(WriteCsvFile(options.csv_path, rows));
    std::printf("  appended to %s\n", options.csv_path.c_str());
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    Usage(argv[0]);
    return 1;
  }
  if (Status s = RunCli(*options); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
