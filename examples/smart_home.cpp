// Smart-home scenario (the paper's first motivational example): a family
// with a yearly photovoltaic budget wants Table II comfort without
// exceeding it. Runs the full three-year trace-driven simulation on the
// flat dataset, comparing the Energy Planner against all baselines, and
// prints the per-month budget-vs-consumption ledger that a household
// dashboard would show.
//
//   ./examples/smart_home [budget_kwh]

#include <cstdio>
#include <cstdlib>

#include "sim/simulation.h"

using namespace imcf;

int main(int argc, char** argv) {
  sim::SimulationOptions options;
  options.spec = trace::FlatSpec();
  if (argc > 1) {
    options.budget_kwh = std::atof(argv[1]);
    if (options.budget_kwh <= 0) {
      std::fprintf(stderr, "usage: %s [budget_kwh > 0]\n", argv[0]);
      return 1;
    }
  }
  sim::Simulator simulator(options);
  if (Status s = simulator.Prepare(); !s.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Smart-home: flat dataset, %d unit(s), budget %.0f kWh over "
              "3 years\n\n",
              options.spec.units, simulator.total_budget_kwh());
  std::printf("%-7s %10s %14s %12s %10s\n", "policy", "F_CE [%]",
              "F_E [kWh]", "F_T [s]", "in budget");
  sim::SimulationReport ep_report;
  for (sim::Policy policy :
       {sim::Policy::kNoRule, sim::Policy::kIfttt, sim::Policy::kEnergyPlanner,
        sim::Policy::kMetaRule}) {
    const auto report = simulator.Run(policy);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (policy == sim::Policy::kEnergyPlanner) ep_report = *report;
    std::printf("%-7s %10.2f %14.1f %12.3f %10s\n", report->policy.c_str(),
                report->fce_pct, report->fe_kwh, report->ft_seconds,
                report->within_budget ? "yes" : "NO");
  }

  std::printf("\nEP verdict: %.1f kWh consumed of %.0f (%.1f%% of budget), "
              "convenience held at %.2f%% error.\n",
              ep_report.fe_kwh, simulator.total_budget_kwh(),
              100.0 * ep_report.fe_kwh / simulator.total_budget_kwh(),
              ep_report.fce_pct);
  std::printf("firewall filtered %lld of %lld rule commands.\n",
              static_cast<long long>(ep_report.commands_dropped),
              static_cast<long long>(ep_report.commands_issued));

  // Monthly allocation the EAF amortization gives this household for 2014.
  std::printf("\nEAF monthly budget allocation, first year:\n");
  std::printf("%-10s %12s\n", "month", "budget [kWh]");
  for (int month = 1; month <= 12; ++month) {
    std::printf("%-10s %12.1f\n", MonthName(month),
                simulator.amortization().MonthBudget(
                    FromCivil(2014, month, 15)));
  }
  return 0;
}
