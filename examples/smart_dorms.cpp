// Smart-dorms scenario (the paper's second motivational example): the
// SAVES inter-dormitory competition aimed at 8% electricity savings, but
// students reached only 4.44% by manual effort. This example shows what
// the Energy Planner achieves on the 50-apartment dorms dataset for a
// range of savings targets: the firewall enforces the reduced budget while
// convenience degrades only mildly.
//
//   ./examples/smart_dorms [--quick]

#include <cstdio>
#include <cstring>

#include "sim/simulation.h"

using namespace imcf;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  sim::SimulationOptions options;
  options.spec = trace::DormsSpec();
  if (quick) {
    // One year instead of three for a fast demo run.
    options.hours = 365 * 24;
    options.budget_kwh = options.spec.budget_kwh / 3.0;
  }
  sim::Simulator simulator(options);
  if (Status s = simulator.Prepare(); !s.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Smart-dorms (SAVES): %d dorm units, base budget %.0f kWh\n\n",
              options.spec.units, simulator.total_budget_kwh());
  std::printf("%-14s %12s %16s %14s\n", "savings goal", "F_CE [%]",
              "F_E [kWh]", "achieved");

  const double base_budget = simulator.total_budget_kwh();
  double base_consumption = 0.0;
  for (double target : {0.0, 0.0444, 0.08, 0.15}) {
    if (Status s = simulator.Reconfigure(target,
                                         energy::AmortizationKind::kEaf);
        !s.ok()) {
      std::fprintf(stderr, "reconfigure failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto report = simulator.Run(sim::Policy::kEnergyPlanner);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (target == 0.0) base_consumption = report->fe_kwh;
    const double achieved =
        100.0 * (1.0 - report->fe_kwh / base_consumption);
    std::printf("%12.2f%% %12.2f %16.1f %13.2f%%\n", 100.0 * target,
                report->fce_pct, report->fe_kwh, achieved);
  }

  std::printf("\nSAVES context: students reached 4.44%% savings manually; "
              "the 8%% programme target needs planner-enforced budgets "
              "(base allocation %.0f kWh).\n",
              base_budget);
  return 0;
}
