// IMCF-Cloud demo (the paper's §V future work): a Cloud Meta-Controller
// coordinating a neighborhood of households with conflicting interests
// over one shared energy pool (e.g. a community PV plant). Compares the
// three allocation policies on the same community.
//
//   ./examples/cloud_community [households] [community_budget_kwh]

#include <cstdio>
#include <cstdlib>

#include "controller/cloud.h"

using namespace imcf;

namespace {

int RunPolicy(int n, double budget, controller::AllocationPolicy policy) {
  controller::CloudOptions options;
  options.policy = policy;
  options.hours = 365 * 24;  // one community year
  options.utilitarian_rounds = 2;
  auto cmc = controller::DefaultNeighborhood(n, budget, options);
  if (!cmc.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 cmc.status().ToString().c_str());
    return 1;
  }
  const auto report = (*cmc)->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== policy: %s ===\n", report->policy.c_str());
  std::printf("%-8s %12s %12s %12s %10s\n", "home", "demand", "allocation",
              "consumed", "F_CE [%]");
  for (const controller::HouseholdReport& hr : report->households) {
    std::printf("%-8s %12.1f %12.1f %12.1f %10.2f\n", hr.name.c_str(),
                hr.demand_kwh, hr.allocation_kwh, hr.fe_kwh, hr.fce_pct);
  }
  std::printf("community: consumed %.1f of %.1f kWh (%s), mean F_CE "
              "%.2f%%, fairness (stddev) %.2f\n",
              report->total_fe_kwh, report->community_budget_kwh,
              report->within_budget ? "within pool" : "EXCEEDED",
              report->mean_fce_pct, report->fairness_stddev);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const double budget = argc > 2 ? std::atof(argv[2]) : n * 3200.0;
  if (n <= 0 || budget <= 0) {
    std::fprintf(stderr, "usage: %s [households > 0] [budget_kwh > 0]\n",
                 argv[0]);
    return 1;
  }
  std::printf("IMCF-Cloud: %d households sharing %.0f kWh for one year\n", n,
              budget);
  for (auto policy : {controller::AllocationPolicy::kEqualShare,
                      controller::AllocationPolicy::kDemandProportional,
                      controller::AllocationPolicy::kUtilitarian}) {
    if (int rc = RunPolicy(n, budget, policy); rc != 0) return rc;
  }
  return 0;
}
