// Dataset builder: regenerates the paper's trace corpus at any scale.
//
// The paper's evaluation traces are ~5.67M CASAS readings (1.09 GB as raw
// exports; our columnar format stores them in ~5 bytes/reading). This tool
// synthesizes the Flat dataset at a chosen sensor cadence, writes it as a
// binary trace file, derives the House dataset by the paper's
// replicate-and-mix construction, and prints corpus statistics.
//
//   ./examples/make_dataset <out_dir> [step_seconds=60] [days=31]
//
// Full-paper scale: step_seconds=20, days=1187 (Oct 2013 - Dec 2016)
// yields ~5.1M readings for the flat alone.

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "common/strings.h"
#include "storage/csv.h"
#include "trace/aggregate.h"
#include "trace/generator.h"

using namespace imcf;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <out_dir> [step_seconds=60] [days=31]\n",
                 argv[0]);
    return 1;
  }
  const std::string out_dir = argv[1];
  const int step = argc > 2 ? std::atoi(argv[2]) : 60;
  const int days = argc > 3 ? std::atoi(argv[3]) : 31;
  if (step <= 0 || days <= 0) {
    std::fprintf(stderr, "step_seconds and days must be positive\n");
    return 1;
  }
  ::mkdir(out_dir.c_str(), 0755);

  const trace::DatasetSpec flat = trace::FlatSpec();
  trace::GeneratorOptions options;
  options.start = FromCivil(2013, 10, 1);  // the CASAS span start
  options.end = options.start + static_cast<SimTime>(days) * kSecondsPerDay;
  options.step_seconds = step;
  options.units = flat.units;
  options.seed = flat.seed;
  options.ambient = flat.ambient;
  options.climate = flat.climate;

  // Flat: straight to the columnar trace format.
  const std::string flat_path = out_dir + "/flat.trc";
  trace::CasasTraceGenerator generator(options);
  const auto flat_count = generator.WriteTraceFile(flat_path);
  if (!flat_count.ok()) {
    std::fprintf(stderr, "flat generation failed: %s\n",
                 flat_count.status().ToString().c_str());
    return 1;
  }
  const auto flat_bytes = ReadFileToString(flat_path);
  std::printf("flat : %9lld readings  %8.2f MB  (%.2f bytes/reading)\n",
              static_cast<long long>(*flat_count),
              static_cast<double>(flat_bytes->size()) / 1e6,
              static_cast<double>(flat_bytes->size()) /
                  static_cast<double>(*flat_count));

  // House: "replicating, mixing up the readings and multiplying ... by a
  // factor of four".
  const auto base = generator.GenerateAll();
  if (!base.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  const auto mixed = trace::ReplicateAndMix(*base, 4, flat.seed + 1);
  const std::string house_path = out_dir + "/house.trc";
  TraceFileWriter writer;
  if (Status s = writer.Open(house_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  for (const trace::Reading& r : mixed) {
    if (Status s = writer.Append(trace::ToRecord(r)); !s.ok()) {
      std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = writer.Finish(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const auto house_bytes = ReadFileToString(house_path);
  std::printf("house: %9zu readings  %8.2f MB  (x4 replicate-and-mix)\n",
              mixed.size(), static_cast<double>(house_bytes->size()) / 1e6);

  // Round trip: aggregate the flat file to hourly and export a CSV sample.
  const int hours = days * 24;
  const auto hourly =
      trace::AggregateTraceFile(flat_path, options.start, hours, 1);
  if (!hourly.ok()) {
    std::fprintf(stderr, "aggregation failed: %s\n",
                 hourly.status().ToString().c_str());
    return 1;
  }
  std::vector<CsvRow> rows = {{"time", "indoor_temp_c", "indoor_light"}};
  for (int h = 0; h < std::min(hours, 48); ++h) {
    rows.push_back({FormatTime(hourly->TimeOfHour(h)),
                    StrFormat("%.2f", hourly->temp(0, h)),
                    StrFormat("%.1f", hourly->light(0, h))});
  }
  const std::string csv_path = out_dir + "/flat_hourly_sample.csv";
  if (Status s = WriteCsvFile(csv_path, rows); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("hourly sample: %s (%d rows)\n", csv_path.c_str(),
              std::min(hours, 48));
  std::printf("done. paper-scale run: %s %s 20 1187\n", argv[0],
              out_dir.c_str());
  return 0;
}
