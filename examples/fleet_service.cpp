// Fleet service demo: a multi-tenant planning service fronting a small
// neighborhood. Admits tenants, submits a batch of plan requests (one per
// tenant with a deliberately impossible deadline, to show expiry), drains
// on the worker pool, then checkpoints and restarts the service from its
// TableStore snapshot to show recovery.
//
// Tracing is on throughout: the deadline expiry trips the spike detector
// (an auto-dump lands in store_dir), and the full flight recorder is
// exported as <store_dir>/fleet_trace.json — open it in
// https://ui.perfetto.dev or chrome://tracing and follow one request's
// serve.submit -> serve.execute -> sim.run -> plan.slot -> ep.search tree.
//
// With a status port, the live introspection server comes up too:
//
//   ./examples/fleet_service 6 4 /tmp/imcf_fleet_demo 8080 60 &
//   curl http://localhost:8080/statusz
//   curl http://localhost:8080/tenantz?sort=cpu
//   curl http://localhost:8080/sloz
//   curl http://localhost:8080/metrics
//
// With --wire-port, the binary wire front door comes up as well and the
// service keeps draining network requests during the serve window:
//
//   ./examples/fleet_service --wire-port 0 6 4 /tmp/imcf_fleet_demo 8080 60 &
//   ./examples/wire_client <printed wire port>
//
//   ./examples/fleet_service [--wire-port N] [tenants] [workers] [store_dir]
//                            [status_port] [serve_seconds]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "net/server.h"
#include "serve/fleet_service.h"
#include "trace/dataset.h"

using namespace imcf;

namespace {

serve::TenantConfig TenantAt(int index) {
  serve::TenantConfig config;
  config.id = StrFormat("home%02d", index);
  config.seed = 2026 + static_cast<uint64_t>(index);
  config.hours = 7 * 24;  // one winter week
  config.appetite = 0.8 + 0.05 * (index % 9);
  return config;
}

int Run(int tenants, int workers, const std::string& store_dir,
        int status_port, int serve_seconds, int wire_port) {
  serve::FleetOptions options;
  options.workers = workers;
  options.queue_capacity = 2 * tenants + 8;
  options.store_dir = store_dir;
  options.status_port = status_port;
  // Observability wiring: log any request slower than 50 ms wall with its
  // collapsed span tree, and auto-dump the flight recorder when a drain
  // sees a shed/deadline-exceeded spike (the planted expiry below trips
  // it, so the demo always produces a trace_spike_0.json).
  options.slow_request_wall_ns = 50'000'000;
  options.trace_dump_dir = store_dir;
  options.spike_dump_threshold = 1;
  auto service = serve::FleetService::Create(options);
  if (!service.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < tenants; ++i) {
    if (Status s = (*service)->AddTenant(TenantAt(i)); !s.ok()) {
      std::fprintf(stderr, "admit failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  const SimTime start = trace::EvaluationStart();
  for (int i = 0; i < tenants; ++i) {
    serve::Request request;
    request.tenant = StrFormat("home%02d", i);
    request.kind = serve::RequestKind::kPlan;
    request.issue_time = start;
    if (i == tenants - 1) request.deadline = start + 1;  // will expire
    request.plan.policy = sim::Policy::kEnergyPlanner;
    if (auto shed = (*service)->Submit(std::move(request))) {
      std::printf("%-8s %s (retry after %llds)\n", shed->tenant.c_str(),
                  serve::ServeOutcomeName(shed->outcome),
                  static_cast<long long>(shed->retry_after_seconds));
    }
  }

  std::printf("%-8s %-18s %10s %10s %8s\n", "tenant", "outcome", "F_CE [%]",
              "F_E [kWh]", "cmds");
  for (const serve::Response& r : (*service)->Drain(start + kSecondsPerHour)) {
    std::printf("%-8s %-18s %10.2f %10.1f %8lld\n", r.tenant.c_str(),
                serve::ServeOutcomeName(r.outcome), r.plan.fce_pct,
                r.plan.fe_kwh,
                static_cast<long long>(r.plan.commands_issued));
  }

  // The wire front door is declared after the service on purpose: C++
  // destroys it first, so even on an early-exit path the epoll thread has
  // drained its queued requests before the tenant registry goes away.
  // It also only starts after the in-process demo drain above — while it
  // runs, the server is the fleet's sole drainer (see net/server.h).
  std::unique_ptr<net::WireServer> wire;
  if (wire_port >= 0) {
    net::WireServerOptions wire_options;
    wire_options.port = wire_port;
    auto started = net::WireServer::Start(service->get(), wire_options);
    if (!started.ok()) {
      std::fprintf(stderr, "wire server failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    wire = std::move(*started);
    // Parseable by the CI smoke job: keep the "wire port: " prefix.
    std::printf("wire port: %d\n", wire->port());
    std::fflush(stdout);
  }

  if (obs::StatusServer* server = (*service)->status_server()) {
    std::printf("status server: http://localhost:%d  (try /statusz "
                "/tenantz?sort=cpu /sloz /metrics /tracez)\n",
                server->port());
  }
  if ((wire != nullptr || (*service)->status_server() != nullptr) &&
      serve_seconds > 0) {
    std::printf("serving for %d s...\n", serve_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }

  // Stop the front door before the service: its Stop() runs one final
  // drain through the still-live registry and flushes replies.
  if (wire != nullptr) {
    std::printf("wire server: %lld frames served\n",
                static_cast<long long>(wire->frames_received()));
    wire.reset();
  }

  const std::string trace_path = store_dir + "/fleet_trace.json";
  if ((*service)->DumpTrace(trace_path)) {
    std::printf("trace: %s (open in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  } else {
    std::fprintf(stderr, "trace dump failed: %s\n", trace_path.c_str());
  }

  if (Status s = (*service)->Stop(start + kSecondsPerHour); !s.ok()) {
    std::fprintf(stderr, "stop failed: %s\n", s.ToString().c_str());
    return 1;
  }
  service->reset();  // full shutdown

  // A fresh process recovers the fleet from the snapshot.
  auto revived = serve::FleetService::Create(options);
  if (!revived.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 revived.status().ToString().c_str());
    return 1;
  }
  int64_t plans = 0;
  for (const serve::TenantId& id : (*revived)->registry().TenantIds()) {
    plans += (*revived)->registry().GetStats(id)->plans_served;
  }
  std::printf("restart: recovered %zu tenants, %lld plans served so far\n",
              (*revived)->registry().size(), static_cast<long long>(plans));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull the one flag out first; everything else stays positional.
  int wire_port = -1;
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wire-port") == 0 && i + 1 < argc) {
      wire_port = std::atoi(argv[++i]);
    } else {
      args.push_back(argv[i]);
    }
  }
  const int tenants = args.size() > 0 ? std::atoi(args[0]) : 6;
  const int workers = args.size() > 1 ? std::atoi(args[1]) : 4;
  const std::string store_dir =
      args.size() > 2 ? args[2] : std::string("/tmp/imcf_fleet_demo");
  const int status_port = args.size() > 3 ? std::atoi(args[3]) : -1;
  const int serve_seconds = args.size() > 4 ? std::atoi(args[4]) : 0;
  if (tenants <= 0 || workers < 0) {
    std::fprintf(stderr,
                 "usage: %s [--wire-port N] [tenants > 0] [workers >= 0] "
                 "[dir] [status_port] [serve_seconds]\n",
                 argv[0]);
    return 1;
  }
  std::printf("fleet service: %d tenants, %d workers, store %s\n", tenants,
              workers, store_dir.c_str());
  return Run(tenants, workers, store_dir, status_port, serve_seconds,
             wire_port);
}
