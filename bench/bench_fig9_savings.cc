// Fig. 9 — Energy Conservation Study: F_CE and F_E of the Energy Planner
// as the target savings percentage grows from 5% to 40% (the SAVES
// dorm-competition scenario: the budget is reduced by the savings target
// and the planner must live within it).
//
// Paper reference: "by increasing the potential energy savings there is a
// slight increase on the F_CE ... 5-40% of energy savings (around 1500 kWh
// in the residential flat case) for 1-3% increase on the F_CE".

#include <cstdio>

#include "bench_util.h"

namespace imcf {
namespace bench {
namespace {

void Run() {
  PrintHeader("Fig. 9 — Energy Conservation Study (EP, savings 0..40%)",
              "IMCF paper §III-E, Figure 9");
  Report report("fig9_savings");

  for (const trace::DatasetSpec& spec : BenchSpecs()) {
    sim::SimulationOptions options;
    options.spec = spec;
    sim::Simulator simulator(options);
    CheckOk(simulator.Prepare());

    std::printf("\n--- dataset: %-5s (base budget %.0f kWh) ---\n",
                spec.name.c_str(), spec.budget_kwh);
    std::printf("%-9s %16s %22s %10s\n", "savings", "F_CE [%]", "F_E [kWh]",
                "budget");
    for (int pct : {0, 5, 10, 20, 30, 40}) {
      CheckOk(simulator.Reconfigure(pct / 100.0,
                                    energy::AmortizationKind::kEaf));
      const sim::RepeatedReport cell =
          RunCell(simulator, sim::Policy::kEnergyPlanner);
      const std::string row = "savings=" + std::to_string(pct) + "%";
      std::printf("%6d%%   %16s %22s %10.0f\n", pct,
                  report.Cell(spec.name, row, "fce_pct", cell.fce_pct).c_str(),
                  report.Cell(spec.name, row, "fe_kwh", cell.fe_kwh, 1)
                      .c_str(),
                  simulator.total_budget_kwh());
    }
  }

  std::printf("\npaper reference: F_E falls with the savings target while "
              "F_CE rises only 1-3 points across the 5-40%% range.\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
