// Ablation A2 — Search strategy and iteration budget.
//
// The paper claims "any heuristic or meta-heuristic approach can be
// utilized in the EP optimization step" and terminates on τ_max. This
// bench compares the hill climber against the simulated-annealing planner
// and sweeps τ_max, on the flat dataset: F_CE should fall monotonically
// with τ_max and SA should match HC within noise on this rule-table size.

#include <cstdio>

#include "bench_util.h"

namespace imcf {
namespace bench {
namespace {

void Run() {
  PrintHeader("Ablation A2 — Hill climbing vs simulated annealing, tau_max",
              "EP optimization-step variants (paper §II-B, §IV-C)");
  Report report("ablation_search");

  const trace::DatasetSpec spec = trace::FlatSpec();
  sim::SimulationOptions options;
  options.spec = spec;
  sim::Simulator simulator(options);
  CheckOk(simulator.Prepare());

  std::printf("\n--- tau_max sweep (hill climbing, flat) ---\n");
  std::printf("%-9s %16s %22s %16s\n", "tau_max", "F_CE [%]", "F_E [kWh]",
              "F_T [s]");
  for (int tau : {5, 10, 25, 50, 100, 200}) {
    core::EpOptions ep;
    ep.tau_max = tau;
    simulator.set_ep_options(ep);
    const sim::RepeatedReport cell =
        RunCell(simulator, sim::Policy::kEnergyPlanner);
    const std::string row = "tau_max=" + std::to_string(tau);
    std::printf(
        "%-9d %16s %22s %16s\n", tau,
        report.Cell("tau_sweep", row, "fce_pct", cell.fce_pct).c_str(),
        report.Cell("tau_sweep", row, "fe_kwh", cell.fe_kwh, 1).c_str(),
        report.Cell("tau_sweep", row, "ft_seconds", cell.ft_seconds, 3)
            .c_str());
  }

  std::printf("\n--- hill climbing vs simulated annealing vs genetic "
              "(flat) ---\n");
  std::printf("%-9s %16s %22s %16s\n", "planner", "F_CE [%]", "F_E [kWh]",
              "F_T [s]");
  simulator.set_ep_options(core::EpOptions{});
  const struct {
    const char* row;
    sim::Policy policy;
  } planners[] = {{"HC", sim::Policy::kEnergyPlanner},
                  {"SA", sim::Policy::kAnnealer},
                  {"GA", sim::Policy::kGenetic}};
  for (const auto& planner : planners) {
    const sim::RepeatedReport cell = RunCell(simulator, planner.policy);
    std::printf(
        "%-9s %16s %22s %16s\n", planner.row,
        report.Cell("planners", planner.row, "fce_pct", cell.fce_pct).c_str(),
        report.Cell("planners", planner.row, "fe_kwh", cell.fe_kwh, 1)
            .c_str(),
        report.Cell("planners", planner.row, "ft_seconds", cell.ft_seconds, 3)
            .c_str());
  }

  std::printf("\nexpected shape: F_T grows linearly in tau_max while F_CE "
              "stays nearly flat — the greedy repair already lands "
              "near-optimal slot plans, and marginal slot-level gains are "
              "offset by the budget carry-over they consume. SA is within "
              "noise of HC on this problem size.\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
