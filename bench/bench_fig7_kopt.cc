// Fig. 7 — k-opt Evaluation: F_CE and F_E of the Energy Planner as the
// number of rule modifications per iteration k grows from 1 to 4.
//
// Paper reference: F_CE decreases with k (flat: 3.3% → 2.6%; house: 3.0% →
// 2.2%; dorms: 3.4% → 2.5%) while F_E stays approximately constant —
// "bigger jumps towards the local optimum ... searching the solution space
// more effectively".
//
// The effect is a search-budget effect, so the sweep fixes a modest τ_max
// per dataset instead of the converged defaults used in Fig. 6.

#include <cstdio>

#include "bench_util.h"

namespace imcf {
namespace bench {
namespace {

void Run() {
  PrintHeader("Fig. 7 — k-opt Evaluation (EP, k = 1..4)",
              "IMCF paper §III-C, Figure 7");
  Report report("fig7_kopt");

  for (const trace::DatasetSpec& spec : BenchSpecs()) {
    sim::SimulationOptions options;
    options.spec = spec;
    // Fixed, modest iteration budget so convergence depends on k, and no
    // greedy repair — the k-opt neighbourhood must do the searching, as in
    // Algorithm 1 as printed.
    options.ep.tau_max = spec.units > 10 ? 700 : 25;
    options.ep.greedy_repair = false;
    sim::Simulator simulator(options);
    CheckOk(simulator.Prepare());

    std::printf("\n--- dataset: %-5s (tau_max = %d) ---\n", spec.name.c_str(),
                options.ep.tau_max);
    std::printf("%-4s %16s %22s\n", "k", "F_CE [%]", "F_E [kWh]");
    for (int k = 1; k <= 4; ++k) {
      core::EpOptions ep = options.ep;
      ep.k = k;
      simulator.set_ep_options(ep);
      const sim::RepeatedReport cell =
          RunCell(simulator, sim::Policy::kEnergyPlanner);
      const std::string row = "k=" + std::to_string(k);
      std::printf("%-4d %16s %22s\n", k,
                  report.Cell(spec.name, row, "fce_pct", cell.fce_pct).c_str(),
                  report.Cell(spec.name, row, "fe_kwh", cell.fe_kwh, 1)
                      .c_str());
    }
  }

  std::printf("\npaper reference: F_CE decreases with k "
              "(flat 3.3->2.6%%, house 3.0->2.2%%, dorms 3.4->2.5%%); "
              "F_E approximately constant.\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
