#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace imcf {
namespace bench {

int Repetitions() {
  const char* env = std::getenv("IMCF_BENCH_REPS");
  if (env != nullptr) {
    const auto parsed = ParseInt(env);
    if (parsed.ok() && *parsed > 0 && *parsed <= 100) {
      return static_cast<int>(*parsed);
    }
  }
  return 5;
}

bool QuickMode() {
  const char* env = std::getenv("IMCF_BENCH_QUICK");
  return env != nullptr && std::string(env) == "1";
}

int BenchThreads() {
  const char* env = std::getenv("IMCF_BENCH_THREADS");
  if (env != nullptr) {
    const auto parsed = ParseInt(env);
    if (parsed.ok() && *parsed > 0 && *parsed <= 256) {
      return static_cast<int>(*parsed);
    }
  }
  return ThreadPool::HardwareThreads();
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("=================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("repetitions per cell: %d (paper: 10; set IMCF_BENCH_REPS)\n",
              Repetitions());
  std::printf("=================================================================\n");
}

std::string Cell(const RunningStat& stat, int precision) {
  return stat.ToString(precision);
}

void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

sim::RepeatedReport RunCell(const sim::Simulator& simulator,
                            sim::Policy policy) {
  auto result = simulator.RunRepeated(policy, Repetitions(), BenchThreads());
  CheckOk(result.status());
  return std::move(result).value();
}

std::vector<sim::RepeatedReport> RunCells(
    const sim::Simulator& simulator,
    const std::vector<sim::Policy>& policies) {
  auto result = simulator.RunGrid(policies, Repetitions(), BenchThreads());
  CheckOk(result.status());
  return std::move(result).value();
}

std::vector<trace::DatasetSpec> BenchSpecs() {
  if (QuickMode()) return {trace::FlatSpec()};
  return trace::AllSpecs();
}

}  // namespace bench
}  // namespace imcf
