#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"

#ifndef IMCF_GIT_SHA
#define IMCF_GIT_SHA "unknown"
#endif
#ifndef IMCF_BUILD_TYPE
#define IMCF_BUILD_TYPE "unknown"
#endif

namespace imcf {
namespace bench {

namespace {

/// Current wall time as an RFC 3339 UTC stamp ("2026-08-08T12:34:56Z").
std::string UtcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm parts{};
  gmtime_r(&now, &parts);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &parts);
  return buf;
}

/// Resolves an env-var path with the shared file-or-directory semantics:
/// ".json" suffix names the file, anything else is a directory receiving
/// `<prefix><name>.json`. Empty when the variable is unset.
std::string ReportPath(const char* env_var, const std::string& prefix,
                       const std::string& name) {
  const char* env = std::getenv(env_var);
  if (env == nullptr || env[0] == '\0') return "";
  std::string path(env);
  if (!EndsWith(path, ".json")) {
    if (!path.empty() && path.back() != '/') path += '/';
    path += prefix + name + ".json";
  }
  return path;
}

}  // namespace

Report::Report(std::string name) : name_(std::move(name)) {}

Report::~Report() { WriteIfRequested(); }

std::string Report::Cell(const std::string& section, const std::string& row,
                         const std::string& metric, const RunningStat& stat,
                         int precision) {
  CellRecord record;
  record.section = section;
  record.row = row;
  record.metric = metric;
  record.formatted = stat.ToString(precision);
  record.mean = stat.mean();
  record.stddev = stat.stddev();
  record.min = stat.min();
  record.max = stat.max();
  record.count = stat.count();
  cells_.push_back(record);
  return record.formatted;
}

std::string Report::Scalar(const std::string& section, const std::string& row,
                           const std::string& metric, double value,
                           int precision) {
  CellRecord record;
  record.section = section;
  record.row = row;
  record.metric = metric;
  record.formatted = StrFormat("%.*f", precision, value);
  record.mean = value;
  record.min = value;
  record.max = value;
  record.count = 1;
  cells_.push_back(record);
  return record.formatted;
}

std::string Report::ToJsonString() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(name_);
  // Run metadata so reports from different commits/machines compare
  // honestly: a 3% regression means nothing without the sha and build type
  // that produced each side.
  w.Key("meta").BeginObject();
  w.Key("git_sha").String(IMCF_GIT_SHA);
  w.Key("build_type").String(IMCF_BUILD_TYPE);
  w.Key("compiler").String(__VERSION__);
  w.Key("threads").Int(BenchThreads());
  w.Key("timestamp_utc").String(UtcTimestamp());
  w.EndObject();
  w.Key("repetitions").Int(Repetitions());
  w.Key("quick").Bool(QuickMode());
  w.Key("threads").Int(BenchThreads());
  w.Key("cells").BeginArray();
  for (const CellRecord& cell : cells_) {
    w.BeginObject();
    w.Key("section").String(cell.section);
    w.Key("row").String(cell.row);
    w.Key("metric").String(cell.metric);
    w.Key("formatted").String(cell.formatted);
    w.Key("mean").Double(cell.mean);
    w.Key("stddev").Double(cell.stddev);
    w.Key("min").Double(cell.min);
    w.Key("max").Double(cell.max);
    w.Key("count").Int(cell.count);
    w.EndObject();
  }
  w.EndArray();
  // The instrumentation that produced the numbers above rides along.
  w.Key("metrics").Raw(obs::ToJson(obs::MetricRegistry::Default()));
  w.EndObject();
  return w.str();
}

void Report::WriteIfRequested() {
  if (written_) return;
  written_ = true;
  MaybeDumpTrace(name_);
  const std::string path = ReportPath("IMCF_BENCH_JSON", "BENCH_", name_);
  if (path.empty()) return;
  const std::string body = ToJsonString();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write report to %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("report written: %s\n", path.c_str());
}

int Repetitions() {
  const char* env = std::getenv("IMCF_BENCH_REPS");
  if (env != nullptr) {
    const auto parsed = ParseInt(env);
    if (parsed.ok() && *parsed > 0 && *parsed <= 100) {
      return static_cast<int>(*parsed);
    }
  }
  return 5;
}

bool QuickMode() {
  const char* env = std::getenv("IMCF_BENCH_QUICK");
  return env != nullptr && std::string(env) == "1";
}

int BenchThreads() {
  const char* env = std::getenv("IMCF_BENCH_THREADS");
  if (env != nullptr) {
    const auto parsed = ParseInt(env);
    if (parsed.ok() && *parsed > 0 && *parsed <= 256) {
      return static_cast<int>(*parsed);
    }
  }
  return ThreadPool::HardwareThreads();
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("=================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("repetitions per cell: %d (paper: 10; set IMCF_BENCH_REPS)\n",
              Repetitions());
  std::printf("=================================================================\n");
}

std::string Cell(const RunningStat& stat, int precision) {
  return stat.ToString(precision);
}

void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

sim::RepeatedReport RunCell(const sim::Simulator& simulator,
                            sim::Policy policy) {
  auto result = simulator.RunRepeated(policy, Repetitions(), BenchThreads());
  CheckOk(result.status());
  return std::move(result).value();
}

std::vector<sim::RepeatedReport> RunCells(
    const sim::Simulator& simulator,
    const std::vector<sim::Policy>& policies) {
  auto result = simulator.RunGrid(policies, Repetitions(), BenchThreads());
  CheckOk(result.status());
  return std::move(result).value();
}

std::vector<trace::DatasetSpec> BenchSpecs() {
  if (QuickMode()) return {trace::FlatSpec()};
  return trace::AllSpecs();
}

void MaybeDumpTrace(const std::string& name) {
  const std::string path = ReportPath("IMCF_TRACE_JSON", "TRACE_", name);
  if (path.empty()) return;
  if (!obs::WriteTraceJson(obs::FlightRecorder::Default(), path)) {
    std::fprintf(stderr, "bench: cannot write trace to %s\n", path.c_str());
    return;
  }
  std::printf("trace written: %s (%lld spans recorded, ring capacity %zu)\n",
              path.c_str(),
              static_cast<long long>(
                  obs::FlightRecorder::Default().total_recorded()),
              obs::FlightRecorder::Default().capacity());
}

}  // namespace bench
}  // namespace imcf
