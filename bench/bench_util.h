// Shared helpers for the figure/table reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation section, printing the measured series next to the values the
// paper reports. Repetition count defaults to 5 for speed and can be set to
// the paper's 10 via IMCF_BENCH_REPS.

#ifndef IMCF_BENCH_BENCH_UTIL_H_
#define IMCF_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sim/simulation.h"

namespace imcf {
namespace bench {

/// Machine-readable run-report for one bench binary.
///
/// Every table cell the bench prints is recorded here through Cell() /
/// Scalar(), which return the exact formatted string the bench puts in the
/// table — so the JSON report and the printed table agree by construction.
/// Destruction (or an explicit WriteIfRequested()) writes BENCH_<name>.json
/// when IMCF_BENCH_JSON is set: a path ending in ".json" names the file
/// itself, anything else is a directory that receives BENCH_<name>.json.
/// The report also embeds the full metric-registry snapshot, so planner/
/// evaluator/pool counters ride along with the figures they explain.
class Report {
 public:
  explicit Report(std::string name);

  /// Not copyable (one report per bench run).
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report();  ///< writes the JSON if still pending

  /// Records a repetition-aggregated cell; returns "mean ± stddev" at the
  /// given precision — print exactly this string in the table.
  std::string Cell(const std::string& section, const std::string& row,
                   const std::string& metric, const RunningStat& stat,
                   int precision = 2);

  /// Records a single-valued cell (no repetitions); returns the formatted
  /// value at the given precision.
  std::string Scalar(const std::string& section, const std::string& row,
                     const std::string& metric, double value,
                     int precision = 2);

  /// Writes the JSON report now if IMCF_BENCH_JSON is set, and the flight
  /// recorder as Perfetto JSON if IMCF_TRACE_JSON is set (idempotent).
  void WriteIfRequested();

  /// The report body as a JSON string (exposed for tests).
  std::string ToJsonString() const;

 private:
  struct CellRecord {
    std::string section;
    std::string row;
    std::string metric;
    std::string formatted;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    int64_t count = 0;
  };

  std::string name_;
  std::vector<CellRecord> cells_;
  bool written_ = false;
};

/// Repetitions per experimental cell (env IMCF_BENCH_REPS, default 5; the
/// paper uses 10).
int Repetitions();

/// Quick mode (env IMCF_BENCH_QUICK=1): restricts sweeps to the flat
/// dataset for smoke runs.
bool QuickMode();

/// Worker threads for fanning repetitions/cells out (env
/// IMCF_BENCH_THREADS; default: hardware concurrency). Results are
/// bit-identical for every thread count; only the F_T timing columns are
/// measurements and thus vary. Set to 1 for uncontended F_T numbers.
int BenchThreads();

/// Prints the standard header for a bench binary.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// Prints one "mean ± stddev" cell.
std::string Cell(const RunningStat& stat, int precision = 2);

/// Dies with a message if `status` is not OK (benches have no error
/// recovery path worth writing).
void CheckOk(const Status& status);

/// Runs one (policy, simulator) cell with the standard repetitions,
/// fanning repetitions across BenchThreads() workers.
sim::RepeatedReport RunCell(const sim::Simulator& simulator,
                            sim::Policy policy);

/// Runs every (policy, repetition) cell of a figure row as one flat
/// parallel grid — keeps all cores busy across cheap (NR) and expensive
/// (EP) policies. Reports come back in `policies` order.
std::vector<sim::RepeatedReport> RunCells(
    const sim::Simulator& simulator, const std::vector<sim::Policy>& policies);

/// The datasets a sweep covers (flat only in quick mode).
std::vector<trace::DatasetSpec> BenchSpecs();

/// Dumps the process flight recorder as Chrome/Perfetto trace-event JSON
/// when IMCF_TRACE_JSON is set. Same path semantics as IMCF_BENCH_JSON: a
/// value ending in ".json" names the file, anything else is a directory
/// that receives TRACE_<name>.json. Called automatically by ~Report().
void MaybeDumpTrace(const std::string& name);

}  // namespace bench
}  // namespace imcf

#endif  // IMCF_BENCH_BENCH_UTIL_H_
