// Fleet serving scalability: open-loop traffic over the FleetService.
//
// Drives synthetic plan traffic across a {tenant count} x {worker threads}
// grid and reports throughput (plans/sec), end-to-end wall latency (p50 /
// p99) and the shed rate of a deliberately undersized admission queue.
// Plan outcomes are bit-identical across worker counts (the serve
// determinism contract); only the timing columns are measurements.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "obs/scoped_timer.h"
#include "serve/fleet_service.h"
#include "serve/tenant_table.h"

namespace imcf {
namespace {

constexpr uint64_t kSeed = 2026;

serve::TenantConfig TenantAt(int index, int hours) {
  serve::TenantConfig config;
  config.id = StrFormat("home%03d", index);
  config.seed = MixHash(kSeed, static_cast<uint64_t>(index));
  config.hours = hours;
  // Conflicting interests, as in DefaultNeighborhood: device sizes vary.
  Rng rng(MixHash(kSeed, static_cast<uint64_t>(index) + 1000));
  config.appetite = rng.UniformDouble(0.7, 1.3);
  return config;
}

double PercentileMs(std::vector<int64_t> wall_ns, double pct) {
  if (wall_ns.empty()) return 0.0;
  std::sort(wall_ns.begin(), wall_ns.end());
  const size_t rank = std::min(
      wall_ns.size() - 1,
      static_cast<size_t>(pct / 100.0 * static_cast<double>(wall_ns.size())));
  return static_cast<double>(wall_ns[rank]) / 1e6;
}

struct CellResult {
  double plans_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double fe_sum_kwh = 0.0;  ///< determinism witness across worker counts
  /// Cost-ledger totals across all tenants. cpu_ns is a measurement; the
  /// rest are deterministic int64 sums (the compare_bench exact columns),
  /// identical across worker counts.
  double cpu_ns_total = 0.0;
  int64_t arena_bytes = 0;
  int64_t flip_evals = 0;
  int64_t plans_ok = 0;
};

CellResult RunCell(int tenants, int workers, int hours, int plans_per_tenant) {
  serve::FleetOptions options;
  options.shards = 8;
  options.workers = workers;
  options.queue_capacity = tenants * plans_per_tenant;  // no shedding here
  auto service_or = serve::FleetService::Create(options);
  bench::CheckOk(service_or.status());
  serve::FleetService& service = **service_or;
  for (int i = 0; i < tenants; ++i) {
    bench::CheckOk(service.AddTenant(TenantAt(i, hours)));
  }

  const SimTime start = trace::EvaluationStart();
  const int64_t t0 = obs::ScopedTimer::NowNs();
  for (int rep = 0; rep < plans_per_tenant; ++rep) {
    for (int i = 0; i < tenants; ++i) {
      serve::Request request;
      request.tenant = StrFormat("home%03d", i);
      request.kind = serve::RequestKind::kPlan;
      request.issue_time = start;
      request.plan.policy = sim::Policy::kEnergyPlanner;
      request.plan.rep = rep;
      auto immediate = service.Submit(std::move(request));
      if (immediate.has_value()) {
        std::fprintf(stderr, "unexpected immediate outcome: %s\n",
                     serve::ServeOutcomeName(immediate->outcome));
        std::exit(1);
      }
    }
  }
  const std::vector<serve::Response> responses =
      service.Drain(start + kSecondsPerHour);
  const int64_t elapsed_ns = obs::ScopedTimer::NowNs() - t0;

  CellResult result;
  std::vector<int64_t> wall_ns;
  wall_ns.reserve(responses.size());
  for (const serve::Response& response : responses) {
    bench::CheckOk(response.status);
    wall_ns.push_back(response.wall_ns);
    result.fe_sum_kwh += response.plan.fe_kwh;
  }
  result.plans_per_sec = static_cast<double>(responses.size()) /
                         (static_cast<double>(elapsed_ns) / 1e9);
  result.p50_ms = PercentileMs(wall_ns, 50.0);
  result.p99_ms = PercentileMs(wall_ns, 99.0);
  for (const obs::CostLedger::Row& ledger_row :
       service.cost_ledger().Snapshot()) {
    result.cpu_ns_total += static_cast<double>(ledger_row.cost.total_ns());
    result.arena_bytes += ledger_row.cost.arena_bytes;
    result.flip_evals += ledger_row.cost.flip_evals;
    result.plans_ok += ledger_row.cost.plans_ok;
  }
  return result;
}

/// Shed-rate probe: a queue sized below the offered load must reject the
/// overflow with retry-after, not buffer or crash.
double ShedRate(int tenants, int offered_per_tenant, int capacity) {
  serve::FleetOptions options;
  options.shards = 1;  // one queue so capacity is exact
  options.workers = 1;
  options.queue_capacity = capacity;
  auto service_or = serve::FleetService::Create(options);
  bench::CheckOk(service_or.status());
  serve::FleetService& service = **service_or;
  for (int i = 0; i < tenants; ++i) {
    bench::CheckOk(service.AddTenant(TenantAt(i, 24)));
  }
  int shed = 0;
  const int offered = tenants * offered_per_tenant;
  for (int i = 0; i < offered; ++i) {
    serve::Request request;
    request.tenant = StrFormat("home%03d", i % tenants);
    request.kind = serve::RequestKind::kQuery;
    request.issue_time = trace::EvaluationStart();
    auto immediate = service.Submit(std::move(request));
    if (immediate.has_value() &&
        immediate->outcome == serve::ServeOutcome::kShed) {
      ++shed;
    }
  }
  (void)service.Drain(trace::EvaluationStart());
  return static_cast<double>(shed) / static_cast<double>(offered);
}

/// Tenant-directory microbench: robin-hood TenantTable vs the std::map it
/// replaced, on the registry's hot operation (lookup by id, hit and miss
/// mixed). Values are null tenant shells — this times the directory, not
/// the tenants.
struct LookupResult {
  double table_ns = 0.0;
  double map_ns = 0.0;
};

LookupResult TenantLookup(int entries, int lookups) {
  serve::TenantTable table;
  std::map<serve::TenantId, std::shared_ptr<serve::Tenant>> reference;
  for (int i = 0; i < entries; ++i) {
    const serve::TenantId id = StrFormat("home%06d", i);
    table.Insert(id, nullptr);
    reference.emplace(id, nullptr);
  }
  // Half the probes hit, half miss (ids past the populated range): the
  // miss path is where robin-hood's early exit earns its keep.
  std::vector<serve::TenantId> probes;
  probes.reserve(static_cast<size_t>(lookups));
  Rng rng(MixHash(kSeed, static_cast<uint64_t>(entries)));
  for (int i = 0; i < lookups; ++i) {
    probes.push_back(StrFormat(
        "home%06d", static_cast<int>(rng.UniformInt(0, 2 * entries - 1))));
  }

  LookupResult result;
  int64_t table_hits = 0;
  const int64_t t0 = obs::ScopedTimer::NowNs();
  for (const serve::TenantId& id : probes) {
    if (table.Contains(id)) ++table_hits;
  }
  const int64_t t1 = obs::ScopedTimer::NowNs();
  int64_t map_hits = 0;
  for (const serve::TenantId& id : probes) {
    if (reference.find(id) != reference.end()) ++map_hits;
  }
  const int64_t t2 = obs::ScopedTimer::NowNs();
  if (table_hits != map_hits) {
    std::fprintf(stderr, "lookup mismatch: table=%lld map=%lld\n",
                 static_cast<long long>(table_hits),
                 static_cast<long long>(map_hits));
    std::exit(1);
  }
  result.table_ns = static_cast<double>(t1 - t0) / lookups;
  result.map_ns = static_cast<double>(t2 - t1) / lookups;
  return result;
}

}  // namespace
}  // namespace imcf

int main() {
  using namespace imcf;
  bench::PrintHeader("Fleet serving scalability",
                     "serving layer (ISSUE 5); not a paper figure");
  bench::Report report("fleet_scaling");

  const bool quick = bench::QuickMode();
  const std::vector<int> tenant_counts = quick ? std::vector<int>{8}
                                               : std::vector<int>{16, 64};
  const std::vector<int> worker_counts = {1, 2, 4, 8};
  const int hours = quick ? 24 : 24 * 7;
  const int plans_per_tenant = 2;

  std::printf("%-22s %12s %10s %10s %14s %10s %12s %10s\n", "cell",
              "plans/sec", "p50 ms", "p99 ms", "sum F_E kWh", "cpu ms",
              "arena B", "flips");
  for (int tenants : tenant_counts) {
    for (int workers : worker_counts) {
      const CellResult cell =
          RunCell(tenants, workers, hours, plans_per_tenant);
      const std::string row =
          StrFormat("tenants=%d,workers=%d", tenants, workers);
      // The per-tenant cost ledger's deterministic columns (arena_bytes,
      // flip_evals, plans_ok) land in the JSON as exact-match cells: any
      // cross-worker or cross-run difference is a determinism regression,
      // not drift (compare_bench.py treats them as exact).
      std::printf(
          "%-22s %12s %10s %10s %14s %10s %12s %10s\n", row.c_str(),
          report.Scalar("throughput", row, "plans_per_sec",
                        cell.plans_per_sec, 1)
              .c_str(),
          report.Scalar("latency", row, "p50_ms", cell.p50_ms, 2).c_str(),
          report.Scalar("latency", row, "p99_ms", cell.p99_ms, 2).c_str(),
          report.Scalar("determinism", row, "fe_sum_kwh", cell.fe_sum_kwh, 3)
              .c_str(),
          report.Scalar("tenant_cost", row, "cpu_ms", cell.cpu_ns_total / 1e6,
                        2)
              .c_str(),
          report.Scalar("tenant_cost", row, "arena_bytes",
                        static_cast<double>(cell.arena_bytes), 0)
              .c_str(),
          report.Scalar("tenant_cost", row, "flip_evals",
                        static_cast<double>(cell.flip_evals), 0)
              .c_str());
      report.Scalar("tenant_cost", row, "plans_ok",
                    static_cast<double>(cell.plans_ok), 0);
    }
  }

  const double shed_rate = ShedRate(/*tenants=*/4, /*offered_per_tenant=*/8,
                                    /*capacity=*/8);
  std::printf("\nadmission: %s shed at 4x overload (capacity 8, offered 32)\n",
              report.Scalar("admission", "capacity=8,offered=32", "shed_rate",
                            shed_rate, 3)
                  .c_str());

  // Tenant-directory microbench (ISSUE 10 satellite): the robin-hood
  // TenantTable must not regress against the std::map shard index it
  // replaced on the registry's hot lookup path.
  std::printf("\n%-22s %18s %18s\n", "tenant lookup", "table ns/lookup",
              "map ns/lookup");
  const std::vector<int> directory_sizes =
      quick ? std::vector<int>{4096} : std::vector<int>{4096, 262144};
  for (int entries : directory_sizes) {
    const LookupResult lookup = TenantLookup(entries, /*lookups=*/1'000'000);
    const std::string row = StrFormat("entries=%d", entries);
    std::printf("%-22s %18s %18s\n", row.c_str(),
                report.Scalar("tenant_lookup", row, "table_ns_per_lookup",
                              lookup.table_ns, 1)
                    .c_str(),
                report.Scalar("tenant_lookup", row, "map_ns_per_lookup",
                              lookup.map_ns, 1)
                    .c_str());
  }
  report.WriteIfRequested();
  return 0;
}
