// Micro-benchmarks (google-benchmark): throughput of the hot components —
// slot evaluation, k-flip delta evaluation, per-slot planning at several
// rule-table sizes, firewall filtering, trace generation and the weather /
// ambient models. These back the F_T claims of Fig. 6 with component-level
// numbers.

#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/baselines.h"
#include "core/batch_planner.h"
#include "core/evaluator.h"
#include "core/hill_climber.h"
#include "core/soa_evaluator.h"
#include "firewall/imcf_firewall.h"
#include "trace/dataset.h"
#include "trace/generator.h"
#include "weather/weather.h"

namespace imcf {
namespace {

using devices::CommandType;

// Builds a slot problem with n rules spread over n/2 device groups.
core::SlotProblem MakeProblem(int n_rules, double budget_per_rule) {
  core::SlotProblem problem;
  problem.n_rules = n_rules;
  problem.budget_kwh = budget_per_rule * n_rules;
  Rng rng(42);
  const int n_groups = std::max(1, n_rules / 2);
  for (int g = 0; g < n_groups; ++g) {
    core::DeviceGroup group;
    group.type = (g % 2 == 0) ? CommandType::kSetTemperature
                              : CommandType::kSetLight;
    group.ambient = group.type == CommandType::kSetTemperature ? 15.0 : 10.0;
    problem.groups.push_back(group);
  }
  for (int i = 0; i < n_rules; ++i) {
    core::ActiveRule rule;
    rule.rule_index = i;
    rule.group = i % n_groups;
    rule.type = problem.groups[static_cast<size_t>(rule.group)].type;
    rule.desired = rule.type == CommandType::kSetTemperature ? 23.0 : 40.0;
    rule.energy_kwh = rng.UniformDouble(0.05, 0.5);
    rule.drop_error = rng.UniformDouble(0.1, 1.0);
    problem.active.push_back(rule);
  }
  return problem;
}

// Evaluator benches run the configured kernel (SoA by default,
// -DIMCF_SOA_EVAL=OFF rebuilds them against the legacy kernel);
// BM_PlanSlotLegacy pins the legacy kernel for in-binary comparison.
void BM_SlotEvaluateFull(benchmark::State& state) {
  const core::SlotProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 0.2);
  const auto evaluator = core::MakeSlotEvaluator(&problem);
  Rng rng(1);
  core::Solution s = core::Solution::Init(
      static_cast<size_t>(problem.n_rules), core::InitStrategy::kRandom,
      &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->Evaluate(s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(problem.active.size()));
}
BENCHMARK(BM_SlotEvaluateFull)->Arg(6)->Arg(24)->Arg(120)->Arg(600);

void BM_SlotEvaluateDelta(benchmark::State& state) {
  const core::SlotProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 0.2);
  const auto evaluator = core::MakeSlotEvaluator(&problem);
  Rng rng(1);
  core::Solution s = core::Solution::Init(
      static_cast<size_t>(problem.n_rules), core::InitStrategy::kRandom,
      &rng);
  const core::Objectives base = evaluator->Evaluate(s);
  core::FlipBuffer flips;
  for (auto _ : state) {
    core::SampleDistinct(problem.n_rules, 4, &rng, &flips);
    benchmark::DoNotOptimize(evaluator->EvaluateWithFlips(&s, base, flips));
  }
}
BENCHMARK(BM_SlotEvaluateDelta)->Arg(6)->Arg(24)->Arg(120)->Arg(600);

// The acceptance benchmark for the incremental evaluator: steady-state
// hill-climbing delta evaluation with accepted moves committed through
// ApplyFlips, so "before" contributions stay on the O(1) cached path.
void BM_EvaluateWithFlipsCached(benchmark::State& state) {
  const core::SlotProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 0.2);
  const auto evaluator = core::MakeSlotEvaluator(&problem);
  Rng rng(1);
  core::Solution s = core::Solution::Init(
      static_cast<size_t>(problem.n_rules), core::InitStrategy::kRandom,
      &rng);
  core::Objectives base = evaluator->Evaluate(s);
  core::FlipBuffer flips;
  for (auto _ : state) {
    core::SampleDistinct(problem.n_rules, 4, &rng, &flips);
    const core::Objectives candidate =
        evaluator->EvaluateWithFlips(&s, base, flips);
    benchmark::DoNotOptimize(candidate);
    if (rng.Bernoulli(0.5)) {  // accept: commit and keep the cache in sync
      evaluator->ApplyFlips(&s, flips);
      base = candidate;
    }
  }
}
BENCHMARK(BM_EvaluateWithFlipsCached)->Arg(6)->Arg(24)->Arg(120)->Arg(600);

void BM_PlanSlotHillClimbing(benchmark::State& state) {
  const core::SlotProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 0.1);  // tight budget
  const auto evaluator = core::MakeSlotEvaluator(&problem);
  core::HillClimbingPlanner planner;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.PlanSlot(*evaluator, &rng));
  }
}
BENCHMARK(BM_PlanSlotHillClimbing)->Arg(6)->Arg(24)->Arg(64)->Arg(120)->Arg(600);

// The legacy-kernel reference for the same plan: identical rng stream and
// trajectory, virtual-dispatch SlotEvaluator. The ratio against
// BM_PlanSlotHillClimbing is the SoA kernel's speedup.
void BM_PlanSlotLegacy(benchmark::State& state) {
  const core::SlotProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 0.1);
  core::SlotEvaluator evaluator(&problem);
  core::HillClimbingPlanner planner;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.PlanSlot(evaluator, &rng));
  }
}
BENCHMARK(BM_PlanSlotLegacy)->Arg(6)->Arg(24)->Arg(64)->Arg(120)->Arg(600);

// Alias with the historical name used by the perf acceptance criteria:
// BM_PlanSlot/64 is one EP slot plan on a 64-rule table.
void BM_PlanSlot(benchmark::State& state) { BM_PlanSlotHillClimbing(state); }
BENCHMARK(BM_PlanSlot)->Arg(64);

// Cross-household batched planning: one BatchPlanner drives 16 independent
// slot problems through a shared arena per iteration (the fleet drain's
// execution model). Time is per batch.
void BM_PlanSlotBatch(benchmark::State& state) {
  constexpr int kHouseholds = 16;
  std::vector<core::SlotProblem> problems;
  problems.reserve(kHouseholds);
  for (int i = 0; i < kHouseholds; ++i) {
    problems.push_back(MakeProblem(static_cast<int>(state.range(0)), 0.1));
  }
  core::HillClimbingPlanner planner;
  core::BatchPlanner batch(&planner);
  std::vector<Rng> rngs;
  std::vector<core::BatchPlanItem> items;
  for (int i = 0; i < kHouseholds; ++i) {
    rngs.emplace_back(MixHash(7, static_cast<uint64_t>(i)));
  }
  for (int i = 0; i < kHouseholds; ++i) {
    items.push_back({&problems[static_cast<size_t>(i)],
                     &rngs[static_cast<size_t>(i)]});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.PlanBatch(items));
  }
  state.SetItemsProcessed(state.iterations() * kHouseholds);
}
BENCHMARK(BM_PlanSlotBatch)->Arg(24)->Arg(120);

// Parallel planning substrate: `state.range(0)` worker threads plan 64
// independent 64-rule slot problems per iteration (one evaluator per task —
// the evaluator's incremental cache is thread-local by construction). Near-
// linear wall-clock scaling up to the core count is the acceptance target;
// per-task MixHash seeding keeps every task's plan identical across thread
// counts.
void BM_PlanSlotParallel(benchmark::State& state) {
  constexpr int kTasks = 64;
  constexpr uint64_t kSeed = 7;
  std::vector<core::SlotProblem> problems;
  problems.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) problems.push_back(MakeProblem(64, 0.1));
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  core::HillClimbingPlanner planner;
  std::vector<double> errors(kTasks, 0.0);
  for (auto _ : state) {
    ParallelFor(threads > 1 ? &pool : nullptr, kTasks,
                [&problems, &planner, &errors](int i) {
                  const auto evaluator = core::MakeSlotEvaluator(
                      &problems[static_cast<size_t>(i)]);
                  Rng rng(MixHash(kSeed, static_cast<uint64_t>(i)));
                  errors[static_cast<size_t>(i)] =
                      planner.PlanSlot(*evaluator, &rng).objectives.error_sum;
                });
    benchmark::DoNotOptimize(errors.data());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_PlanSlotParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_FirewallFilter(benchmark::State& state) {
  devices::DeviceRegistry registry;
  const auto ac =
      *registry.Add("ac", devices::DeviceKind::kHvac, 0, "10.0.0.1");
  firewall::MetaControlFirewall fw(&registry, 64);
  fw.SetDroppedRules({1, 3, 5});
  devices::ActuationCommand cmd;
  cmd.device = ac;
  cmd.type = devices::CommandType::kSetTemperature;
  cmd.value = 23.0;
  cmd.source = "mrt";
  int rule = 0;
  for (auto _ : state) {
    cmd.rule_id = rule++ % 6;
    benchmark::DoNotOptimize(fw.Filter(cmd));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FirewallFilter);

void BM_WeatherSample(benchmark::State& state) {
  weather::SyntheticWeather weather;
  SimTime t = FromCivil(2015, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(weather.At(t));
    t += kSecondsPerHour;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeatherSample);

void BM_TraceGenerationDay(benchmark::State& state) {
  trace::GeneratorOptions options;
  options.start = FromCivil(2014, 3, 1);
  options.end = FromCivil(2014, 3, 2);
  options.step_seconds = 60;
  options.units = 1;
  trace::CasasTraceGenerator gen(options);
  int64_t readings = 0;
  for (auto _ : state) {
    auto count = gen.Generate([](const trace::Reading&) {
      return Status::Ok();
    });
    readings += count.value_or(0);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(readings);
}
BENCHMARK(BM_TraceGenerationDay);

void BM_BuildHourlyAmbientWeek(benchmark::State& state) {
  const trace::DatasetSpec spec = trace::FlatSpec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::BuildHourlyAmbient(spec, FromCivil(2014, 1, 1), 7 * 24));
  }
}
BENCHMARK(BM_BuildHourlyAmbientWeek);

}  // namespace
}  // namespace imcf

BENCHMARK_MAIN();
