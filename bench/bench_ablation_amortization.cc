// Ablation A1 — Amortization formulas and budget banking.
//
// DESIGN.md calls out two design choices the paper leaves implicit:
//   1. which AP formula feeds E_p to the planner (LAF / BLAF / EAF), and
//   2. whether unused slot budget is banked (net metering) or forfeited.
// This bench quantifies both on the flat dataset: EAF should dominate LAF
// on convenience (the budget tracks the demand season), and disabling the
// carryover bank should collapse convenience (a flat hourly constraint can
// never fund the night heating peak).

#include <cstdio>

#include "bench_util.h"

namespace imcf {
namespace bench {
namespace {

void RunCellWith(Report* report, const trace::DatasetSpec& spec,
                 energy::AmortizationKind kind, bool carryover,
                 const char* label) {
  sim::SimulationOptions options;
  options.spec = spec;
  options.amortization = kind;
  options.carryover = carryover;
  sim::Simulator simulator(options);
  CheckOk(simulator.Prepare());
  const sim::RepeatedReport cell =
      RunCell(simulator, sim::Policy::kEnergyPlanner);
  std::printf("%-18s %16s %22s\n", label,
              report->Cell(spec.name, label, "fce_pct", cell.fce_pct).c_str(),
              report->Cell(spec.name, label, "fe_kwh", cell.fe_kwh, 1)
                  .c_str());
}

void Run() {
  PrintHeader("Ablation A1 — Amortization formula and budget banking (EP)",
              "design choices behind Alg. 1 lines 2-5 (LAF/BLAF/EAF)");
  Report report("ablation_amortization");

  const trace::DatasetSpec spec = trace::FlatSpec();
  std::printf("\n--- dataset: flat, budget %.0f kWh ---\n", spec.budget_kwh);
  std::printf("%-18s %16s %22s\n", "configuration", "F_CE [%]", "F_E [kWh]");
  RunCellWith(&report, spec, energy::AmortizationKind::kEaf, true,
              "EAF + banking");
  RunCellWith(&report, spec, energy::AmortizationKind::kBlaf, true,
              "BLAF + banking");
  RunCellWith(&report, spec, energy::AmortizationKind::kLaf, true,
              "LAF + banking");
  RunCellWith(&report, spec, energy::AmortizationKind::kEaf, false,
              "EAF, no banking");
  RunCellWith(&report, spec, energy::AmortizationKind::kLaf, false,
              "LAF, no banking");

  std::printf("\nexpected shape: EAF <= BLAF <= LAF on F_CE under banking; "
              "removing the bank sharply raises F_CE at similar or lower "
              "F_E (diurnal peaks become unfundable).\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
