// Conflict-pass throughput: how fast can the admission gate vet rule sets?
//
// The conflict firewall runs on every tenant admission and every MRT
// update, so its cost bounds how often rule sets can churn. Three sections:
//
//   * setpoint_scan — detector (a) over VariedMrt corpora up to ~1M rules
//     (167k units x 6 rules). The bucketed sweep should stay near-linear:
//     Mrules/s must not collapse between the 120k and 1M corpora.
//   * graph_admission — detector (b): tenants installing cross-kind command
//     edges into one shard graph, plus the cost of a rejected admission
//     that closes an inter-tenant cycle (rollback included).
//   * full_pass — ConflictAnalyzer::Analyze end to end (all three
//     detectors + dataflow-policy derivation) per tenant admission.
//
// Finding counts are deterministic (fixed seeds) and land in the JSON as
// exact-match cells; only the timing columns are measurements.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "firewall/conflict/analyzer.h"
#include "firewall/conflict/device_graph.h"
#include "firewall/conflict/setpoint_analyzer.h"
#include "obs/scoped_timer.h"
#include "rules/meta_rule.h"
#include "rules/trigger_rule.h"

namespace imcf {
namespace {

constexpr uint64_t kSeed = 2026;

using firewall::conflict::CommandEdge;
using firewall::conflict::ConflictAnalyzer;
using firewall::conflict::ConflictReport;
using firewall::conflict::DeviceCommandGraph;
using firewall::conflict::SetpointOptions;
using firewall::conflict::TenantRuleSet;

struct ScanResult {
  int64_t rules = 0;
  int64_t findings = 0;
  double wall_ms = 0.0;
};

/// One detector-(a) sweep over a `units`-unit varied MRT. Permissive
/// thresholds so the corpus actually produces findings to count.
ScanResult ScanCorpus(int units, const SetpointOptions& options) {
  const rules::MetaRuleTable mrt = rules::VariedMrt(units, 1.0, kSeed);
  ScanResult result;
  const int64_t t0 = obs::ScopedTimer::NowNs();
  ConflictReport report;
  result.rules = FindContradictorySetpoints(mrt, options, &report);
  result.wall_ms =
      static_cast<double>(obs::ScopedTimer::NowNs() - t0) / 1e6;
  result.findings = static_cast<int64_t>(report.findings.size());
  return result;
}

/// Cross-kind trigger table: `units` hvac->light rules, the half-loop a
/// tenant can legally install alone.
rules::TriggerRuleTable HvacToLightTable() {
  rules::TriggerRuleTable table;
  table.Add(rules::TriggerRule::OnTemperature(rules::TriggerOp::kGreaterThan,
                                              24.0, rules::RuleAction::kSetLight,
                                              0.0));
  return table;
}

rules::TriggerRuleTable LightToHvacTable() {
  rules::TriggerRuleTable table;
  table.Add(rules::TriggerRule::OnLightLevel(rules::TriggerOp::kLessThan, 10.0,
                                             rules::RuleAction::kSetTemperature,
                                             26.0));
  return table;
}

struct GraphResult {
  double admits_per_sec = 0.0;
  double reject_ms = 0.0;  ///< one cycle-closing admission incl. rollback
  int64_t edges = 0;
};

/// `tenants` tenants, each owning `units_per_tenant` disjoint units, install
/// hvac->light edges (no cycles); then one adversary spanning every unit
/// tries the reverse direction and must be rejected.
GraphResult RunGraphAdmissions(int tenants, int units_per_tenant) {
  DeviceCommandGraph graph;
  std::vector<std::vector<CommandEdge>> edge_sets;
  edge_sets.reserve(static_cast<size_t>(tenants));
  const rules::TriggerRuleTable forward = HvacToLightTable();
  for (int t = 0; t < tenants; ++t) {
    std::vector<CommandEdge> edges =
        firewall::conflict::DeriveCommandEdges(forward, units_per_tenant);
    // Shift onto the tenant's own unit range so installs are disjoint.
    for (CommandEdge& edge : edges) {
      edge.from += t * units_per_tenant * 2;
      edge.to += t * units_per_tenant * 2;
    }
    edge_sets.push_back(std::move(edges));
  }

  GraphResult result;
  const int64_t t0 = obs::ScopedTimer::NowNs();
  for (int t = 0; t < tenants; ++t) {
    const auto findings =
        graph.TryInstall(StrFormat("home%05d", t), edge_sets[static_cast<size_t>(t)]);
    bench::CheckOk(findings.empty()
                       ? Status::Ok()
                       : Status::Internal("unexpected cycle in disjoint sets"));
  }
  const int64_t t1 = obs::ScopedTimer::NowNs();
  result.admits_per_sec = static_cast<double>(tenants) /
                          (static_cast<double>(t1 - t0) / 1e9);
  result.edges = static_cast<int64_t>(graph.edge_count());

  // The adversary wires light->hvac across tenant 0's units: every edge
  // closes a cycle through a foreign tenant, so the install rolls back.
  std::vector<CommandEdge> reverse =
      firewall::conflict::DeriveCommandEdges(LightToHvacTable(),
                                             units_per_tenant);
  const int64_t t2 = obs::ScopedTimer::NowNs();
  const auto findings = graph.TryInstall("adversary", reverse);
  result.reject_ms = static_cast<double>(obs::ScopedTimer::NowNs() - t2) / 1e6;
  bench::CheckOk(!findings.empty()
                     ? Status::Ok()
                     : Status::Internal("adversary admission should reject"));
  return result;
}

struct PassResult {
  double admits_per_sec = 0.0;
  int64_t rules = 0;
};

/// End-to-end Analyze: `tenants` admissions of `units`-unit rule sets into
/// one shard, with the budget detector active (constant 1 kW draw model).
PassResult RunFullPass(int tenants, int units) {
  ConflictAnalyzer analyzer(/*shards=*/1);
  const rules::TriggerRuleTable ifttt = rules::FlatIfttt();
  std::vector<rules::MetaRuleTable> mrts;
  mrts.reserve(static_cast<size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    mrts.push_back(
        rules::VariedMrt(units, 1.0, MixHash(kSeed, static_cast<uint64_t>(t))));
  }
  PassResult result;
  const int64_t t0 = obs::ScopedTimer::NowNs();
  for (int t = 0; t < tenants; ++t) {
    TenantRuleSet rule_set;
    rule_set.mrt = &mrts[static_cast<size_t>(t)];
    rule_set.ifttt = &ifttt;
    rule_set.units = units;
    rule_set.budget_kwh = 11000.0;
    rule_set.period_days = 3 * 365;
    rule_set.hourly_energy = [](const rules::MetaRule&, int) { return 1.0; };
    const ConflictReport report =
        analyzer.Analyze(0, StrFormat("home%05d", t), rule_set);
    bench::CheckOk(report.ok() ? Status::Ok()
                               : Status::Internal("stock-derived set rejected"));
    result.rules += report.rules_analyzed;
  }
  result.admits_per_sec = static_cast<double>(tenants) /
                          (static_cast<double>(obs::ScopedTimer::NowNs() - t0) /
                           1e9);
  return result;
}

}  // namespace
}  // namespace imcf

int main() {
  using namespace imcf;
  bench::PrintHeader("Conflict-pass throughput",
                     "admission-gate cost (conflict firewall); not a paper "
                     "figure");
  bench::Report report("conflict_detection");
  const bool quick = bench::QuickMode();

  // Detector (a): bucketed pairwise sweep. Thresholds are permissive so
  // the varied corpora yield findings; the finding count is exact.
  firewall::conflict::SetpointOptions permissive;
  permissive.min_overlap_minutes = 30;
  permissive.temperature_gap_c = 3.0;
  permissive.light_gap_pct = 20.0;
  permissive.max_findings = 1u << 20;

  // Quick mode is a strict subset of the full sweep so CI's quick run
  // compares row-for-row against the committed full-mode baseline (the
  // 167k corpus — 1.002M rules — only shows up as "(gone)", advisory).
  const std::vector<int> unit_counts =
      quick ? std::vector<int>{1000, 20000}
            : std::vector<int>{1000, 20000, 167000};
  std::printf("%-18s %12s %10s %12s %10s\n", "corpus", "rules", "wall ms",
              "Mrules/s", "findings");
  for (int units : unit_counts) {
    const ScanResult scan = ScanCorpus(units, permissive);
    const std::string row = StrFormat("units=%d", units);
    std::printf(
        "%-18s %12s %10s %12s %10s\n", row.c_str(),
        report.Scalar("setpoint_scan", row, "rules",
                      static_cast<double>(scan.rules), 0)
            .c_str(),
        report.Scalar("setpoint_scan", row, "wall_ms", scan.wall_ms, 2).c_str(),
        report
            .Scalar("setpoint_scan", row, "mrules_per_sec",
                    static_cast<double>(scan.rules) / 1e6 /
                        (scan.wall_ms / 1e3),
                    2)
            .c_str(),
        report.Scalar("setpoint_scan", row, "findings",
                      static_cast<double>(scan.findings), 0)
            .c_str());
  }

  // Detector (b): shard-graph installs and one rejected cycle. Cheap
  // enough (milliseconds) that quick mode runs the full size — rows then
  // match the baseline exactly.
  const int graph_tenants = 2000;
  const int units_per_tenant = 4;
  const GraphResult graph = RunGraphAdmissions(graph_tenants, units_per_tenant);
  const std::string graph_row =
      StrFormat("tenants=%d,units=%d", graph_tenants, units_per_tenant);
  std::printf("\ngraph: %s admits/s over %s edges; cycle reject %s ms\n",
              report.Scalar("graph_admission", graph_row, "admits_per_sec",
                            graph.admits_per_sec, 0)
                  .c_str(),
              report.Scalar("graph_admission", graph_row, "edges",
                            static_cast<double>(graph.edges), 0)
                  .c_str(),
              report.Scalar("graph_admission", graph_row, "reject_ms",
                            graph.reject_ms, 3)
                  .c_str());

  // Full pass: all three detectors + policy derivation per admission.
  const int pass_tenants = 500;
  const int pass_units = 8;
  (void)quick;
  const PassResult pass = RunFullPass(pass_tenants, pass_units);
  const std::string pass_row =
      StrFormat("tenants=%d,units=%d", pass_tenants, pass_units);
  std::printf("full pass: %s admits/s, %s rules analyzed\n",
              report.Scalar("full_pass", pass_row, "admits_per_sec",
                            pass.admits_per_sec, 0)
                  .c_str(),
              report.Scalar("full_pass", pass_row, "rules",
                            static_cast<double>(pass.rules), 0)
                  .c_str());
  report.WriteIfRequested();
  return 0;
}
