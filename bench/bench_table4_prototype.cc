// Tables IV & V — Prototype Evaluation: one week of the live Local
// Controller with a three-person family, a 165 kWh weekly cap, the cron-
// driven Energy Planner and weather-service data.
//
// Paper reference: Table IV reports F_E = 130.64 kWh and F_CE = 2.35% for
// the week; Table V reports per-resident convenience errors of ~0.76-0.80%
// ("consistent and high satisfaction close to 99.7%"); configuration
// footprint ≈ 65 bytes / user; EP executes in ~4 s.

#include <cstdio>

#include "bench_util.h"
#include "controller/prototype.h"

namespace imcf {
namespace bench {
namespace {

void Run() {
  PrintHeader("Tables IV & V — Prototype Evaluation (one live week)",
              "IMCF paper §III-F, Tables IV and V");
  Report json_report("table4_prototype");

  controller::PrototypeOptions options;
  controller::PrototypeStudy study(options);
  auto report = study.Run();
  CheckOk(report.status());

  std::printf("\nTable IV — weekly system evaluation\n");
  std::printf("%-22s %18s %20s\n", "Time Duration",
              "Energy Consumption", "Convenience Error");
  std::printf("%-22s %15s kWh %19s%%\n", "Week",
              json_report.Scalar("table4", "week", "fe_kwh", report->fe_kwh)
                  .c_str(),
              json_report.Scalar("table4", "week", "fce_pct", report->fce_pct)
                  .c_str());
  std::printf("  budget: %.0f kWh  within: %s\n", report->budget_kwh,
              report->within_budget ? "yes" : "NO");
  std::printf("  planner cron runs: %d   sensor refreshes: %d\n",
              report->planner_runs, report->sensor_refreshes);
  std::printf("  commands issued: %lld   dropped by firewall: %lld\n",
              static_cast<long long>(report->commands_issued),
              static_cast<long long>(report->commands_dropped));
  std::printf("  planner CPU time over the week: %s s\n",
              json_report
                  .Scalar("table4", "week", "ft_seconds", report->ft_seconds,
                          3)
                  .c_str());
  std::printf("  configuration footprint: %s bytes / user\n",
              json_report
                  .Scalar("table4", "week", "config_bytes_per_user",
                          report->config_bytes_per_user, 1)
                  .c_str());

  std::printf("\nTable V — individual resident convenience error\n");
  std::printf("%-12s %20s %14s\n", "User", "Convenience Error",
              "satisfaction");
  for (const controller::ResidentReport& rr : report->residents) {
    std::printf("%-12s %19s%% %13.2f%%\n", rr.name.c_str(),
                json_report.Scalar("table5", rr.name, "fce_pct", rr.fce_pct, 4)
                    .c_str(),
                100.0 - rr.fce_pct);
  }

  std::printf("\npaper reference: Table IV F_E = 130.64 kWh, F_CE = 2.35%%;"
              "\nTable V per-resident F_CE 0.76-0.80%% (satisfaction ~99.2%%+);"
              "\nconfig ~65 bytes/user; EP runs in seconds.\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
