// Fig. 6 — Performance Evaluation: Convenience Error (F_CE), Energy
// Consumption (F_E) and CPU Execution Time (F_T) of NR / IFTTT / EP / MR
// on the flat, house and dorms datasets over the full three-year period.
//
// Paper reference points: NR F_CE ≈ 62% and F_E = 0; EP F_CE ≈ 2-4% within
// the Table II budgets (≈9500 / 22300 / 410000 kWh consumed); IFTTT F_CE ≈
// 26 / 29 / 39% with high energy; MR F_CE = 0% with the highest energy
// (≈ +5000 / +10000 / +150000 kWh over EP). NR is fastest, EP slowest.

#include <cstdio>

#include "bench_util.h"

namespace imcf {
namespace bench {
namespace {

struct PaperRow {
  const char* policy;
  const char* fce;
  const char* fe;
};

void Run() {
  PrintHeader("Fig. 6 — Performance Evaluation (NR / IFTTT / EP / MR)",
              "IMCF paper §III-B, Figure 6");
  Report report("fig6_performance");

  const std::vector<sim::Policy> policies = {
      sim::Policy::kNoRule, sim::Policy::kIfttt, sim::Policy::kEnergyPlanner,
      sim::Policy::kMetaRule};
  for (const trace::DatasetSpec& spec : BenchSpecs()) {
    sim::SimulationOptions options;
    options.spec = spec;
    sim::Simulator simulator(options);
    CheckOk(simulator.Prepare());

    std::printf("\n--- dataset: %-5s (%d units, budget %.0f kWh / 3 years) ---\n",
                spec.name.c_str(), spec.units, spec.budget_kwh);
    std::printf("%-7s %16s %22s %16s %8s\n", "policy", "F_CE [%]",
                "F_E [kWh]", "F_T [s]", "inBudget");
    // The whole (policy, repetition) grid fans out across BenchThreads()
    // workers; results are aggregated in grid order, so the table is
    // independent of the thread count.
    for (const sim::RepeatedReport& cell : RunCells(simulator, policies)) {
      const bool within =
          cell.fe_kwh.mean() <= simulator.total_budget_kwh() + 1e-6;
      std::printf(
          "%-7s %16s %22s %16s %8s\n", cell.policy.c_str(),
          report.Cell(spec.name, cell.policy, "fce_pct", cell.fce_pct).c_str(),
          report.Cell(spec.name, cell.policy, "fe_kwh", cell.fe_kwh, 1)
              .c_str(),
          report.Cell(spec.name, cell.policy, "ft_seconds", cell.ft_seconds, 3)
              .c_str(),
          within ? "yes" : "NO");
    }
  }

  std::printf("\npaper reference (flat / house / dorms):\n");
  std::printf("  NR    F_CE ~62%%           F_E 0\n");
  std::printf("  IFTTT F_CE 26 / 29 / 39%%  F_E high (over budget)\n");
  std::printf("  EP    F_CE 2-4%%           F_E ~9500 / ~22300 / ~410000 (within budget)\n");
  std::printf("  MR    F_CE 0%%             F_E EP + ~5000 / ~10000 / ~150000\n");
  std::printf("  F_T   NR fastest, MR cheap, EP most expensive (~4 s dorms)\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
