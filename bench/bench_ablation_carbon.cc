// Ablation A3 — Carbon-aware budget tilting (the paper's §V future work:
// "CO2 reductions methods with algorithms geared towards the environment").
//
// The same total energy budget is reshaped within each day toward
// clean-grid hours (alpha = tilt strength). Sweeps alpha on the flat
// dataset and reports the CO2 footprint next to F_CE / F_E: emissions
// should fall with alpha at (nearly) constant energy, with only a mild
// convenience cost from shifting when — not whether — rules run.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "energy/load_scheduler.h"

namespace imcf {
namespace bench {
namespace {

void Run() {
  PrintHeader("Ablation A3 — Carbon-aware budget tilt (EP, alpha sweep)",
              "paper §V future work: CO2-aware planning");
  Report report("ablation_carbon");

  const trace::DatasetSpec spec = trace::FlatSpec();
  std::printf("\n--- dataset: flat, budget %.0f kWh ---\n", spec.budget_kwh);
  std::printf("%-7s %14s %20s %18s\n", "alpha", "F_CE [%]", "F_E [kWh]",
              "CO2 [kg]");
  double baseline_co2 = 0.0;
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::SimulationOptions options;
    options.spec = spec;
    options.carbon_alpha = alpha;
    sim::Simulator simulator(options);
    CheckOk(simulator.Prepare());
    const sim::RepeatedReport cell =
        RunCell(simulator, sim::Policy::kEnergyPlanner);
    if (alpha == 0.0) baseline_co2 = cell.co2_kg.mean();
    const std::string row = StrFormat("alpha=%.2f", alpha);
    std::printf(
        "%-7.2f %14s %20s %14s (%+.1f%%)\n", alpha,
        report.Cell("deep_bank", row, "fce_pct", cell.fce_pct).c_str(),
        report.Cell("deep_bank", row, "fe_kwh", cell.fe_kwh, 1).c_str(),
        report.Cell("deep_bank", row, "co2_kg", cell.co2_kg, 1).c_str(),
        100.0 * (cell.co2_kg.mean() - baseline_co2) / baseline_co2);
  }

  // With the default deep net-metering bank, slot budgets rarely bind and
  // the tilt has little leverage; a shallow bank makes budget *timing*
  // matter and the tilt bite.
  std::printf("\n--- shallow bank (carryover cap 6 h) ---\n");
  std::printf("%-7s %14s %20s %18s\n", "alpha", "F_CE [%]", "F_E [kWh]",
              "CO2 [kg]");
  double shallow_baseline = 0.0;
  for (double alpha : {0.0, 0.5, 1.0}) {
    sim::SimulationOptions options;
    options.spec = spec;
    options.carbon_alpha = alpha;
    options.carryover_cap_hours = 6.0;
    sim::Simulator simulator(options);
    CheckOk(simulator.Prepare());
    const sim::RepeatedReport cell =
        RunCell(simulator, sim::Policy::kEnergyPlanner);
    if (alpha == 0.0) shallow_baseline = cell.co2_kg.mean();
    const std::string row = StrFormat("alpha=%.2f", alpha);
    std::printf(
        "%-7.2f %14s %20s %14s (%+.1f%%)\n", alpha,
        report.Cell("shallow_bank", row, "fce_pct", cell.fce_pct).c_str(),
        report.Cell("shallow_bank", row, "fe_kwh", cell.fe_kwh, 1).c_str(),
        report.Cell("shallow_bank", row, "co2_kg", cell.co2_kg, 1).c_str(),
        100.0 * (cell.co2_kg.mean() - shallow_baseline) / shallow_baseline);
  }

  // Shiftable workloads are where carbon-awareness has real leverage:
  // rules can only be kept or dropped, but a washer run or an EV charge
  // can *move* to the cleanest hours of the day ("reschedule those
  // workloads in an environmental friendly manner", §V). One year of the
  // default household fleet, naive vs carbon-aware placement:
  std::printf("\n--- shiftable workloads, one year (washer / dishwasher / "
              "EV / boiler) ---\n");
  energy::CarbonProfile profile;
  const auto fleet = energy::DefaultShiftableLoads();
  double naive_co2 = 0.0, aware_co2 = 0.0, energy_kwh = 0.0;
  int unplaced = 0;
  const SimTime year_start = FromCivil(2015, 1, 1);
  for (int day = 0; day < 365; ++day) {
    const SimTime day_start = year_start + static_cast<SimTime>(day) *
                                               kSecondsPerDay;
    std::vector<double> headroom_naive(24, 6.0);
    std::vector<double> headroom_aware(24, 6.0);
    auto naive = energy::ScheduleDay(fleet, profile, day_start,
                                     energy::PlacementPolicy::kEarliest,
                                     &headroom_naive);
    auto aware = energy::ScheduleDay(fleet, profile, day_start,
                                     energy::PlacementPolicy::kCarbonAware,
                                     &headroom_aware);
    CheckOk(naive.status());
    CheckOk(aware.status());
    naive_co2 += energy::TotalCo2G(*naive);
    aware_co2 += energy::TotalCo2G(*aware);
    for (const energy::Placement& p : *aware) {
      energy_kwh += p.energy_kwh;
      if (p.start_hour < 0) ++unplaced;
    }
  }
  std::printf("%-14s %14s %16s\n", "placement", "CO2 [kg]", "vs naive");
  std::printf("%-14s %14s %16s\n", "earliest",
              report.Scalar("shiftable", "earliest", "co2_kg",
                            naive_co2 / 1000.0, 1)
                  .c_str(),
              "--");
  std::printf("%-14s %14s %14.1f%%\n", "carbon-aware",
              report.Scalar("shiftable", "carbon-aware", "co2_kg",
                            aware_co2 / 1000.0, 1)
                  .c_str(),
              100.0 * (aware_co2 - naive_co2) / naive_co2);
  std::printf("(%.0f kWh of shiftable demand served, %d runs unplaced)\n",
              energy_kwh, unplaced);

  std::printf("\nexpected shape: CO2 falls with alpha at nearly constant "
              "F_E; F_CE rises mildly. The tilt effect is structurally "
              "small (rules can be kept or dropped, not moved); the real "
              "carbon leverage is in rescheduling shiftable workloads, "
              "where the same energy emits 10-25%% less.\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
