// Ablation A4 — Planning-slot granularity (Algorithm 1's time-granularity
// input t: "hourly, daily, monthly, yearly preference").
//
// One adopt/drop decision per slot, priced at the slot's mean ambient
// conditions; execution and accounting stay hourly against ground truth.
// Sweeps the slot width on the flat dataset: coarser slots are cheaper to
// plan but less accurate — and at daily width the mean-ambient estimate
// hides the HVAC deadband entirely, so the planner adopts everything and
// busts the budget. This quantifies why the paper's running examples use
// hourly E_h slots.

#include <cstdio>

#include "bench_util.h"

namespace imcf {
namespace bench {
namespace {

void Run() {
  PrintHeader("Ablation A4 — Planning granularity (EP, slot width sweep)",
              "Algorithm 1 input t (time granularity)");
  Report report("ablation_granularity");

  const trace::DatasetSpec spec = trace::FlatSpec();
  std::printf("\n--- dataset: flat, budget %.0f kWh ---\n", spec.budget_kwh);
  std::printf("%-10s %14s %20s %14s %10s\n", "slot [h]", "F_CE [%]",
              "F_E [kWh]", "F_T [s]", "inBudget");
  for (int span : {1, 3, 6, 12, 24}) {
    sim::SimulationOptions options;
    options.spec = spec;
    options.slot_hours = span;
    sim::Simulator simulator(options);
    CheckOk(simulator.Prepare());
    const sim::RepeatedReport cell =
        RunCell(simulator, sim::Policy::kEnergyPlanner);
    const bool within =
        cell.fe_kwh.mean() <= simulator.total_budget_kwh() + 1e-6;
    const std::string row = "slot_hours=" + std::to_string(span);
    std::printf(
        "%-10d %14s %20s %14s %10s\n", span,
        report.Cell(spec.name, row, "fce_pct", cell.fce_pct).c_str(),
        report.Cell(spec.name, row, "fe_kwh", cell.fe_kwh, 1).c_str(),
        report.Cell(spec.name, row, "ft_seconds", cell.ft_seconds, 3).c_str(),
        within ? "yes" : "NO");
  }

  std::printf("\nexpected shape: hourly-to-12h slots stay within budget at "
              "similar F_CE with falling planner cost; 24h slots misprice "
              "the HVAC deadband (mean gap looks free), adopt everything "
              "and bust the budget.\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
