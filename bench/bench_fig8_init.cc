// Fig. 8 — Initialization Evaluation: F_CE and F_E of the Energy Planner
// under the three initial-solution strategies (all-1s / random / all-0s).
//
// Paper reference: moving from all-1s to random to all-0s *increases* F_CE
// (flat: ~2.6% → ~3.1%) and *decreases* F_E (flat: ~9500 → ~8600 kWh) —
// starting with everything deactivated requires more iterations to climb
// to the optimum, so the planner ends lower on both objectives.

#include <cstdio>

#include "bench_util.h"

namespace imcf {
namespace bench {
namespace {

void Run() {
  PrintHeader(
      "Fig. 8 — Initialization Evaluation (EP, all-1s / random / all-0s)",
      "IMCF paper §III-D, Figure 8");
  Report report("fig8_init");

  const core::InitStrategy strategies[] = {core::InitStrategy::kAllOnes,
                                           core::InitStrategy::kRandom,
                                           core::InitStrategy::kAllZeros};
  for (const trace::DatasetSpec& spec : BenchSpecs()) {
    sim::SimulationOptions options;
    options.spec = spec;
    // Modest iteration budget: with unlimited search every start converges
    // to the same solution and the figure flattens.
    options.ep.tau_max =
        spec.units > 10 ? 700 : (spec.units > 1 ? 12 : 4);
    sim::Simulator simulator(options);
    CheckOk(simulator.Prepare());

    std::printf("\n--- dataset: %-5s (tau_max = %d) ---\n", spec.name.c_str(),
                options.ep.tau_max);
    std::printf("%-8s %16s %22s\n", "init", "F_CE [%]", "F_E [kWh]");
    for (core::InitStrategy strategy : strategies) {
      core::EpOptions ep = options.ep;
      ep.init = strategy;
      simulator.set_ep_options(ep);
      const sim::RepeatedReport cell =
          RunCell(simulator, sim::Policy::kEnergyPlanner);
      const std::string row = core::InitStrategyName(strategy);
      std::printf("%-8s %16s %22s\n", row.c_str(),
                  report.Cell(spec.name, row, "fce_pct", cell.fce_pct).c_str(),
                  report.Cell(spec.name, row, "fe_kwh", cell.fe_kwh, 1)
                      .c_str());
    }
  }

  std::printf("\npaper reference: all-1s -> random -> all-0s raises F_CE "
              "(flat ~2.6->3.1%%) and lowers F_E (flat ~9500->8600 kWh).\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
