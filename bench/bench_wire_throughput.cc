// Wire front-door throughput: framed query traffic over loopback TCP.
//
// Boots a FleetService behind the epoll WireServer on an ephemeral port,
// then drives it with {1, 4, 16, 64} concurrent client connections, each
// pipelining a window of query requests (the cheap deterministic kind —
// this measures the transport, not the planner). Reports frames/sec
// through the single epoll thread and the p50/p99 request round-trip
// time, merged across connections.
//
// Every reply is checked: a non-kOk outcome or a shed (impossible at the
// configured queue capacity) fails the bench. Timing columns are
// measurements; the frames_total column is exact.

#include <algorithm>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/scoped_timer.h"
#include "serve/fleet_service.h"
#include "trace/dataset.h"

namespace imcf {
namespace {

constexpr int kTenants = 8;
constexpr int kWindow = 32;  ///< pipelined requests in flight per connection

serve::Request QueryReq(int tenant_index) {
  serve::Request request;
  request.tenant = StrFormat("home%03d", tenant_index);
  request.kind = serve::RequestKind::kQuery;
  request.issue_time = trace::EvaluationStart();
  return request;
}

double PercentileUs(std::vector<int64_t>& rtt_ns, double pct) {
  if (rtt_ns.empty()) return 0.0;
  std::sort(rtt_ns.begin(), rtt_ns.end());
  const size_t rank = std::min(
      rtt_ns.size() - 1,
      static_cast<size_t>(pct / 100.0 * static_cast<double>(rtt_ns.size())));
  return static_cast<double>(rtt_ns[rank]) / 1e3;
}

struct SweepResult {
  double frames_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  int64_t frames = 0;
};

/// One client connection's closed-window pipelined load loop. Returns the
/// observed per-request round trips; dies on any non-kOk reply.
void DriveConnection(net::WireClient* client, int tenant_index, int frames,
                     std::vector<int64_t>* rtt_ns) {
  rtt_ns->reserve(static_cast<size_t>(frames));
  std::map<uint64_t, int64_t> sent_at_ns;
  int sent = 0;
  int received = 0;
  while (received < frames) {
    while (sent < frames && sent - received < kWindow) {
      auto id = client->Send(QueryReq(tenant_index));
      bench::CheckOk(id.status());
      sent_at_ns[*id] = obs::ScopedTimer::NowNs();
      ++sent;
    }
    auto reply = client->Receive();
    bench::CheckOk(reply.status());
    const auto it = sent_at_ns.find(reply->client_id);
    if (it == sent_at_ns.end() ||
        reply->response.outcome != serve::ServeOutcome::kOk) {
      std::fprintf(stderr, "bad reply: id=%llu outcome=%s\n",
                   static_cast<unsigned long long>(reply->client_id),
                   serve::ServeOutcomeName(reply->response.outcome));
      std::exit(1);
    }
    rtt_ns->push_back(obs::ScopedTimer::NowNs() - it->second);
    sent_at_ns.erase(it);
    ++received;
  }
}

SweepResult RunSweep(int port, int connections, int frames_per_connection) {
  // Connect everyone before the clock starts: this measures serving, not
  // handshakes.
  std::vector<std::unique_ptr<net::WireClient>> clients;
  for (int i = 0; i < connections; ++i) {
    auto client = net::WireClient::Connect(port);
    bench::CheckOk(client.status());
    clients.push_back(std::move(*client));
  }

  std::vector<std::vector<int64_t>> rtts(
      static_cast<size_t>(connections));
  const int64_t t0 = obs::ScopedTimer::NowNs();
  std::vector<std::thread> threads;
  for (int i = 0; i < connections; ++i) {
    threads.emplace_back(DriveConnection, clients[i].get(), i % kTenants,
                         frames_per_connection, &rtts[i]);
  }
  for (std::thread& t : threads) t.join();
  const int64_t elapsed_ns = obs::ScopedTimer::NowNs() - t0;

  SweepResult result;
  std::vector<int64_t> merged;
  for (std::vector<int64_t>& rtt : rtts) {
    result.frames += static_cast<int64_t>(rtt.size());
    merged.insert(merged.end(), rtt.begin(), rtt.end());
  }
  result.frames_per_sec = static_cast<double>(result.frames) /
                          (static_cast<double>(elapsed_ns) / 1e9);
  result.p50_us = PercentileUs(merged, 50.0);
  result.p99_us = PercentileUs(merged, 99.0);
  return result;
}

}  // namespace
}  // namespace imcf

int main() {
  using namespace imcf;
  bench::PrintHeader("Wire front-door throughput",
                     "network front door (ISSUE 10); not a paper figure");
  bench::Report report("wire_throughput");

  serve::FleetOptions options;
  options.shards = 8;
  // Far above the worst-case in-flight load (64 conns x 32 window): the
  // bench measures transport throughput, never admission shedding.
  options.queue_capacity = 16384;
  auto service = serve::FleetService::Create(options);
  bench::CheckOk(service.status());
  for (int i = 0; i < kTenants; ++i) {
    serve::TenantConfig config;
    config.id = StrFormat("home%03d", i);
    config.hours = 24;
    bench::CheckOk((*service)->AddTenant(config));
  }

  net::WireServerOptions server_options;
  server_options.epoll_wait_ms = 1;  // latency bench: tight drain cadence
  auto server = net::WireServer::Start(service->get(), server_options);
  bench::CheckOk(server.status());

  const int frames_per_connection = bench::QuickMode() ? 400 : 2000;
  const std::vector<int> connection_counts = {1, 4, 16, 64};

  std::printf("%-18s %14s %10s %10s %12s\n", "cell", "frames/sec", "p50 us",
              "p99 us", "frames");
  for (int connections : connection_counts) {
    const SweepResult sweep =
        RunSweep((*server)->port(), connections, frames_per_connection);
    const std::string row = StrFormat("connections=%d", connections);
    std::printf(
        "%-18s %14s %10s %10s %12s\n", row.c_str(),
        report.Scalar("throughput", row, "frames_per_sec",
                      sweep.frames_per_sec, 0)
            .c_str(),
        report.Scalar("latency", row, "p50_us", sweep.p50_us, 1).c_str(),
        report.Scalar("latency", row, "p99_us", sweep.p99_us, 1).c_str(),
        report.Scalar("volume", row, "frames_total",
                      static_cast<double>(sweep.frames), 0)
            .c_str());
  }

  server.value()->Stop();
  report.WriteIfRequested();
  return 0;
}
