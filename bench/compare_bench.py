#!/usr/bin/env python3
"""Compare a benchmark run against a committed baseline and flag regressions.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--threshold 0.15]

Understands two formats, auto-detected per file:
  * google-benchmark --benchmark_out JSON ({"benchmarks": [...]}): entries
    are keyed by "name" and compared on "real_time". When a run contains
    repetition aggregates, the "_median" entries are used and the raw
    repetitions ignored (medians resist machine-noise outliers).
  * the repo's own bench Report ({"cells": [...]}, see bench_util.h):
    entries are keyed by "row"/"col" and compared on "value".

An entry regresses when current > baseline * (1 + threshold); for
throughput-like cells (units containing "/s" or named *plans_per_sec*)
the comparison direction flips. Deterministic count cells — metrics named
*_ok, *_bytes or *_evals, e.g. the fleet bench's per-tenant cost columns
(tenant_cost/*/arena_bytes, flip_evals, plans_ok) — are compared EXACTLY:
they are integer sums guaranteed bit-identical across runs and worker
counts, so any difference is a determinism break, not drift. Entries
present on only one side are reported but never fail the run (benchmarks
come and go). Exit status is 1 when any entry regresses beyond the
threshold, else 0.

Baselines are committed from the maintainers' reference machine, so on
other hardware (CI runners especially) the comparison measures drift, not
truth — the CI step that runs this is advisory for exactly that reason.
"""

import argparse
import json
import sys


EXACT_METRIC_SUFFIXES = ("_ok", "_bytes", "_evals")


def is_exact_metric(metric):
    """Deterministic count columns: compared for equality, not drift."""
    return metric.endswith(EXACT_METRIC_SUFFIXES)


def load_entries(path):
    """Returns ({name: (value, lower_is_better, exact)}, format_tag)."""
    with open(path) as f:
        data = json.load(f)
    entries = {}
    if "benchmarks" in data:
        rows = data["benchmarks"]
        medians = [b for b in rows if b.get("aggregate_name") == "median"]
        if medians:
            rows = medians
        for b in rows:
            if b.get("run_type") == "aggregate" and \
                    b.get("aggregate_name") != "median":
                continue
            name = b["name"]
            for suffix in ("_median",):
                if name.endswith(suffix):
                    name = name[: -len(suffix)]
            entries[name] = (float(b["real_time"]), True, False)
        return entries, "google-benchmark"
    if "cells" in data:
        for cell in data["cells"]:
            name = "%s/%s/%s" % (cell.get("section", "?"),
                                 cell.get("row", "?"),
                                 cell.get("metric", "?"))
            value = cell.get("mean")
            if value is None:
                continue
            metric = str(cell.get("metric", ""))
            lower_is_better = "per_sec" not in metric
            entries[name] = (float(value), lower_is_better,
                             is_exact_metric(metric))
        return entries, "imcf-report"
    raise ValueError("%s: neither google-benchmark nor imcf Report JSON"
                     % path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.15)")
    args = parser.parse_args()

    base, base_fmt = load_entries(args.baseline)
    cur, cur_fmt = load_entries(args.current)
    if base_fmt != cur_fmt:
        print("error: format mismatch (%s vs %s)" % (base_fmt, cur_fmt))
        return 2

    regressions = []
    improvements = []
    width = max((len(n) for n in base), default=10)
    print("%-*s %14s %14s %9s" % (width, "benchmark", "baseline",
                                  "current", "ratio"))
    for name in sorted(base):
        if name not in cur:
            print("%-*s %14.6g %14s %9s" % (width, name, base[name][0],
                                            "(gone)", "-"))
            continue
        base_value, lower_is_better, exact = base[name]
        cur_value = cur[name][0]
        if base_value == 0:
            ratio = float("inf") if cur_value else 1.0
        else:
            ratio = cur_value / base_value
        if exact:
            # Deterministic columns: equal or broken, no drift allowance.
            worse = cur_value != base_value
            better = False
        else:
            worse = ratio > 1.0 + args.threshold if lower_is_better \
                else ratio < 1.0 - args.threshold
            better = ratio < 1.0 - args.threshold if lower_is_better \
                else ratio > 1.0 + args.threshold
        flag = ""
        if worse:
            flag = "  MISMATCH (exact)" if exact else "  REGRESSED"
            regressions.append(name)
        elif better:
            flag = "  improved"
            improvements.append(name)
        print("%-*s %14.6g %14.6g %8.2fx%s"
              % (width, name, base_value, cur_value, ratio, flag))
    for name in sorted(set(cur) - set(base)):
        print("%-*s %14s %14.6g %9s" % (width, name, "(new)",
                                        cur[name][0], "-"))

    print()
    print("%d compared, %d regressed (>%d%%), %d improved"
          % (len(set(base) & set(cur)), len(regressions),
             round(args.threshold * 100), len(improvements)))
    if regressions:
        print("regressions: " + ", ".join(regressions))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
