// Fault resilience — degradation under command-path fault injection.
//
// The paper's prototype actuates real devices over a real network
// ("IMCF works actually like a real network firewall"), where commands
// drop, links stall and the weather API goes out. This bench sweeps the
// injected fault rate on the command/weather path and reports how the
// planner's three metrics degrade: F_E falls (undeliverable actuations
// are never charged), F_CE rises (the missed actuations surface as
// discomfort), and the delivery counters quantify how much work the
// retry layer recovers versus gives up on.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/strings.h"
#include "fault/fault_plan.h"

namespace imcf {
namespace bench {
namespace {

void Run() {
  PrintHeader("Fault resilience — metric degradation vs injected fault rate",
              "robustness study over the §III-A pipeline");
  Report report("fault_resilience");

  const trace::DatasetSpec spec = trace::FlatSpec();
  const int reps = Repetitions();

  for (const sim::Policy policy :
       {sim::Policy::kMetaRule, sim::Policy::kEnergyPlanner}) {
    std::printf("\n--- dataset: flat, policy %s ---\n",
                sim::PolicyName(policy));
    std::printf("%-7s %14s %18s %14s %14s\n", "rate", "F_CE [%]",
                "F_E [kWh]", "failed", "recovered");
    for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
      sim::SimulationOptions options;
      options.spec = spec;
      options.start = FromCivil(2014, 1, 1);
      options.hours = (QuickMode() ? 2 : 6) * 30 * 24;
      // Pro-rate the 3-year budget onto the winter-heavy window so it
      // binds and EP actually has to plan (otherwise EP == MR).
      options.budget_kwh = spec.budget_kwh *
                           static_cast<double>(options.hours) /
                           (3.0 * 365.0 * 24.0);
      if (rate > 0.0) {
        options.fault = fault::FaultOptions::UniformRate(rate, /*seed=*/17);
      }
      sim::Simulator simulator(options);
      CheckOk(simulator.Prepare());

      RunningStat fce, fe, failed, recovered;
      for (int rep = 0; rep < reps; ++rep) {
        const auto run = simulator.Run(policy, rep);
        CheckOk(run.status());
        fce.Add(run->fce_pct);
        fe.Add(run->fe_kwh);
        failed.Add(static_cast<double>(run->commands_failed));
        // Commands the retry layer saved = issued - dropped - the clean
        // deliveries a zero-rate run would make; report the failure count
        // directly and let the drop in `failed` vs a no-retry policy
        // speak. Here: commands that needed >1 attempt are visible in the
        // obs counters embedded in the JSON report.
        recovered.Add(static_cast<double>(run->commands_issued -
                                          run->commands_dropped));
      }
      const std::string row = StrFormat("%s/rate=%.2f",
                                        sim::PolicyName(policy), rate);
      std::printf(
          "%-7.2f %14s %18s %14s %14s\n", rate,
          report.Cell("degradation", row, "fce_pct", fce).c_str(),
          report.Cell("degradation", row, "fe_kwh", fe, 1).c_str(),
          report.Cell("degradation", row, "commands_failed", failed, 0)
              .c_str(),
          report.Cell("degradation", row, "commands_delivered", recovered, 0)
              .c_str());
    }
  }

  // Retry-policy ablation: the same fault rate with retries disabled
  // (max_attempts=1) versus the default bounded backoff. The gap between
  // the two failure counts is what the retry layer buys.
  std::printf("\n--- retry ablation (rate 0.2, MR) ---\n");
  std::printf("%-22s %14s %14s %14s\n", "policy", "F_CE [%]", "F_E [kWh]",
              "failed");
  for (const int max_attempts : {1, 3, 5}) {
    sim::SimulationOptions options;
    options.spec = spec;
    options.start = FromCivil(2014, 1, 1);
    options.hours = (QuickMode() ? 2 : 6) * 30 * 24;
    options.budget_kwh = spec.budget_kwh *
                         static_cast<double>(options.hours) /
                         (3.0 * 365.0 * 24.0);
    options.fault = fault::FaultOptions::UniformRate(0.2, /*seed=*/17);
    options.retry.max_attempts = max_attempts;
    sim::Simulator simulator(options);
    CheckOk(simulator.Prepare());

    RunningStat fce, fe, failed;
    for (int rep = 0; rep < reps; ++rep) {
      const auto run = simulator.Run(sim::Policy::kMetaRule, rep);
      CheckOk(run.status());
      fce.Add(run->fce_pct);
      fe.Add(run->fe_kwh);
      failed.Add(static_cast<double>(run->commands_failed));
    }
    const std::string row = StrFormat("max_attempts=%d", max_attempts);
    std::printf(
        "%-22s %14s %14s %14s\n", row.c_str(),
        report.Cell("retry_ablation", row, "fce_pct", fce).c_str(),
        report.Cell("retry_ablation", row, "fe_kwh", fe, 1).c_str(),
        report.Cell("retry_ablation", row, "commands_failed", failed, 0)
            .c_str());
  }

  std::printf(
      "\nexpected shape: at rate 0 the columns equal the fault-free "
      "baseline bit for bit. As the rate grows, failed deliveries rise, "
      "F_E falls (undelivered commands are never charged) and F_CE "
      "climbs. More retry attempts recover more deliveries at the same "
      "rate; max_attempts=1 shows the raw fault rate unmitigated.\n");
}

}  // namespace
}  // namespace bench
}  // namespace imcf

int main() {
  imcf::bench::Run();
  return 0;
}
