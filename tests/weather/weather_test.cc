#include "weather/weather.h"

#include <gtest/gtest.h>

#include <cmath>

namespace imcf {
namespace weather {
namespace {

TEST(SeasonTest, MonthMapping) {
  EXPECT_EQ(SeasonOf(FromCivil(2014, 1, 15)), Season::kWinter);
  EXPECT_EQ(SeasonOf(FromCivil(2014, 12, 15)), Season::kWinter);
  EXPECT_EQ(SeasonOf(FromCivil(2014, 2, 28)), Season::kWinter);
  EXPECT_EQ(SeasonOf(FromCivil(2014, 3, 1)), Season::kSpring);
  EXPECT_EQ(SeasonOf(FromCivil(2014, 5, 31)), Season::kSpring);
  EXPECT_EQ(SeasonOf(FromCivil(2014, 6, 1)), Season::kSummer);
  EXPECT_EQ(SeasonOf(FromCivil(2014, 8, 31)), Season::kSummer);
  EXPECT_EQ(SeasonOf(FromCivil(2014, 9, 1)), Season::kAutumn);
  EXPECT_EQ(SeasonOf(FromCivil(2014, 11, 30)), Season::kAutumn);
}

TEST(SeasonTest, Names) {
  EXPECT_STREQ(SeasonName(Season::kWinter), "Winter");
  EXPECT_STREQ(SeasonName(Season::kSummer), "Summer");
  EXPECT_STREQ(SkyName(Sky::kSunny), "Sunny");
  EXPECT_STREQ(SkyName(Sky::kCloudy), "Cloudy");
}

TEST(SyntheticWeatherTest, DeterministicInTime) {
  SyntheticWeather w1, w2;
  const SimTime t = FromCivil(2015, 4, 10, 14);
  const WeatherSample a = w1.At(t);
  const WeatherSample b = w2.At(t);
  EXPECT_DOUBLE_EQ(a.outdoor_temp_c, b.outdoor_temp_c);
  EXPECT_EQ(a.sky, b.sky);
  EXPECT_DOUBLE_EQ(a.daylight, b.daylight);
}

TEST(SyntheticWeatherTest, SeedChangesWeather) {
  ClimateOptions opt_a, opt_b;
  opt_b.seed = opt_a.seed + 1;
  SyntheticWeather a(opt_a), b(opt_b);
  int differing = 0;
  for (int day = 0; day < 30; ++day) {
    const SimTime t = FromCivil(2015, 6, 1 + day, 12);
    if (std::fabs(a.At(t).outdoor_temp_c - b.At(t).outdoor_temp_c) > 0.01) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 20);
}

TEST(SyntheticWeatherTest, SummerWarmerThanWinter) {
  SyntheticWeather weather;
  double winter = 0.0, summer = 0.0;
  for (int day = 1; day <= 28; ++day) {
    winter += weather.At(FromCivil(2015, 1, day, 12)).outdoor_temp_c;
    summer += weather.At(FromCivil(2015, 7, day, 12)).outdoor_temp_c;
  }
  EXPECT_GT(summer / 28 - winter / 28, 10.0);
}

TEST(SyntheticWeatherTest, AfternoonWarmerThanPredawn) {
  SyntheticWeather weather;
  double afternoon = 0.0, predawn = 0.0;
  for (int day = 1; day <= 28; ++day) {
    afternoon += weather.At(FromCivil(2015, 5, day, 17)).outdoor_temp_c;
    predawn += weather.At(FromCivil(2015, 5, day, 5)).outdoor_temp_c;
  }
  EXPECT_GT(afternoon / 28 - predawn / 28, 3.0);
}

TEST(SyntheticWeatherTest, DailyMeanExcludesDiurnalSwing) {
  SyntheticWeather weather;
  // Within one day the daily-mean field stays constant while the
  // instantaneous temperature swings around it.
  const WeatherSample morning = weather.At(FromCivil(2015, 5, 10, 5));
  const WeatherSample noonish = weather.At(FromCivil(2015, 5, 10, 15));
  EXPECT_NEAR(morning.outdoor_daily_mean_c, noonish.outdoor_daily_mean_c,
              4.0);  // only the smooth day-offset interpolation moves it
  EXPECT_LT(morning.outdoor_temp_c, morning.outdoor_daily_mean_c);
  EXPECT_GT(noonish.outdoor_temp_c, noonish.outdoor_daily_mean_c);
}

TEST(SyntheticWeatherTest, DaylightZeroAtNightPositiveAtNoon) {
  SyntheticWeather weather;
  for (int day = 1; day <= 28; ++day) {
    EXPECT_DOUBLE_EQ(weather.At(FromCivil(2015, 3, day, 1)).daylight, 0.0);
    EXPECT_GT(weather.At(FromCivil(2015, 3, day, 12)).daylight, 0.1);
  }
}

TEST(SyntheticWeatherTest, DaylightBounded) {
  SyntheticWeather weather;
  for (int h = 0; h < 24; ++h) {
    const double d = weather.At(FromCivil(2015, 6, 21, h)).daylight;
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(SyntheticWeatherTest, DayLengthSeasonal) {
  ClimateOptions options;
  SyntheticWeather weather(options);
  const double june = weather.At(FromCivil(2015, 6, 21, 12)).day_length_hours;
  const double dec = weather.At(FromCivil(2015, 12, 21, 12)).day_length_hours;
  EXPECT_NEAR(june, options.max_day_length_h, 0.3);
  EXPECT_NEAR(dec, options.min_day_length_h, 0.3);
}

TEST(SyntheticWeatherTest, CloudyDaysDimmerThanSunny) {
  SyntheticWeather weather;
  double sunny_daylight = -1.0, cloudy_daylight = -1.0;
  for (int day = 1; day <= 31 && (sunny_daylight < 0 || cloudy_daylight < 0);
       ++day) {
    const WeatherSample s = weather.At(FromCivil(2015, 1, day, 12));
    if (s.sky == Sky::kSunny && sunny_daylight < 0) {
      sunny_daylight = s.daylight;
    }
    if (s.sky == Sky::kCloudy && cloudy_daylight < 0) {
      cloudy_daylight = s.daylight;
    }
  }
  ASSERT_GE(sunny_daylight, 0.0) << "no sunny January day found";
  ASSERT_GE(cloudy_daylight, 0.0) << "no cloudy January day found";
  EXPECT_GT(sunny_daylight, cloudy_daylight * 1.5);
}

TEST(SyntheticWeatherTest, CloudProbabilityRespondsToSeason) {
  ClimateOptions options;
  options.cloudy_winter_prob = 0.9;
  options.cloudy_summer_prob = 0.05;
  SyntheticWeather weather(options);
  int cloudy_winter = 0, cloudy_summer = 0;
  for (int day = 1; day <= 28; ++day) {
    if (weather.At(FromCivil(2015, 1, day, 12)).sky == Sky::kCloudy) {
      ++cloudy_winter;
    }
    if (weather.At(FromCivil(2015, 7, day, 12)).sky == Sky::kCloudy) {
      ++cloudy_summer;
    }
  }
  EXPECT_GT(cloudy_winter, 18);
  EXPECT_LT(cloudy_summer, 8);
}

TEST(SyntheticWeatherTest, SkyConstantWithinADay) {
  SyntheticWeather weather;
  for (int day = 1; day <= 10; ++day) {
    const Sky at_dawn = weather.At(FromCivil(2015, 9, day, 6)).sky;
    for (int h = 7; h < 24; h += 4) {
      EXPECT_EQ(weather.At(FromCivil(2015, 9, day, h)).sky, at_dawn);
    }
  }
}

TEST(SyntheticWeatherTest, TemperatureContinuousAcrossMidnight) {
  SyntheticWeather weather;
  // The per-day offset is interpolated; the only midnight discontinuity is
  // the sky (cloud-damp) transition, bounded by 0.4 x the diurnal term.
  for (int day = 1; day <= 27; ++day) {
    const double before =
        weather.At(FromCivil(2015, 10, day, 23, 59)).outdoor_temp_c;
    const double after =
        weather.At(FromCivil(2015, 10, day + 1, 0, 1)).outdoor_temp_c;
    EXPECT_LT(std::fabs(after - before), 1.2)
        << "midnight jump on day " << day;
  }
}

// The annual phase is a function of YearFraction(t), which divides by the
// actual year length — so the sinusoids close exactly at Dec 31 -> Jan 1
// midnight. The old integer day-of-year phase jumped here (doy 365 -> 0
// against a 365.25 denominator) by ~0.5 C and ~2 minutes of day length.
TEST(SyntheticWeatherTest, AnnualPhaseContinuousAcrossNewYear) {
  SyntheticWeather weather;
  for (int year : {2014, 2015, 2016, 2017}) {  // 2016 is a leap year
    const double before =
        weather.At(FromCivil(year, 12, 31, 23, 59)).outdoor_daily_mean_c;
    const double after =
        weather.At(FromCivil(year + 1, 1, 1, 0, 1)).outdoor_daily_mean_c;
    // Two minutes apart: only the smooth offset interpolation moves the
    // daily mean, by a sliver.
    EXPECT_NEAR(after, before, 0.1) << "new year " << year + 1;
  }
}

TEST(SyntheticWeatherTest, DayLengthContinuousAcrossNewYear) {
  SyntheticWeather weather;
  for (int year : {2015, 2016}) {
    const double before =
        weather.At(FromCivil(year, 12, 31, 23, 59)).day_length_hours;
    const double after =
        weather.At(FromCivil(year + 1, 1, 1, 0, 1)).day_length_hours;
    EXPECT_NEAR(after, before, 0.01) << "new year " << year + 1;
  }
}

TEST(SyntheticWeatherTest, LeapDayIsOrdinaryWinter) {
  SyntheticWeather weather;
  const WeatherSample leap = weather.At(FromCivil(2016, 2, 29, 12));
  EXPECT_EQ(leap.season, Season::kWinter);
  EXPECT_TRUE(std::isfinite(leap.outdoor_temp_c));
  EXPECT_GT(leap.outdoor_temp_c, -25.0);
  EXPECT_LT(leap.outdoor_temp_c, 20.0);
  // The phase walks smoothly through the inserted day on both sides.
  const double into =
      weather.At(FromCivil(2016, 2, 28, 23, 59)).outdoor_daily_mean_c;
  const double on =
      weather.At(FromCivil(2016, 2, 29, 0, 1)).outdoor_daily_mean_c;
  const double out =
      weather.At(FromCivil(2016, 2, 29, 23, 59)).outdoor_daily_mean_c;
  const double past =
      weather.At(FromCivil(2016, 3, 1, 0, 1)).outdoor_daily_mean_c;
  EXPECT_NEAR(on, into, 0.1);
  EXPECT_NEAR(past, out, 0.1);
}

class WeatherRangeSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeatherRangeSweep, TemperaturesPhysicallyPlausible) {
  SyntheticWeather weather;
  const int month = GetParam();
  for (int day = 1; day <= DaysInMonth(2015, month); ++day) {
    for (int h = 0; h < 24; h += 3) {
      const double t =
          weather.At(FromCivil(2015, month, day, h)).outdoor_temp_c;
      EXPECT_GT(t, -25.0);
      EXPECT_LT(t, 50.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMonths, WeatherRangeSweep,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace weather
}  // namespace imcf
