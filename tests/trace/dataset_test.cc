#include "trace/dataset.h"

#include <gtest/gtest.h>

namespace imcf {
namespace trace {
namespace {

TEST(DatasetSpecTest, PaperBudgets) {
  // Table II "Set kWh Limit" rows.
  EXPECT_DOUBLE_EQ(FlatSpec().budget_kwh, 11000.0);
  EXPECT_DOUBLE_EQ(HouseSpec().budget_kwh, 25500.0);
  EXPECT_DOUBLE_EQ(DormsSpec().budget_kwh, 480000.0);
}

TEST(DatasetSpecTest, PaperScales) {
  EXPECT_EQ(FlatSpec().units, 1);
  EXPECT_EQ(HouseSpec().units, 4);       // flat x4
  EXPECT_EQ(DormsSpec().units, 100);     // 50 apartments x 2 split units
  EXPECT_DOUBLE_EQ(FlatSpec().area_m2, 50.0);
  EXPECT_DOUBLE_EQ(HouseSpec().area_m2, 200.0);
  EXPECT_DOUBLE_EQ(DormsSpec().area_m2, 2000.0);
}

TEST(DatasetSpecTest, VariationGrowsWithScale) {
  EXPECT_DOUBLE_EQ(FlatSpec().mrt_variation, 0.0);
  EXPECT_GT(HouseSpec().mrt_variation, 0.0);
  EXPECT_GT(DormsSpec().mrt_variation, HouseSpec().mrt_variation);
}

TEST(DatasetSpecTest, SmallerZonesDrawLessPower) {
  EXPECT_GT(FlatSpec().hvac.kw_per_degree, HouseSpec().hvac.kw_per_degree);
  EXPECT_GT(HouseSpec().hvac.kw_per_degree, DormsSpec().hvac.kw_per_degree);
  EXPECT_GT(FlatSpec().light.max_power_kw, DormsSpec().light.max_power_kw);
}

TEST(DatasetSpecTest, AllSpecsOrderMatchesPaper) {
  const auto specs = AllSpecs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "flat");
  EXPECT_EQ(specs[1].name, "house");
  EXPECT_EQ(specs[2].name, "dorms");
}

TEST(EvaluationPeriodTest, ThreeFullYears) {
  EXPECT_EQ(EvaluationStart(), FromCivil(2014, 1, 1));
  // 2014 + 2015 + 2016 (leap): 365 + 365 + 366 days.
  EXPECT_EQ(EvaluationHours(), (365 + 365 + 366) * 24);
}

TEST(HourlyAmbientTest, IndexingAndTimes) {
  HourlyAmbient amb(FromCivil(2014, 1, 1), 48, 3);
  EXPECT_EQ(amb.hours(), 48);
  EXPECT_EQ(amb.units(), 3);
  EXPECT_EQ(amb.TimeOfHour(0), FromCivil(2014, 1, 1));
  EXPECT_EQ(amb.TimeOfHour(25), FromCivil(2014, 1, 2, 1));
  amb.set_temp(2, 47, 21.5f);
  amb.set_light(2, 47, 55.0f);
  EXPECT_FLOAT_EQ(amb.temp(2, 47), 21.5f);
  EXPECT_FLOAT_EQ(amb.light(2, 47), 55.0f);
  // Other cells untouched.
  EXPECT_FLOAT_EQ(amb.temp(0, 0), 0.0f);
}

TEST(BuildHourlyAmbientTest, CoversAllUnits) {
  DatasetSpec spec = HouseSpec();
  const HourlyAmbient amb = BuildHourlyAmbient(spec, FromCivil(2014, 7, 1),
                                               24);
  for (int u = 0; u < spec.units; ++u) {
    // July midday warmer than pre-dawn, brighter too.
    EXPECT_GT(amb.temp(u, 14), amb.temp(u, 4));
    EXPECT_GT(amb.light(u, 13), amb.light(u, 2) + 5.0f);
  }
}

TEST(BuildHourlyAmbientTest, UnitsAreDistinctButCorrelated) {
  DatasetSpec spec = HouseSpec();
  const HourlyAmbient amb = BuildHourlyAmbient(spec, FromCivil(2014, 7, 1),
                                               24);
  int different = 0;
  for (int h = 0; h < 24; ++h) {
    if (amb.temp(0, h) != amb.temp(1, h)) ++different;
    // All units share the same weather: within a few degrees.
    EXPECT_NEAR(amb.temp(0, h), amb.temp(1, h), 4.0);
  }
  EXPECT_GT(different, 20);
}

TEST(BuildHourlyAmbientTest, DeterministicPerSpec) {
  const HourlyAmbient a =
      BuildHourlyAmbient(FlatSpec(), FromCivil(2014, 2, 1), 24);
  const HourlyAmbient b =
      BuildHourlyAmbient(FlatSpec(), FromCivil(2014, 2, 1), 24);
  for (int h = 0; h < 24; ++h) {
    EXPECT_FLOAT_EQ(a.temp(0, h), b.temp(0, h));
    EXPECT_FLOAT_EQ(a.light(0, h), b.light(0, h));
  }
}

TEST(BuildHourlyAmbientTest, CalibratedSeasonalShape) {
  // The flat's January must be much colder indoors than its April — this
  // is the ECP-shape calibration the evaluation depends on (DESIGN.md §1).
  DatasetSpec spec = FlatSpec();
  const HourlyAmbient jan =
      BuildHourlyAmbient(spec, FromCivil(2014, 1, 10), 24 * 7);
  const HourlyAmbient apr =
      BuildHourlyAmbient(spec, FromCivil(2014, 4, 10), 24 * 7);
  double jan_mean = 0.0, apr_mean = 0.0;
  for (int h = 0; h < 24 * 7; ++h) {
    jan_mean += jan.temp(0, h);
    apr_mean += apr.temp(0, h);
  }
  jan_mean /= 24 * 7;
  apr_mean /= 24 * 7;
  EXPECT_LT(jan_mean, 17.0);
  EXPECT_GT(apr_mean, 21.0);
  EXPECT_LT(apr_mean, 26.0);
}

}  // namespace
}  // namespace trace
}  // namespace imcf
