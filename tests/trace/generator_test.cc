#include "trace/generator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

namespace imcf {
namespace trace {
namespace {

GeneratorOptions SmallOptions() {
  GeneratorOptions options;
  options.start = FromCivil(2014, 3, 1);
  options.end = FromCivil(2014, 3, 2);  // one day
  options.step_seconds = 60;
  options.units = 2;
  options.seed = 9;
  return options;
}

TEST(GeneratorTest, EmitsExpectedVolume) {
  CasasTraceGenerator gen(SmallOptions());
  const auto readings = gen.GenerateAll();
  ASSERT_TRUE(readings.ok());
  // 1440 steps * 2 units * 2 periodic sensors, plus sparse door events.
  const int64_t periodic = 1440 * 2 * 2;
  EXPECT_GE(static_cast<int64_t>(readings->size()), periodic);
  EXPECT_LT(static_cast<int64_t>(readings->size()), periodic + 200);
}

TEST(GeneratorTest, TimeOrdered) {
  CasasTraceGenerator gen(SmallOptions());
  const auto readings = gen.GenerateAll();
  ASSERT_TRUE(readings.ok());
  for (size_t i = 1; i < readings->size(); ++i) {
    EXPECT_LE((*readings)[i - 1].time, (*readings)[i].time);
  }
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  CasasTraceGenerator a(SmallOptions()), b(SmallOptions());
  const auto ra = a.GenerateAll();
  const auto rb = b.GenerateAll();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, *rb);
}

TEST(GeneratorTest, CoversAllUnitsAndKinds) {
  CasasTraceGenerator gen(SmallOptions());
  const auto readings = gen.GenerateAll();
  ASSERT_TRUE(readings.ok());
  std::map<uint32_t, int> per_sensor;
  for (const Reading& r : *readings) ++per_sensor[r.sensor_id];
  for (int u = 0; u < 2; ++u) {
    EXPECT_EQ(per_sensor[MakeSensorId(u, SensorKind::kTemperature)], 1440);
    EXPECT_EQ(per_sensor[MakeSensorId(u, SensorKind::kLight)], 1440);
  }
}

TEST(GeneratorTest, DoorReadingsAreEdgeTriggered) {
  GeneratorOptions options = SmallOptions();
  options.end = FromCivil(2014, 3, 8);  // a week for more door events
  CasasTraceGenerator gen(options);
  const auto readings = gen.GenerateAll();
  ASSERT_TRUE(readings.ok());
  std::map<uint32_t, float> last_state;
  int door_events = 0;
  for (const Reading& r : *readings) {
    if (r.kind != SensorKind::kDoor) continue;
    ++door_events;
    EXPECT_TRUE(r.value == 0.0f || r.value == 1.0f);
    auto it = last_state.find(r.sensor_id);
    if (it != last_state.end()) {
      EXPECT_NE(it->second, r.value) << "door state did not toggle";
    } else {
      EXPECT_EQ(r.value, 1.0f) << "first door event must be an opening";
    }
    last_state[r.sensor_id] = r.value;
  }
  EXPECT_GT(door_events, 0);
}

TEST(GeneratorTest, ValuesInPhysicalRange) {
  CasasTraceGenerator gen(SmallOptions());
  const auto readings = gen.GenerateAll();
  ASSERT_TRUE(readings.ok());
  for (const Reading& r : *readings) {
    if (r.kind == SensorKind::kTemperature) {
      EXPECT_GT(r.value, -10.0f);
      EXPECT_LT(r.value, 45.0f);
    } else if (r.kind == SensorKind::kLight) {
      EXPECT_GE(r.value, 0.0f);
      EXPECT_LE(r.value, 100.0f);
    }
  }
}

TEST(GeneratorTest, RejectsEmptySpan) {
  GeneratorOptions options = SmallOptions();
  options.end = options.start;
  CasasTraceGenerator gen(options);
  EXPECT_TRUE(gen.GenerateAll().status().IsInvalidArgument());
}

TEST(GeneratorTest, RejectsBadStep) {
  GeneratorOptions options = SmallOptions();
  options.step_seconds = 0;
  CasasTraceGenerator gen(options);
  EXPECT_TRUE(gen.GenerateAll().status().IsInvalidArgument());
}

TEST(GeneratorTest, SinkErrorStopsGeneration) {
  CasasTraceGenerator gen(SmallOptions());
  int count = 0;
  const auto result = gen.Generate([&count](const Reading&) {
    if (++count >= 10) return Status::IOError("disk full");
    return Status::Ok();
  });
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_EQ(count, 10);
}

TEST(GeneratorTest, WritesReadableTraceFile) {
  const std::string path = ::testing::TempDir() + "/imcf_gen_trace.trc";
  std::remove(path.c_str());
  CasasTraceGenerator gen(SmallOptions());
  const auto count = gen.WriteTraceFile(path);
  ASSERT_TRUE(count.ok());
  const auto records = TraceFileReader::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(static_cast<int64_t>(records->size()), *count);
  const auto direct = gen.GenerateAll();
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ(FromRecord((*records)[i]), (*direct)[i]);
  }
  std::remove(path.c_str());
}

TEST(SensorIdTest, RoundTrips) {
  for (int unit : {0, 1, 7, 99}) {
    for (SensorKind kind : {SensorKind::kTemperature, SensorKind::kLight,
                            SensorKind::kDoor}) {
      const uint32_t id = MakeSensorId(unit, kind);
      EXPECT_EQ(SensorUnit(id), unit);
      EXPECT_EQ(SensorKindOf(id), kind);
    }
  }
}

TEST(ReplicateAndMixTest, MultipliesVolumeAndRemapsUnits) {
  CasasTraceGenerator gen(SmallOptions());
  const auto base = gen.GenerateAll();
  ASSERT_TRUE(base.ok());
  const auto mixed = ReplicateAndMix(*base, 4, 77);
  EXPECT_EQ(mixed.size(), base->size() * 4);
  // Units 0..7 present (2 original units x 4 copies), densely remapped.
  std::map<int, int> per_unit;
  for (const Reading& r : mixed) ++per_unit[SensorUnit(r.sensor_id)];
  EXPECT_EQ(per_unit.size(), 8u);
  for (const auto& [unit, count] : per_unit) {
    EXPECT_GE(unit, 0);
    EXPECT_LT(unit, 8);
    EXPECT_GT(count, 2000);
  }
}

TEST(ReplicateAndMixTest, OutputTimeOrdered) {
  CasasTraceGenerator gen(SmallOptions());
  const auto base = gen.GenerateAll();
  const auto mixed = ReplicateAndMix(*base, 3, 5);
  for (size_t i = 1; i < mixed.size(); ++i) {
    EXPECT_LE(mixed[i - 1].time, mixed[i].time);
  }
}

TEST(ReplicateAndMixTest, DoorStatesStayBinary) {
  CasasTraceGenerator gen(SmallOptions());
  const auto base = gen.GenerateAll();
  const auto mixed = ReplicateAndMix(*base, 4, 5);
  for (const Reading& r : mixed) {
    if (r.kind == SensorKind::kDoor) {
      EXPECT_TRUE(r.value == 0.0f || r.value == 1.0f);
    }
  }
}

TEST(ReplicateAndMixTest, CopiesAreJittered) {
  CasasTraceGenerator gen(SmallOptions());
  const auto base = gen.GenerateAll();
  const auto mixed = ReplicateAndMix(*base, 2, 5);
  // Find the replica readings of unit 0 (= unit 2 in copy 1) and check the
  // values differ from the originals (mixing, not pure duplication).
  std::map<SimTime, float> original_temps;
  for (const Reading& r : *base) {
    if (r.sensor_id == MakeSensorId(0, SensorKind::kTemperature)) {
      original_temps[r.time] = r.value;
    }
  }
  int jittered = 0, compared = 0;
  for (const Reading& r : mixed) {
    if (SensorUnit(r.sensor_id) == 2 && r.kind == SensorKind::kTemperature) {
      ++compared;
      // Times are jittered by up to 9s, so align to the base minute.
      const SimTime minute = (r.time / 60) * 60;
      auto it = original_temps.find(minute);
      if (it != original_temps.end() && std::abs(it->second - r.value) > 1e-4) {
        ++jittered;
      }
    }
  }
  EXPECT_GT(compared, 1000);
  EXPECT_GT(jittered, compared / 2);
}

}  // namespace
}  // namespace trace
}  // namespace imcf
