#include "trace/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "trace/generator.h"

namespace imcf {
namespace trace {
namespace {

TEST(AggregatorTest, MeansPerHour) {
  const SimTime start = FromCivil(2014, 6, 1);
  HourlyAggregator agg(start, 2, 1);
  // Hour 0: temps 20 and 22 -> mean 21; hour 1: light 40.
  agg.Add({start + 100, MakeSensorId(0, SensorKind::kTemperature),
           SensorKind::kTemperature, 20.0f});
  agg.Add({start + 200, MakeSensorId(0, SensorKind::kTemperature),
           SensorKind::kTemperature, 22.0f});
  agg.Add({start + kSecondsPerHour + 5,
           MakeSensorId(0, SensorKind::kLight), SensorKind::kLight, 40.0f});
  const HourlyAmbient out = agg.Finish();
  EXPECT_FLOAT_EQ(out.temp(0, 0), 21.0f);
  EXPECT_FLOAT_EQ(out.light(0, 1), 40.0f);
  EXPECT_EQ(agg.accepted(), 3);
}

TEST(AggregatorTest, GapsInheritPreviousHour) {
  const SimTime start = FromCivil(2014, 6, 1);
  HourlyAggregator agg(start, 4, 1);
  agg.Add({start + 10, MakeSensorId(0, SensorKind::kTemperature),
           SensorKind::kTemperature, 18.0f});
  // Hours 1..3 have no readings.
  const HourlyAmbient out = agg.Finish();
  for (int h = 0; h < 4; ++h) {
    EXPECT_FLOAT_EQ(out.temp(0, h), 18.0f) << "hour " << h;
  }
}

TEST(AggregatorTest, LeadingGapsSeededFromFirstObservation) {
  const SimTime start = FromCivil(2014, 6, 1);
  HourlyAggregator agg(start, 3, 1);
  agg.Add({start + 2 * kSecondsPerHour + 10,
           MakeSensorId(0, SensorKind::kTemperature),
           SensorKind::kTemperature, 25.0f});
  const HourlyAmbient out = agg.Finish();
  EXPECT_FLOAT_EQ(out.temp(0, 0), 25.0f);
  EXPECT_FLOAT_EQ(out.temp(0, 1), 25.0f);
  EXPECT_FLOAT_EQ(out.temp(0, 2), 25.0f);
}

TEST(AggregatorTest, StragglersAreSkippedNotFatal) {
  const SimTime start = FromCivil(2014, 6, 1);
  HourlyAggregator agg(start, 1, 1);
  agg.Add({start - 100, MakeSensorId(0, SensorKind::kTemperature),
           SensorKind::kTemperature, 20.0f});  // before window
  agg.Add({start + kSecondsPerHour + 100,
           MakeSensorId(0, SensorKind::kTemperature),
           SensorKind::kTemperature, 20.0f});  // after window
  agg.Add({start + 100, MakeSensorId(9, SensorKind::kTemperature),
           SensorKind::kTemperature, 20.0f});  // unknown unit
  EXPECT_EQ(agg.accepted(), 0);
  EXPECT_EQ(agg.skipped(), 3);
}

TEST(AggregatorTest, DoorEventsDoNotPollute) {
  const SimTime start = FromCivil(2014, 6, 1);
  HourlyAggregator agg(start, 1, 1);
  agg.Add({start + 100, MakeSensorId(0, SensorKind::kDoor), SensorKind::kDoor,
           1.0f});
  EXPECT_EQ(agg.accepted(), 0);
  const HourlyAmbient out = agg.Finish();
  EXPECT_FLOAT_EQ(out.temp(0, 0), 0.0f);
}

// Property: aggregating a generated minute stream reproduces the underlying
// ambient model at hourly resolution.
TEST(AggregatorTest, AgreementWithDirectModelSampling) {
  GeneratorOptions options;
  options.start = FromCivil(2014, 2, 10);
  options.end = FromCivil(2014, 2, 12);
  options.step_seconds = 60;
  options.units = 2;
  options.seed = 31;
  CasasTraceGenerator gen(options);

  const int hours = 48;
  HourlyAggregator agg(options.start, hours, options.units);
  const auto count = gen.Generate([&agg](const Reading& r) {
    agg.Add(r);
    return Status::Ok();
  });
  ASSERT_TRUE(count.ok());
  const HourlyAmbient aggregated = agg.Finish();

  for (int u = 0; u < options.units; ++u) {
    const AmbientModel model = gen.ModelForUnit(u);
    for (int h = 0; h < hours; ++h) {
      const SimTime midpoint =
          aggregated.TimeOfHour(h) + kSecondsPerHour / 2;
      // Hourly mean vs midpoint sample: close up to intra-hour variation.
      EXPECT_NEAR(aggregated.temp(u, h), model.IndoorTempC(midpoint), 1.5)
          << "unit " << u << " hour " << h;
      EXPECT_NEAR(aggregated.light(u, h), model.IndoorLightPct(midpoint),
                  12.0)
          << "unit " << u << " hour " << h;
    }
  }
}

TEST(AggregateTraceFileTest, EndToEnd) {
  const std::string path = ::testing::TempDir() + "/imcf_agg_trace.trc";
  std::remove(path.c_str());
  GeneratorOptions options;
  options.start = FromCivil(2014, 5, 1);
  options.end = FromCivil(2014, 5, 2);
  options.step_seconds = 120;
  options.units = 1;
  options.seed = 3;
  CasasTraceGenerator gen(options);
  ASSERT_TRUE(gen.WriteTraceFile(path).ok());

  const auto ambient = AggregateTraceFile(path, options.start, 24, 1);
  ASSERT_TRUE(ambient.ok());
  // Midday should be brighter and warmer than pre-dawn.
  EXPECT_GT(ambient->light(0, 13), ambient->light(0, 3));
  std::remove(path.c_str());
}

TEST(AggregateTraceFileTest, MissingFileFails) {
  EXPECT_FALSE(AggregateTraceFile("/nonexistent.trc", 0, 1, 1).ok());
}

}  // namespace
}  // namespace trace
}  // namespace imcf
