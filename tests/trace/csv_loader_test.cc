#include "trace/csv_loader.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/csv.h"

namespace imcf {
namespace trace {
namespace {

TEST(CsvLoaderTest, ParsesWellFormedDocument) {
  const std::string text =
      "time,sensor_id,kind,value\n"
      "100,0,temperature,21.5\n"
      "160,1,light,80\n"
      "220,2,2,1\n";
  auto readings = ParseReadingsCsv(text, "test.csv");
  ASSERT_TRUE(readings.ok());
  ASSERT_EQ(readings->size(), 3u);
  EXPECT_EQ((*readings)[0],
            (Reading{100, 0, SensorKind::kTemperature, 21.5f}));
  EXPECT_EQ((*readings)[1], (Reading{160, 1, SensorKind::kLight, 80.0f}));
  EXPECT_EQ((*readings)[2], (Reading{220, 2, SensorKind::kDoor, 1.0f}));
}

TEST(CsvLoaderTest, ParsesCalendarTimesAndSkipsBlankLines) {
  const std::string text =
      "2024-01-01 00:00:00,0,0,20\n"
      "\n"
      "2024-01-01 01:00:00,0,0,21\n";
  auto readings = ParseReadingsCsv(text, "test.csv");
  ASSERT_TRUE(readings.ok());
  ASSERT_EQ(readings->size(), 2u);
  EXPECT_EQ((*readings)[1].time - (*readings)[0].time, kSecondsPerHour);
}

TEST(CsvLoaderTest, HeaderlessDocumentParses) {
  auto readings = ParseReadingsCsv("5,0,0,20\n", "test.csv");
  ASSERT_TRUE(readings.ok());
  EXPECT_EQ(readings->size(), 1u);
}

TEST(CsvLoaderTest, ErrorsCarrySourceAndLineNumber) {
  // Malformed rows are errors, never silent skips.
  struct Case {
    const char* text;
    const char* fragment;  // expected in the message
  } cases[] = {
      {"time,sensor_id,kind,value\n100,0,temperature\n", "test.csv:2"},
      {"100,0,temperature,21.5,extra\n", "test.csv:1"},
      {"100,0,9,21.5\n", "out of range"},
      {"100,0,smoke,21.5\n", "unknown sensor kind"},
      {"100,-3,0,21.5\n", "bad sensor id"},
      {"100,0,0,warm\n", "bad value"},
      {"100,0,0,inf\n", "bad value"},
      {"noon,0,0,21.5\n100,0,0,21.5\nnope,0,0,1\n", "test.csv:3"},
  };
  for (const Case& c : cases) {
    auto result = ParseReadingsCsv(c.text, "test.csv");
    ASSERT_FALSE(result.ok()) << c.text;
    EXPECT_TRUE(result.status().IsInvalidArgument()) << c.text;
    EXPECT_NE(result.status().message().find(c.fragment), std::string::npos)
        << "missing '" << c.fragment << "' in: "
        << result.status().message();
  }
}

TEST(CsvLoaderTest, LoadsFromDiskAndLabelsErrorsWithBaseName) {
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/good_trace.csv";
  ASSERT_TRUE(
      WriteStringToFile(good, "time,sensor_id,kind,value\n7,0,1,55\n").ok());
  auto readings = LoadReadingsCsv(good);
  ASSERT_TRUE(readings.ok());
  EXPECT_EQ(readings->size(), 1u);

  const std::string bad = dir + "/bad_trace.csv";
  ASSERT_TRUE(WriteStringToFile(bad, "7,0,1\n").ok());
  auto error = LoadReadingsCsv(bad);
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.status().message().find("bad_trace.csv:1"),
            std::string::npos)
      << error.status().message();

  EXPECT_TRUE(LoadReadingsCsv(dir + "/missing.csv").status().IsIOError());
}

}  // namespace
}  // namespace trace
}  // namespace imcf
