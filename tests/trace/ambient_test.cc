#include "trace/ambient.h"

#include <gtest/gtest.h>

#include <cmath>

namespace imcf {
namespace trace {
namespace {

class AmbientTest : public ::testing::Test {
 protected:
  AmbientTest() : weather_(weather::ClimateOptions{}) {}

  weather::SyntheticWeather weather_;
};

TEST_F(AmbientTest, DeterministicForSameSeed) {
  AmbientModel a(&weather_, {}, 42);
  AmbientModel b(&weather_, {}, 42);
  const SimTime t = FromCivil(2015, 3, 5, 9);
  EXPECT_DOUBLE_EQ(a.IndoorTempC(t), b.IndoorTempC(t));
  EXPECT_DOUBLE_EQ(a.IndoorLightPct(t), b.IndoorLightPct(t));
  EXPECT_EQ(a.DoorOpen(t), b.DoorOpen(t));
}

TEST_F(AmbientTest, UnitSeedsDecorrelateNoise) {
  AmbientModel a(&weather_, {}, 1);
  AmbientModel b(&weather_, {}, 2);
  int differing = 0;
  for (int h = 0; h < 48; ++h) {
    const SimTime t = FromCivil(2015, 3, 5) + h * kSecondsPerHour;
    if (std::fabs(a.IndoorTempC(t) - b.IndoorTempC(t)) > 1e-6) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST_F(AmbientTest, IndoorTracksSeasons) {
  AmbientModel model(&weather_, {}, 7);
  double january = 0.0, july = 0.0;
  for (int day = 1; day <= 28; ++day) {
    january += model.IndoorTempC(FromCivil(2015, 1, day, 12));
    july += model.IndoorTempC(FromCivil(2015, 7, day, 12));
  }
  EXPECT_GT(july / 28 - january / 28, 4.0);
}

TEST_F(AmbientTest, IndoorDampsOutdoorSwings) {
  AmbientModelOptions options;
  options.temp_noise_c = 0.0;
  options.monthly_bias_c = {};
  AmbientModel model(&weather_, options, 7);
  // Collect indoor and outdoor diurnal swings on one day.
  double in_min = 1e9, in_max = -1e9, out_min = 1e9, out_max = -1e9;
  for (int h = 0; h < 24; ++h) {
    const SimTime t = FromCivil(2015, 4, 10, h);
    const double indoor = model.IndoorTempC(t);
    const double outdoor = weather_.At(t).outdoor_temp_c;
    in_min = std::min(in_min, indoor);
    in_max = std::max(in_max, indoor);
    out_min = std::min(out_min, outdoor);
    out_max = std::max(out_max, outdoor);
  }
  EXPECT_LT(in_max - in_min, (out_max - out_min) * 0.6);
}

TEST_F(AmbientTest, MonthlyBiasShiftsIndoorTemperature) {
  AmbientModelOptions biased;
  biased.monthly_bias_c = {};
  biased.monthly_bias_c[3] = 5.0;  // April
  AmbientModelOptions neutral;
  neutral.monthly_bias_c = {};
  AmbientModel with_bias(&weather_, biased, 7);
  AmbientModel without(&weather_, neutral, 7);
  const SimTime april = FromCivil(2015, 4, 15, 12);
  EXPECT_NEAR(with_bias.IndoorTempC(april) - without.IndoorTempC(april), 5.0,
              1e-9);
  const SimTime may = FromCivil(2015, 5, 15, 12);
  EXPECT_NEAR(with_bias.IndoorTempC(may) - without.IndoorTempC(may), 0.0,
              1e-9);
}

TEST_F(AmbientTest, LightBoundedAndDarkAtNight) {
  AmbientModel model(&weather_, {}, 7);
  for (int day = 1; day <= 28; ++day) {
    const double night = model.IndoorLightPct(FromCivil(2015, 6, day, 2));
    const double noon = model.IndoorLightPct(FromCivil(2015, 6, day, 13));
    EXPECT_GE(night, 0.0);
    EXPECT_LE(night, 12.0);  // noise only
    EXPECT_GT(noon, 15.0);
    EXPECT_LE(noon, 100.0);
  }
}

TEST_F(AmbientTest, WindowFactorScalesDaylight) {
  AmbientModelOptions small_windows;
  small_windows.window_factor = 0.2;
  small_windows.light_noise = 0.0;
  AmbientModelOptions big_windows;
  big_windows.window_factor = 0.8;
  big_windows.light_noise = 0.0;
  AmbientModel dim(&weather_, small_windows, 7);
  AmbientModel bright(&weather_, big_windows, 7);
  const SimTime noon = FromCivil(2015, 6, 15, 13);
  EXPECT_NEAR(bright.IndoorLightPct(noon) / dim.IndoorLightPct(noon), 4.0,
              0.1);
}

TEST_F(AmbientTest, TemperatureNoiseContinuousAcrossHours) {
  AmbientModel model(&weather_, {}, 7);
  for (int h = 0; h < 23; ++h) {
    const SimTime before = FromCivil(2015, 2, 10, h, 59, 50);
    const SimTime after = FromCivil(2015, 2, 10, h + 1, 0, 10);
    EXPECT_LT(std::fabs(model.IndoorTempC(after) - model.IndoorTempC(before)),
              0.5)
        << "hour " << h;
  }
}

TEST_F(AmbientTest, DoorEventsAreSparseAndShort) {
  AmbientModel model(&weather_, {}, 7);
  int open_minutes = 0;
  int total_minutes = 0;
  for (int day = 1; day <= 14; ++day) {
    for (int minute = 0; minute < kMinutesPerDay; minute += 1) {
      const SimTime t = FromCivil(2015, 5, day) + minute * 60;
      if (model.DoorOpen(t)) ++open_minutes;
      ++total_minutes;
    }
  }
  // ~15% of waking hours see one 2-minute opening: well under 1% of time.
  EXPECT_GT(open_minutes, 0);
  EXPECT_LT(static_cast<double>(open_minutes) / total_minutes, 0.01);
}

TEST_F(AmbientTest, DoorClosedAtNight) {
  AmbientModel model(&weather_, {}, 7);
  for (int day = 1; day <= 28; ++day) {
    for (int h : {0, 1, 2, 3, 4, 5, 23}) {
      EXPECT_FALSE(model.DoorOpen(FromCivil(2015, 5, day, h, 30)));
    }
  }
}

}  // namespace
}  // namespace trace
}  // namespace imcf
