// WireServer tests: a real TCP client round-trips every request kind
// through the epoll front door and the outcomes are compared field by
// field against the in-process API (the differential contract: the wire
// adds transport, never semantics). Then the hostile-input suite drives
// the server with truncated, corrupted and garbage streams — every case
// must end in a clean error reply or connection close, never a crash or
// hang (the sanitizer CI jobs run these under ASan/UBSan).

#include "net/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/socket_util.h"
#include "net/wire.h"
#include "storage/coding.h"
#include "trace/dataset.h"

namespace imcf {
namespace net {
namespace {

serve::TenantConfig FastConfig(const std::string& id) {
  serve::TenantConfig config;
  config.id = id;
  config.hours = 24;
  return config;
}

serve::Request PlanReq(const std::string& tenant, int rep = 0) {
  serve::Request request;
  request.tenant = tenant;
  request.kind = serve::RequestKind::kPlan;
  request.issue_time = trace::EvaluationStart();
  request.plan.policy = sim::Policy::kEnergyPlanner;
  request.plan.rep = rep;
  return request;
}

serve::Request CommandReq(const std::string& tenant) {
  serve::Request request;
  request.tenant = tenant;
  request.kind = serve::RequestKind::kCommand;
  request.issue_time = trace::EvaluationStart();
  request.command.unit = 0;
  request.command.type = devices::CommandType::kSetTemperature;
  request.command.value = 21.0;
  return request;
}

serve::Request QueryReq(const std::string& tenant) {
  serve::Request request;
  request.tenant = tenant;
  request.kind = serve::RequestKind::kQuery;
  request.issue_time = trace::EvaluationStart();
  return request;
}

serve::Request MrtReq(const std::string& tenant) {
  serve::Request request;
  request.tenant = tenant;
  request.kind = serve::RequestKind::kMrtUpdate;
  request.issue_time = trace::EvaluationStart();
  request.mrt_update.seed = 7;
  return request;
}

/// The transport-independent slice of a response: everything except the
/// wall-clock measurement.
void ExpectSameResponse(const serve::Response& wire,
                        const serve::Response& local) {
  EXPECT_EQ(wire.id, local.id);
  EXPECT_EQ(wire.tenant, local.tenant);
  EXPECT_EQ(wire.kind, local.kind);
  EXPECT_EQ(wire.outcome, local.outcome);
  EXPECT_EQ(wire.status.code(), local.status.code());
  EXPECT_EQ(wire.retry_after_seconds, local.retry_after_seconds);
  EXPECT_EQ(wire.virtual_latency_seconds, local.virtual_latency_seconds);
  EXPECT_EQ(wire.had_deadline, local.had_deadline);
  EXPECT_DOUBLE_EQ(wire.plan.fce_pct, local.plan.fce_pct);
  EXPECT_DOUBLE_EQ(wire.plan.fe_kwh, local.plan.fe_kwh);
  EXPECT_EQ(wire.plan.within_budget, local.plan.within_budget);
  EXPECT_EQ(wire.plan.commands_issued, local.plan.commands_issued);
  EXPECT_EQ(wire.plan.commands_dropped, local.plan.commands_dropped);
  EXPECT_EQ(wire.command_delivered, local.command_delivered);
  EXPECT_EQ(wire.command_attempts, local.command_attempts);
  EXPECT_EQ(wire.tenant_status.plans_served, local.tenant_status.plans_served);
  EXPECT_EQ(wire.tenant_status.commands_served,
            local.tenant_status.commands_served);
  EXPECT_DOUBLE_EQ(wire.tenant_status.budget_kwh,
                   local.tenant_status.budget_kwh);
  EXPECT_EQ(wire.tenant_status.devices, local.tenant_status.devices);
  EXPECT_EQ(wire.tenant_status.units, local.tenant_status.units);
  EXPECT_EQ(wire.context.fields, local.context.fields);
}

class WireServerTest : public ::testing::Test {
 protected:
  std::unique_ptr<serve::FleetService> MakeService() {
    auto service = serve::FleetService::Create(serve::FleetOptions{});
    EXPECT_TRUE(service.ok());
    EXPECT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
    return std::move(*service);
  }

  std::unique_ptr<WireServer> MakeServer(serve::FleetService* service,
                                         WireServerOptions options = {}) {
    auto server = WireServer::Start(service, options);
    EXPECT_TRUE(server.ok()) << server.status();
    return std::move(*server);
  }
};

TEST_F(WireServerTest, DifferentialAllFourKindsMatchInProcess) {
  // Two identical fleets: one behind the wire, one driven in-process.
  auto wire_service = MakeService();
  auto local_service = MakeService();
  auto server = MakeServer(wire_service.get());

  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok()) << client.status();

  const serve::Request requests[] = {PlanReq("a"), CommandReq("a"),
                                     QueryReq("a"), MrtReq("a"),
                                     PlanReq("ghost")};
  for (const serve::Request& request : requests) {
    auto over_wire = (*client)->Call(request);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status();
    serve::Response local =
        local_service->Call(request, request.issue_time);
    ExpectSameResponse(*over_wire, local);
  }
  EXPECT_EQ(server->frames_received(), 5);
}

TEST_F(WireServerTest, PipelinedRequestsComeBackCorrelated) {
  auto service = MakeService();
  auto server = MakeServer(service.get());
  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());

  std::vector<uint64_t> ids;
  for (int rep = 0; rep < 4; ++rep) {
    auto id = (*client)->Send(PlanReq("a", rep));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  std::vector<uint64_t> seen;
  for (int i = 0; i < 4; ++i) {
    auto reply = (*client)->Receive();
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->response.outcome, serve::ServeOutcome::kOk);
    seen.push_back(reply->client_id);
  }
  // Responses drain id-sorted, which here matches send order.
  EXPECT_EQ(seen, ids);
}

TEST_F(WireServerTest, ShedComesBackAsWireLevelReply) {
  serve::FleetOptions options;
  options.shards = 1;
  options.queue_capacity = 1;
  auto service = serve::FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
  auto server = MakeServer(service->get());

  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());

  // Two requests in one segment land in the same read batch, before the
  // between-batch drain can free the queue: the first fills the
  // capacity-1 queue, the second sheds at admission.
  std::string burst;
  for (uint64_t id = 1; id <= 2; ++id) {
    std::string payload;
    EncodeRequestPayload(id, PlanReq("a", static_cast<int>(id)), &payload);
    burst += EncodeFrame(FrameType::kRequest, payload);
  }
  ASSERT_TRUE((*client)->SendBytes(burst));

  // The shed reply is queued at admission, so it arrives first.
  auto shed = (*client)->Receive();
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_EQ(shed->client_id, 2u);
  EXPECT_EQ(shed->response.outcome, serve::ServeOutcome::kShed);
  EXPECT_GT(shed->response.retry_after_seconds, 0);

  auto ok = (*client)->Receive();
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->client_id, 1u);
  EXPECT_EQ(ok->response.outcome, serve::ServeOutcome::kOk);
}

TEST_F(WireServerTest, CallRetriesShedInVirtualTime) {
  // A hand-rolled frame-level server: shed twice, then answer. This pins
  // down the client's retry contract exactly — each resubmission advances
  // issue_time by the server's retry_after hint (virtual time, no wall
  // sleep) and the final reply is surfaced.
  std::string error;
  int port = 0;
  const int listen_fd = BindListen(0, /*backlog=*/4, &port, &error);
  ASSERT_GE(listen_fd, 0) << error;

  std::vector<SimTime> observed_issue_times;
  std::thread fake_server([&] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    FrameReader reader;
    char buf[4096];
    int served = 0;
    while (served < 3) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) {
        const ssize_t got = RecvSome(fd, buf, sizeof(buf));
        ASSERT_GT(got, 0);
        ASSERT_TRUE(
            reader.Feed(std::string_view(buf, static_cast<size_t>(got))));
        continue;
      }
      auto request = DecodeRequestPayload((*next)->payload);
      ASSERT_TRUE(request.ok());
      observed_issue_times.push_back(request->request.issue_time);
      std::string payload;
      std::string frame;
      if (served < 2) {
        EncodeShedPayload(request->client_id, /*retry_after=*/30, &payload);
        frame = EncodeFrame(FrameType::kShed, payload);
      } else {
        serve::Response response;
        response.kind = request->request.kind;
        response.outcome = serve::ServeOutcome::kOk;
        EncodeResponsePayload(request->client_id, response, &payload);
        frame = EncodeFrame(FrameType::kResponse, payload);
      }
      ASSERT_TRUE(SendAll(fd, frame.data(), frame.size()));
      ++served;
    }
    CloseQuietly(fd);
  });

  auto client = WireClient::Connect(port);
  ASSERT_TRUE(client.ok());
  serve::Request request = PlanReq("a");
  request.issue_time = 1000;
  auto reply = (*client)->Call(request);
  fake_server.join();
  CloseQuietly(listen_fd);

  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->outcome, serve::ServeOutcome::kOk);
  EXPECT_EQ(observed_issue_times,
            (std::vector<SimTime>{1000, 1030, 1060}));
}

TEST_F(WireServerTest, MalformedPayloadGetsErrorReplyConnectionSurvives) {
  auto service = MakeService();
  auto server = MakeServer(service.get());
  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());

  // A checksum-valid frame whose payload decodes to an unknown kind.
  std::string payload;
  PutVarint64(&payload, 1);
  PutLengthPrefixed(&payload, "a");
  PutVarint64(&payload, 99);  // kind out of range
  ASSERT_TRUE(
      (*client)->SendBytes(EncodeFrame(FrameType::kRequest, payload)));
  auto reply = (*client)->Receive();
  EXPECT_FALSE(reply.ok());  // surfaces the server's kError
  // The stream is still CRC-aligned, so the connection survives and a
  // well-formed request afterwards succeeds.
  auto ok = (*client)->Call(PlanReq("a"));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->outcome, serve::ServeOutcome::kOk);
}

TEST_F(WireServerTest, GarbageStreamClosesConnection) {
  auto service = MakeService();
  auto server = MakeServer(service.get());
  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->SendBytes("GET / HTTP/1.0\r\n\r\n"));
  // The server answers with a best-effort error frame and closes; either
  // way Receive must return (no hang) with a non-ok status eventually.
  auto reply = (*client)->Receive();
  EXPECT_FALSE(reply.ok());
}

TEST_F(WireServerTest, CorruptedChecksumClosesConnection) {
  auto service = MakeService();
  auto server = MakeServer(service.get());
  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  std::string payload;
  EncodeRequestPayload(1, PlanReq("a"), &payload);
  std::string frame = EncodeFrame(FrameType::kRequest, payload);
  frame[frame.size() - 2] ^= 0x10;
  ASSERT_TRUE((*client)->SendBytes(frame));
  auto reply = (*client)->Receive();
  EXPECT_FALSE(reply.ok());
}

TEST_F(WireServerTest, OneByteAtATimeClientStillServed) {
  auto service = MakeService();
  auto server = MakeServer(service.get());
  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  std::string payload;
  EncodeRequestPayload(55, QueryReq("a"), &payload);
  const std::string frame = EncodeFrame(FrameType::kRequest, payload);
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE((*client)->SendBytes(frame.substr(i, 1)));
  }
  auto reply = (*client)->Receive();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->client_id, 55u);
  EXPECT_EQ(reply->response.outcome, serve::ServeOutcome::kOk);
}

TEST_F(WireServerTest, TruncatedFrameThenDisconnectLeavesServerHealthy) {
  auto service = MakeService();
  auto server = MakeServer(service.get());
  {
    auto client = WireClient::Connect(server->port());
    ASSERT_TRUE(client.ok());
    std::string payload;
    EncodeRequestPayload(1, PlanReq("a"), &payload);
    const std::string frame = EncodeFrame(FrameType::kRequest, payload);
    ASSERT_TRUE((*client)->SendBytes(frame.substr(0, frame.size() / 2)));
    // Destructor closes the socket with the frame incomplete.
  }
  // The server survives and serves the next client.
  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  auto ok = (*client)->Call(PlanReq("a"));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->outcome, serve::ServeOutcome::kOk);
}

TEST_F(WireServerTest, IdleConnectionsAreSweptOut) {
  auto service = MakeService();
  WireServerOptions options;
  options.idle_timeout_ms = 100;
  options.epoll_wait_ms = 20;
  auto server = MakeServer(service.get(), options);
  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  // An idle client is closed by the sweep; Receive observes the close.
  auto reply = (*client)->Receive();
  EXPECT_FALSE(reply.ok());
  for (int i = 0; i < 100 && server->open_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->open_connections(), 0);
}

TEST_F(WireServerTest, StopDrainsQueuedRequests) {
  auto service = MakeService();
  auto server = MakeServer(service.get());
  auto client = WireClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Send(PlanReq("a")).ok());
  // Wait until the serving thread has actually admitted the frame, so the
  // stop exercises the clean-drain path rather than a pre-read exit.
  for (int i = 0; i < 500 && server->frames_received() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(server->frames_received(), 1);
  server->Stop();
  // Whatever the wire admitted was executed by the clean drain: either
  // the reply reached the socket before the close, or the service shows
  // zero queued work.
  EXPECT_EQ(service->queued(), 0u);
}

TEST_F(WireServerTest, StartStopStartReusesService) {
  auto service = MakeService();
  auto first = MakeServer(service.get());
  const int first_port = first->port();
  {
    auto client = WireClient::Connect(first_port);
    ASSERT_TRUE(client.ok());
    auto reply = (*client)->Call(QueryReq("a"));
    ASSERT_TRUE(reply.ok());
  }
  first->Stop();
  EXPECT_FALSE(first->running());

  // A second front door over the same fleet: state carried across.
  auto second = MakeServer(service.get());
  auto client = WireClient::Connect(second->port());
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->Call(QueryReq("a"));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->outcome, serve::ServeOutcome::kOk);
}

TEST_F(WireServerTest, StopIsIdempotent) {
  auto service = MakeService();
  auto server = MakeServer(service.get());
  server->Stop();
  server->Stop();
  EXPECT_FALSE(server->running());
}

}  // namespace
}  // namespace net
}  // namespace imcf
