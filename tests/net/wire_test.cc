// Wire codec tests: round trips for every payload type, then hostile
// input — truncation, oversized length prefixes, corrupted checksums,
// unknown enums, garbage and trailing bytes. Every malformed input must
// come back as a Status (or poisoned reader), never a crash or over-read;
// the sanitizer CI jobs run these with ASan/UBSan active.

#include "net/wire.h"

#include <gtest/gtest.h>

#include "serve/request.h"
#include "storage/coding.h"

namespace imcf {
namespace net {
namespace {

serve::Request PlanRequest() {
  serve::Request request;
  request.tenant = "house-7";
  request.kind = serve::RequestKind::kPlan;
  request.issue_time = 1'600'000'000;
  request.deadline = 1'600'003'600;
  request.plan.policy = sim::Policy::kEnergyPlanner;
  request.plan.rep = 3;
  return request;
}

serve::Request MrtUpdateRequest() {
  serve::Request request;
  request.tenant = "house-9";
  request.kind = serve::RequestKind::kMrtUpdate;
  request.issue_time = 42;
  request.mrt_update.seed = 99;
  request.mrt_update.mrt_variation = 0.25;
  request.mrt_update.budget_kwh = 1234.5;
  request.mrt_update.set_recipes = true;
  rules::TriggerRule rule;
  rule.field = rules::TriggerField::kTemperature;
  rule.op = rules::TriggerOp::kLessThan;
  rule.threshold = 5.0;
  rule.action = rules::RuleAction::kSetTemperature;
  rule.action_value = 22.0;
  request.mrt_update.extra_recipes.push_back(rule);
  return request;
}

std::string FrameFor(const serve::Request& request, uint64_t client_id) {
  std::string payload;
  EncodeRequestPayload(client_id, request, &payload);
  return EncodeFrame(FrameType::kRequest, payload);
}

TEST(WireCodec, RequestRoundTripAllKinds) {
  serve::Request requests[4];
  requests[0] = PlanRequest();

  requests[1].tenant = "house-8";
  requests[1].kind = serve::RequestKind::kCommand;
  requests[1].issue_time = -5;  // signed times survive
  requests[1].command.unit = 2;
  requests[1].command.type = devices::CommandType::kSetLight;
  requests[1].command.value = 0.5;
  requests[1].command.time = 77;

  requests[2].tenant = "h";
  requests[2].kind = serve::RequestKind::kQuery;
  requests[2].query.kind = serve::QueryKind::kContext;
  requests[2].query.unit = 1;

  requests[3] = MrtUpdateRequest();

  for (const serve::Request& request : requests) {
    std::string payload;
    EncodeRequestPayload(17, request, &payload);
    auto decoded = DecodeRequestPayload(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->client_id, 17u);
    EXPECT_EQ(decoded->request.tenant, request.tenant);
    EXPECT_EQ(decoded->request.kind, request.kind);
    EXPECT_EQ(decoded->request.issue_time, request.issue_time);
    EXPECT_EQ(decoded->request.deadline, request.deadline);
  }

  auto mrt = DecodeRequestPayload([&] {
    std::string payload;
    EncodeRequestPayload(1, requests[3], &payload);
    return payload;
  }());
  ASSERT_TRUE(mrt.ok());
  EXPECT_EQ(mrt->request.mrt_update.seed, 99u);
  EXPECT_DOUBLE_EQ(mrt->request.mrt_update.budget_kwh, 1234.5);
  ASSERT_EQ(mrt->request.mrt_update.extra_recipes.size(), 1u);
  EXPECT_EQ(mrt->request.mrt_update.extra_recipes[0].action,
            rules::RuleAction::kSetTemperature);
}

TEST(WireCodec, ResponseRoundTrip) {
  serve::Response response;
  response.id = 41;
  response.tenant = "house-7";
  response.kind = serve::RequestKind::kPlan;
  response.outcome = serve::ServeOutcome::kOk;
  response.virtual_latency_seconds = 3600;
  response.had_deadline = true;
  response.wall_ns = 123456;
  response.plan.fce_pct = 87.5;
  response.plan.fe_kwh = 1200.25;
  response.plan.within_budget = true;
  response.plan.commands_issued = 10;
  response.plan.commands_dropped = 2;

  std::string payload;
  EncodeResponsePayload(9, response, &payload);
  auto decoded = DecodeResponsePayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->client_id, 9u);
  EXPECT_EQ(decoded->response.id, 41u);
  EXPECT_EQ(decoded->response.outcome, serve::ServeOutcome::kOk);
  EXPECT_DOUBLE_EQ(decoded->response.plan.fce_pct, 87.5);
  EXPECT_DOUBLE_EQ(decoded->response.plan.fe_kwh, 1200.25);
  EXPECT_TRUE(decoded->response.plan.within_budget);
  EXPECT_EQ(decoded->response.plan.commands_issued, 10);
  EXPECT_TRUE(decoded->response.had_deadline);
}

TEST(WireCodec, ErrorStatusRoundTrip) {
  serve::Response response;
  response.kind = serve::RequestKind::kCommand;
  response.outcome = serve::ServeOutcome::kError;
  response.status = Status::NotFound("no such unit");
  std::string payload;
  EncodeResponsePayload(3, response, &payload);
  auto decoded = DecodeResponsePayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->response.status.IsNotFound());
  EXPECT_EQ(decoded->response.status.message(), "no such unit");
}

TEST(WireCodec, ShedAndErrorPayloads) {
  std::string shed;
  EncodeShedPayload(5, 120, &shed);
  auto decoded_shed = DecodeShedPayload(shed);
  ASSERT_TRUE(decoded_shed.ok());
  EXPECT_EQ(decoded_shed->client_id, 5u);
  EXPECT_EQ(decoded_shed->response.outcome, serve::ServeOutcome::kShed);
  EXPECT_EQ(decoded_shed->response.retry_after_seconds, 120);

  std::string error;
  EncodeErrorPayload(7, Status::InvalidArgument("bad kind"), &error);
  auto decoded_error = DecodeErrorPayload(error);
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error->client_id, 7u);
  EXPECT_TRUE(decoded_error->response.status.IsInvalidArgument());
}

TEST(WireCodec, TruncatedPayloadRejected) {
  std::string payload;
  EncodeRequestPayload(17, PlanRequest(), &payload);
  // Every proper prefix must decode to an error, never crash or over-read.
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded =
        DecodeRequestPayload(std::string_view(payload).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
}

TEST(WireCodec, TrailingBytesRejected) {
  std::string payload;
  EncodeRequestPayload(17, PlanRequest(), &payload);
  payload.push_back('\0');
  EXPECT_FALSE(DecodeRequestPayload(payload).ok());
}

TEST(WireCodec, UnknownRequestKindRejected) {
  std::string payload;
  PutVarint64(&payload, 1);           // client id
  PutLengthPrefixed(&payload, "t");   // tenant
  PutVarint64(&payload, 200);         // kind far out of range
  EXPECT_FALSE(DecodeRequestPayload(payload).ok());
}

TEST(WireCodec, OversizedTenantRejected) {
  std::string payload;
  PutVarint64(&payload, 1);
  PutLengthPrefixed(&payload, std::string(kMaxTenantBytes + 1, 'x'));
  PutVarint64(&payload, 0);
  EXPECT_FALSE(DecodeRequestPayload(payload).ok());
}

TEST(WireCodec, HugeRecipeCountRejectedBeforeAllocation) {
  serve::Request request = MrtUpdateRequest();
  request.mrt_update.extra_recipes.clear();
  std::string payload;
  EncodeRequestPayload(1, request, &payload);
  // Rewrite the recipe count (last varint before the empty recipe list)
  // by re-encoding the prefix by hand.
  std::string hostile;
  PutVarint64(&hostile, 1);
  PutLengthPrefixed(&hostile, request.tenant);
  PutVarint64(&hostile, static_cast<uint64_t>(request.kind));
  PutVarintSigned64(&hostile, request.issue_time);
  PutVarintSigned64(&hostile, request.deadline);
  PutVarint64(&hostile, request.mrt_update.seed);
  PutDouble(&hostile, request.mrt_update.mrt_variation);
  PutDouble(&hostile, request.mrt_update.budget_kwh);
  PutVarint64(&hostile, 1);  // set_recipes
  PutVarint64(&hostile, (1ull << 62));  // absurd recipe count, no bytes
  auto decoded = DecodeRequestPayload(hostile);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
}

TEST(FrameReaderTest, RoundTripOneByteAtATime) {
  const std::string frame = FrameFor(PlanRequest(), 23);
  FrameReader reader;
  for (size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(reader.Feed(frame.substr(i, 1)));
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    if (i + 1 < frame.size()) {
      EXPECT_FALSE(next->has_value()) << "frame completed early at " << i;
    } else {
      ASSERT_TRUE(next->has_value());
      EXPECT_EQ((*next)->type, FrameType::kRequest);
      auto decoded = DecodeRequestPayload((*next)->payload);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->client_id, 23u);
    }
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, PipelinedFramesInOneFeed) {
  const std::string a = FrameFor(PlanRequest(), 1);
  const std::string b = FrameFor(MrtUpdateRequest(), 2);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(a + b));
  auto first = reader.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  auto second = reader.Next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  auto third = reader.Next();
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->has_value());
}

TEST(FrameReaderTest, BadMagicPoisons) {
  std::string frame = FrameFor(PlanRequest(), 1);
  frame[0] = 'X';
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame));
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(reader.poisoned());
  // Poisoned readers stay poisoned: even good bytes are refused.
  EXPECT_FALSE(reader.Feed(FrameFor(PlanRequest(), 2)));
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameReaderTest, BadVersionPoisons) {
  std::string frame = FrameFor(PlanRequest(), 1);
  frame[2] = 9;
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame));
  EXPECT_FALSE(reader.Next().ok());
  EXPECT_TRUE(reader.poisoned());
}

TEST(FrameReaderTest, UnknownFrameTypePoisons) {
  std::string frame = FrameFor(PlanRequest(), 1);
  frame[3] = 0x7f;
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame));
  EXPECT_FALSE(reader.Next().ok());
  EXPECT_TRUE(reader.poisoned());
}

TEST(FrameReaderTest, OversizedLengthPrefixRejectedBeforeBuffering) {
  // A header claiming a 4 GiB payload must be rejected from the 8 header
  // bytes alone — no waiting, no allocation.
  std::string header;
  header.push_back(static_cast<char>(kWireMagic0));
  header.push_back(static_cast<char>(kWireMagic1));
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(FrameType::kRequest));
  PutFixed32(&header, 0xFFFFFFFFu);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(header));
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsInvalidArgument());
  EXPECT_TRUE(reader.poisoned());
}

TEST(FrameReaderTest, CorruptedChecksumPoisons) {
  std::string frame = FrameFor(PlanRequest(), 1);
  frame[frame.size() - 1] ^= 0x01;
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame));
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCorruption());
}

TEST(FrameReaderTest, FlippedPayloadByteFailsChecksum) {
  std::string frame = FrameFor(PlanRequest(), 1);
  frame[kWireHeaderBytes] ^= 0x40;
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame));
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameReaderTest, GarbageFloodIsBoundedAndPoisons) {
  // Garbage that never frames: Feed refuses more than one maximal frame
  // of unparsed bytes, so a flooding peer costs bounded memory.
  FrameReader reader;
  const std::string junk(1 << 16, 'Z');
  bool accepted = true;
  size_t fed = 0;
  while (accepted && fed < (kMaxPayloadBytes * 4)) {
    accepted = reader.Feed(junk);
    fed += junk.size();
  }
  EXPECT_FALSE(accepted);
  EXPECT_TRUE(reader.poisoned());
  EXPECT_LE(fed, kMaxPayloadBytes + (1 << 17) + kWireHeaderBytes +
                     kWireTrailerBytes);
}

TEST(FrameReaderTest, GarbageMidStreamPoisonsAfterGoodFrame) {
  const std::string good = FrameFor(PlanRequest(), 1);
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(good + "not a frame at all"));
  auto first = reader.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  // The garbage after the good frame fails at the magic check.
  EXPECT_FALSE(reader.Next().ok());
  EXPECT_TRUE(reader.poisoned());
}

TEST(FrameReaderTest, EmptyPayloadFrame) {
  const std::string frame = EncodeFrame(FrameType::kShed, "");
  FrameReader reader;
  ASSERT_TRUE(reader.Feed(frame));
  auto next = reader.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, FrameType::kShed);
  EXPECT_TRUE((*next)->payload.empty());
}

}  // namespace
}  // namespace net
}  // namespace imcf
