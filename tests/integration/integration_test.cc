// Cross-module integration tests: the full trace -> storage -> aggregation
// -> planning -> firewall pipeline, exercised end to end.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "controller/prototype.h"
#include "core/baselines.h"
#include "core/hill_climber.h"
#include "energy/budget.h"
#include "firewall/imcf_firewall.h"
#include "rules/parser.h"
#include "sim/simulation.h"
#include "trace/aggregate.h"
#include "trace/generator.h"

namespace imcf {
namespace {

// The paper's data pipeline: synthesize CASAS-like readings, persist them
// in the binary trace format, aggregate to hourly, and verify that the
// aggregated series matches the direct-analytic series used by the fast
// simulation path.
TEST(PipelineIntegrationTest, TraceFileToHourlySeriesMatchesDirectPath) {
  const std::string path = ::testing::TempDir() + "/imcf_e2e_trace.trc";
  std::remove(path.c_str());

  trace::DatasetSpec spec = trace::FlatSpec();
  trace::GeneratorOptions gen_options;
  gen_options.start = FromCivil(2014, 1, 5);
  gen_options.end = FromCivil(2014, 1, 12);  // one week
  gen_options.step_seconds = 60;
  gen_options.units = spec.units;
  gen_options.seed = spec.seed;
  gen_options.ambient = spec.ambient;
  gen_options.climate = spec.climate;
  trace::CasasTraceGenerator generator(gen_options);
  const auto written = generator.WriteTraceFile(path);
  ASSERT_TRUE(written.ok());
  EXPECT_GT(*written, 20000);  // minute cadence, two sensors, one week

  const int hours = 7 * 24;
  const auto aggregated =
      trace::AggregateTraceFile(path, gen_options.start, hours, spec.units);
  ASSERT_TRUE(aggregated.ok());
  const trace::HourlyAmbient direct =
      trace::BuildHourlyAmbient(spec, gen_options.start, hours);
  for (int h = 0; h < hours; ++h) {
    EXPECT_NEAR(aggregated->temp(0, h), direct.temp(0, h), 1.5)
        << "hour " << h;
    EXPECT_NEAR(aggregated->light(0, h), direct.light(0, h), 12.0)
        << "hour " << h;
  }
  std::remove(path.c_str());
}

// Rules defined through the text format drive the same planning outcome as
// the programmatic Table II.
TEST(PipelineIntegrationTest, ParsedRulesMatchProgrammaticTable) {
  const auto parsed = rules::ParseMrt(rules::FormatMrt(rules::FlatMrt()));
  ASSERT_TRUE(parsed.ok());
  const rules::MetaRuleTable& reference = rules::FlatMrt();
  const SimTime noon = FromCivil(2014, 3, 3, 12);
  EXPECT_EQ(parsed->ActiveAt(noon), reference.ActiveAt(noon));
  const SimTime night = FromCivil(2014, 3, 3, 3);
  EXPECT_EQ(parsed->ActiveAt(night), reference.ActiveAt(night));
}

// The simulator's executed energy respects the ledger accounting and the
// firewall's drop bookkeeping matches the planner's adoption vector.
TEST(PipelineIntegrationTest, SimulatorEnergyLedgerAndFirewallAgree) {
  sim::SimulationOptions options;
  options.spec = trace::FlatSpec();
  options.start = FromCivil(2014, 2, 1);
  options.hours = 14 * 24;
  // Proportionally tight budget so the plan filter actually drops rules.
  options.budget_kwh = 120.0;
  sim::Simulator simulator(options);
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto report = simulator.Run(sim::Policy::kEnergyPlanner);
  ASSERT_TRUE(report.ok());
  // Dropped + executed = issued; executed winners consumed the energy.
  EXPECT_EQ(report->commands_issued,
            report->activations);
  EXPECT_GT(report->commands_dropped, 0);
  EXPECT_LT(report->commands_dropped, report->commands_issued);
  EXPECT_GT(report->fe_kwh, 0.0);
  // Mean adopted fraction consistent with drop counts.
  const double dropped_fraction =
      static_cast<double>(report->commands_dropped) /
      static_cast<double>(report->commands_issued);
  EXPECT_NEAR(report->mean_adopted_fraction, 1.0 - dropped_fraction, 0.1);
}

// A miniature Fig. 6: all four policies on one winter month preserve the
// paper's orderings on both objectives.
TEST(PipelineIntegrationTest, PolicyOrderingsOnWinterMonth) {
  sim::SimulationOptions options;
  options.spec = trace::FlatSpec();
  options.start = FromCivil(2014, 12, 1);
  options.hours = 31 * 24;
  sim::Simulator simulator(options);
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto nr = simulator.Run(sim::Policy::kNoRule);
  const auto ifttt = simulator.Run(sim::Policy::kIfttt);
  const auto ep = simulator.Run(sim::Policy::kEnergyPlanner);
  const auto mr = simulator.Run(sim::Policy::kMetaRule);
  ASSERT_TRUE(nr.ok());
  ASSERT_TRUE(ifttt.ok());
  ASSERT_TRUE(ep.ok());
  ASSERT_TRUE(mr.ok());
  // F_CE: NR > IFTTT > EP > MR (= 0).
  EXPECT_GT(nr->fce_pct, ifttt->fce_pct);
  EXPECT_GT(ifttt->fce_pct, ep->fce_pct);
  EXPECT_GT(ep->fce_pct, mr->fce_pct - 1e-9);
  // F_E: NR = 0 < EP <= MR.
  EXPECT_DOUBLE_EQ(nr->fe_kwh, 0.0);
  EXPECT_GT(ep->fe_kwh, 0.0);
  EXPECT_LE(ep->fe_kwh, mr->fe_kwh);
}

// The firewall enforces exactly the plan the climber produced, slot by
// slot, when driven manually (the controller path).
TEST(PipelineIntegrationTest, FirewallEnforcesPlannerVerdicts) {
  devices::DeviceRegistry registry;
  const auto ac = *registry.Add("ac", devices::DeviceKind::kHvac, 0);
  firewall::MetaControlFirewall fw(&registry);

  core::SlotProblem problem;
  problem.n_rules = 2;
  problem.budget_kwh = 0.3;
  problem.groups = {{10.0, devices::CommandType::kSetTemperature}};
  for (int i = 0; i < 2; ++i) {
    core::ActiveRule rule;
    rule.rule_index = i;
    rule.group = 0;
    rule.type = devices::CommandType::kSetTemperature;
    rule.desired = 20.0 + i;
    rule.energy_kwh = 0.25;
    rule.drop_error = 0.5;
    problem.active.push_back(rule);
  }
  core::SlotEvaluator evaluator(&problem);
  core::HillClimbingPlanner planner;
  Rng rng(3);
  const core::PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  // Budget 0.3 fits only one of the two same-device rules... but sharing a
  // device means the winner alone consumes: both adopted is also feasible.
  ASSERT_TRUE(outcome.feasible);

  std::vector<int> dropped;
  for (int i = 0; i < 2; ++i) {
    if (!outcome.solution.adopted(static_cast<size_t>(i))) dropped.push_back(i);
  }
  fw.SetDroppedRules(dropped);
  int accepted = 0;
  for (int i = 0; i < 2; ++i) {
    devices::ActuationCommand cmd;
    cmd.device = ac;
    cmd.type = devices::CommandType::kSetTemperature;
    cmd.value = 20.0 + i;
    cmd.rule_id = i;
    cmd.source = "mrt";
    if (fw.Filter(cmd).verdict == firewall::Verdict::kAccept) ++accepted;
  }
  EXPECT_EQ(accepted,
            static_cast<int>(outcome.solution.CountAdopted()));
}

// Storage round trip at "dataset" scale: the prototype study with a real
// on-disk store behaves identically to the in-memory run.
TEST(PipelineIntegrationTest, PrototypeWithAndWithoutStoreAgree) {
  const std::string dir = ::testing::TempDir() + "/imcf_e2e_store";
  std::filesystem::remove_all(dir);
  controller::PrototypeOptions with_store;
  with_store.store_dir = dir;
  const auto a = controller::PrototypeStudy(with_store).Run();
  const auto b =
      controller::PrototypeStudy(controller::PrototypeOptions{}).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->fe_kwh, b->fe_kwh);
  EXPECT_DOUBLE_EQ(a->fce_pct, b->fce_pct);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace imcf
