#include "rules/trigger_rule.h"

#include <gtest/gtest.h>

namespace imcf {
namespace rules {
namespace {

EvaluationContext WinterCloudyNight() {
  EvaluationContext ctx;
  ctx.time = FromCivil(2014, 1, 10, 22);
  ctx.weather.season = weather::Season::kWinter;
  ctx.weather.sky = weather::Sky::kCloudy;
  ctx.ambient_temp_c = 12.0;
  ctx.ambient_light_pct = 2.0;
  ctx.door_open = false;
  return ctx;
}

EvaluationContext SummerSunnyNoon() {
  EvaluationContext ctx;
  ctx.time = FromCivil(2014, 7, 10, 13);
  ctx.weather.season = weather::Season::kSummer;
  ctx.weather.sky = weather::Sky::kSunny;
  ctx.ambient_temp_c = 28.0;
  ctx.ambient_light_pct = 55.0;
  ctx.door_open = false;
  return ctx;
}

TEST(TriggerRuleTest, SeasonMatch) {
  const TriggerRule rule = TriggerRule::OnSeason(
      weather::Season::kWinter, RuleAction::kSetTemperature, 20.0);
  EXPECT_TRUE(rule.Matches(WinterCloudyNight()));
  EXPECT_FALSE(rule.Matches(SummerSunnyNoon()));
}

TEST(TriggerRuleTest, WeatherMatch) {
  const TriggerRule rule =
      TriggerRule::OnWeather(weather::Sky::kSunny, RuleAction::kSetLight, 0.0);
  EXPECT_FALSE(rule.Matches(WinterCloudyNight()));
  EXPECT_TRUE(rule.Matches(SummerSunnyNoon()));
}

TEST(TriggerRuleTest, NumericThresholds) {
  const TriggerRule hot = TriggerRule::OnTemperature(
      TriggerOp::kGreaterThan, 30.0, RuleAction::kSetTemperature, 23.0);
  EvaluationContext ctx = SummerSunnyNoon();
  EXPECT_FALSE(hot.Matches(ctx));  // 28 is not > 30
  ctx.ambient_temp_c = 31.0;
  EXPECT_TRUE(hot.Matches(ctx));

  const TriggerRule cold = TriggerRule::OnTemperature(
      TriggerOp::kLessThan, 10.0, RuleAction::kSetTemperature, 24.0);
  EXPECT_FALSE(cold.Matches(ctx));
  ctx.ambient_temp_c = 5.0;
  EXPECT_TRUE(cold.Matches(ctx));

  const TriggerRule bright = TriggerRule::OnLightLevel(
      TriggerOp::kGreaterThan, 15.0, RuleAction::kSetLight, 9.0);
  EXPECT_TRUE(bright.Matches(SummerSunnyNoon()));
  EXPECT_FALSE(bright.Matches(WinterCloudyNight()));
}

TEST(TriggerRuleTest, DoorMatch) {
  const TriggerRule rule =
      TriggerRule::OnDoor(true, RuleAction::kSetLight, 0.0);
  EvaluationContext ctx = SummerSunnyNoon();
  EXPECT_FALSE(rule.Matches(ctx));
  ctx.door_open = true;
  EXPECT_TRUE(rule.Matches(ctx));
}

TEST(TriggerRuleTest, ToStringIsReadable) {
  EXPECT_EQ(TriggerRule::OnSeason(weather::Season::kSummer,
                                  RuleAction::kSetTemperature, 25.0)
                .ToString(),
            "IF Season Summer THEN Set Temperature 25");
  EXPECT_EQ(TriggerRule::OnTemperature(TriggerOp::kGreaterThan, 30.0,
                                       RuleAction::kSetTemperature, 23.0)
                .ToString(),
            "IF Temperature >30 THEN Set Temperature 23");
  EXPECT_EQ(TriggerRule::OnDoor(true, RuleAction::kSetLight, 0.0).ToString(),
            "IF Door Open THEN Set Light 0");
}

TEST(FlatIftttTest, HasTableIIIRows) {
  const TriggerRuleTable table = FlatIfttt();
  EXPECT_EQ(table.size(), 10u);
}

TEST(FlatIftttTest, WinterCloudyNightDecision) {
  const TriggerRuleTable table = FlatIfttt();
  // Matching rows in order: Winter->20, Cloudy->22, Cloudy light->40.
  const TriggerDecision last =
      table.Evaluate(WinterCloudyNight(), MatchPolicy::kLastMatch);
  ASSERT_TRUE(last.temperature.has_value());
  EXPECT_DOUBLE_EQ(*last.temperature, 22.0);  // cloudy row overrides winter
  ASSERT_TRUE(last.light.has_value());
  EXPECT_DOUBLE_EQ(*last.light, 40.0);

  const TriggerDecision first =
      table.Evaluate(WinterCloudyNight(), MatchPolicy::kFirstMatch);
  EXPECT_DOUBLE_EQ(*first.temperature, 20.0);  // winter row wins
  EXPECT_DOUBLE_EQ(*first.light, 40.0);
}

TEST(FlatIftttTest, SummerSunnyNoonDecision) {
  const TriggerRuleTable table = FlatIfttt();
  // Matching: Summer->25, Sunny->20, Sunny light->0, L>15->9.
  const TriggerDecision last =
      table.Evaluate(SummerSunnyNoon(), MatchPolicy::kLastMatch);
  EXPECT_DOUBLE_EQ(*last.temperature, 20.0);
  EXPECT_DOUBLE_EQ(*last.light, 9.0);  // light-level row is last
  const TriggerDecision first =
      table.Evaluate(SummerSunnyNoon(), MatchPolicy::kFirstMatch);
  EXPECT_DOUBLE_EQ(*first.temperature, 25.0);
  EXPECT_DOUBLE_EQ(*first.light, 0.0);
}

TEST(FlatIftttTest, DoorOverridesLightUnderLastMatch) {
  const TriggerRuleTable table = FlatIfttt();
  EvaluationContext ctx = SummerSunnyNoon();
  ctx.door_open = true;
  const TriggerDecision d = table.Evaluate(ctx, MatchPolicy::kLastMatch);
  EXPECT_DOUBLE_EQ(*d.light, 0.0);  // door row is the last light writer
}

TEST(FlatIftttTest, ExtremeTemperatureRows) {
  const TriggerRuleTable table = FlatIfttt();
  EvaluationContext ctx = SummerSunnyNoon();
  ctx.ambient_temp_c = 32.0;
  EXPECT_DOUBLE_EQ(
      *table.Evaluate(ctx, MatchPolicy::kLastMatch).temperature, 23.0);
  ctx = WinterCloudyNight();
  ctx.ambient_temp_c = 8.0;
  EXPECT_DOUBLE_EQ(
      *table.Evaluate(ctx, MatchPolicy::kLastMatch).temperature, 24.0);
}

TEST(TriggerTableTest, NoMatchYieldsEmptyDecision) {
  TriggerRuleTable table;
  table.Add(TriggerRule::OnDoor(true, RuleAction::kSetLight, 0.0));
  const TriggerDecision d = table.Evaluate(SummerSunnyNoon());
  EXPECT_FALSE(d.temperature.has_value());
  EXPECT_FALSE(d.light.has_value());
}

TEST(TriggerTableTest, SpringHasNoSeasonTemperatureRow) {
  const TriggerRuleTable table = FlatIfttt();
  EvaluationContext ctx;
  ctx.weather.season = weather::Season::kSpring;
  ctx.weather.sky = weather::Sky::kSunny;
  ctx.ambient_temp_c = 20.0;
  ctx.ambient_light_pct = 10.0;
  const TriggerDecision first =
      table.Evaluate(ctx, MatchPolicy::kFirstMatch);
  // First match for temperature is the Sunny row (no Spring season row).
  EXPECT_DOUBLE_EQ(*first.temperature, 20.0);
}

}  // namespace
}  // namespace rules
}  // namespace imcf
