#include "rules/parser.h"

#include <gtest/gtest.h>

namespace imcf {
namespace rules {
namespace {

TEST(MetaRuleParseTest, BasicLine) {
  const auto rule =
      ParseMetaRuleLine("Night Heat | 01:00 - 07:00 | Set Temperature | 25");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->description, "Night Heat");
  EXPECT_EQ(rule->window, (TimeWindow{60, 420}));
  EXPECT_EQ(rule->action, RuleAction::kSetTemperature);
  EXPECT_DOUBLE_EQ(rule->value, 25.0);
  EXPECT_EQ(rule->unit, 0);
  EXPECT_FALSE(rule->necessity);
}

TEST(MetaRuleParseTest, ActionAliases) {
  EXPECT_EQ(ParseMetaRuleLine("x | 01:00-02:00 | temp | 22")->action,
            RuleAction::kSetTemperature);
  EXPECT_EQ(ParseMetaRuleLine("x | 01:00-02:00 | light | 30")->action,
            RuleAction::kSetLight);
  EXPECT_EQ(ParseMetaRuleLine("x | 01:00-02:00 | SET LIGHT | 30")->action,
            RuleAction::kSetLight);
}

TEST(MetaRuleParseTest, KwhLimitRowIgnoresWindow) {
  const auto rule = ParseMetaRuleLine(
      "Energy Flat | for three years | Set kWh Limit | 11000");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->action, RuleAction::kSetKwhLimit);
  EXPECT_DOUBLE_EQ(rule->value, 11000.0);
  EXPECT_TRUE(rule->necessity);
}

TEST(MetaRuleParseTest, ExtraFields) {
  const auto rule = ParseMetaRuleLine(
      "Dorm Heat | 08:00 - 16:00 | temp | 22 | unit=7 | user=Alice | "
      "priority=2");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->unit, 7);
  EXPECT_EQ(rule->user, "Alice");
  EXPECT_EQ(rule->priority, 2);
}

TEST(MetaRuleParseTest, NecessityFlag) {
  const auto rule = ParseMetaRuleLine(
      "Freezer | 00:00 - 24:00 | temp | 20 | necessity=true");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->necessity);
}

TEST(MetaRuleParseTest, Rejections) {
  EXPECT_FALSE(ParseMetaRuleLine("too | few").ok());
  EXPECT_FALSE(ParseMetaRuleLine("x | not-a-window | temp | 22").ok());
  EXPECT_FALSE(ParseMetaRuleLine("x | 01:00-02:00 | explode | 22").ok());
  EXPECT_FALSE(ParseMetaRuleLine("x | 01:00-02:00 | temp | abc").ok());
  EXPECT_FALSE(ParseMetaRuleLine("x | 01:00-02:00 | light | 150").ok());
  EXPECT_FALSE(
      ParseMetaRuleLine("x | 01:00-02:00 | temp | 22 | bogus=1").ok());
}

TEST(MetaRuleParseTest, RejectsMissingOrEmptyFields) {
  EXPECT_TRUE(
      ParseMetaRuleLine("x | 01:00-02:00 | temp").status().IsInvalidArgument());
  EXPECT_TRUE(ParseMetaRuleLine("").status().IsInvalidArgument());
  // A line with the right arity but an empty description is still malformed.
  EXPECT_TRUE(ParseMetaRuleLine(" | 01:00-02:00 | temp | 22")
                  .status()
                  .IsInvalidArgument());
}

TEST(MetaRuleParseTest, RejectsNonNumericAndNonFiniteValues) {
  EXPECT_FALSE(ParseMetaRuleLine("x | 01:00-02:00 | temp | 22C").ok());
  EXPECT_TRUE(ParseMetaRuleLine("x | 01:00-02:00 | temp | inf")
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(ParseMetaRuleLine("x | 01:00-02:00 | temp | nan")
                  .status()
                  .IsOutOfRange());
  EXPECT_FALSE(ParseMetaRuleLine("x | 01:00-02:00 | temp | 22 | unit=two").ok());
}

TEST(MetaRuleParseTest, RejectsOutOfRangeValues) {
  // 25:00 is not a clock time.
  EXPECT_TRUE(ParseMetaRuleLine("x | 25:00-26:00 | temp | 22")
                  .status()
                  .IsOutOfRange());
  // A 100 C room setpoint is a corrupt row, not a preference.
  EXPECT_TRUE(
      ParseMetaRuleLine("x | 01:00-02:00 | temp | 100").status().IsOutOfRange());
  EXPECT_TRUE(ParseMetaRuleLine("x | 01:00-02:00 | temp | -100")
                  .status()
                  .IsOutOfRange());
  // Negative units would index off the dataset.
  EXPECT_TRUE(ParseMetaRuleLine("x | 01:00-02:00 | temp | 22 | unit=-1")
                  .status()
                  .IsOutOfRange());
  // A zero or negative kWh budget makes every plan infeasible.
  EXPECT_TRUE(
      ParseMetaRuleLine("x | forever | kwh | 0").status().IsOutOfRange());
  EXPECT_TRUE(
      ParseMetaRuleLine("x | forever | kwh | -5").status().IsOutOfRange());
}

TEST(IftttParseTest, RejectsNonFiniteNumbers) {
  EXPECT_TRUE(ParseTriggerRuleLine("Temperature | >30 | temp | inf")
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(ParseTriggerRuleLine("Temperature | >inf | temp | 22")
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(ParseTriggerRuleLine("Light Level | >nan | light | 9")
                  .status()
                  .IsOutOfRange());
}

TEST(MrtParseTest, DocumentWithCommentsAndBlanks) {
  const char* text = R"(
# Table II (flat experiments)
Night Heat      | 01:00 - 07:00 | Set Temperature | 25
Morning Lights  | 04:00 - 09:00 | Set Light       | 40

# long-term constraint
Energy Flat     | for three years | Set kWh Limit | 11000
)";
  const auto mrt = ParseMrt(text);
  ASSERT_TRUE(mrt.ok());
  EXPECT_EQ(mrt->size(), 3u);
  EXPECT_EQ(mrt->convenience_count(), 2u);
  EXPECT_DOUBLE_EQ(mrt->TotalKwhLimit().value(), 11000.0);
}

TEST(MrtParseTest, ErrorsCarryOffendingLine) {
  const auto mrt = ParseMrt("good | 01:00-02:00 | temp | 22\nbad line\n");
  ASSERT_FALSE(mrt.ok());
  EXPECT_NE(mrt.status().message().find("bad line"), std::string::npos);
}

TEST(MrtFormatTest, RoundTripsFlatTable) {
  const MetaRuleTable mrt = FlatMrt(11000.0);
  const std::string text = FormatMrt(mrt);
  const auto parsed = ParseMrt(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), mrt.size());
  for (size_t i = 0; i < mrt.size(); ++i) {
    EXPECT_EQ(parsed->rules()[i].description, mrt.rules()[i].description);
    EXPECT_EQ(parsed->rules()[i].action, mrt.rules()[i].action);
    EXPECT_DOUBLE_EQ(parsed->rules()[i].value, mrt.rules()[i].value);
    if (mrt.rules()[i].IsConvenience()) {
      EXPECT_EQ(parsed->rules()[i].window, mrt.rules()[i].window);
    }
  }
}

TEST(MrtFormatTest, PreservesUnitAndUser) {
  MetaRule rule;
  rule.description = "Dorm Rule";
  rule.window = TimeWindow{480, 960};
  rule.action = RuleAction::kSetTemperature;
  rule.value = 21.5;
  rule.unit = 42;
  rule.user = "Bob";
  const auto parsed = ParseMetaRuleLine(FormatMetaRule(rule));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->unit, 42);
  EXPECT_EQ(parsed->user, "Bob");
  EXPECT_DOUBLE_EQ(parsed->value, 21.5);
}

TEST(IftttParseTest, SeasonRule) {
  const auto rule =
      ParseTriggerRuleLine("Season | Summer | Set Temperature | 25");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->field, TriggerField::kSeason);
  EXPECT_EQ(rule->season, weather::Season::kSummer);
  EXPECT_DOUBLE_EQ(rule->action_value, 25.0);
}

TEST(IftttParseTest, WeatherRule) {
  const auto rule = ParseTriggerRuleLine("Weather | Cloudy | Set Light | 40");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->field, TriggerField::kWeather);
  EXPECT_EQ(rule->sky, weather::Sky::kCloudy);
  EXPECT_EQ(rule->action, RuleAction::kSetLight);
}

TEST(IftttParseTest, ThresholdRules) {
  const auto gt =
      ParseTriggerRuleLine("Temperature | >30 | Set Temperature | 23");
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt->op, TriggerOp::kGreaterThan);
  EXPECT_DOUBLE_EQ(gt->threshold, 30.0);

  const auto lt =
      ParseTriggerRuleLine("Temperature | <10 | Set Temperature | 24");
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->op, TriggerOp::kLessThan);

  const auto light = ParseTriggerRuleLine("Light Level | >15 | Set Light | 9");
  ASSERT_TRUE(light.ok());
  EXPECT_EQ(light->field, TriggerField::kLightLevel);
}

TEST(IftttParseTest, DoorRule) {
  const auto rule = ParseTriggerRuleLine("Door | Open | Set Light | 0");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->field, TriggerField::kDoor);
  EXPECT_TRUE(rule->door_open);
  const auto closed = ParseTriggerRuleLine("Door | Closed | Set Light | 40");
  ASSERT_TRUE(closed.ok());
  EXPECT_FALSE(closed->door_open);
}

TEST(IftttParseTest, Rejections) {
  EXPECT_FALSE(ParseTriggerRuleLine("Season | Monsoon | temp | 25").ok());
  EXPECT_FALSE(ParseTriggerRuleLine("Weather | Hail | temp | 25").ok());
  EXPECT_FALSE(ParseTriggerRuleLine("Door | ajar | light | 0").ok());
  EXPECT_FALSE(ParseTriggerRuleLine("Quantum | >3 | temp | 22").ok());
  EXPECT_FALSE(ParseTriggerRuleLine("Temperature | >x | temp | 22").ok());
  EXPECT_FALSE(ParseTriggerRuleLine("only | three | fields").ok());
}

TEST(IftttParseTest, DocumentMatchesTableIII) {
  // Table III re-entered through the text format must equal FlatIfttt().
  const char* text = R"(
Season      | Summer | Set Temperature | 25
Season      | Winter | Set Temperature | 20
Weather     | Sunny  | Set Temperature | 20
Weather     | Cloudy | Set Temperature | 22
Weather     | Sunny  | Set Light       | 0
Weather     | Cloudy | Set Light       | 40
Temperature | >30    | Set Temperature | 23
Temperature | <10    | Set Temperature | 24
Light Level | >15    | Set Light       | 9
Door        | Open   | Set Light       | 0
)";
  const auto parsed = ParseIfttt(text);
  ASSERT_TRUE(parsed.ok());
  const TriggerRuleTable reference = FlatIfttt();
  ASSERT_EQ(parsed->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(parsed->rules()[i].ToString(),
              reference.rules()[i].ToString())
        << "row " << i;
  }
}

}  // namespace
}  // namespace rules
}  // namespace imcf
