#include "rules/conflict.h"

#include <gtest/gtest.h>

namespace imcf {
namespace rules {
namespace {

MetaRule TempRule(const char* description, int start_h, int end_h,
                  double value, int unit = 0) {
  MetaRule rule;
  rule.description = description;
  rule.window = TimeWindow{start_h * 60, end_h * 60};
  rule.action = RuleAction::kSetTemperature;
  rule.value = value;
  rule.unit = unit;
  return rule;
}

TEST(WindowOverlapTest, LinearWindows) {
  EXPECT_EQ(WindowOverlapMinutes({60, 420}, {240, 540}), 180);
  EXPECT_EQ(WindowOverlapMinutes({60, 420}, {420, 540}), 0);  // adjacent
  EXPECT_EQ(WindowOverlapMinutes({60, 420}, {500, 540}), 0);
  EXPECT_EQ(WindowOverlapMinutes({0, 1440}, {600, 660}), 60);
  EXPECT_EQ(WindowOverlapMinutes({100, 200}, {100, 200}), 100);
}

TEST(WindowOverlapTest, WrappingWindows) {
  // 22:00-06:00 vs 05:00-09:00 -> 60 minutes (05:00-06:00).
  EXPECT_EQ(WindowOverlapMinutes({22 * 60, 6 * 60}, {5 * 60, 9 * 60}), 60);
  // Two wrapping windows: 22:00-06:00 vs 23:00-01:00 -> 120.
  EXPECT_EQ(WindowOverlapMinutes({22 * 60, 6 * 60}, {23 * 60, 1 * 60}), 120);
  // Empty window overlaps nothing.
  EXPECT_EQ(WindowOverlapMinutes({300, 300}, {0, 1440}), 0);
}

TEST(ConflictTest, FlatTableIsClean) {
  const auto conflicts = FindWindowConflicts(FlatMrt());
  EXPECT_TRUE(conflicts.empty()) << FormatConflicts(conflicts);
}

TEST(ConflictTest, DetectsClash) {
  MetaRuleTable table;
  ASSERT_TRUE(table.Add(TempRule("Day Heat", 8, 16, 22.0)).ok());
  ASSERT_TRUE(table.Add(TempRule("Lunch Boost", 12, 14, 25.0)).ok());
  const auto conflicts = FindWindowConflicts(table);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].kind, ConflictKind::kClash);
  EXPECT_EQ(conflicts[0].rule_a, 0);
  EXPECT_EQ(conflicts[0].rule_b, 1);
  EXPECT_EQ(conflicts[0].overlap_minutes, 120);
  EXPECT_DOUBLE_EQ(conflicts[0].severity, 3.0);
}

TEST(ConflictTest, DetectsShadowedRule) {
  MetaRuleTable table;
  ASSERT_TRUE(table.Add(TempRule("Morning", 6, 12, 22.0)).ok());
  ASSERT_TRUE(table.Add(TempRule("Morning Duplicate", 8, 10, 22.0)).ok());
  const auto conflicts = FindWindowConflicts(table);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].kind, ConflictKind::kShadowed);
}

TEST(ConflictTest, DifferentDevicesOrUnitsDoNotConflict) {
  MetaRuleTable table;
  ASSERT_TRUE(table.Add(TempRule("Heat A", 8, 16, 22.0, /*unit=*/0)).ok());
  ASSERT_TRUE(table.Add(TempRule("Heat B", 8, 16, 25.0, /*unit=*/1)).ok());
  MetaRule light;
  light.description = "Light";
  light.window = TimeWindow{8 * 60, 16 * 60};
  light.action = RuleAction::kSetLight;
  light.value = 40.0;
  ASSERT_TRUE(table.Add(light).ok());
  EXPECT_TRUE(FindWindowConflicts(table).empty());
}

TEST(ConflictTest, VariedDormTablesHaveClashes) {
  // Uniform random window shifts push same-device windows into overlap.
  const MetaRuleTable dorms = VariedMrt(50, 1.0, 13);
  const auto conflicts = FindWindowConflicts(dorms);
  EXPECT_GT(conflicts.size(), 10u);
  for (const Conflict& conflict : conflicts) {
    EXPECT_NE(conflict.kind, ConflictKind::kBudgetInfeasible);
    EXPECT_GT(conflict.overlap_minutes, 0);
  }
}

TEST(BudgetFeasibilityTest, FlagsOverCommittedTable) {
  const MetaRuleTable table = FlatMrt();
  // Every rule-hour costs 1 kWh: Table II covers 39 rule-hours/day, but
  // winners only (21 temp + 18 light are disjoint) => 39 kWh/day.
  const auto energy = [](const MetaRule&, int) { return 1.0; };
  // Budget 30 kWh/day: infeasible.
  const auto bad = CheckBudgetFeasibility(table, 300.0, 10, energy);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].kind, ConflictKind::kBudgetInfeasible);
  EXPECT_NEAR(bad[0].severity, 9.0, 1e-9);
  // Budget 50 kWh/day: fine.
  EXPECT_TRUE(CheckBudgetFeasibility(table, 500.0, 10, energy).empty());
}

TEST(BudgetFeasibilityTest, WinnersNotDoubleCounted) {
  MetaRuleTable table;
  ASSERT_TRUE(table.Add(TempRule("A", 8, 16, 22.0)).ok());
  ASSERT_TRUE(table.Add(TempRule("B", 8, 16, 24.0)).ok());  // same device
  const auto energy = [](const MetaRule&, int) { return 1.0; };
  // Only the winner runs: 8 kWh/day, so a 9 kWh/day budget is feasible.
  EXPECT_TRUE(CheckBudgetFeasibility(table, 90.0, 10, energy).empty());
  // 7 kWh/day is not.
  EXPECT_EQ(CheckBudgetFeasibility(table, 70.0, 10, energy).size(), 1u);
}

TEST(BudgetFeasibilityTest, NecessityRulesCounted) {
  MetaRuleTable table;
  MetaRule necessity = TempRule("Server Room", 0, 24, 18.0);
  necessity.necessity = true;
  ASSERT_TRUE(table.Add(necessity).ok());
  const auto energy = [](const MetaRule&, int) { return 1.0; };
  // 24 kWh/day of necessity load vs 20 kWh/day budget.
  const auto conflicts = CheckBudgetFeasibility(table, 200.0, 10, energy);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_NEAR(conflicts[0].severity, 4.0, 1e-9);
}

TEST(BudgetFeasibilityTest, DegenerateInputs) {
  const auto energy = [](const MetaRule&, int) { return 1.0; };
  EXPECT_TRUE(CheckBudgetFeasibility(FlatMrt(), 0.0, 10, energy).empty());
  EXPECT_TRUE(CheckBudgetFeasibility(FlatMrt(), 100.0, 0, energy).empty());
}

TEST(FormatConflictsTest, Readable) {
  EXPECT_EQ(FormatConflicts({}), "no conflicts detected\n");
  MetaRuleTable table;
  ASSERT_TRUE(table.Add(TempRule("A", 8, 16, 22.0)).ok());
  ASSERT_TRUE(table.Add(TempRule("B", 12, 14, 25.0)).ok());
  const std::string report = FormatConflicts(FindWindowConflicts(table));
  EXPECT_NE(report.find("[clash]"), std::string::npos);
  EXPECT_NE(report.find("'A'"), std::string::npos);
}

TEST(ConflictKindTest, Names) {
  EXPECT_STREQ(ConflictKindName(ConflictKind::kClash), "clash");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kShadowed), "shadowed");
  EXPECT_STREQ(ConflictKindName(ConflictKind::kBudgetInfeasible),
               "budget-infeasible");
}

}  // namespace
}  // namespace rules
}  // namespace imcf
