#include "rules/meta_rule.h"

#include <gtest/gtest.h>

namespace imcf {
namespace rules {
namespace {

TEST(FlatMrtTest, MatchesTableII) {
  const MetaRuleTable mrt = FlatMrt();
  ASSERT_EQ(mrt.size(), 6u);
  ASSERT_EQ(mrt.convenience_count(), 6u);

  const MetaRule& night_heat = mrt.ConvenienceRule(0);
  EXPECT_EQ(night_heat.description, "Night Heat");
  EXPECT_EQ(night_heat.window, (TimeWindow{60, 420}));
  EXPECT_EQ(night_heat.action, RuleAction::kSetTemperature);
  EXPECT_DOUBLE_EQ(night_heat.value, 25.0);

  const MetaRule& cosmetic = mrt.ConvenienceRule(5);
  EXPECT_EQ(cosmetic.description, "Cosmetic Lights");
  EXPECT_EQ(cosmetic.window, (TimeWindow{1080, 1440}));
  EXPECT_EQ(cosmetic.action, RuleAction::kSetLight);
  EXPECT_DOUBLE_EQ(cosmetic.value, 40.0);

  EXPECT_EQ(mrt.ConvenienceRule(2).description, "Day Heat");
  EXPECT_DOUBLE_EQ(mrt.ConvenienceRule(2).value, 22.0);
  EXPECT_EQ(mrt.ConvenienceRule(3).description, "Midday Lights");
  EXPECT_EQ(mrt.ConvenienceRule(4).description, "Afternoon Preheat");
  EXPECT_DOUBLE_EQ(mrt.ConvenienceRule(4).value, 24.0);
}

TEST(FlatMrtTest, BudgetRowIsNecessityNotConvenience) {
  const MetaRuleTable mrt = FlatMrt(11000.0);
  EXPECT_EQ(mrt.size(), 7u);
  EXPECT_EQ(mrt.convenience_count(), 6u);
  const auto limit = mrt.TotalKwhLimit();
  ASSERT_TRUE(limit.has_value());
  EXPECT_DOUBLE_EQ(*limit, 11000.0);
  EXPECT_FALSE(FlatMrt().TotalKwhLimit().has_value());
}

TEST(MetaRuleTableTest, ActiveAtFollowsWindows) {
  const MetaRuleTable mrt = FlatMrt();
  // 03:00 — only Night Heat (01:00-07:00).
  EXPECT_EQ(mrt.ActiveAt(FromCivil(2014, 1, 5, 3)), (std::vector<int>{0}));
  // 05:00 — Night Heat + Morning Lights (04:00-09:00).
  EXPECT_EQ(mrt.ActiveAt(FromCivil(2014, 1, 5, 5)),
            (std::vector<int>{0, 1}));
  // 12:00 — Day Heat + Midday Lights.
  EXPECT_EQ(mrt.ActiveAt(FromCivil(2014, 1, 5, 12)),
            (std::vector<int>{2, 3}));
  // 20:00 — Afternoon Preheat + Cosmetic Lights.
  EXPECT_EQ(mrt.ActiveAt(FromCivil(2014, 1, 5, 20)),
            (std::vector<int>{4, 5}));
  // 00:30 — nothing.
  EXPECT_TRUE(mrt.ActiveAt(FromCivil(2014, 1, 5, 0, 30)).empty());
}

TEST(MetaRuleTableTest, AddValidatesValues) {
  MetaRuleTable table;
  MetaRule bad_light;
  bad_light.action = RuleAction::kSetLight;
  bad_light.value = 150.0;
  EXPECT_TRUE(table.Add(bad_light).IsInvalidArgument());

  MetaRule bad_budget;
  bad_budget.action = RuleAction::kSetKwhLimit;
  bad_budget.value = -5.0;
  EXPECT_TRUE(table.Add(bad_budget).IsInvalidArgument());
  EXPECT_EQ(table.size(), 0u);
}

TEST(MetaRuleTableTest, GetById) {
  const MetaRuleTable mrt = FlatMrt();
  const auto rule = mrt.Get(2);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ((*rule)->description, "Day Heat");
  EXPECT_TRUE(mrt.Get(99).status().IsNotFound());
  EXPECT_TRUE(mrt.Get(-1).status().IsNotFound());
}

TEST(MetaRuleTest, TargetMappings) {
  const MetaRuleTable mrt = FlatMrt();
  EXPECT_EQ(mrt.ConvenienceRule(0).TargetKind(), devices::DeviceKind::kHvac);
  EXPECT_EQ(mrt.ConvenienceRule(1).TargetKind(), devices::DeviceKind::kLight);
  EXPECT_EQ(mrt.ConvenienceRule(0).TargetCommand(),
            devices::CommandType::kSetTemperature);
  EXPECT_EQ(mrt.ConvenienceRule(1).TargetCommand(),
            devices::CommandType::kSetLight);
}

TEST(VariedMrtTest, ZeroVariationReproducesFlatTable) {
  const MetaRuleTable flat = FlatMrt();
  const MetaRuleTable varied = VariedMrt(1, 0.0, 123);
  ASSERT_EQ(varied.convenience_count(), flat.convenience_count());
  for (size_t i = 0; i < flat.convenience_count(); ++i) {
    EXPECT_EQ(varied.ConvenienceRule(i).window, flat.ConvenienceRule(i).window);
    EXPECT_DOUBLE_EQ(varied.ConvenienceRule(i).value,
                     flat.ConvenienceRule(i).value);
  }
}

TEST(VariedMrtTest, PerUnitCopies) {
  const MetaRuleTable mrt = VariedMrt(4, 0.5, 11);
  EXPECT_EQ(mrt.convenience_count(), 24u);
  for (size_t i = 0; i < mrt.convenience_count(); ++i) {
    EXPECT_EQ(mrt.ConvenienceRule(i).unit, static_cast<int>(i / 6));
  }
}

TEST(VariedMrtTest, VariationPerturbsButStaysValid) {
  const MetaRuleTable flat = FlatMrt();
  const MetaRuleTable mrt = VariedMrt(50, 1.0, 13);
  int changed_values = 0;
  for (size_t i = 0; i < mrt.convenience_count(); ++i) {
    const MetaRule& rule = mrt.ConvenienceRule(i);
    const MetaRule& base = flat.ConvenienceRule(i % 6);
    if (rule.action == RuleAction::kSetTemperature) {
      EXPECT_GE(rule.value, 18.0);
      EXPECT_LE(rule.value, 27.0);
      EXPECT_NEAR(rule.value, base.value, 3.0 + 1e-9);
    } else {
      EXPECT_GE(rule.value, 5.0);
      EXPECT_LE(rule.value, 100.0);
      EXPECT_NEAR(rule.value, base.value, 20.0 + 1e-9);
    }
    // Windows shifted by at most ±60 minutes, still sane.
    EXPECT_GE(rule.window.start_minute, 0);
    EXPECT_LE(rule.window.end_minute, kMinutesPerDay);
    EXPECT_GE(rule.window.DurationMinutes(), 30);
    if (rule.value != base.value) ++changed_values;
  }
  EXPECT_GT(changed_values, 250);  // nearly all of the 300 rules perturbed
}

TEST(VariedMrtTest, DeterministicInSeed) {
  const MetaRuleTable a = VariedMrt(4, 0.5, 99);
  const MetaRuleTable b = VariedMrt(4, 0.5, 99);
  const MetaRuleTable c = VariedMrt(4, 0.5, 100);
  int same_as_c = 0;
  for (size_t i = 0; i < a.convenience_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.ConvenienceRule(i).value, b.ConvenienceRule(i).value);
    if (a.ConvenienceRule(i).value == c.ConvenienceRule(i).value) {
      ++same_as_c;
    }
  }
  EXPECT_LT(same_as_c, 6);
}

TEST(RuleActionTest, Names) {
  EXPECT_STREQ(RuleActionName(RuleAction::kSetTemperature),
               "Set Temperature");
  EXPECT_STREQ(RuleActionName(RuleAction::kSetLight), "Set Light");
  EXPECT_STREQ(RuleActionName(RuleAction::kSetKwhLimit), "Set kWh Limit");
}

}  // namespace
}  // namespace rules
}  // namespace imcf
