// Fleet cost-attribution and SLO integration: the ledger's deterministic
// fields must be bit-identical at 1/4/8 workers (the accounting extension
// of the fleet determinism contract), phases must land where the work
// happened, and drains must feed the SLO windows.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/strings.h"
#include "obs/accounting/cost_ledger.h"
#include "obs/slo/slo_engine.h"
#include "serve/fleet_service.h"
#include "trace/dataset.h"

namespace imcf {
namespace serve {
namespace {

constexpr int kTenants = 5;

TenantConfig ConfigAt(int index) {
  TenantConfig config;
  config.id = StrFormat("t%d", index);
  config.seed = 500 + static_cast<uint64_t>(index);
  config.hours = 24;
  config.appetite = 0.8 + 0.1 * index;
  return config;
}

Result<std::unique_ptr<FleetService>> MakeFleet(int workers,
                                                FleetOptions options = {}) {
  options.shards = 4;
  options.workers = workers;
  auto service = FleetService::Create(std::move(options));
  if (service.ok()) {
    for (int i = 0; i < kTenants; ++i) {
      EXPECT_TRUE((*service)->AddTenant(ConfigAt(i)).ok());
    }
  }
  return service;
}

/// One mixed workload: plans, a command, a query, and a planted expiry.
void SubmitWorkload(FleetService& service, SimTime start) {
  for (int i = 0; i < kTenants; ++i) {
    Request plan;
    plan.tenant = StrFormat("t%d", i);
    plan.kind = RequestKind::kPlan;
    plan.issue_time = start;
    plan.plan.policy = sim::Policy::kEnergyPlanner;
    EXPECT_FALSE(service.Submit(std::move(plan)).has_value());
  }
  Request command;
  command.tenant = "t0";
  command.kind = RequestKind::kCommand;
  command.issue_time = start;
  command.command.value = 21.0;
  EXPECT_FALSE(service.Submit(std::move(command)).has_value());
  Request query;
  query.tenant = "t1";
  query.kind = RequestKind::kQuery;
  query.issue_time = start;
  EXPECT_FALSE(service.Submit(std::move(query)).has_value());
  Request doomed;
  doomed.tenant = "t2";
  doomed.kind = RequestKind::kPlan;
  doomed.issue_time = start;
  doomed.deadline = start + 1;  // expires before the drain below
  EXPECT_FALSE(service.Submit(std::move(doomed)).has_value());
}

#if IMCF_ACCOUNTING_ENABLED

std::string LedgerWitness(int workers) {
  auto service = MakeFleet(workers);
  EXPECT_TRUE(service.ok());
  const SimTime start = trace::EvaluationStart();
  SubmitWorkload(**service, start);
  (void)(*service)->Drain(start + kSecondsPerHour);
  return (*service)->cost_ledger().CanonicalText();
}

TEST(FleetAccountingTest, LedgerBitIdenticalAtOneFourEightWorkers) {
  const std::string serial = LedgerWitness(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(LedgerWitness(4), serial);
  EXPECT_EQ(LedgerWitness(8), serial);
}

TEST(FleetAccountingTest, OutcomesAndPhasesLandOnTheRightTenants) {
  auto service = MakeFleet(2);
  ASSERT_TRUE(service.ok());
  const SimTime start = trace::EvaluationStart();
  SubmitWorkload(**service, start);
  (void)(*service)->Drain(start + kSecondsPerHour);

  std::map<std::string, obs::TenantCost> by_tenant;
  for (const obs::CostLedger::Row& row :
       (*service)->cost_ledger().Snapshot()) {
    by_tenant[row.tenant] = row.cost;
  }
  ASSERT_EQ(by_tenant.size(), static_cast<size_t>(kTenants));

  // Every tenant served one plan; t0 also a command, t1 a query, t2 a miss.
  for (int i = 0; i < kTenants; ++i) {
    const obs::TenantCost& cost = by_tenant.at(StrFormat("t%d", i));
    EXPECT_EQ(cost.plans_ok, 1) << "tenant " << i;
    // A served plan spent time in the planner and the simulator, allocated
    // arena bytes, and evaluated flips.
    EXPECT_GT(cost.phase_ns[static_cast<size_t>(obs::CostPhase::kPlan)], 0);
    EXPECT_GT(cost.phase_ns[static_cast<size_t>(obs::CostPhase::kSim)], 0);
    EXPECT_GT(cost.phase_ns[static_cast<size_t>(obs::CostPhase::kQueueWait)],
              0);
    EXPECT_GT(cost.arena_bytes, 0);
    EXPECT_GT(cost.flip_evals, 0);
  }
  EXPECT_EQ(by_tenant.at("t0").commands_ok, 1);
  EXPECT_GT(by_tenant.at("t0")
                .phase_ns[static_cast<size_t>(obs::CostPhase::kCommandBus)],
            0);
  EXPECT_EQ(by_tenant.at("t1").queries_ok, 1);
  EXPECT_EQ(by_tenant.at("t2").deadline_misses, 1);
  EXPECT_EQ(by_tenant.at("t3").deadline_misses, 0);
}

TEST(FleetAccountingTest, ShedsAreChargedToTheirTenant) {
  FleetOptions tight;
  tight.queue_capacity = 1;
  auto service = MakeFleet(1, tight);
  ASSERT_TRUE(service.ok());
  const SimTime start = trace::EvaluationStart();
  int sheds = 0;
  for (int i = 0; i < 6; ++i) {
    Request request;
    request.tenant = "t0";
    request.kind = RequestKind::kQuery;
    request.issue_time = start;
    auto immediate = (*service)->Submit(std::move(request));
    if (immediate.has_value()) {
      EXPECT_EQ(immediate->outcome, ServeOutcome::kShed);
      ++sheds;
    }
  }
  ASSERT_GT(sheds, 0);
  (void)(*service)->Drain(start);
  int64_t ledger_sheds = 0;
  for (const obs::CostLedger::Row& row :
       (*service)->cost_ledger().Snapshot()) {
    if (row.tenant == "t0") ledger_sheds = row.cost.sheds;
  }
  EXPECT_EQ(ledger_sheds, sheds);
}

TEST(FleetAccountingTest, DrainsFeedSloWindowsAndBurnCanFire) {
  // A tight deadline-hit SLO plus a planted expiry: the drain's SLO feed
  // must evaluate to a firing deadline objective.
  FleetOptions options;
  options.slo.min_deadline_hit_rate = 0.95;
  options.slo.burn_threshold = 2.0;
  auto service = MakeFleet(1, options);
  ASSERT_TRUE(service.ok());
  const SimTime start = trace::EvaluationStart();
  Request doomed;
  doomed.tenant = "t4";
  doomed.kind = RequestKind::kPlan;
  doomed.issue_time = start;
  doomed.deadline = start + 1;
  EXPECT_FALSE((*service)->Submit(std::move(doomed)).has_value());
  const SimTime drain_time = start + kSecondsPerHour;
  (void)(*service)->Drain(drain_time);
  EXPECT_EQ((*service)->last_drain_time(), drain_time);

  bool firing = false;
  for (const obs::BurnStatus& status :
       (*service)->slo_engine().Evaluate(drain_time)) {
    if (status.tenant == "t4" &&
        status.objective == obs::SloObjective::kDeadlineHit) {
      firing = status.firing;
      EXPECT_NE(status.exemplar_trace_id, 0u);
    }
  }
  EXPECT_TRUE(firing);
}

TEST(FleetAccountingTest, TenantNotFoundChargesNoRow) {
  auto service = MakeFleet(1);
  ASSERT_TRUE(service.ok());
  Request request;
  request.tenant = "nobody";
  request.kind = RequestKind::kQuery;
  request.issue_time = trace::EvaluationStart();
  auto immediate = (*service)->Submit(std::move(request));
  ASSERT_TRUE(immediate.has_value());
  EXPECT_EQ(immediate->outcome, ServeOutcome::kTenantNotFound);
  for (const obs::CostLedger::Row& row :
       (*service)->cost_ledger().Snapshot()) {
    EXPECT_NE(row.tenant, "nobody");
  }
}

#else  // !IMCF_ACCOUNTING_ENABLED

TEST(FleetAccountingTest, DisabledBuildKeepsLedgerEmpty) {
  auto service = MakeFleet(2);
  ASSERT_TRUE(service.ok());
  const SimTime start = trace::EvaluationStart();
  SubmitWorkload(**service, start);
  (void)(*service)->Drain(start + kSecondsPerHour);
  EXPECT_TRUE((*service)->cost_ledger().Snapshot().empty());
  EXPECT_TRUE(
      (*service)->slo_engine().Evaluate((*service)->last_drain_time())
          .empty());
}

#endif  // IMCF_ACCOUNTING_ENABLED

TEST(FleetIntrospectionTest, StatusServerServesFleetPages) {
  FleetOptions options;
  options.status_port = 0;  // ephemeral
  auto service = MakeFleet(1, options);
  ASSERT_TRUE(service.ok());
  obs::StatusServer* server = (*service)->status_server();
  ASSERT_NE(server, nullptr);
  EXPECT_GT(server->port(), 0);
  // The handlers themselves are exercised through the registered surface
  // (the HTTP round-trip is covered by obs_status_server_test): here we
  // pin that the fleet pages produce well-formed bodies.
  const SimTime start = trace::EvaluationStart();
  SubmitWorkload(**service, start);
  (void)(*service)->Drain(start + kSecondsPerHour);
  const std::string tenantz =
      (*service)->cost_ledger().ToJson(0, obs::CostSortKey::kCpu);
  EXPECT_EQ(tenantz.front(), '[');
  EXPECT_EQ(tenantz.back(), ']');
  const std::string sloz =
      (*service)->slo_engine().ToJson((*service)->last_drain_time());
  EXPECT_NE(sloz.find("\"objectives\""), std::string::npos);
}

TEST(FleetIntrospectionTest, DisabledPortMeansNoServer) {
  auto service = MakeFleet(1);  // default status_port = -1
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->status_server(), nullptr);
}

}  // namespace
}  // namespace serve
}  // namespace imcf
