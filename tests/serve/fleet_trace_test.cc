// Serving-layer tracing: the span-tree extension of the fleet determinism
// contract. Every drained request leaves one trace rooted at its submit
// span, and the canonical rendering (wall stamps, raw ids and thread
// indices masked) is bit-identical at 1, 4 and 8 workers — including
// fault-injected retry events and planted deadline expiries. Also covers
// the on-demand Perfetto dump and the shed-spike auto-dump.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"
#include "serve/fleet_service.h"
#include "trace/dataset.h"

namespace imcf {
namespace serve {
namespace {

constexpr int kTenants = 4;
constexpr int kPlansPerTenant = 2;

TenantConfig ConfigAt(int index) {
  TenantConfig config;
  config.id = StrFormat("t%d", index);
  config.seed = 100 + static_cast<uint64_t>(index);
  config.hours = 24;
  config.appetite = 0.8 + 0.1 * index;
  return config;
}

/// Runs the reference workload at `workers` and returns the canonical
/// rendering of every span the run recorded. Clear() is safe here: the
/// previous service (and its worker threads) is destroyed before the next
/// run starts.
std::string CanonicalAt(int workers) {
  obs::FlightRecorder::Default().Clear();
  FleetOptions options;
  options.shards = 4;
  options.workers = workers;
  options.queue_capacity = kTenants * kPlansPerTenant + 4;
  // Fault injection on: retry/undeliverable bus events must replay too.
  options.fault = fault::FaultOptions::UniformRate(0.2, /*seed=*/7);
  auto service = FleetService::Create(options);
  EXPECT_TRUE(service.ok());
  for (int i = 0; i < kTenants; ++i) {
    EXPECT_TRUE((*service)->AddTenant(ConfigAt(i)).ok());
  }
  const SimTime start = trace::EvaluationStart();
  for (int rep = 0; rep < kPlansPerTenant; ++rep) {
    for (int i = 0; i < kTenants; ++i) {
      Request request;
      request.tenant = StrFormat("t%d", i);
      request.kind = RequestKind::kPlan;
      request.issue_time = start;
      // One planted expiry so the deadline path is part of the tree.
      if (rep == 1 && i == 0) request.deadline = start + 1;
      request.plan.policy = sim::Policy::kEnergyPlanner;
      request.plan.rep = rep;
      EXPECT_FALSE((*service)->Submit(std::move(request)).has_value());
    }
  }
  (void)(*service)->Drain(start + kSecondsPerHour);
  return obs::CanonicalTraceText(obs::FlightRecorder::Default().Snapshot());
}

TEST(FleetTraceTest, CanonicalSpanTreesIdenticalAtOneFourEightWorkers) {
#if !IMCF_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (IMCF_DISABLE_TRACING)";
#endif
  const std::string serial = CanonicalAt(1);
  // The serial tree must show real structure before comparing: request
  // roots, the enqueue->drain handoff, planner search and the planted
  // deadline expiry.
  EXPECT_NE(serial.find("serve.submit [serve]"), std::string::npos);
  EXPECT_NE(serial.find("serve.execute [serve]"), std::string::npos);
  EXPECT_NE(serial.find("tenant.with [serve]"), std::string::npos);
  EXPECT_NE(serial.find("sim.run [sim]"), std::string::npos);
  EXPECT_NE(serial.find("ep.search [core]"), std::string::npos);
  EXPECT_NE(serial.find("\"deadline_exceeded\""), std::string::npos);

  EXPECT_EQ(CanonicalAt(4), serial);
  EXPECT_EQ(CanonicalAt(8), serial);
}

TEST(FleetTraceTest, DumpTraceWritesPerfettoLoadableJson) {
#if !IMCF_TRACING_ENABLED
  GTEST_SKIP() << "tracing compiled out (IMCF_DISABLE_TRACING)";
#endif
  obs::FlightRecorder::Default().Clear();
  FleetOptions options;
  options.workers = 2;
  options.queue_capacity = 8;
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(ConfigAt(0)).ok());
  Request request;
  request.tenant = "t0";
  request.kind = RequestKind::kPlan;
  request.issue_time = trace::EvaluationStart();
  request.plan.policy = sim::Policy::kEnergyPlanner;
  EXPECT_FALSE((*service)->Submit(std::move(request)).has_value());
  (void)(*service)->Drain(trace::EvaluationStart() + kSecondsPerHour);

  const std::string path = ::testing::TempDir() + "fleet_trace_dump.json";
  ASSERT_TRUE((*service)->DumpTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str().rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(body.str().find("\"serve.execute\""), std::string::npos);
  EXPECT_NE(body.str().find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FleetTraceTest, ShedSpikeTriggersAutoDump) {
  obs::FlightRecorder::Default().Clear();
  FleetOptions options;
  options.shards = 1;
  options.workers = 1;
  options.queue_capacity = 1;  // everything beyond one request sheds
  options.trace_dump_dir = ::testing::TempDir();
  options.spike_dump_threshold = 2;
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(ConfigAt(0)).ok());
  int shed = 0;
  for (int i = 0; i < 6; ++i) {
    Request request;
    request.tenant = "t0";
    request.kind = RequestKind::kQuery;
    request.issue_time = trace::EvaluationStart();
    auto immediate = (*service)->Submit(std::move(request));
    if (immediate.has_value() &&
        immediate->outcome == ServeOutcome::kShed) {
      ++shed;
    }
  }
  ASSERT_GE(shed, 2);
  (void)(*service)->Drain(trace::EvaluationStart());

  const std::string path = ::testing::TempDir() + "trace_spike_0.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "expected spike dump at " << path;
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_EQ(body.str().rfind("{\"traceEvents\":[", 0), 0u);
  std::remove(path.c_str());
}

TEST(FleetTraceTest, SlowRequestLoggingDoesNotDisturbResponses) {
  obs::FlightRecorder::Default().Clear();
  FleetOptions options;
  options.workers = 2;
  options.queue_capacity = 8;
  options.slow_request_wall_ns = 1;  // every request is an outlier
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(ConfigAt(0)).ok());
  for (int rep = 0; rep < 2; ++rep) {
    Request request;
    request.tenant = "t0";
    request.kind = RequestKind::kPlan;
    request.issue_time = trace::EvaluationStart();
    request.plan.policy = sim::Policy::kMetaRule;
    request.plan.rep = rep;
    EXPECT_FALSE((*service)->Submit(std::move(request)).has_value());
  }
  const std::vector<Response> responses =
      (*service)->Drain(trace::EvaluationStart() + kSecondsPerHour);
  ASSERT_EQ(responses.size(), 2u);
  for (const Response& response : responses) {
    EXPECT_EQ(response.outcome, ServeOutcome::kOk);
    EXPECT_TRUE(response.status.ok());
  }
}

}  // namespace
}  // namespace serve
}  // namespace imcf
