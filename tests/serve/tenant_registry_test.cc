#include "serve/tenant_registry.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace imcf {
namespace serve {
namespace {

TenantConfig FastConfig(const std::string& id, uint64_t seed = 1) {
  TenantConfig config;
  config.id = id;
  config.seed = seed;
  config.hours = 24;  // one-day window keeps Prepare/Run cheap
  return config;
}

class TenantRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/imcf_registry_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST(SpecForConfigTest, BuildsBaseDatasets) {
  for (const char* dataset : {"flat", "house", "dorms"}) {
    TenantConfig config = FastConfig("t");
    config.dataset = dataset;
    auto spec = SpecForConfig(config);
    ASSERT_TRUE(spec.ok()) << dataset;
    EXPECT_EQ(spec->name, "t");  // tenant id wins over the dataset name
  }
}

TEST(SpecForConfigTest, RejectsBadConfigs) {
  EXPECT_TRUE(SpecForConfig(FastConfig("")).status().IsInvalidArgument());
  TenantConfig unknown = FastConfig("t");
  unknown.dataset = "mansion";
  EXPECT_TRUE(SpecForConfig(unknown).status().IsInvalidArgument());
  TenantConfig negative = FastConfig("t");
  negative.appetite = -1.0;
  EXPECT_TRUE(SpecForConfig(negative).status().IsInvalidArgument());
}

TEST(SpecForConfigTest, AppetiteScalesDevices) {
  TenantConfig config = FastConfig("t");
  config.appetite = 2.0;
  auto base = SpecForConfig(FastConfig("t"));
  auto scaled = SpecForConfig(config);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ(scaled->hvac.kw_per_degree, 2.0 * base->hvac.kw_per_degree);
  EXPECT_DOUBLE_EQ(scaled->light.max_power_kw,
                   2.0 * base->light.max_power_kw);
}

TEST_F(TenantRegistryTest, AdmitFindRemove) {
  TenantRegistry registry(/*shards=*/4);
  ASSERT_TRUE(registry.Admit(FastConfig("a")).ok());
  ASSERT_TRUE(registry.Admit(FastConfig("b")).ok());
  EXPECT_TRUE(registry.Admit(FastConfig("a")).IsAlreadyExists());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.Contains("a"));
  EXPECT_FALSE(registry.Contains("zz"));
  EXPECT_EQ(registry.TenantIds(), (std::vector<TenantId>{"a", "b"}));
  EXPECT_TRUE(registry.Remove("a").ok());
  EXPECT_TRUE(registry.Remove("a").IsNotFound());
  EXPECT_EQ(registry.size(), 1u);
}

TEST_F(TenantRegistryTest, ShardPlacementIsStableAndInRange) {
  TenantRegistry registry(/*shards=*/8);
  for (const char* id : {"a", "b", "home42", "x/y\"z"}) {
    const int shard = registry.ShardOf(id);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, registry.shards());
    EXPECT_EQ(shard, registry.ShardOf(id));  // stable
  }
}

TEST_F(TenantRegistryTest, WithTenantRunsUnderTenantAndReportsNotFound) {
  TenantRegistry registry(/*shards=*/2);
  ASSERT_TRUE(registry.Admit(FastConfig("a")).ok());
  bool ran = false;
  ASSERT_TRUE(registry
                  .WithTenant("a",
                              [&ran](Tenant& tenant) {
                                ran = true;
                                tenant.stats().plans_served = 7;
                                return Status::Ok();
                              })
                  .ok());
  EXPECT_TRUE(ran);
  EXPECT_EQ(registry.GetStats("a")->plans_served, 7);
  EXPECT_TRUE(registry
                  .WithTenant("missing",
                              [](Tenant&) { return Status::Ok(); })
                  .IsNotFound());
}

TEST_F(TenantRegistryTest, SaveAndLoadRoundTripsConfigsAndStats) {
  auto store = TableStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  TenantRegistry registry(/*shards=*/4);
  TenantConfig a = FastConfig("a", /*seed=*/11);
  a.appetite = 1.2;
  a.budget_kwh = 42.0;
  TenantConfig b = FastConfig("b", /*seed=*/22);
  b.dataset = "house";
  ASSERT_TRUE(registry.Admit(a).ok());
  ASSERT_TRUE(registry.Admit(b).ok());
  TenantStats stats;
  stats.plans_served = 3;
  stats.fe_kwh_total = 9.5;
  ASSERT_TRUE(registry.RestoreStats("a", stats).ok());
  ASSERT_TRUE(registry.Save(store->get()).ok());

  // Fresh registry, fresh store handle: full recovery path.
  auto reopened = TableStore::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  TenantRegistry recovered(/*shards=*/4);
  auto n = recovered.Load(reopened->get());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);
  auto a2 = recovered.GetConfig("a");
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->seed, 11u);
  EXPECT_DOUBLE_EQ(a2->appetite, 1.2);
  EXPECT_DOUBLE_EQ(a2->budget_kwh, 42.0);
  EXPECT_EQ(recovered.GetConfig("b")->dataset, "house");
  EXPECT_EQ(*recovered.GetStats("a"), stats);
  EXPECT_EQ(*recovered.GetStats("b"), TenantStats{});
}

TEST_F(TenantRegistryTest, RepeatedSaveKeepsSnapshotEqualToFleet) {
  auto store = TableStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  TenantRegistry registry(/*shards=*/2);
  ASSERT_TRUE(registry.Admit(FastConfig("a")).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(registry.Save(store->get()).ok());
  }
  Table* table = store->get()->GetTable("tenants").value();
  EXPECT_EQ(table->size(), 1u);  // not 3: each Save rewrites, not appends
}

}  // namespace
}  // namespace serve
}  // namespace imcf
