// Serve-layer conflict-firewall tests: admission vetoes, the kMrtUpdate
// request kind and its kConflictRejected outcome, ledger attribution (a
// vetoed update is never charged as applied work), dataflow-filtered
// context queries, and the /conflictz + strict /tenantz HTTP surfaces.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "firewall/conflict/dataflow_policy.h"
#include "serve/fleet_service.h"
#include "trace/dataset.h"

namespace imcf {
namespace serve {
namespace {

using rules::RuleAction;
using rules::TriggerOp;
using rules::TriggerRule;

TenantConfig FastConfig(const std::string& id, uint64_t seed = 1) {
  TenantConfig config;
  config.id = id;
  config.seed = seed;
  config.hours = 24;
  return config;
}

/// The two halves of an inter-tenant command loop: HVAC output commands
/// the lights, and light level commands the HVAC.
TriggerRule HvacToLight() {
  return TriggerRule::OnTemperature(TriggerOp::kGreaterThan, 24.0,
                                    RuleAction::kSetLight, 0.0);
}
TriggerRule LightToHvac() {
  return TriggerRule::OnLightLevel(TriggerOp::kLessThan, 10.0,
                                   RuleAction::kSetTemperature, 26.0);
}

Request MrtUpdateReq(const std::string& tenant) {
  Request request;
  request.tenant = tenant;
  request.kind = RequestKind::kMrtUpdate;
  request.issue_time = trace::EvaluationStart();
  return request;
}

/// Blocking one-shot HTTP client (mirrors the obs status-server tests).
std::string RawRequest(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = request_line + "\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ConflictAdmissionTest, CrossTenantCycleVetoesSecondAdmission) {
  FleetOptions options;
  options.shards = 1;  // both tenants share one shard graph
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());

  TenantConfig first = FastConfig("alice");
  first.extra_recipes = {HvacToLight()};
  ASSERT_TRUE((*service)->AddTenant(first).ok());

  TenantConfig second = FastConfig("bob");
  second.extra_recipes = {LightToHvac()};
  const Status rejected = (*service)->AddTenant(second);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.message().find("conflict"), std::string::npos)
      << rejected.message();
  EXPECT_NE(rejected.message().find("command_cycle"), std::string::npos)
      << rejected.message();
  EXPECT_EQ((*service)->registry().size(), 1u);

  // The verdict page records both the admission and the veto.
  const std::string json =
      (*service)->registry().conflict_analyzer().ToJson();
  EXPECT_NE(json.find("\"tenant\":\"bob\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"verdict\":\"rejected\""), std::string::npos) << json;
}

TEST(ConflictAdmissionTest, StockTenantsAdmitCleanly) {
  FleetOptions options;
  options.shards = 1;
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  // Stock rule sets (Table II MRT + Table III IFTTT) must never conflict,
  // with each other or across tenants.
  for (const char* id : {"a", "b", "c"}) {
    EXPECT_TRUE((*service)->AddTenant(FastConfig(id)).ok()) << id;
  }
  EXPECT_EQ((*service)->registry().size(), 3u);
}

TEST(ConflictAdmissionTest, ConflictingMrtUpdateIsRejectedNotApplied) {
  FleetOptions options;
  options.shards = 1;
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());

  TenantConfig alice = FastConfig("alice");
  alice.extra_recipes = {HvacToLight()};
  ASSERT_TRUE((*service)->AddTenant(alice).ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("bob")).ok());

  // Bob tries to adopt the reverse half of alice's loop.
  Request update = MrtUpdateReq("bob");
  update.mrt_update.set_recipes = true;
  update.mrt_update.extra_recipes = {LightToHvac()};
  const SimTime now = trace::EvaluationStart();
  Response response = (*service)->Call(update, now);
  EXPECT_EQ(response.outcome, ServeOutcome::kConflictRejected);
  EXPECT_FALSE(response.status.ok());
  EXPECT_NE(response.status.message().find("conflict"), std::string::npos);

  // The rejected update left bob's previous (stock) rule set serving.
  auto config = (*service)->registry().GetConfig("bob");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->extra_recipes.empty());
  Request plan;
  plan.tenant = "bob";
  plan.kind = RequestKind::kPlan;
  plan.issue_time = now;
  plan.plan.policy = sim::Policy::kEnergyPlanner;
  EXPECT_EQ((*service)->Call(plan, now).outcome, ServeOutcome::kOk);

#if IMCF_ACCOUNTING_ENABLED
  // The veto is charged as a conflict rejection, NEVER as applied work.
  for (const obs::CostLedger::Row& row :
       (*service)->cost_ledger().Snapshot()) {
    if (row.tenant != "bob") continue;
    EXPECT_EQ(row.cost.conflict_rejections, 1);
    EXPECT_EQ(row.cost.mrt_updates_ok, 0);
    EXPECT_EQ(row.cost.plans_ok, 1);  // only the explicit plan above
  }
#endif
}

TEST(ConflictAdmissionTest, AcceptedMrtUpdateSwapsRuleSetAndIsCharged) {
  auto service = FleetService::Create(FleetOptions{});
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a", /*seed=*/1)).ok());

  Request update = MrtUpdateReq("a");
  update.mrt_update.seed = 42;
  const SimTime now = trace::EvaluationStart();
  Response response = (*service)->Call(update, now);
  EXPECT_EQ(response.outcome, ServeOutcome::kOk);

  auto config = (*service)->registry().GetConfig("a");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->seed, 42u);

  // The rebuilt tenant still serves plans.
  Request plan;
  plan.tenant = "a";
  plan.kind = RequestKind::kPlan;
  plan.issue_time = now;
  EXPECT_EQ((*service)->Call(plan, now).outcome, ServeOutcome::kOk);

#if IMCF_ACCOUNTING_ENABLED
  for (const obs::CostLedger::Row& row :
       (*service)->cost_ledger().Snapshot()) {
    if (row.tenant != "a") continue;
    EXPECT_EQ(row.cost.mrt_updates_ok, 1);
    EXPECT_EQ(row.cost.conflict_rejections, 0);
    EXPECT_EQ(row.cost.plans_ok, 1);
  }
#endif
}

TEST(ConflictAdmissionTest, ContextQueryMirrorsDataflowPolicy) {
  auto service = FleetService::Create(FleetOptions{});
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());

  uint32_t policy_fields = 0;
  ASSERT_TRUE((*service)
                  ->registry()
                  .WithTenant("a",
                              [&](Tenant& tenant) {
                                policy_fields =
                                    tenant.dataflow_policy().fields;
                                return Status::Ok();
                              })
                  .ok());
  ASSERT_NE(policy_fields, 0u);

  Request query;
  query.tenant = "a";
  query.kind = RequestKind::kQuery;
  query.query.kind = QueryKind::kContext;
  query.query.unit = 0;
  query.issue_time = trace::EvaluationStart() + kSecondsPerHour;
  Response response = (*service)->Call(query, query.issue_time);
  ASSERT_EQ(response.outcome, ServeOutcome::kOk);
  // The view advertises exactly the fields the tenant's rules consume.
  EXPECT_EQ(response.context.fields, policy_fields);
  EXPECT_EQ(response.context.time, query.issue_time);
  // Stock rules read both ambient channels, so the snapshot carries them.
  using firewall::conflict::kFieldAmbientLight;
  using firewall::conflict::kFieldAmbientTemp;
  EXPECT_NE(policy_fields & kFieldAmbientTemp, 0u);
  EXPECT_NE(policy_fields & kFieldAmbientLight, 0u);
  EXPECT_NE(response.context.ambient_temp_c, 0.0);

  // A unit outside the building is an execution error, not a crash.
  query.query.unit = 99;
  EXPECT_EQ((*service)->Call(query, query.issue_time).outcome,
            ServeOutcome::kError);
}

TEST(ConflictAdmissionTest, ConflictzAndStrictTenantzOverHttp) {
  FleetOptions options;
  options.status_port = 0;  // ephemeral
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
  ASSERT_NE((*service)->status_server(), nullptr);
  const int port = (*service)->status_server()->port();

  const std::string conflictz = RawRequest(port, "GET /conflictz HTTP/1.0");
  EXPECT_NE(conflictz.find("HTTP/1.0 200 OK"), std::string::npos)
      << conflictz;
  EXPECT_NE(conflictz.find("\"tenant\":\"a\""), std::string::npos)
      << conflictz;
  EXPECT_NE(conflictz.find("\"verdict\":\"ok\""), std::string::npos)
      << conflictz;

  // Strict /tenantz: unknown sort and malformed k are 400s, valid forms
  // still serve.
  EXPECT_NE(RawRequest(port, "GET /tenantz?sort=bogus HTTP/1.0").find("400"),
            std::string::npos);
  EXPECT_NE(RawRequest(port, "GET /tenantz?k=12x HTTP/1.0").find("400"),
            std::string::npos);
  EXPECT_NE(RawRequest(port, "GET /tenantz?k=-1 HTTP/1.0").find("400"),
            std::string::npos);
  EXPECT_NE(
      RawRequest(port, "GET /tenantz?sort=cpu&k=2 HTTP/1.0")
          .find("HTTP/1.0 200 OK"),
      std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace imcf
