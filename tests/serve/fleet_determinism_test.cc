// Fleet determinism: identical seeds and request streams must produce
// bit-identical per-tenant plan outcomes at every worker count. This is the
// serving-layer extension of the simulator's determinism contract — the
// worker pool may execute requests in any order, but every outcome is a
// pure function of (options, tenant configs, request stream, drain times).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/strings.h"
#include "serve/fleet_service.h"
#include "trace/dataset.h"

namespace imcf {
namespace serve {
namespace {

constexpr int kTenants = 6;
constexpr int kPlansPerTenant = 2;

TenantConfig ConfigAt(int index) {
  TenantConfig config;
  config.id = StrFormat("t%d", index);
  config.seed = 100 + static_cast<uint64_t>(index);
  config.hours = 24;
  config.appetite = 0.8 + 0.1 * index;
  return config;
}

/// The full deterministic portion of one response.
struct Outcome {
  TenantId tenant;
  ServeOutcome outcome;
  double fce_pct;
  double fe_kwh;
  int64_t commands_issued;
  SimTime virtual_latency;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

std::vector<Outcome> RunFleet(int workers) {
  FleetOptions options;
  options.shards = 4;
  options.workers = workers;
  options.queue_capacity = kTenants * kPlansPerTenant + 4;
  // Fault injection on: delivery outcomes must replay too.
  options.fault = fault::FaultOptions::UniformRate(0.2, /*seed=*/7);
  auto service = FleetService::Create(options);
  EXPECT_TRUE(service.ok());
  for (int i = 0; i < kTenants; ++i) {
    EXPECT_TRUE((*service)->AddTenant(ConfigAt(i)).ok());
  }
  const SimTime start = trace::EvaluationStart();
  for (int rep = 0; rep < kPlansPerTenant; ++rep) {
    for (int i = 0; i < kTenants; ++i) {
      Request request;
      request.tenant = StrFormat("t%d", i);
      request.kind = RequestKind::kPlan;
      request.issue_time = start;
      // One request per tenant carries a tight deadline so expiry is part
      // of the replayed stream.
      if (rep == 1 && i % 3 == 0) request.deadline = start + 1;
      request.plan.policy = sim::Policy::kEnergyPlanner;
      request.plan.rep = rep;
      EXPECT_FALSE((*service)->Submit(std::move(request)).has_value());
    }
  }
  std::vector<Response> responses =
      (*service)->Drain(start + kSecondsPerHour);
  std::vector<Outcome> outcomes;
  outcomes.reserve(responses.size());
  for (const Response& r : responses) {
    outcomes.push_back(Outcome{r.tenant, r.outcome, r.plan.fce_pct,
                               r.plan.fe_kwh, r.plan.commands_issued,
                               r.virtual_latency_seconds});
  }
  return outcomes;
}

TEST(FleetDeterminismTest, BitIdenticalOutcomesAtOneFourEightWorkers) {
  const std::vector<Outcome> serial = RunFleet(1);
  ASSERT_EQ(serial.size(),
            static_cast<size_t>(kTenants * kPlansPerTenant));
  // The serial run itself must do real work: plans succeeded, deadlines
  // expired where planted.
  int ok = 0, expired = 0;
  for (const Outcome& o : serial) {
    if (o.outcome == ServeOutcome::kOk) ++ok;
    if (o.outcome == ServeOutcome::kDeadlineExceeded) ++expired;
  }
  EXPECT_EQ(expired, 2);  // tenants 0 and 3, rep 1
  EXPECT_EQ(ok, static_cast<int>(serial.size()) - expired);

  EXPECT_EQ(RunFleet(4), serial);
  EXPECT_EQ(RunFleet(8), serial);
}

TEST(FleetDeterminismTest, PerTenantStatsIdenticalAcrossWorkerCounts) {
  auto stats_at = [](int workers) {
    FleetOptions options;
    options.workers = workers;
    options.queue_capacity = 64;
    auto service = FleetService::Create(options);
    EXPECT_TRUE(service.ok());
    for (int i = 0; i < kTenants; ++i) {
      EXPECT_TRUE((*service)->AddTenant(ConfigAt(i)).ok());
    }
    const SimTime start = trace::EvaluationStart();
    for (int i = 0; i < kTenants; ++i) {
      Request request;
      request.tenant = StrFormat("t%d", i);
      request.kind = RequestKind::kPlan;
      request.issue_time = start;
      EXPECT_FALSE((*service)->Submit(std::move(request)).has_value());
    }
    (void)(*service)->Drain(start);
    std::map<TenantId, TenantStats> stats;
    for (const TenantId& id : (*service)->registry().TenantIds()) {
      stats[id] = *(*service)->registry().GetStats(id);
    }
    return stats;
  };
  const auto serial = stats_at(1);
  EXPECT_EQ(stats_at(4), serial);
  EXPECT_EQ(stats_at(8), serial);
}

}  // namespace
}  // namespace serve
}  // namespace imcf
