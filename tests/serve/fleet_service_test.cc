#include "serve/fleet_service.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/dataset.h"

namespace imcf {
namespace serve {
namespace {

TenantConfig FastConfig(const std::string& id, uint64_t seed = 1) {
  TenantConfig config;
  config.id = id;
  config.seed = seed;
  config.hours = 24;
  return config;
}

Request PlanReq(const std::string& tenant, int rep = 0) {
  Request request;
  request.tenant = tenant;
  request.kind = RequestKind::kPlan;
  request.issue_time = trace::EvaluationStart();
  request.plan.policy = sim::Policy::kEnergyPlanner;
  request.plan.rep = rep;
  return request;
}

class FleetServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/imcf_fleet_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(FleetServiceTest, PlanCommandAndQueryRoundTrip) {
  FleetOptions options;
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());

  const SimTime now = trace::EvaluationStart() + kSecondsPerHour;
  Response plan = (*service)->Call(PlanReq("a"), now);
  EXPECT_EQ(plan.outcome, ServeOutcome::kOk);
  EXPECT_GT(plan.plan.fe_kwh, 0.0);
  EXPECT_EQ(plan.virtual_latency_seconds, kSecondsPerHour);

  Request command;
  command.tenant = "a";
  command.kind = RequestKind::kCommand;
  command.issue_time = now;
  command.command.unit = 0;
  command.command.type = devices::CommandType::kSetTemperature;
  command.command.value = 21.0;
  Response delivered = (*service)->Call(command, now);
  EXPECT_EQ(delivered.outcome, ServeOutcome::kOk);
  EXPECT_TRUE(delivered.command_delivered);  // faults disabled
  EXPECT_EQ(delivered.command_attempts, 1);

  Request query;
  query.tenant = "a";
  query.kind = RequestKind::kQuery;
  query.issue_time = now;
  Response status = (*service)->Call(query, now);
  EXPECT_EQ(status.outcome, ServeOutcome::kOk);
  EXPECT_EQ(status.tenant_status.plans_served, 1);
  EXPECT_EQ(status.tenant_status.commands_served, 1);
  EXPECT_GT(status.tenant_status.devices, 0);
}

TEST_F(FleetServiceTest, UnknownTenantRejectedAtSubmit) {
  auto service = FleetService::Create(FleetOptions{});
  ASSERT_TRUE(service.ok());
  auto response = (*service)->Submit(PlanReq("ghost"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->outcome, ServeOutcome::kTenantNotFound);
  EXPECT_EQ((*service)->queued(), 0u);
}

TEST_F(FleetServiceTest, FullQueueShedsWithRetryAfter) {
  FleetOptions options;
  options.shards = 1;
  options.queue_capacity = 2;
  options.shed_retry_after_seconds = 90;
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
  EXPECT_FALSE((*service)->Submit(PlanReq("a", 0)).has_value());
  EXPECT_FALSE((*service)->Submit(PlanReq("a", 1)).has_value());
  auto shed = (*service)->Submit(PlanReq("a", 2));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->outcome, ServeOutcome::kShed);
  EXPECT_EQ(shed->retry_after_seconds, 90);
  EXPECT_EQ((*service)->queued(), 2u);
  // Draining frees the queue for the retried request.
  EXPECT_EQ((*service)->Drain(trace::EvaluationStart()).size(), 2u);
  EXPECT_FALSE((*service)->Submit(PlanReq("a", 2)).has_value());
}

TEST_F(FleetServiceTest, ShedRetryAfterScalesWithObservedDrainRate) {
  FleetOptions options;
  options.shards = 1;
  options.queue_capacity = 4;
  options.shed_retry_after_seconds = 90;
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
  const SimTime t0 = trace::EvaluationStart();

  // First drain only establishes the clock: no rate observation yet.
  ASSERT_FALSE((*service)->Submit(PlanReq("a", 0)).has_value());
  ASSERT_FALSE((*service)->Submit(PlanReq("a", 1)).has_value());
  EXPECT_EQ((*service)->Drain(t0).size(), 2u);

  // Second drain 100 sim-seconds later clears 2 items: 50 s/item observed.
  ASSERT_FALSE((*service)->Submit(PlanReq("a", 2)).has_value());
  ASSERT_FALSE((*service)->Submit(PlanReq("a", 3)).has_value());
  EXPECT_EQ((*service)->Drain(t0 + 100).size(), 2u);

  // Overflow with 4 queued: estimate = ceil(4 * 100 / 2) = 200 s, which
  // replaces the static 90 s hint.
  for (int rep = 4; rep < 8; ++rep) {
    ASSERT_FALSE((*service)->Submit(PlanReq("a", rep)).has_value());
  }
  auto shed = (*service)->Submit(PlanReq("a", 8));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->outcome, ServeOutcome::kShed);
  EXPECT_EQ(shed->retry_after_seconds, 200);

  // A glacial drain saturates at the 8x-base ceiling instead of telling
  // clients to come back in a sim-week.
  EXPECT_EQ((*service)->Drain(t0 + 100 + 1000000).size(), 4u);
  for (int rep = 9; rep < 13; ++rep) {
    ASSERT_FALSE((*service)->Submit(PlanReq("a", rep)).has_value());
  }
  shed = (*service)->Submit(PlanReq("a", 13));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->outcome, ServeOutcome::kShed);
  EXPECT_EQ(shed->retry_after_seconds, 90 * 8);
}

TEST_F(FleetServiceTest, ExpiredDeadlineSkipsExecution) {
  auto service = FleetService::Create(FleetOptions{});
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
  const SimTime start = trace::EvaluationStart();
  Request expired = PlanReq("a", 0);
  expired.deadline = start + 10;
  Request alive = PlanReq("a", 1);
  alive.deadline = start + kSecondsPerHour + 10;
  ASSERT_FALSE((*service)->Submit(expired).has_value());
  ASSERT_FALSE((*service)->Submit(alive).has_value());
  std::vector<Response> responses =
      (*service)->Drain(start + kSecondsPerHour);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].outcome, ServeOutcome::kDeadlineExceeded);
  EXPECT_EQ(responses[1].outcome, ServeOutcome::kOk);
  EXPECT_EQ((*service)->registry().GetStats("a")->deadline_expired, 1);
}

TEST_F(FleetServiceTest, ResponsesSortedByRequestId) {
  auto service = FleetService::Create(FleetOptions{});
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("b")).ok());
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_FALSE((*service)->Submit(PlanReq("b", rep)).has_value());
    ASSERT_FALSE((*service)->Submit(PlanReq("a", rep)).has_value());
  }
  std::vector<Response> responses =
      (*service)->Drain(trace::EvaluationStart());
  ASSERT_EQ(responses.size(), 6u);
  for (size_t i = 1; i < responses.size(); ++i) {
    EXPECT_LT(responses[i - 1].id, responses[i].id);
  }
}

TEST_F(FleetServiceTest, ErrorOutcomeForBadCommandUnit) {
  auto service = FleetService::Create(FleetOptions{});
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
  Request command;
  command.tenant = "a";
  command.kind = RequestKind::kCommand;
  command.issue_time = trace::EvaluationStart();
  command.command.unit = 999;  // the flat has one unit
  Response response =
      (*service)->Call(command, trace::EvaluationStart());
  EXPECT_EQ(response.outcome, ServeOutcome::kError);
  EXPECT_FALSE(response.status.ok());
}

TEST_F(FleetServiceTest, SurvivesStopAndRestartWithStateRecovered) {
  FleetOptions options;
  options.store_dir = dir_;
  const SimTime now = trace::EvaluationStart() + kSecondsPerHour;

  TenantStats pre_stats_a;
  double pre_fe_a = 0.0;
  {
    auto service = FleetService::Create(options);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)->AddTenant(FastConfig("a", /*seed=*/5)).ok());
    ASSERT_TRUE((*service)->AddTenant(FastConfig("b", /*seed=*/6)).ok());
    Response plan = (*service)->Call(PlanReq("a"), now);
    ASSERT_EQ(plan.outcome, ServeOutcome::kOk);
    pre_fe_a = plan.plan.fe_kwh;
    pre_stats_a = *(*service)->registry().GetStats("a");
    ASSERT_TRUE((*service)->Stop(now).ok());
  }  // full service teardown

  auto restarted = FleetService::Create(options);
  ASSERT_TRUE(restarted.ok());
  EXPECT_EQ((*restarted)->registry().size(), 2u);
  EXPECT_EQ((*restarted)->registry().TenantIds(),
            (std::vector<TenantId>{"a", "b"}));
  // Counters match the pre-restart fleet exactly.
  EXPECT_EQ(*(*restarted)->registry().GetStats("a"), pre_stats_a);
  auto config = (*restarted)->registry().GetConfig("a");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->seed, 5u);
  // The recovered tenant replays the same plan outcome bit-identically.
  Response replay = (*restarted)->Call(PlanReq("a"), now);
  ASSERT_EQ(replay.outcome, ServeOutcome::kOk);
  EXPECT_EQ(replay.plan.fe_kwh, pre_fe_a);
}

TEST_F(FleetServiceTest, CheckpointCyclesKeepSnapshotBounded) {
  FleetOptions options;
  options.store_dir = dir_;
  auto service = FleetService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AddTenant(FastConfig("a")).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*service)->Checkpoint().ok());
  }
  auto reopened = FleetService::Create(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->registry().size(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace imcf
