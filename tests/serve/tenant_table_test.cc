// TenantTable tests: the open-addressing shard directory must behave
// exactly like the std::map it replaced — same membership answers under
// insert/erase churn — while keeping robin-hood invariants (no tombstone
// decay, growth preserves every entry).

#include "serve/tenant_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/tenant_registry.h"

namespace imcf {
namespace serve {
namespace {

/// A tenant shell (no simulator) — the table stores pointers, it never
/// runs them.
std::shared_ptr<Tenant> Shell(const std::string& id) {
  TenantConfig config;
  config.id = id;
  return std::make_shared<Tenant>(config, nullptr);
}

TEST(TenantTableTest, InsertFindErase) {
  TenantTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.Find("a"), nullptr);

  auto a = Shell("a");
  EXPECT_TRUE(table.Insert("a", a));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find("a"), a);  // pointer identity, not a copy
  EXPECT_TRUE(table.Contains("a"));
  EXPECT_FALSE(table.Contains("b"));

  EXPECT_FALSE(table.Insert("a", Shell("a")));  // duplicate refused
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Find("a"), a);  // original value kept

  EXPECT_TRUE(table.Erase("a"));
  EXPECT_FALSE(table.Erase("a"));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find("a"), nullptr);
}

TEST(TenantTableTest, GrowthPreservesEveryEntry) {
  TenantTable table;
  constexpr int kCount = 10'000;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(table.Insert("tenant-" + std::to_string(i), Shell("t")));
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_TRUE(table.Contains("tenant-" + std::to_string(i))) << i;
  }
  EXPECT_FALSE(table.Contains("tenant-" + std::to_string(kCount)));
  // Power-of-two capacity, load kept under 7/8.
  EXPECT_EQ(table.capacity() & (table.capacity() - 1), 0u);
  EXPECT_GE(table.capacity() * 7, table.size() * 8);
}

TEST(TenantTableTest, ChurnMatchesMapSemantics) {
  // Deterministic interleaved insert/erase; membership must track a
  // std::map move for move. Erasing exercises backward-shift deletion on
  // every probe-chain shape the hash produces.
  TenantTable table;
  std::map<std::string, int> reference;
  auto key = [](int i) { return "unit-" + std::to_string(i * 7919 % 997); };
  for (int round = 0; round < 5000; ++round) {
    const std::string k = key(round);
    if (round % 3 == 2) {
      EXPECT_EQ(table.Erase(k), reference.erase(k) > 0) << k;
    } else {
      const bool inserted = reference.emplace(k, round).second;
      EXPECT_EQ(table.Insert(k, Shell(k)), inserted) << k;
    }
    ASSERT_EQ(table.size(), reference.size());
  }
  for (const auto& [k, unused] : reference) {
    EXPECT_TRUE(table.Contains(k)) << k;
  }
  std::vector<std::string> seen;
  table.ForEach([&seen](const TenantId& id,
                        const std::shared_ptr<Tenant>&) {
    seen.push_back(id);
  });
  EXPECT_EQ(seen.size(), reference.size());
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
}

TEST(TenantTableTest, RegistryStillAnswersMembershipThroughTable) {
  // The registry integration: Admit/Contains/Remove ride on the table.
  TenantRegistry registry(4);
  TenantConfig config;
  config.id = "house-1";
  config.hours = 24;
  ASSERT_TRUE(registry.Admit(config).ok());
  EXPECT_TRUE(registry.Contains("house-1"));
  EXPECT_FALSE(registry.Contains("house-2"));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.Remove("house-1").ok());
  EXPECT_FALSE(registry.Contains("house-1"));
}

}  // namespace
}  // namespace serve
}  // namespace imcf
