// The compile-out contract: with IMCF_DISABLE_TRACING defined the
// IMCF_TRACE_* macros must expand to inert NoopSpan stubs — no span
// records, no heap allocation, macro arguments never evaluated. This TU
// defines the macro itself (the library stays instrumented), which is
// exactly how a -DIMCF_DISABLE_TRACING build sees every call site.

#ifndef IMCF_DISABLE_TRACING  // already global in a -DIMCF_DISABLE_TRACING build
#define IMCF_DISABLE_TRACING
#endif
#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/flight_recorder.h"

namespace {
std::atomic<int64_t> g_news{0};
}  // namespace

// Binary-wide allocation counter; the zero-allocation assertion measures
// the delta across a block containing only disabled trace macros.
void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace imcf {
namespace obs {
namespace {

[[maybe_unused]] uint64_t MustNotBeCalled() {
  ADD_FAILURE() << "disabled macro evaluated its arguments";
  return 1;
}

TEST(TracerDisabledTest, MacrosAreInertAndAllocationFree) {
  static_assert(IMCF_TRACING_ENABLED == 0);
  static_assert(sizeof(NoopSpan) == 1);

  const int64_t records_before = FlightRecorder::Default().total_recorded();
  const int64_t news_before = g_news.load(std::memory_order_relaxed);
  {
    IMCF_TRACE_SPAN(span, "test.root", "test");
    span.Detail("ignored");
    span.Arg("n", 1);
    span.SimSpan(0, 3600);
    span.BindSimClock(nullptr);
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(span.context().valid());

    // The parent expression must not run: disabled macros drop their
    // arguments entirely.
    IMCF_TRACE_SPAN_IN(child, "test.child", "test",
                       Tracer::Root(MustNotBeCalled()));
    EXPECT_FALSE(child.active());
    IMCF_TRACE_EVENT("test.event", "test", "detail", "n", MustNotBeCalled());
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed), news_before);
  EXPECT_EQ(FlightRecorder::Default().total_recorded(), records_before);
}

}  // namespace
}  // namespace obs
}  // namespace imcf
