// CostLedger / ScopedCost unit tests: merge semantics, the top-K view,
// the canonical determinism witness, and the ambient accumulation hooks.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/accounting/cost_ledger.h"

namespace imcf {
namespace obs {
namespace {

TEST(TenantCostTest, PlusEqualsSumsEveryField) {
  TenantCost a;
  a.phase_ns[0] = 1;
  a.phase_ns[3] = 4;
  a.arena_bytes = 10;
  a.flip_evals = 20;
  a.plans_ok = 1;
  a.faults = 2;
  TenantCost b;
  b.phase_ns[0] = 100;
  b.arena_bytes = 1;
  b.errors = 3;
  a += b;
  EXPECT_EQ(a.phase_ns[0], 101);
  EXPECT_EQ(a.phase_ns[3], 4);
  EXPECT_EQ(a.arena_bytes, 11);
  EXPECT_EQ(a.flip_evals, 20);
  EXPECT_EQ(a.plans_ok, 1);
  EXPECT_EQ(a.errors, 3);
  EXPECT_EQ(a.faults, 2);
  EXPECT_EQ(a.total_ns(), 105);
}

TEST(CostSortKeyTest, ParsesKnownKeysAndDefaultsToCpu) {
  EXPECT_EQ(ParseCostSortKey("cpu"), CostSortKey::kCpu);
  EXPECT_EQ(ParseCostSortKey("bytes"), CostSortKey::kBytes);
  EXPECT_EQ(ParseCostSortKey("plans"), CostSortKey::kPlans);
  EXPECT_EQ(ParseCostSortKey("sheds"), CostSortKey::kSheds);
  EXPECT_EQ(ParseCostSortKey("nonsense"), CostSortKey::kCpu);
  EXPECT_EQ(ParseCostSortKey(""), CostSortKey::kCpu);
}

TEST(CostLedgerTest, ApplyMergesAndSnapshotSortsByTenant) {
  CostLedger ledger(2);
  TenantCost delta;
  delta.plans_ok = 1;
  delta.arena_bytes = 8;
  ledger.Apply(1, "zeta", delta);
  ledger.Apply(0, "alpha", delta);
  ledger.Apply(1, "zeta", delta);  // merges into the existing row

  std::vector<CostLedger::Row> rows = ledger.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tenant, "alpha");
  EXPECT_EQ(rows[0].cost.plans_ok, 1);
  EXPECT_EQ(rows[1].tenant, "zeta");
  EXPECT_EQ(rows[1].cost.plans_ok, 2);
  EXPECT_EQ(rows[1].cost.arena_bytes, 16);
}

TEST(CostLedgerTest, SameTenantOnTwoShardsMergesInSnapshot) {
  // A tenant's shard should be stable in practice, but the merge is defined
  // regardless: snapshot sums per tenant id across shards.
  CostLedger ledger(2);
  TenantCost delta;
  delta.flip_evals = 5;
  ledger.Apply(0, "t", delta);
  ledger.Apply(1, "t", delta);
  std::vector<CostLedger::Row> rows = ledger.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].cost.flip_evals, 10);
}

TEST(CostLedgerTest, TopKOrdersDescendingWithTenantTiebreak) {
  CostLedger ledger(1);
  TenantCost big;
  big.arena_bytes = 100;
  TenantCost small;
  small.arena_bytes = 1;
  ledger.Apply(0, "b-big", big);
  ledger.Apply(0, "a-small", small);
  ledger.Apply(0, "c-small", small);  // ties a-small on every key

  std::vector<CostLedger::Row> top = ledger.TopK(2, CostSortKey::kBytes);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].tenant, "b-big");
  EXPECT_EQ(top[1].tenant, "a-small");  // tie broken by id, ascending

  // k == 0 means everything.
  EXPECT_EQ(ledger.TopK(0, CostSortKey::kBytes).size(), 3u);
}

TEST(CostLedgerTest, CanonicalTextMasksTimingAndIsStable) {
  CostLedger ledger(4);
  TenantCost delta;
  delta.phase_ns[1] = 123456;  // wall measurement: must NOT appear
  delta.plans_ok = 7;
  delta.sheds = 2;
  ledger.Apply(2, "home01", delta);
  const std::string text = ledger.CanonicalText();
  EXPECT_NE(text.find("home01"), std::string::npos);
  EXPECT_NE(text.find("plans_ok=7"), std::string::npos);
  EXPECT_NE(text.find("sheds=2"), std::string::npos);
  EXPECT_EQ(text.find("123456"), std::string::npos)
      << "canonical text leaked a wall measurement:\n"
      << text;

  // Identical deterministic contents on a different shard layout produce
  // identical text — the cross-worker witness the fleet test relies on.
  CostLedger other(1);
  ledger.Clear();
  ledger.Apply(3, "home01", delta);
  other.Apply(0, "home01", delta);
  EXPECT_EQ(ledger.CanonicalText(), other.CanonicalText());
}

TEST(CostLedgerTest, ToJsonCarriesPhaseBreakdown) {
  CostLedger ledger(1);
  TenantCost delta;
  delta.phase_ns[0] = 1;
  delta.phase_ns[1] = 2;
  delta.phase_ns[2] = 3;
  delta.phase_ns[3] = 4;
  delta.queries_ok = 9;
  ledger.Apply(0, "t", delta);
  const std::string json = ledger.ToJson(0, CostSortKey::kCpu);
  EXPECT_NE(json.find("\"queue_wait\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"plan\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sim\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"command_bus\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queries_ok\":9"), std::string::npos) << json;
}

TEST(CostLedgerTest, ClearDropsEveryRow) {
  CostLedger ledger(2);
  TenantCost delta;
  delta.plans_ok = 1;
  ledger.Apply(0, "a", delta);
  ledger.Apply(1, "b", delta);
  ledger.Clear();
  EXPECT_TRUE(ledger.Snapshot().empty());
}

TEST(ScopedCostTest, FlushesOnceAtDestruction) {
  CostLedger ledger(1);
  // ScopedCost borrows the tenant string (the registry's id outlives every
  // scope in production), so tests must pass an lvalue, not a literal.
  const std::string tenant = "tenant";
  {
    ScopedCost cost(&ledger, 0, tenant);
    ASSERT_TRUE(cost.active());
    cost.local()->plans_ok = 1;
    CostAddPhaseNs(CostPhase::kPlan, 50);
    CostAddArenaBytes(64);
    CostAddFlipEvals(3);
    CostAddFault();
    // Nothing reaches the ledger while the scope is open.
    EXPECT_TRUE(ledger.Snapshot().empty());
  }
  std::vector<CostLedger::Row> rows = ledger.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].cost.plans_ok, 1);
  EXPECT_EQ(rows[0].cost.phase_ns[1], 50);
  EXPECT_EQ(rows[0].cost.arena_bytes, 64);
  EXPECT_EQ(rows[0].cost.flip_evals, 3);
  EXPECT_EQ(rows[0].cost.faults, 1);
}

TEST(ScopedCostTest, EmptyScopeWritesNoRow) {
  CostLedger ledger(1);
  const std::string tenant = "tenant";
  { ScopedCost cost(&ledger, 0, tenant); }
  EXPECT_TRUE(ledger.Snapshot().empty());
}

TEST(ScopedCostTest, NullLedgerIsInert) {
  const std::string tenant = "tenant";
  ScopedCost cost(nullptr, 0, tenant);
  EXPECT_FALSE(cost.active());
  EXPECT_EQ(cost.local(), nullptr);
  EXPECT_EQ(AmbientCost(), nullptr);
  CostAddFlipEvals(5);  // must not crash
}

TEST(ScopedCostTest, NestedScopeShadowsAndRestoresAmbient) {
  CostLedger ledger(1);
  const std::string outer_tenant = "outer";
  const std::string inner_tenant = "inner";
  {
    ScopedCost outer(&ledger, 0, outer_tenant);
    EXPECT_EQ(AmbientCost(), outer.local());
    {
      ScopedCost inner(&ledger, 0, inner_tenant);
      EXPECT_EQ(AmbientCost(), inner.local());
      CostAddArenaBytes(7);  // charges inner
    }
    EXPECT_EQ(AmbientCost(), outer.local());
    CostAddArenaBytes(100);  // charges outer
  }
  std::vector<CostLedger::Row> rows = ledger.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tenant, "inner");
  EXPECT_EQ(rows[0].cost.arena_bytes, 7);
  EXPECT_EQ(rows[1].tenant, "outer");
  EXPECT_EQ(rows[1].cost.arena_bytes, 100);
}

TEST(ScopedCostTest, AmbientIsPerThread) {
  CostLedger ledger(1);
  const std::string tenant = "main-tenant";
  ScopedCost cost(&ledger, 0, tenant);
  std::thread other([] {
    // A fresh thread has no ambient sink; adds are dropped, not misfiled.
    EXPECT_EQ(AmbientCost(), nullptr);
    CostAddPhaseNs(CostPhase::kSim, 999);
  });
  other.join();
  EXPECT_EQ(cost.local()->phase_ns[2], 0);
}

TEST(CostLedgerTest, ConcurrentAppliesAreExact) {
  CostLedger ledger(4);
  constexpr int kThreads = 8;
  constexpr int kApplies = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, t] {
      TenantCost delta;
      delta.flip_evals = 1;
      const std::string tenant = "tenant" + std::to_string(t % 4);
      for (int i = 0; i < kApplies; ++i) {
        ledger.Apply(t % 4, tenant, delta);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  int64_t total = 0;
  for (const CostLedger::Row& row : ledger.Snapshot()) {
    total += row.cost.flip_evals;
  }
  EXPECT_EQ(total, kThreads * kApplies);
}

}  // namespace
}  // namespace obs
}  // namespace imcf
