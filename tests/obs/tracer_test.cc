// Tracer + flight recorder + exporters.
//
// The Perfetto golden is byte-exact over hand-built SpanRecords (the
// exporter sorts by wall start, formats doubles with %.15g); the live-span
// tests exercise the TLS ambient stack, cross-thread handoff and the
// recorder's wraparound, filtering the shared Default() recorder by
// test-unique trace ids.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"

namespace imcf {
namespace obs {
namespace {

SpanRecord MakeRecord(uint64_t trace_id, uint64_t span_id, uint64_t parent,
                      const char* name, const char* category) {
  SpanRecord r;
  r.trace_id = trace_id;
  r.span_id = span_id;
  r.parent_span_id = parent;
  r.name = name;
  r.category = category;
  return r;
}

TEST(TraceExportTest, PerfettoJsonGolden) {
  SpanRecord root = MakeRecord(0xab, 1, 0, "serve.execute", "serve");
  root.wall_start_ns = 1000;
  root.wall_end_ns = 3500;
  root.sim_start = 100;
  root.sim_end = 160;
  root.arg_name = "rep";
  root.arg_value = 2;
  std::strcpy(root.detail, "plan");

  SpanRecord drop = MakeRecord(0xab, 2, 1, "fw.drop", "firewall");
  drop.wall_start_ns = 2000;
  drop.wall_end_ns = 2000;  // instant event
  drop.thread_index = 1;
  drop.arg_name = "rule";
  drop.arg_value = 7;
  std::strcpy(drop.detail, "quiet-hours");

  // Deliberately out of wall order: the exporter sorts.
  EXPECT_EQ(
      TraceEventJson({drop, root}),
      "{\"traceEvents\":["
      "{\"name\":\"serve.execute\",\"cat\":\"serve\",\"ph\":\"X\","
      "\"ts\":1,\"dur\":2.5,\"pid\":1,\"tid\":0,"
      "\"args\":{\"trace_id\":\"0xab\",\"span_id\":\"0x1\","
      "\"sim_start\":100,\"sim_end\":160,\"rep\":2,\"detail\":\"plan\"}},"
      "{\"name\":\"fw.drop\",\"cat\":\"firewall\",\"ph\":\"i\","
      "\"ts\":2,\"s\":\"t\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"trace_id\":\"0xab\",\"span_id\":\"0x2\","
      "\"parent_span_id\":\"0x1\",\"rule\":7,"
      "\"detail\":\"quiet-hours\"}}"
      "],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceExportTest, CanonicalTextMasksMeasurementsAndIndentsChildren) {
  SpanRecord run = MakeRecord(0x2, 10, 0, "sim.run", "sim");
  run.sim_start = 0;
  run.sim_end = 3600;
  run.wall_start_ns = 555;  // masked
  std::strcpy(run.detail, "EP");
  SpanRecord slot1 = MakeRecord(0x2, 11, 10, "plan.slot", "sim");
  slot1.sim_start = 0;
  slot1.sim_end = 1800;
  SpanRecord search = MakeRecord(0x2, 13, 11, "ep.search", "core");
  search.arg_name = "iterations";
  search.arg_value = 5;
  SpanRecord slot2 = MakeRecord(0x2, 12, 10, "plan.slot", "sim");
  slot2.sim_start = 1800;
  slot2.sim_end = 3600;

  EXPECT_EQ(CanonicalTraceText({search, slot2, run, slot1}),
            "trace 0x2\n"
            "  sim.run [sim] sim=[0..3600] \"EP\"\n"
            "    plan.slot [sim] sim=[0..1800]\n"
            "      ep.search [core] iterations=5\n"
            "    plan.slot [sim] sim=[1800..3600]\n");
}

TEST(TraceExportTest, OrphanedSubtreeRootsItself) {
  // Parent span 999 was overwritten in the ring: the child still renders,
  // promoted to a root of its trace.
  SpanRecord orphan = MakeRecord(0x3, 20, 999, "ep.search", "core");
  EXPECT_EQ(CanonicalTraceText({orphan}),
            "trace 0x3\n"
            "  ep.search [core]\n");
}

TEST(TraceExportTest, CompactLineCollapsesIdenticalSiblingRuns) {
  SpanRecord root = MakeRecord(0x9, 1, 0, "serve.execute", "serve");
  std::strcpy(root.detail, "plan");
  std::vector<SpanRecord> records = {root};
  for (uint64_t i = 0; i < 3; ++i) {
    records.push_back(MakeRecord(0x9, 2 + i, 1, "plan.slot", "sim"));
  }
  SpanRecord search = MakeRecord(0x9, 5, 1, "ep.search", "core");
  std::strcpy(search.detail, "early_exit");
  records.push_back(search);
  // A record from another trace must not leak in.
  records.push_back(MakeRecord(0x7, 6, 0, "noise", "test"));

  EXPECT_EQ(CompactTraceLine(records, 0x9),
            "serve.execute(plan){plan.slot x3,ep.search(early_exit)}");
  EXPECT_EQ(CompactTraceLine(records, 0x1234), "");
}

TEST(TraceExportTest, ThreadNameMetadataEventsLeadTheStream) {
  // Records whose snapshot carried a thread name emit one Chrome metadata
  // event (ph "M") per lane, ahead of the span events, so Perfetto labels
  // the lane "pool-1" instead of a bare tid.
  SpanRecord root = MakeRecord(0xab, 1, 0, "serve.execute", "serve");
  root.wall_start_ns = 1000;
  root.wall_end_ns = 2000;
  root.thread_index = 1;
  root.thread_name = "pool-1";
  const std::string json = TraceEventJson({root});
  const size_t meta = json.find(
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"pool-1\"}}");
  const size_t span = json.find("\"name\":\"serve.execute\"");
  ASSERT_NE(meta, std::string::npos) << json;
  ASSERT_NE(span, std::string::npos) << json;
  EXPECT_LT(meta, span);
}

TEST(TraceExportTest, UnnamedThreadsEmitNoMetadata) {
  // The golden above stays byte-exact because nameless records add nothing.
  SpanRecord root = MakeRecord(0xab, 1, 0, "serve.execute", "serve");
  root.wall_start_ns = 1000;
  root.wall_end_ns = 2000;
  EXPECT_EQ(TraceEventJson({root}).find("\"ph\":\"M\""), std::string::npos);
}

TEST(FlightRecorderTest, ThreadNamesFlowIntoSnapshots) {
  FlightRecorder recorder(64);
  recorder.SetCurrentThreadName("drain");
  recorder.Record(MakeRecord(0x5, 1, 0, "s", "test"));
  const std::vector<SpanRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].thread_name, "drain");
  const std::vector<std::string> names = recorder.thread_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "drain");

  // Renaming is idempotent per thread: the ring keeps the latest name.
  recorder.SetCurrentThreadName("drain-2");
  EXPECT_EQ(recorder.Snapshot()[0].thread_name, "drain-2");
  EXPECT_EQ(recorder.ring_count(), 1u);
}

TEST(FlightRecorderTest, WraparoundKeepsNewestCapacitySpans) {
  FlightRecorder recorder(64);  // the smallest ring the clamp allows
  EXPECT_EQ(recorder.capacity(), 64u);
  for (uint64_t i = 1; i <= 150; ++i) {
    recorder.Record(MakeRecord(0x1, i, 0, "s", "test"));
  }
  EXPECT_EQ(recorder.total_recorded(), 150);
  EXPECT_EQ(recorder.ring_count(), 1u);
  const std::vector<SpanRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 64u);
  // Oldest-first within the ring: spans 87..150 survive, 1..86 were
  // overwritten.
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].span_id, 87 + i);
  }
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, CapacityClampsAndRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(100).capacity(), 128u);  // round up
  EXPECT_EQ(FlightRecorder(10).capacity(), 64u);    // clamp to minimum
  EXPECT_EQ(FlightRecorder(0).capacity(), 8192u);   // default
}

TEST(TracerTest, SpanWithoutAmbientContextIsInert) {
  const int64_t before = FlightRecorder::Default().total_recorded();
  {
    ScopedSpan span("test.orphan", "test");
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(span.context().valid());
  }
  EXPECT_EQ(FlightRecorder::Default().total_recorded(), before);
}

TEST(TracerTest, RuntimeDisableMakesSpansInert) {
  Tracer::set_enabled(false);
  const int64_t before = FlightRecorder::Default().total_recorded();
  {
    ScopedSpan span("test.disabled", "test", Tracer::Root(0xd15ab1e));
    EXPECT_FALSE(span.active());
  }
  Tracer::set_enabled(true);
  EXPECT_EQ(FlightRecorder::Default().total_recorded(), before);
}

TEST(TracerTest, AmbientNestingLinksChildToInnermostSpan) {
  constexpr uint64_t kTrace = 0xa111;
  uint64_t root_id = 0;
  uint64_t child_id = 0;
  {
    ScopedSpan root("test.root", "test", Tracer::Root(kTrace));
    ASSERT_TRUE(root.active());
    root.SimSpan(10, 20);
    root.Arg("n", 1);
    root_id = root.context().span_id;
    EXPECT_EQ(Tracer::Current().span_id, root_id);
    {
      ScopedSpan child("test.child", "test");
      ASSERT_TRUE(child.active());
      child.Detail("leaf");
      child_id = child.context().span_id;
      EXPECT_EQ(child.context().trace_id, kTrace);
    }
    EXPECT_EQ(Tracer::Current().span_id, root_id);
  }
  EXPECT_FALSE(Tracer::Current().valid());
  EXPECT_GT(child_id, root_id);  // span ids are creation-ordered

  int found = 0;
  for (const SpanRecord& r : FlightRecorder::Default().Snapshot()) {
    if (r.trace_id != kTrace) continue;
    ++found;
    if (r.span_id == child_id) {
      EXPECT_EQ(r.parent_span_id, root_id);
      EXPECT_STREQ(r.detail, "leaf");
    } else {
      EXPECT_EQ(r.span_id, root_id);
      EXPECT_EQ(r.parent_span_id, 0u);
      EXPECT_EQ(r.sim_start, 10);
      EXPECT_EQ(r.sim_end, 20);
      EXPECT_GE(r.wall_end_ns, r.wall_start_ns);
    }
  }
  EXPECT_EQ(found, 2);
}

TEST(TracerTest, ExplicitContextCrossesThreads) {
  constexpr uint64_t kTrace = 0xa222;
  TraceContext handoff;
  uint64_t submit_id = 0;
  {
    ScopedSpan submit("test.submit", "test", Tracer::Root(kTrace));
    submit_id = submit.context().span_id;
    handoff = submit.context();
  }
  std::thread worker([handoff] {
    ScopedSpan execute("test.execute", "test", handoff);
    EXPECT_TRUE(execute.active());
    ScopedSpan inner("test.inner", "test");  // ambient works on the worker
    EXPECT_EQ(inner.context().trace_id, handoff.trace_id);
  });
  worker.join();

  int found = 0;
  for (const SpanRecord& r : FlightRecorder::Default().Snapshot()) {
    if (r.trace_id != kTrace) continue;
    ++found;
    if (std::string(r.name) == "test.execute") {
      EXPECT_EQ(r.parent_span_id, submit_id);
    }
  }
  EXPECT_EQ(found, 3);
}

TEST(TracerTest, TraceEventRecordsInstantUnderAmbient) {
  constexpr uint64_t kTrace = 0xa333;
  {
    ScopedSpan root("test.root", "test", Tracer::Root(kTrace));
    TraceEvent("test.event", "test", "why", "rule", 42);
  }
  bool seen = false;
  for (const SpanRecord& r : FlightRecorder::Default().Snapshot()) {
    if (r.trace_id != kTrace || std::string(r.name) != "test.event") continue;
    seen = true;
    EXPECT_EQ(r.wall_start_ns, r.wall_end_ns);
    EXPECT_STREQ(r.detail, "why");
    EXPECT_STREQ(r.arg_name, "rule");
    EXPECT_EQ(r.arg_value, 42);
  }
  EXPECT_TRUE(seen);

  // Without an ambient span the event is dropped, not a stray root.
  const int64_t before = FlightRecorder::Default().total_recorded();
  TraceEvent("test.dropped", "test");
  EXPECT_EQ(FlightRecorder::Default().total_recorded(), before);
}

TEST(TracerTest, DetailTruncatesAndExtraArgsAreDropped) {
  constexpr uint64_t kTrace = 0xa444;
  const std::string long_text(100, 'x');
  {
    ScopedSpan span("test.root", "test", Tracer::Root(kTrace));
    span.Detail(long_text);
    span.Arg("a", 1);
    span.Arg("b", 2);
    span.Arg("c", 3);  // dropped: first two win
  }
  for (const SpanRecord& r : FlightRecorder::Default().Snapshot()) {
    if (r.trace_id != kTrace) continue;
    EXPECT_EQ(std::string(r.detail), std::string(kSpanDetailBytes - 1, 'x'));
    EXPECT_STREQ(r.arg_name, "a");
    EXPECT_STREQ(r.arg2_name, "b");
    EXPECT_EQ(r.arg2_value, 2);
  }
}

}  // namespace
}  // namespace obs
}  // namespace imcf
