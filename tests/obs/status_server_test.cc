// StatusServer tests: request-target parsing, ephemeral-port binding, and
// real HTTP round-trips over a loopback socket (the server is plain POSIX
// sockets, so the test client is too).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/status_server/status_server.h"

namespace imcf {
namespace obs {
namespace {

/// Blocking one-shot HTTP client: sends `request_line` verbatim, returns
/// the full response (headers + body).
std::string RawRequest(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = request_line + "\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ParseRequestTargetTest, SplitsPathAndQuery) {
  HttpRequest request = ParseRequestTarget("/tenantz?sort=cpu&k=10");
  EXPECT_EQ(request.path, "/tenantz");
  EXPECT_EQ(request.query.at("sort"), "cpu");
  EXPECT_EQ(request.query.at("k"), "10");
}

TEST(ParseRequestTargetTest, NoQueryAndEdgeCases) {
  EXPECT_EQ(ParseRequestTarget("/metrics").path, "/metrics");
  EXPECT_TRUE(ParseRequestTarget("/metrics").query.empty());
  // Valueless keys, empty pairs, duplicate keys (last wins).
  HttpRequest request = ParseRequestTarget("/p?flag&x=1&&x=2");
  EXPECT_EQ(request.path, "/p");
  EXPECT_EQ(request.query.at("flag"), "");
  EXPECT_EQ(request.query.at("x"), "2");
}

TEST(StatusServerTest, PortZeroBindsEphemeralPort) {
  StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(StatusServerTest, ServesRegisteredHandlerWithQuery) {
  StatusServer server;
  server.Handle("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "sort=" + (request.query.count("sort")
                                   ? request.query.at("sort")
                                   : "none");
    return response;
  });
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  const std::string reply =
      RawRequest(server.port(), "GET /echo?sort=cpu HTTP/1.0");
  EXPECT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos) << reply;
  EXPECT_NE(reply.find("sort=cpu"), std::string::npos) << reply;
  EXPECT_EQ(server.requests_served(), 1);
  server.Stop();
}

TEST(StatusServerTest, UnknownPathIs404ListingKnownPaths) {
  StatusServer server;
  server.Handle("/known", [](const HttpRequest&) { return HttpResponse{}; });
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  const std::string reply = RawRequest(server.port(), "GET /nope HTTP/1.0");
  EXPECT_NE(reply.find("404"), std::string::npos) << reply;
  EXPECT_NE(reply.find("/known"), std::string::npos) << reply;
  server.Stop();
}

TEST(StatusServerTest, NonGetMethodRejected) {
  StatusServer server;
  server.Handle("/p", [](const HttpRequest&) { return HttpResponse{}; });
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  const std::string reply = RawRequest(server.port(), "POST /p HTTP/1.0");
  EXPECT_NE(reply.find("405"), std::string::npos) << reply;
  server.Stop();
}

TEST(StatusServerTest, DefaultHandlersServePrometheusMetrics) {
  MetricRegistry registry;
  registry.GetCounter("imcf_test_requests_total", "Test counter.")
      ->Increment(5);
  StatusServer server;
  RegisterDefaultHandlers(&server, &registry, /*recorder=*/nullptr);
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  const std::string reply = RawRequest(server.port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(reply.find("text/plain; version=0.0.4"), std::string::npos)
      << reply;
  EXPECT_NE(reply.find("imcf_test_requests_total 5"), std::string::npos)
      << reply;
  server.Stop();
}

TEST(StatusServerTest, ServesRequestArrivingOneByteAtATime) {
  // A trickling client forces short reads on the server: every recv
  // delivers one byte, so the request line is assembled across many reads
  // rather than arriving whole. The server must still parse and answer it.
  StatusServer server;
  server.Handle("/slow", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "trickled";
    return response;
  });
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /slow HTTP/1.0\r\n\r\n";
  for (char c : request) {
    // MSG_NOSIGNAL: the server answers and closes as soon as the request
    // line is complete, which may race our trailing bytes into EPIPE.
    if (::send(fd, &c, 1, MSG_NOSIGNAL) != 1) break;
  }
  std::string reply;
  char buffer[64];
  ssize_t n;
  // Read the response in 1-byte chunks too, exercising short writes on the
  // server side (its send fills our tiny reads incrementally).
  while ((n = ::recv(fd, buffer, 1, 0)) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos) << reply;
  EXPECT_NE(reply.find("trickled"), std::string::npos) << reply;
  server.Stop();
}

TEST(StatusServerTest, OversizedRequestLineGets400) {
  // A request line that never terminates within the cap must be answered
  // with a 400, not buffered forever or silently dropped.
  StatusServer server;
  server.Handle("/p", [](const HttpRequest&) { return HttpResponse{}; });
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  const std::string reply = RawRequest(
      server.port(), "GET /" + std::string(10000, 'a') + " HTTP/1.0");
  EXPECT_NE(reply.find("400"), std::string::npos) << reply;
  EXPECT_NE(reply.find("request line too long"), std::string::npos) << reply;
  server.Stop();
}

TEST(StatusServerTest, StopIsIdempotentAndRestartable) {
  StatusServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  const int first_port = server.port();
  server.Stop();
  server.Stop();  // second stop is a no-op
  ASSERT_TRUE(server.Start(0, &error)) << error;
  EXPECT_GT(server.port(), 0);
  (void)first_port;
  server.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace imcf
