// Tests for the metrics registry: concurrent update exactness under the
// thread pool, quantile estimation, bucket helpers, and the dual-stamp
// ScopedTimer. Tests build their own MetricRegistry instances rather than
// touching Default(), so they cannot observe (or pollute) the counters the
// instrumented production code publishes.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace imcf {
namespace obs {
namespace {

TEST(MetricRegistryTest, GetReturnsStablePointers) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("imcf_test_total", "help");
  Counter* b = registry.GetCounter("imcf_test_total", "help");
  EXPECT_EQ(a, b);
  // Distinct label sets are distinct metrics within the same family.
  Counter* la = registry.GetCounter("imcf_test_labeled_total", "help",
                                    {{"reason", "allow"}});
  Counter* lb = registry.GetCounter("imcf_test_labeled_total", "help",
                                    {{"reason", "drop"}});
  EXPECT_NE(la, lb);
  EXPECT_EQ(la, registry.GetCounter("imcf_test_labeled_total", "help",
                                    {{"reason", "allow"}}));
}

TEST(MetricRegistryTest, LabelOrderIsCanonicalized) {
  MetricRegistry registry;
  Counter* ab = registry.GetCounter("imcf_test_pair_total", "help",
                                    {{"a", "1"}, {"b", "2"}});
  Counter* ba = registry.GetCounter("imcf_test_pair_total", "help",
                                    {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("imcf_test_hammer_total", "help");
  constexpr int kThreads = 8;
  constexpr int kTasks = 64;
  constexpr int kPerTask = 10000;
  ParallelFor(kThreads, kTasks, [counter](int) {
    for (int i = 0; i < kPerTask; ++i) counter->Increment();
  });
  EXPECT_EQ(counter->value(),
            static_cast<int64_t>(kTasks) * kPerTask);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("imcf_test_depth", "help");
  constexpr int kTasks = 64;
  constexpr int kPerTask = 1000;
  // +1 then -1 per iteration, plus one net +1 per task: the CAS loop must
  // lose no updates, so the final value is exactly kTasks.
  ParallelFor(8, kTasks, [gauge](int) {
    for (int i = 0; i < kPerTask; ++i) {
      gauge->Add(1.0);
      gauge->Add(-1.0);
    }
    gauge->Add(1.0);
  });
  EXPECT_DOUBLE_EQ(gauge->value(), static_cast<double>(kTasks));
  gauge->Set(-3.5);
  EXPECT_DOUBLE_EQ(gauge->value(), -3.5);
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_latency_ns", "help",
                                          LinearBuckets(1.0, 1.0, 4));
  constexpr int kTasks = 32;
  constexpr int kPerTask = 5000;
  // Every task observes the same integer sequence 1..4 plus one over-range
  // value; integer sums this small are exact in double, so both count and
  // sum must match exactly despite concurrent CAS adds.
  ParallelFor(8, kTasks, [hist](int) {
    for (int i = 0; i < kPerTask; ++i) {
      hist->Observe(1.0);
      hist->Observe(2.0);
      hist->Observe(3.0);
      hist->Observe(4.0);
      hist->Observe(100.0);
    }
  });
  const int64_t per_bucket = static_cast<int64_t>(kTasks) * kPerTask;
  EXPECT_EQ(hist->count(), 5 * per_bucket);
  EXPECT_DOUBLE_EQ(hist->sum(), static_cast<double>(110 * per_bucket));
  ASSERT_EQ(hist->bounds().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(hist->bucket_count(i), per_bucket) << "bucket " << i;
  }
  EXPECT_EQ(hist->bucket_count(4), per_bucket);  // +Inf bucket
}

TEST(HistogramTest, ObserveUsesLeSemantics) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_le", "help",
                                          {1.0, 2.0, 4.0});
  hist->Observe(1.0);  // le="1" (bound >= value)
  hist->Observe(1.5);  // le="2"
  hist->Observe(4.0);  // le="4"
  hist->Observe(4.1);  // +Inf
  EXPECT_EQ(hist->bucket_count(0), 1);
  EXPECT_EQ(hist->bucket_count(1), 1);
  EXPECT_EQ(hist->bucket_count(2), 1);
  EXPECT_EQ(hist->bucket_count(3), 1);
  EXPECT_DOUBLE_EQ(hist->mean(), (1.0 + 1.5 + 4.0 + 4.1) / 4.0);
}

TEST(HistogramTest, ExemplarTagsItsBucketAndLatestWins) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_exemplar", "help",
                                          {1.0, 2.0, 4.0});
  hist->Observe(0.5);                                // untagged
  hist->Observe(1.5, /*exemplar_trace_id=*/0xA);     // le="2"
  hist->Observe(100.0, /*exemplar_trace_id=*/0xB);   // +Inf
  EXPECT_EQ(hist->exemplar_trace_id(0), 0u);  // untagged bucket stays bare
  EXPECT_EQ(hist->exemplar_trace_id(1), 0xAu);
  EXPECT_DOUBLE_EQ(hist->exemplar_value(1), 1.5);
  EXPECT_EQ(hist->exemplar_trace_id(3), 0xBu);
  EXPECT_DOUBLE_EQ(hist->exemplar_value(3), 100.0);

  // The latest tagged observation replaces the bucket's exemplar...
  hist->Observe(1.8, /*exemplar_trace_id=*/0xC);
  EXPECT_EQ(hist->exemplar_trace_id(1), 0xCu);
  EXPECT_DOUBLE_EQ(hist->exemplar_value(1), 1.8);
  // ...but an untagged one (trace_id 0) never erases it.
  hist->Observe(1.9);
  EXPECT_EQ(hist->exemplar_trace_id(1), 0xCu);
}

TEST(HistogramTest, SnapshotCarriesExemplarsPerBucket) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_exemplar_snap", "help",
                                          {1.0, 2.0});
  hist->Observe(1.5, /*exemplar_trace_id=*/0x123);
  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  ASSERT_EQ(snapshot[0].exemplar_ids.size(), 3u);  // bounds + the +Inf slot
  EXPECT_EQ(snapshot[0].exemplar_ids[0], 0u);
  EXPECT_EQ(snapshot[0].exemplar_ids[1], 0x123u);
  EXPECT_DOUBLE_EQ(snapshot[0].exemplar_values[1], 1.5);
  EXPECT_EQ(snapshot[0].exemplar_ids[2], 0u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_quantile", "help",
                                          LinearBuckets(10.0, 10.0, 10));
  EXPECT_DOUBLE_EQ(hist->Quantile(0.5), 0.0);  // empty
  // 100 observations uniform over (0, 100]: one per unit.
  for (int i = 1; i <= 100; ++i) hist->Observe(static_cast<double>(i));
  // Each bucket holds exactly 10 observations, so quantiles should land
  // close to the uniform ideal (within one bucket width).
  EXPECT_NEAR(hist->Quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(hist->Quantile(0.9), 90.0, 10.0);
  EXPECT_NEAR(hist->Quantile(0.99), 99.0, 10.0);
  // Quantiles are monotone in q.
  EXPECT_LE(hist->Quantile(0.1), hist->Quantile(0.5));
  EXPECT_LE(hist->Quantile(0.5), hist->Quantile(0.9));
}

TEST(HistogramTest, QuantileMatchesHandComputedRanks) {
  MetricRegistry registry;
  // Single bucket (0, 10] holding 4 observations. The rank-based estimate
  // is lower + (upper - lower) * rank / in_bucket with rank = ceil(q * n):
  //   q=0.25 -> rank 1 -> 2.5      q=0.5 -> rank 2 -> 5.0
  //   q=0.75 -> rank 3 -> 7.5      q=1.0 -> rank 4 -> 10.0
  Histogram* single = registry.GetHistogram("imcf_test_q_single", "help",
                                            {10.0});
  for (int i = 0; i < 4; ++i) single->Observe(5.0);
  EXPECT_DOUBLE_EQ(single->Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(single->Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(single->Quantile(0.75), 7.5);
  EXPECT_DOUBLE_EQ(single->Quantile(1.0), 10.0);
  // q=0 clamps the rank to the first observation, not below it.
  EXPECT_DOUBLE_EQ(single->Quantile(0.0), 2.5);
}

TEST(HistogramTest, QuantileExactAtBucketBoundary) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_q_boundary", "help",
                                          {10.0, 20.0});
  for (int i = 0; i < 5; ++i) hist->Observe(5.0);    // le="10"
  for (int i = 0; i < 5; ++i) hist->Observe(15.0);   // le="20"
  // The median rank (5 of 10) is the last observation of the first bucket,
  // so the estimate must sit exactly on the bucket boundary — the old
  // cumulative-fraction code overshot into the next bucket here.
  EXPECT_DOUBLE_EQ(hist->Quantile(0.5), 10.0);
  // Rank 6 is the first observation of the second bucket: 1/5 into it.
  EXPECT_DOUBLE_EQ(hist->Quantile(0.6), 12.0);
  EXPECT_DOUBLE_EQ(hist->Quantile(1.0), 20.0);
}

TEST(HistogramTest, QuantileSkipsEmptyLeadingBuckets) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_q_sparse", "help",
                                          {1.0, 2.0, 10.0, 20.0});
  // All mass in (2, 10]: empty buckets must contribute nothing, and the
  // interpolation must use that bucket's own lower edge (2), not zero.
  for (int i = 0; i < 4; ++i) hist->Observe(5.0);
  EXPECT_DOUBLE_EQ(hist->Quantile(0.5), 2.0 + (10.0 - 2.0) * 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(hist->Quantile(0.25), 2.0 + (10.0 - 2.0) * 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(hist->Quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileCapsAtLargestFiniteBound) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_overflow", "help",
                                          {1.0, 2.0});
  hist->Observe(50.0);
  hist->Observe(60.0);
  // All mass in +Inf: the estimate reports the largest finite bound.
  EXPECT_DOUBLE_EQ(hist->Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(hist->Quantile(0.99), 2.0);
}

TEST(BucketHelpersTest, ExponentialAndLinear) {
  const std::vector<double> expo = ExponentialBuckets(1.0, 4.0, 4);
  ASSERT_EQ(expo.size(), 4u);
  EXPECT_DOUBLE_EQ(expo[0], 1.0);
  EXPECT_DOUBLE_EQ(expo[1], 4.0);
  EXPECT_DOUBLE_EQ(expo[2], 16.0);
  EXPECT_DOUBLE_EQ(expo[3], 64.0);
  const std::vector<double> lin = LinearBuckets(5.0, 2.5, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[0], 5.0);
  EXPECT_DOUBLE_EQ(lin[1], 7.5);
  EXPECT_DOUBLE_EQ(lin[2], 10.0);
  // Canonical bounds are ascending (a Histogram precondition).
  const std::vector<double>& latency = LatencyBoundsNs();
  for (size_t i = 1; i < latency.size(); ++i) {
    EXPECT_LT(latency[i - 1], latency[i]);
  }
  const std::vector<double>& duration = DurationBoundsSeconds();
  for (size_t i = 1; i < duration.size(); ++i) {
    EXPECT_LT(duration[i - 1], duration[i]);
  }
}

TEST(ScopedTimerTest, ObservesWallTimeOnDestruction) {
  MetricRegistry registry;
  Histogram* wall = registry.GetHistogram("imcf_test_span_ns", "help",
                                          LatencyBoundsNs());
  double accum = 0.0;
  {
    ScopedTimer span(wall, &accum);
    EXPECT_GE(span.ElapsedNs(), 0);
    EXPECT_EQ(wall->count(), 0);  // nothing observed until scope exit
  }
  EXPECT_EQ(wall->count(), 1);
  EXPECT_GE(wall->sum(), 0.0);
  EXPECT_GE(accum, 0.0);
  EXPECT_DOUBLE_EQ(accum * 1e9, wall->sum());  // same clock read
}

TEST(ScopedTimerTest, DualStampObservesSimDelta) {
  MetricRegistry registry;
  Histogram* wall = registry.GetHistogram("imcf_test_dual_wall_ns", "help",
                                          LatencyBoundsNs());
  Histogram* sim = registry.GetHistogram("imcf_test_dual_sim_seconds",
                                         "help", {60.0, 3600.0, 86400.0});
  int64_t sim_clock = 1000;
  {
    ScopedTimer span(wall, &sim_clock, sim);
    sim_clock += 3600;  // the span advances the simulation by one hour
  }
  EXPECT_EQ(wall->count(), 1);
  ASSERT_EQ(sim->count(), 1);
  EXPECT_DOUBLE_EQ(sim->sum(), 3600.0);
  EXPECT_EQ(sim->bucket_count(1), 1);  // le="3600"
}

TEST(ScopedTimerTest, NullHistogramsAreSafe) {
  // Single-clock spans pass nullptr for the stamps they skip.
  int64_t sim_clock = 0;
  { ScopedTimer span(nullptr); }
  { ScopedTimer span(nullptr, &sim_clock, nullptr); }
  { ScopedTimer span(nullptr, nullptr, nullptr); }
}

TEST(MetricRegistryTest, SnapshotIsSortedAndComplete) {
  MetricRegistry registry;
  // Register out of order; Snapshot must come back sorted by name then
  // label serialization.
  registry.GetGauge("imcf_z_gauge", "z")->Set(1.0);
  registry.GetCounter("imcf_a_total", "a")->Increment(7);
  registry.GetCounter("imcf_m_total", "m", {{"reason", "drop"}})
      ->Increment(2);
  registry.GetCounter("imcf_m_total", "m", {{"reason", "allow"}})
      ->Increment(3);
  const std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "imcf_a_total");
  EXPECT_DOUBLE_EQ(snap[0].value, 7.0);
  EXPECT_EQ(snap[1].name, "imcf_m_total");
  ASSERT_EQ(snap[1].labels.size(), 1u);
  EXPECT_EQ(snap[1].labels[0].second, "allow");
  EXPECT_EQ(snap[2].labels[0].second, "drop");
  EXPECT_EQ(snap[3].name, "imcf_z_gauge");
  EXPECT_EQ(snap[3].type, MetricType::kGauge);
}

}  // namespace
}  // namespace obs
}  // namespace imcf
