// The compile-out contract for accounting: with IMCF_DISABLE_ACCOUNTING
// defined the IMCF_COST_* macros must expand to inert stubs — no ledger
// writes, no TLS publication, no heap allocation, macro arguments never
// evaluated. This TU defines the macro itself (the library stays
// instrumented), which is exactly how a -DIMCF_DISABLE_ACCOUNTING build
// sees every call site.

#ifndef IMCF_DISABLE_ACCOUNTING  // already global in a disabled build
#define IMCF_DISABLE_ACCOUNTING
#endif
#include "obs/accounting/cost_ledger.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<int64_t> g_news{0};
}  // namespace

// Binary-wide allocation counter; the zero-allocation assertion measures
// the delta across a block containing only disabled cost macros.
void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace imcf {
namespace obs {
namespace {

[[maybe_unused]] int64_t MustNotBeCalled() {
  ADD_FAILURE() << "disabled macro evaluated its arguments";
  return 0;
}

TEST(AccountingDisabledTest, FlagReportsDisabled) {
  EXPECT_EQ(IMCF_ACCOUNTING_ENABLED, 0);
}

TEST(AccountingDisabledTest, ScopeMacroYieldsInertNoopCost) {
  CostLedger ledger(1);
  {
    IMCF_COST_SCOPE(cost, &ledger, 0, "tenant");
    EXPECT_FALSE(cost.active());
    EXPECT_EQ(cost.local(), nullptr);
  }
  // Nothing was flushed: the macro never touched the ledger.
  EXPECT_TRUE(ledger.Snapshot().empty());
}

TEST(AccountingDisabledTest, AddMacrosDoNotEvaluateArguments) {
  IMCF_COST_ADD_PHASE_NS(CostPhase::kPlan, MustNotBeCalled());
  IMCF_COST_ADD_ARENA_BYTES(MustNotBeCalled());
  IMCF_COST_ADD_FLIP_EVALS(MustNotBeCalled());
  IMCF_COST_ADD_FAULT(MustNotBeCalled());
}

TEST(AccountingDisabledTest, DisabledMacrosAllocateNothing) {
  CostLedger ledger(1);
  const int64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    IMCF_COST_SCOPE(cost, &ledger, 0, "tenant");
    IMCF_COST_ADD_PHASE_NS(CostPhase::kSim, 123);
    IMCF_COST_ADD_ARENA_BYTES(456);
    IMCF_COST_ADD_FLIP_EVALS(7);
    IMCF_COST_ADD_FAULT(1);
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed), before);
}

TEST(AccountingDisabledTest, LibraryClassesStillWork) {
  // The ledger itself stays linkable and functional (introspection pages
  // degrade to empty, they do not vanish): direct Apply still lands.
  CostLedger ledger(1);
  TenantCost delta;
  delta.plans_ok = 1;
  ledger.Apply(0, "t", delta);
  EXPECT_EQ(ledger.Snapshot().size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace imcf
