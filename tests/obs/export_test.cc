// Golden-string tests for the exposition formats. The registry snapshot is
// sorted by (name, label serialization), and both exporters format doubles
// with %.15g, so the full output of a hand-built registry is deterministic
// and can be compared verbatim.

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace imcf {
namespace obs {
namespace {

/// One registry exercising every metric kind, label sets, and the
/// histogram bucket expansion.
MetricRegistry* BuildSampleRegistry() {
  auto* registry = new MetricRegistry();
  registry->GetCounter("imcf_test_commands_total", "Commands seen.")
      ->Increment(3);
  registry
      ->GetCounter("imcf_test_decisions_total", "Decisions by reason.",
                   {{"reason", "allow"}})
      ->Increment(2);
  registry
      ->GetCounter("imcf_test_decisions_total", "Decisions by reason.",
                   {{"reason", "drop"}})
      ->Increment(1);
  registry->GetGauge("imcf_test_depth", "Queue depth.")->Set(2.5);
  Histogram* hist = registry->GetHistogram("imcf_test_latency_ns",
                                           "Span latency.", {1.0, 2.0, 4.0});
  hist->Observe(1.0);    // le="1"
  hist->Observe(3.0);    // le="4"
  hist->Observe(100.0);  // +Inf
  return registry;
}

TEST(ExportTest, PrometheusTextGolden) {
  MetricRegistry* registry = BuildSampleRegistry();
  EXPECT_EQ(ToPrometheusText(*registry),
            "# HELP imcf_test_commands_total Commands seen.\n"
            "# TYPE imcf_test_commands_total counter\n"
            "imcf_test_commands_total 3\n"
            "# HELP imcf_test_decisions_total Decisions by reason.\n"
            "# TYPE imcf_test_decisions_total counter\n"
            "imcf_test_decisions_total{reason=\"allow\"} 2\n"
            "imcf_test_decisions_total{reason=\"drop\"} 1\n"
            "# HELP imcf_test_depth Queue depth.\n"
            "# TYPE imcf_test_depth gauge\n"
            "imcf_test_depth 2.5\n"
            "# HELP imcf_test_latency_ns Span latency.\n"
            "# TYPE imcf_test_latency_ns histogram\n"
            "imcf_test_latency_ns_bucket{le=\"1\"} 1\n"
            "imcf_test_latency_ns_bucket{le=\"2\"} 1\n"
            "imcf_test_latency_ns_bucket{le=\"4\"} 2\n"
            "imcf_test_latency_ns_bucket{le=\"+Inf\"} 3\n"
            "imcf_test_latency_ns_sum 104\n"
            "imcf_test_latency_ns_count 3\n");
  delete registry;
}

TEST(ExportTest, PrometheusExemplarSuffixGolden) {
  // Tagged observations render the OpenMetrics exemplar suffix on their
  // bucket line (including +Inf); untagged buckets stay plain v0.0.4, so
  // the BuildSampleRegistry golden above is unaffected.
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_latency_ns",
                                          "Span latency.", {1.0, 2.0});
  hist->Observe(1.0);
  hist->Observe(1.5, /*exemplar_trace_id=*/0xABC);
  hist->Observe(9.0, /*exemplar_trace_id=*/0x1);
  EXPECT_EQ(
      ToPrometheusText(registry),
      "# HELP imcf_test_latency_ns Span latency.\n"
      "# TYPE imcf_test_latency_ns histogram\n"
      "imcf_test_latency_ns_bucket{le=\"1\"} 1\n"
      "imcf_test_latency_ns_bucket{le=\"2\"} 2"
      " # {trace_id=\"0x0000000000000abc\"} 1.5\n"
      "imcf_test_latency_ns_bucket{le=\"+Inf\"} 3"
      " # {trace_id=\"0x0000000000000001\"} 9\n"
      "imcf_test_latency_ns_sum 11.5\n"
      "imcf_test_latency_ns_count 3\n");
}

TEST(ExportTest, JsonExemplarArrayGolden) {
  MetricRegistry registry;
  Histogram* hist = registry.GetHistogram("imcf_test_latency_ns",
                                          "Span latency.", {1.0, 2.0});
  hist->Observe(1.5, /*exemplar_trace_id=*/0xABC);
  const std::string json = ToJson(registry);
  EXPECT_NE(json.find("\"exemplars\":[{\"le\":\"2\","
                      "\"trace_id\":\"0x0000000000000abc\","
                      "\"value\":1.5}]"),
            std::string::npos)
      << json;
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  MetricRegistry registry;
  registry
      .GetCounter("imcf_test_escaped_total", "Escaping.",
                  {{"job", "a\"b\\c\nd"}})
      ->Increment(1);
  EXPECT_EQ(ToPrometheusText(registry),
            "# HELP imcf_test_escaped_total Escaping.\n"
            "# TYPE imcf_test_escaped_total counter\n"
            "imcf_test_escaped_total{job=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(ExportTest, PrometheusEscapesHostileTenantLabel) {
  // Tenant ids flow straight into label values in the serving layer; a
  // hostile id must not be able to break out of the sample line.
  MetricRegistry registry;
  registry
      .GetCounter("imcf_serve_tenant_responses_total", "Per-tenant.",
                  {{"tenant", "evil\"} 999\ninjected_metric 1\n#\\"}})
      ->Increment(4);
  EXPECT_EQ(ToPrometheusText(registry),
            "# HELP imcf_serve_tenant_responses_total Per-tenant.\n"
            "# TYPE imcf_serve_tenant_responses_total counter\n"
            "imcf_serve_tenant_responses_total{tenant="
            "\"evil\\\"} 999\\ninjected_metric 1\\n#\\\\\"} 4\n");
}

TEST(ExportTest, PrometheusEscapesHelpText) {
  // HELP is free text per the exposition format, but backslash and newline
  // must be escaped or the line structure breaks.
  MetricRegistry registry;
  registry
      .GetCounter("imcf_test_help_total",
                  "Path C:\\temp\nsecond \"quoted\" line")
      ->Increment(1);
  EXPECT_EQ(ToPrometheusText(registry),
            "# HELP imcf_test_help_total "
            "Path C:\\\\temp\\nsecond \"quoted\" line\n"
            "# TYPE imcf_test_help_total counter\n"
            "imcf_test_help_total 1\n");
}

TEST(ExportTest, JsonGolden) {
  MetricRegistry* registry = BuildSampleRegistry();
  EXPECT_EQ(
      ToJson(*registry),
      "[{\"name\":\"imcf_test_commands_total\",\"type\":\"counter\","
      "\"value\":3},"
      "{\"name\":\"imcf_test_decisions_total\",\"type\":\"counter\","
      "\"labels\":{\"reason\":\"allow\"},\"value\":2},"
      "{\"name\":\"imcf_test_decisions_total\",\"type\":\"counter\","
      "\"labels\":{\"reason\":\"drop\"},\"value\":1},"
      "{\"name\":\"imcf_test_depth\",\"type\":\"gauge\",\"value\":2.5},"
      "{\"name\":\"imcf_test_latency_ns\",\"type\":\"histogram\","
      "\"count\":3,\"sum\":104,\"mean\":34.6666666666667,"
      "\"quantiles\":{\"p50\":4,\"p90\":4,\"p99\":4},"
      "\"bounds\":[1,2,4],\"buckets\":[1,0,1,1]}]");
  delete registry;
}

TEST(ExportTest, EmptyRegistry) {
  MetricRegistry registry;
  EXPECT_EQ(ToPrometheusText(registry), "");
  EXPECT_EQ(ToJson(registry), "[]");
}

TEST(JsonWriterTest, NestedContainersAndEscapes) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("tab\there");
  w.Key("items").BeginArray().Int(1).Int(-2).Double(0.5).EndArray();
  w.Key("flag").Bool(true);
  w.Key("missing").Null();
  w.Key("nested").BeginObject().Key("k").String("v").EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"tab\\there\",\"items\":[1,-2,0.5],"
            "\"flag\":true,\"missing\":null,\"nested\":{\"k\":\"v\"}}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(1.0 / 0.0);
  w.Double(-1.0 / 0.0);
  w.Double(0.0 / 0.0);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null]");
}

}  // namespace
}  // namespace obs
}  // namespace imcf
