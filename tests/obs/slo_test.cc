// SLO engine tests: burn arithmetic, the multi-window firing rule, window
// edge cases (empty window, sim-clock jump, burn exactly at threshold) and
// the rising-edge alert filter.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/slo/slo_engine.h"

namespace imcf {
namespace obs {
namespace {

/// Tight test geometry: 10 s buckets, 60 s short window, 600 s long window.
SloOptions TestOptions() {
  SloOptions options;
  options.bucket_seconds = 10;
  options.short_window_seconds = 60;
  options.long_window_seconds = 600;
  options.burn_threshold = 2.0;
  options.max_shed_rate = 0.05;
  return options;
}

SloEvent ShedAt(int64_t sim_time, uint64_t trace_id = 0) {
  SloEvent event;
  event.sim_time = sim_time;
  event.shed = true;
  event.trace_id = trace_id;
  return event;
}

SloEvent ServedAt(int64_t sim_time) {
  SloEvent event;
  event.sim_time = sim_time;
  return event;
}

const BurnStatus& StatusFor(const std::vector<BurnStatus>& all,
                            const std::string& tenant,
                            SloObjective objective) {
  for (const BurnStatus& status : all) {
    if (status.tenant == tenant && status.objective == objective) {
      return status;
    }
  }
  static BurnStatus missing;
  ADD_FAILURE() << "no status for " << tenant << "/"
                << SloObjectiveName(objective);
  return missing;
}

TEST(SloEngineTest, EmptyWindowBurnsNothingAndNeverFires) {
  SloEngine engine(TestOptions());
  engine.SetObjectives("t", TestOptions());  // state exists, no events
  std::vector<BurnStatus> all = engine.Evaluate(1000);
  ASSERT_EQ(all.size(), kNumSloObjectives);
  for (const BurnStatus& status : all) {
    EXPECT_EQ(status.short_burn, 0.0);
    EXPECT_EQ(status.long_burn, 0.0);
    EXPECT_FALSE(status.firing);
    EXPECT_EQ(status.exemplar_trace_id, 0u);
  }
  EXPECT_TRUE(engine.NewlyFiring(1000).empty());
}

TEST(SloEngineTest, ShedBurnMatchesHandArithmetic) {
  SloEngine engine(TestOptions());
  // 1 shed among 10 submissions: bad fraction 0.1, budget 0.05 -> burn 2.0.
  engine.Observe("t", ShedAt(100, /*trace_id=*/0xABC));
  for (int i = 0; i < 9; ++i) engine.Observe("t", ServedAt(100));
  const BurnStatus& status =
      StatusFor(engine.Evaluate(100), "t", SloObjective::kShedRate);
  EXPECT_DOUBLE_EQ(status.short_burn, 2.0);
  EXPECT_DOUBLE_EQ(status.long_burn, 2.0);
  EXPECT_EQ(status.exemplar_trace_id, 0xABCu);
}

TEST(SloEngineTest, BurnExactlyAtThresholdFires) {
  // The firing comparison is >=: a burn landing exactly on the threshold
  // fires (the boundary belongs to the alert, not the quiet side).
  SloEngine engine(TestOptions());
  engine.Observe("t", ShedAt(100));
  for (int i = 0; i < 9; ++i) engine.Observe("t", ServedAt(100));
  const BurnStatus& status =
      StatusFor(engine.Evaluate(100), "t", SloObjective::kShedRate);
  ASSERT_DOUBLE_EQ(status.short_burn, 2.0);  // exactly the threshold
  EXPECT_TRUE(status.firing);
}

TEST(SloEngineTest, BurnJustBelowThresholdStaysQuiet) {
  SloEngine engine(TestOptions());
  // 1 shed among 11: bad fraction ~0.0909, burn ~1.82 < 2.0.
  engine.Observe("t", ShedAt(100));
  for (int i = 0; i < 10; ++i) engine.Observe("t", ServedAt(100));
  EXPECT_FALSE(
      StatusFor(engine.Evaluate(100), "t", SloObjective::kShedRate).firing);
}

TEST(SloEngineTest, ShortSpikeOutsideShortWindowStaysQuiet) {
  // Multi-window rule: bad events older than the short window but inside
  // the long one burn the long window only -> no alert.
  SloEngine engine(TestOptions());
  for (int i = 0; i < 5; ++i) engine.Observe("t", ShedAt(100));
  // 200 s later: outside the 60 s short window, inside the 600 s long one.
  const BurnStatus& status =
      StatusFor(engine.Evaluate(300), "t", SloObjective::kShedRate);
  EXPECT_EQ(status.short_burn, 0.0);
  EXPECT_GT(status.long_burn, 2.0);
  EXPECT_FALSE(status.firing);
}

TEST(SloEngineTest, SimClockJumpOrphansStaleBuckets) {
  SloEngine engine(TestOptions());
  for (int i = 0; i < 8; ++i) engine.Observe("t", ShedAt(100));
  ASSERT_TRUE(
      StatusFor(engine.Evaluate(100), "t", SloObjective::kShedRate).firing);

  // Jump the sim clock far past the long window — including by an exact
  // multiple of the ring size, which lands on the same ring slot. The old
  // bucket's index no longer matches, so it reads as zero...
  const SloOptions options = TestOptions();
  const int64_t ring_span =
      (options.long_window_seconds / options.bucket_seconds + 1) *
      options.bucket_seconds;
  const int64_t jumped = 100 + 10 * ring_span;  // same slot, 10 laps later
  const BurnStatus& after =
      StatusFor(engine.Evaluate(jumped), "t", SloObjective::kShedRate);
  EXPECT_EQ(after.short_burn, 0.0);
  EXPECT_EQ(after.long_burn, 0.0);
  EXPECT_FALSE(after.firing);

  // ...and a write at the new time reclaims the slot cleanly.
  engine.Observe("t", ServedAt(jumped));
  const BurnStatus& reclaimed =
      StatusFor(engine.Evaluate(jumped), "t", SloObjective::kShedRate);
  EXPECT_EQ(reclaimed.long_burn, 0.0);
}

TEST(SloEngineTest, NewlyFiringIsRisingEdgeOnly) {
  SloEngine engine(TestOptions());
  for (int i = 0; i < 8; ++i) engine.Observe("t", ShedAt(100));

  // First check: fires. Second check, still burning: silent (no re-alert).
  EXPECT_EQ(engine.NewlyFiring(100).size(), 1u);
  EXPECT_TRUE(engine.NewlyFiring(100).empty());
  EXPECT_TRUE(engine.NewlyFiring(110).empty());

  // Burn drains out of both windows -> edge resets -> a new burn re-fires.
  const int64_t later = 100 + 2 * TestOptions().long_window_seconds;
  EXPECT_TRUE(engine.NewlyFiring(later).empty());
  for (int i = 0; i < 8; ++i) engine.Observe("t", ShedAt(later));
  EXPECT_EQ(engine.NewlyFiring(later).size(), 1u);
}

TEST(SloEngineTest, PlanLatencyUsesConfiguredTargetAndCarriesExemplar) {
  SloOptions options = TestOptions();
  options.plan_latency_ms = 1;                 // 1 ms target
  options.latency_target_quantile = 0.5;       // generous 50% budget
  SloEngine engine(options);

  SloEvent fast;
  fast.sim_time = 50;
  fast.is_plan = true;
  fast.plan_wall_ns = 500'000;  // 0.5 ms: good
  SloEvent slow = fast;
  slow.plan_wall_ns = 5'000'000;  // 5 ms: bad
  slow.trace_id = 0xFEED;
  engine.Observe("t", fast);
  engine.Observe("t", slow);

  // 1 bad of 2 = 0.5 bad fraction on a 0.5 budget: burn exactly 1.0.
  const BurnStatus& status =
      StatusFor(engine.Evaluate(50), "t", SloObjective::kPlanLatency);
  EXPECT_DOUBLE_EQ(status.short_burn, 1.0);
  EXPECT_EQ(status.exemplar_trace_id, 0xFEEDu);
  // Latency events say nothing about sheds beyond the good tally.
  EXPECT_EQ(
      StatusFor(engine.Evaluate(50), "t", SloObjective::kShedRate).short_burn,
      0.0);
}

TEST(SloEngineTest, DeadlineObjectiveCountsOnlyDeadlineCarriers) {
  SloOptions options = TestOptions();
  options.min_deadline_hit_rate = 0.5;  // budget 0.5
  SloEngine engine(options);

  SloEvent no_deadline = ServedAt(50);
  SloEvent hit = ServedAt(50);
  hit.had_deadline = true;
  SloEvent miss = ServedAt(50);
  miss.had_deadline = true;
  miss.deadline_miss = true;
  engine.Observe("t", no_deadline);  // must not dilute the deadline window
  engine.Observe("t", hit);
  engine.Observe("t", miss);

  // 1 miss of 2 deadline-carriers = 0.5 on a 0.5 budget: burn 1.0 (a third
  // deadline-free event would have made it 1/3 / 0.5 ≈ 0.67).
  EXPECT_DOUBLE_EQ(
      StatusFor(engine.Evaluate(50), "t", SloObjective::kDeadlineHit)
          .short_burn,
      1.0);
}

TEST(SloEngineTest, ToJsonListsTenantsSortedWithHexExemplar) {
  SloEngine engine(TestOptions());
  engine.Observe("zebra", ServedAt(10));
  engine.Observe("alpha", ShedAt(10, /*trace_id=*/0x1234));
  const std::string json = engine.ToJson(10);
  const size_t alpha = json.find("\"alpha\"");
  const size_t zebra = json.find("\"zebra\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zebra, std::string::npos);
  EXPECT_LT(alpha, zebra);
  EXPECT_NE(json.find("\"exemplar_trace_id\":\"0x0000000000001234\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sim_now\":10"), std::string::npos);
}

TEST(SloEngineTest, NegativeSimTimeClampsToBucketZero) {
  SloEngine engine(TestOptions());
  engine.Observe("t", ShedAt(-50));  // pre-epoch event lands in bucket 0
  const BurnStatus& status =
      StatusFor(engine.Evaluate(0), "t", SloObjective::kShedRate);
  EXPECT_GT(status.short_burn, 0.0);
}

TEST(SloEngineTest, ClearResetsWindowsAndEdges) {
  SloEngine engine(TestOptions());
  for (int i = 0; i < 8; ++i) engine.Observe("t", ShedAt(100));
  ASSERT_EQ(engine.NewlyFiring(100).size(), 1u);
  engine.Clear();
  EXPECT_TRUE(engine.Evaluate(100).empty());
  // The edge state cleared too: the same burn fires fresh.
  for (int i = 0; i < 8; ++i) engine.Observe("t", ShedAt(100));
  EXPECT_EQ(engine.NewlyFiring(100).size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace imcf
