#include "firewall/chain.h"

#include <gtest/gtest.h>

namespace imcf {
namespace firewall {
namespace {

using devices::ActuationCommand;
using devices::CommandType;
using devices::DeviceKind;
using devices::Thing;

ActuationCommand TempCommand(devices::DeviceId device, double value,
                             const std::string& source = "mrt") {
  ActuationCommand cmd;
  cmd.device = device;
  cmd.type = CommandType::kSetTemperature;
  cmd.value = value;
  cmd.source = source;
  return cmd;
}

Thing AcThing(const std::string& address) {
  Thing thing;
  thing.id = 0;
  thing.name = "living_room_ac";
  thing.kind = DeviceKind::kHvac;
  thing.address = address;
  return thing;
}

TEST(ChainRuleTest, EmptyRuleMatchesEverything) {
  ChainRule rule;
  const Thing thing = AcThing("192.168.0.5");
  EXPECT_TRUE(rule.Matches(TempCommand(0, 25.0), &thing));
  EXPECT_TRUE(rule.Matches(TempCommand(0, 25.0), nullptr));
}

TEST(ChainRuleTest, AddressMatch) {
  // The paper's example: iptables -A OUTPUT -s 192.168.0.5 -j DROP.
  ChainRule rule;
  rule.address = "192.168.0.5";
  rule.target = Verdict::kDrop;
  const Thing daikin = AcThing("192.168.0.5");
  const Thing other = AcThing("192.168.0.6");
  EXPECT_TRUE(rule.Matches(TempCommand(0, 25.0), &daikin));
  EXPECT_FALSE(rule.Matches(TempCommand(0, 25.0), &other));
  // Unknown device (no registry entry): address rules cannot match.
  EXPECT_FALSE(rule.Matches(TempCommand(0, 25.0), nullptr));
}

TEST(ChainRuleTest, DeviceCommandSourceMatch) {
  ChainRule rule;
  rule.device = 3;
  rule.command = CommandType::kSetTemperature;
  rule.source = "ifttt";
  EXPECT_TRUE(rule.Matches(TempCommand(3, 22.0, "ifttt"), nullptr));
  EXPECT_FALSE(rule.Matches(TempCommand(4, 22.0, "ifttt"), nullptr));
  EXPECT_FALSE(rule.Matches(TempCommand(3, 22.0, "mrt"), nullptr));
  ActuationCommand light = TempCommand(3, 40.0, "ifttt");
  light.type = CommandType::kSetLight;
  EXPECT_FALSE(rule.Matches(light, nullptr));
}

TEST(ChainRuleTest, ToStringRendersIptablesStyle) {
  ChainRule rule;
  rule.address = "192.168.0.5";
  rule.target = Verdict::kDrop;
  EXPECT_EQ(rule.ToString(), "-s 192.168.0.5 -j DROP");
}

TEST(ChainTest, FirstMatchWins) {
  Chain chain("OUTPUT", Verdict::kAccept);
  ChainRule drop_all_temp;
  drop_all_temp.command = CommandType::kSetTemperature;
  drop_all_temp.target = Verdict::kDrop;
  ChainRule accept_device_3;
  accept_device_3.device = 3;
  accept_device_3.target = Verdict::kAccept;
  chain.Append(drop_all_temp);
  chain.Append(accept_device_3);  // shadowed for temperature commands
  EXPECT_EQ(chain.Filter(TempCommand(3, 25.0), nullptr), Verdict::kDrop);
  // Insert at head flips the outcome (iptables -I).
  chain.Insert(accept_device_3);
  EXPECT_EQ(chain.Filter(TempCommand(3, 25.0), nullptr), Verdict::kAccept);
}

TEST(ChainTest, DefaultPolicyApplies) {
  Chain chain("OUTPUT", Verdict::kAccept);
  EXPECT_EQ(chain.Filter(TempCommand(0, 25.0), nullptr), Verdict::kAccept);
  chain.set_default_policy(Verdict::kDrop);
  EXPECT_EQ(chain.Filter(TempCommand(0, 25.0), nullptr), Verdict::kDrop);
}

TEST(ChainTest, FlushRemovesRules) {
  Chain chain("OUTPUT", Verdict::kAccept);
  ChainRule drop_all;
  drop_all.target = Verdict::kDrop;
  chain.Append(drop_all);
  EXPECT_EQ(chain.Filter(TempCommand(0, 25.0), nullptr), Verdict::kDrop);
  chain.Flush();
  EXPECT_EQ(chain.Filter(TempCommand(0, 25.0), nullptr), Verdict::kAccept);
  EXPECT_TRUE(chain.rules().empty());
}

TEST(VerdictTest, Names) {
  EXPECT_STREQ(VerdictName(Verdict::kAccept), "ACCEPT");
  EXPECT_STREQ(VerdictName(Verdict::kDrop), "DROP");
}

}  // namespace
}  // namespace firewall
}  // namespace imcf
