// Conflict-firewall tests: the three detector classes on hand-built
// fixtures, the transactional device graph, dataflow-policy derivation and
// redaction, and the end-to-end analyzer (verdict store + /conflictz JSON).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "firewall/conflict/analyzer.h"
#include "firewall/conflict/conflict_report.h"
#include "firewall/conflict/dataflow_policy.h"
#include "firewall/conflict/device_graph.h"
#include "firewall/conflict/setpoint_analyzer.h"
#include "rules/meta_rule.h"
#include "rules/trigger_rule.h"

namespace imcf {
namespace firewall {
namespace conflict {
namespace {

using devices::DeviceKind;
using rules::MetaRule;
using rules::MetaRuleTable;
using rules::RuleAction;
using rules::TriggerOp;
using rules::TriggerRule;
using rules::TriggerRuleTable;

MetaRule TempRule(int unit, double value, int start_min, int end_min,
                  bool necessity = false) {
  MetaRule rule;
  rule.description = "test temp";
  rule.window = TimeWindow{start_min, end_min};
  rule.action = RuleAction::kSetTemperature;
  rule.value = value;
  rule.unit = unit;
  rule.necessity = necessity;
  return rule;
}

MetaRule LightRule(int unit, double value, int start_min, int end_min) {
  MetaRule rule;
  rule.description = "test light";
  rule.window = TimeWindow{start_min, end_min};
  rule.action = RuleAction::kSetLight;
  rule.value = value;
  rule.unit = unit;
  return rule;
}

// ---------------------------------------------------------------------------
// Detector (a): contradictory setpoints.

TEST(SetpointAnalyzerTest, DetectsContradictoryTemperaturePair) {
  MetaRuleTable mrt;
  ASSERT_TRUE(mrt.Add(TempRule(0, 18.0, 8 * 60, 12 * 60)).ok());
  ASSERT_TRUE(mrt.Add(TempRule(0, 28.0, 9 * 60, 13 * 60)).ok());  // 3h overlap
  ConflictReport report;
  const int64_t scanned =
      FindContradictorySetpoints(mrt, SetpointOptions{}, &report);
  EXPECT_EQ(scanned, 2);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].cls, ConflictClass::kContradictorySetpoint);
  EXPECT_EQ(report.findings[0].rule_a, 0);
  EXPECT_EQ(report.findings[0].rule_b, 1);
  EXPECT_DOUBLE_EQ(report.findings[0].severity, 10.0);
  EXPECT_EQ(report.CountOf(ConflictClass::kContradictorySetpoint), 1);
}

TEST(SetpointAnalyzerTest, SmallOverlapOrSmallGapIsBenign) {
  // Gap over threshold but overlap under 120 minutes: benign.
  MetaRuleTable short_overlap;
  ASSERT_TRUE(short_overlap.Add(TempRule(0, 18.0, 8 * 60, 10 * 60)).ok());
  ASSERT_TRUE(short_overlap.Add(TempRule(0, 28.0, 9 * 60, 13 * 60)).ok());
  ConflictReport r1;
  FindContradictorySetpoints(short_overlap, SetpointOptions{}, &r1);
  EXPECT_TRUE(r1.ok());

  // Long overlap but gap under 6 °C: benign.
  MetaRuleTable small_gap;
  ASSERT_TRUE(small_gap.Add(TempRule(0, 21.0, 8 * 60, 12 * 60)).ok());
  ASSERT_TRUE(small_gap.Add(TempRule(0, 24.0, 8 * 60, 12 * 60)).ok());
  ConflictReport r2;
  FindContradictorySetpoints(small_gap, SetpointOptions{}, &r2);
  EXPECT_TRUE(r2.ok());

  // Same windows and gap but different units: different devices, benign.
  MetaRuleTable other_unit;
  ASSERT_TRUE(other_unit.Add(TempRule(0, 18.0, 8 * 60, 12 * 60)).ok());
  ASSERT_TRUE(other_unit.Add(TempRule(1, 28.0, 8 * 60, 12 * 60)).ok());
  ConflictReport r3;
  FindContradictorySetpoints(other_unit, SetpointOptions{}, &r3);
  EXPECT_TRUE(r3.ok());
}

TEST(SetpointAnalyzerTest, LightRulesUseLightThreshold) {
  MetaRuleTable mrt;
  ASSERT_TRUE(mrt.Add(LightRule(0, 10.0, 18 * 60, 22 * 60)).ok());
  ASSERT_TRUE(mrt.Add(LightRule(0, 90.0, 18 * 60, 22 * 60)).ok());
  ConflictReport report;
  FindContradictorySetpoints(mrt, SetpointOptions{}, &report);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_DOUBLE_EQ(report.findings[0].severity, 80.0);
}

TEST(SetpointAnalyzerTest, StockDatasetsAdmit) {
  // The calibrated defaults must never reject the paper's own datasets.
  for (int units : {1, 4, 20}) {
    MetaRuleTable mrt = rules::VariedMrt(units, 1.0, /*seed=*/7, 100.0);
    ConflictReport report;
    FindContradictorySetpoints(mrt, SetpointOptions{}, &report);
    EXPECT_TRUE(report.ok()) << units << " units: " << report.Summary();
  }
}

// ---------------------------------------------------------------------------
// Detector (b): the device-command graph.

TEST(DeviceGraphTest, InterTenantCycleRejectsAndRollsBack) {
  DeviceCommandGraph graph;
  const int hvac = DeviceNode(0, DeviceKind::kHvac);
  const int light = DeviceNode(0, DeviceKind::kLight);

  EXPECT_TRUE(graph.TryInstall("alice", {CommandEdge{hvac, light}}).empty());
  EXPECT_EQ(graph.edge_count(), 1u);

  // Bob wires the reverse half: light -> hvac closes the loop through
  // alice's edge.
  std::vector<ConflictFinding> findings =
      graph.TryInstall("bob", {CommandEdge{light, hvac}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].cls, ConflictClass::kCommandCycle);
  EXPECT_EQ(findings[0].other_tenant, "alice");
  EXPECT_GE(findings[0].severity, 2.0);  // cycle length in edges

  // Rollback: bob's edges are gone, alice's remain.
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_TRUE(graph.EdgesOf("bob").empty());
  EXPECT_EQ(graph.EdgesOf("alice").size(), 1u);

  // Once alice leaves, the same edges admit.
  graph.Remove("alice");
  EXPECT_TRUE(graph.TryInstall("bob", {CommandEdge{light, hvac}}).empty());
  EXPECT_EQ(graph.tenant_count(), 1u);
}

TEST(DeviceGraphTest, IntraTenantLoopIsAllowed) {
  // A tenant wiring both halves itself is its own business (the firewall
  // chain rate-limits runtime loops); only inter-tenant cycles reject.
  DeviceCommandGraph graph;
  const int hvac = DeviceNode(0, DeviceKind::kHvac);
  const int light = DeviceNode(0, DeviceKind::kLight);
  EXPECT_TRUE(graph
                  .TryInstall("alice", {CommandEdge{hvac, light},
                                        CommandEdge{light, hvac}})
                  .empty());
  EXPECT_EQ(graph.edge_count(), 2u);
}

TEST(DeviceGraphTest, ReinstallReplacesPreviousEdges) {
  DeviceCommandGraph graph;
  const int hvac = DeviceNode(0, DeviceKind::kHvac);
  const int light = DeviceNode(0, DeviceKind::kLight);
  EXPECT_TRUE(graph.TryInstall("alice", {CommandEdge{hvac, light}}).empty());
  EXPECT_TRUE(
      graph.TryInstall("alice", {CommandEdge{DeviceNode(1, DeviceKind::kHvac),
                                             DeviceNode(1, DeviceKind::kLight)}})
          .empty());
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.EdgesOf("alice")[0].from, DeviceNode(1, DeviceKind::kHvac));
}

TEST(DeriveCommandEdgesTest, CrossKindRulesOnlyOnePerUnit) {
  TriggerRuleTable ifttt;
  // Cross-kind: HVAC output commands the lights.
  ifttt.Add(TriggerRule::OnTemperature(TriggerOp::kGreaterThan, 24.0,
                                       RuleAction::kSetLight, 0.0));
  // Same-kind (stabilizing): no edge.
  ifttt.Add(TriggerRule::OnTemperature(TriggerOp::kGreaterThan, 26.0,
                                       RuleAction::kSetTemperature, 22.0));
  // Environmental trigger: no source device, no edge.
  ifttt.Add(TriggerRule::OnDoor(true, RuleAction::kSetTemperature, 18.0));

  const std::vector<CommandEdge> edges = DeriveCommandEdges(ifttt, 3);
  ASSERT_EQ(edges.size(), 3u);  // one cross-kind rule x 3 units
  for (int unit = 0; unit < 3; ++unit) {
    EXPECT_EQ(edges[static_cast<size_t>(unit)].from,
              DeviceNode(unit, DeviceKind::kHvac));
    EXPECT_EQ(edges[static_cast<size_t>(unit)].to,
              DeviceNode(unit, DeviceKind::kLight));
  }
}

TEST(DeriveCommandEdgesTest, StockIftttContributesNoEdges) {
  // Table III's recipes never read one device kind and command the other,
  // so stock tenants can never trip the cycle detector.
  EXPECT_TRUE(DeriveCommandEdges(rules::FlatIfttt(), 4).empty());
}

// ---------------------------------------------------------------------------
// Detector (c): budget infeasibility, and the analyzer end-to-end.

TenantRuleSet RuleSetFor(const MetaRuleTable* mrt,
                         const TriggerRuleTable* ifttt, double budget_kwh,
                         int period_days) {
  TenantRuleSet rule_set;
  rule_set.mrt = mrt;
  rule_set.ifttt = ifttt;
  rule_set.budget_kwh = budget_kwh;
  rule_set.period_days = period_days;
  rule_set.units = 1;
  rule_set.hourly_energy = [](const MetaRule&, int) { return 1.0; };  // 1 kW
  return rule_set;
}

TEST(ConflictAnalyzerTest, NecessityDemandOverBudgetRejects) {
  MetaRuleTable mrt;
  // A necessity rule running all day at 1 kW: 24 kWh/day.
  ASSERT_TRUE(mrt.Add(TempRule(0, 22.0, 0, kMinutesPerDay,
                               /*necessity=*/true))
                  .ok());
  TriggerRuleTable ifttt;
  ConflictAnalyzer analyzer(1);
  const ConflictReport report = analyzer.Analyze(
      0, "greedy", RuleSetFor(&mrt, &ifttt, /*budget_kwh=*/10.0,
                              /*period_days=*/1));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.CountOf(ConflictClass::kBudgetInfeasible), 1);
  EXPECT_NEAR(report.findings[0].severity, 14.0, 1e-6);  // 24 - 10
}

TEST(ConflictAnalyzerTest, ConvenienceDemandAloneNeverRejects) {
  MetaRuleTable mrt;
  // Same demand but droppable: the planner can shed it, so the lower
  // bound argument does not apply.
  ASSERT_TRUE(mrt.Add(TempRule(0, 22.0, 0, kMinutesPerDay)).ok());
  TriggerRuleTable ifttt;
  ConflictAnalyzer analyzer(1);
  EXPECT_TRUE(analyzer
                  .Analyze(0, "frugal",
                           RuleSetFor(&mrt, &ifttt, 10.0, 1))
                  .ok());
}

TEST(ConflictAnalyzerTest, CrossTenantCycleRejectsSecondTenant) {
  MetaRuleTable mrt;  // empty MRTs: isolate the graph detector
  TriggerRuleTable hvac_to_light;
  hvac_to_light.Add(TriggerRule::OnTemperature(TriggerOp::kGreaterThan, 24.0,
                                               RuleAction::kSetLight, 0.0));
  TriggerRuleTable light_to_hvac;
  light_to_hvac.Add(TriggerRule::OnLightLevel(TriggerOp::kLessThan, 10.0,
                                              RuleAction::kSetTemperature,
                                              26.0));

  ConflictAnalyzer analyzer(1);
  EXPECT_TRUE(
      analyzer.Analyze(0, "alice", RuleSetFor(&mrt, &hvac_to_light, 0, 0))
          .ok());
  const ConflictReport rejected =
      analyzer.Analyze(0, "bob", RuleSetFor(&mrt, &light_to_hvac, 0, 0));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.CountOf(ConflictClass::kCommandCycle), 1);
  EXPECT_EQ(rejected.findings[0].other_tenant, "alice");

  // The rejection rolled bob back; once alice is forgotten he admits.
  analyzer.Forget(0, "alice");
  EXPECT_TRUE(
      analyzer.Analyze(0, "bob", RuleSetFor(&mrt, &light_to_hvac, 0, 0))
          .ok());
}

TEST(ConflictAnalyzerTest, StockTenantAdmitsAndToJsonRendersVerdicts) {
  MetaRuleTable mrt = rules::VariedMrt(2, 1.0, /*seed=*/3, 50.0);
  TriggerRuleTable ifttt = rules::FlatIfttt();
  TenantRuleSet rule_set = RuleSetFor(&mrt, &ifttt, 50.0, 30);
  rule_set.units = 2;

  ConflictAnalyzer analyzer(4);
  EXPECT_TRUE(analyzer.Analyze(1, "stock", rule_set).ok());

  const std::string json = analyzer.ToJson();
  EXPECT_NE(json.find("\"tenant\":\"stock\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"verdict\":\"ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dataflow_fields\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"totals\""), std::string::npos) << json;

  // The derived policy is recorded for the query path.
  EXPECT_NE(analyzer.PolicyFor("stock").fields, 0u);
  EXPECT_EQ(analyzer.PolicyFor("nobody").fields, 0u);
}

// ---------------------------------------------------------------------------
// Dataflow policy derivation + redaction.

TEST(DataflowPolicyTest, DerivesExactlyTheConsumedFields) {
  MetaRuleTable mrt;
  ASSERT_TRUE(mrt.Add(LightRule(0, 40.0, 18 * 60, 22 * 60)).ok());
  TriggerRuleTable ifttt;
  ifttt.Add(TriggerRule::OnDoor(true, RuleAction::kSetLight, 80.0));

  const DataflowPolicy policy = DerivePolicy(mrt, ifttt);
  EXPECT_TRUE(policy.Allows(kFieldTime));          // rule windows
  EXPECT_TRUE(policy.Allows(kFieldAmbientLight));  // SetLight feedback
  EXPECT_TRUE(policy.Allows(kFieldDaylight));
  EXPECT_TRUE(policy.Allows(kFieldDoor));          // door trigger
  EXPECT_FALSE(policy.Allows(kFieldAmbientTemp));  // no temperature rule
  EXPECT_FALSE(policy.Allows(kFieldOutdoorTemp));
  EXPECT_FALSE(policy.Allows(kFieldSeason));
  EXPECT_FALSE(policy.Allows(kFieldSky));
}

TEST(DataflowPolicyTest, FilterContextZeroesDisallowedFields) {
  rules::EvaluationContext ctx;
  ctx.time = 12345;
  ctx.weather.season = weather::Season::kSummer;
  ctx.weather.outdoor_temp_c = 31.0;
  ctx.ambient_temp_c = 26.5;
  ctx.ambient_light_pct = 55.0;
  ctx.door_open = true;

  DataflowPolicy policy;
  policy.fields = kFieldTime | kFieldAmbientTemp;
  const rules::EvaluationContext filtered = FilterContext(ctx, policy);

  EXPECT_EQ(filtered.time, 12345);                   // allowed
  EXPECT_DOUBLE_EQ(filtered.ambient_temp_c, 26.5);   // allowed
  EXPECT_EQ(filtered.weather.season, weather::Season{});  // redacted
  EXPECT_DOUBLE_EQ(filtered.weather.outdoor_temp_c, 0.0);
  EXPECT_DOUBLE_EQ(filtered.ambient_light_pct, 0.0);
  EXPECT_FALSE(filtered.door_open);
}

TEST(DataflowPolicyTest, FieldListNamesBitsInOrder) {
  DataflowPolicy policy;
  policy.fields = kFieldTime | kFieldDoor;
  const std::vector<std::string> fields = DataflowFieldList(policy);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "time");
  EXPECT_EQ(fields[1], "door");
}

}  // namespace
}  // namespace conflict
}  // namespace firewall
}  // namespace imcf
