#include "firewall/imcf_firewall.h"

#include <gtest/gtest.h>

namespace imcf {
namespace firewall {
namespace {

using devices::ActuationCommand;
using devices::CommandType;
using devices::DeviceKind;
using devices::DeviceRegistry;

class ImcfFirewallTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ac_id_ = *registry_.Add("living_room_ac", DeviceKind::kHvac, 0,
                            "192.168.0.5");
    light_id_ = *registry_.Add("living_room_light", DeviceKind::kLight, 0,
                               "192.168.0.6");
  }

  ActuationCommand RuleCommand(devices::DeviceId device, int rule_id) {
    ActuationCommand cmd;
    cmd.device = device;
    cmd.type = CommandType::kSetTemperature;
    cmd.value = 24.0;
    cmd.rule_id = rule_id;
    cmd.source = "mrt";
    return cmd;
  }

  ActuationCommand ManualCommand(devices::DeviceId device) {
    ActuationCommand cmd;
    cmd.device = device;
    cmd.type = CommandType::kSetTemperature;
    cmd.value = 25.0;
    cmd.rule_id = -1;
    cmd.source = "manual";
    return cmd;
  }

  DeviceRegistry registry_;
  devices::DeviceId ac_id_ = 0;
  devices::DeviceId light_id_ = 0;
};

TEST_F(ImcfFirewallTest, AdoptedRulesPass) {
  MetaControlFirewall fw(&registry_);
  fw.SetDroppedRules({2, 5});
  const Decision d = fw.Filter(RuleCommand(ac_id_, 0));
  EXPECT_EQ(d.verdict, Verdict::kAccept);
  EXPECT_EQ(d.reason, DecisionReason::kPlanAdopted);
}

TEST_F(ImcfFirewallTest, DroppedRulesAreBlocked) {
  MetaControlFirewall fw(&registry_);
  fw.SetDroppedRules({2, 5});
  const Decision d = fw.Filter(RuleCommand(ac_id_, 5));
  EXPECT_EQ(d.verdict, Verdict::kDrop);
  EXPECT_EQ(d.reason, DecisionReason::kPlanDropped);
}

TEST_F(ImcfFirewallTest, PlanReplacementChangesVerdicts) {
  MetaControlFirewall fw(&registry_);
  fw.SetDroppedRules({0});
  EXPECT_EQ(fw.Filter(RuleCommand(ac_id_, 0)).verdict, Verdict::kDrop);
  fw.SetDroppedRules({});  // next slot: everything adopted
  EXPECT_EQ(fw.Filter(RuleCommand(ac_id_, 0)).verdict, Verdict::kAccept);
}

TEST_F(ImcfFirewallTest, ManualCommandsBypassPlanLayer) {
  MetaControlFirewall fw(&registry_);
  fw.SetDroppedRules({0, 1, 2, 3, 4, 5});
  const Decision d = fw.Filter(ManualCommand(ac_id_));
  EXPECT_EQ(d.verdict, Verdict::kAccept);
  EXPECT_EQ(d.reason, DecisionReason::kBypass);
}

TEST_F(ImcfFirewallTest, ChainDropBeatsPlanAccept) {
  MetaControlFirewall fw(&registry_);
  // iptables-style: block all traffic to the Daikin's address.
  ChainRule drop_daikin;
  drop_daikin.address = "192.168.0.5";
  drop_daikin.target = Verdict::kDrop;
  fw.chain()->Append(drop_daikin);
  fw.SetDroppedRules({});
  const Decision d = fw.Filter(RuleCommand(ac_id_, 0));
  EXPECT_EQ(d.verdict, Verdict::kDrop);
  EXPECT_EQ(d.reason, DecisionReason::kChainRule);
  // The light at the other address still passes.
  EXPECT_EQ(fw.Filter(RuleCommand(light_id_, 1)).verdict, Verdict::kAccept);
}

TEST_F(ImcfFirewallTest, ChainAcceptStillConsultsPlan) {
  MetaControlFirewall fw(&registry_);
  ChainRule accept_ac;
  accept_ac.address = "192.168.0.5";
  accept_ac.target = Verdict::kAccept;
  fw.chain()->Append(accept_ac);
  fw.SetDroppedRules({7});
  // The chain accepts, but the plan layer still drops rule 7's command.
  EXPECT_EQ(fw.Filter(RuleCommand(ac_id_, 7)).verdict, Verdict::kDrop);
}

TEST_F(ImcfFirewallTest, StatsAccumulate) {
  MetaControlFirewall fw(&registry_);
  fw.SetDroppedRules({1});
  (void)fw.Filter(RuleCommand(ac_id_, 0));   // accept
  (void)fw.Filter(RuleCommand(ac_id_, 1));   // plan drop
  (void)fw.Filter(ManualCommand(light_id_)); // bypass accept
  ChainRule drop_all;
  drop_all.target = Verdict::kDrop;
  fw.chain()->Append(drop_all);
  (void)fw.Filter(RuleCommand(ac_id_, 0));   // chain drop
  const FirewallStats& stats = fw.stats();
  EXPECT_EQ(stats.total, 4);
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.dropped_by_plan, 1);
  EXPECT_EQ(stats.dropped_by_chain, 1);
}

TEST_F(ImcfFirewallTest, AuditLogRecordsDecisions) {
  MetaControlFirewall fw(&registry_);
  fw.SetDroppedRules({1});
  (void)fw.Filter(RuleCommand(ac_id_, 0));
  (void)fw.Filter(RuleCommand(ac_id_, 1));
  ASSERT_EQ(fw.audit_log().size(), 2u);
  EXPECT_EQ(fw.audit_log()[0].verdict, Verdict::kAccept);
  EXPECT_EQ(fw.audit_log()[1].verdict, Verdict::kDrop);
  EXPECT_EQ(fw.audit_log()[1].command.rule_id, 1);
  fw.ClearAudit();
  EXPECT_TRUE(fw.audit_log().empty());
}

TEST_F(ImcfFirewallTest, AuditLogIsBounded) {
  MetaControlFirewall fw(&registry_, /*audit_capacity=*/8);
  for (int i = 0; i < 100; ++i) {
    (void)fw.Filter(RuleCommand(ac_id_, i % 3));
  }
  EXPECT_EQ(fw.audit_log().size(), 8u);
  EXPECT_EQ(fw.stats().total, 100);
  // The log keeps the most recent decisions.
  EXPECT_EQ(fw.audit_log().back().command.rule_id, 99 % 3);
}

TEST_F(ImcfFirewallTest, ReasonNames) {
  EXPECT_STREQ(DecisionReasonName(DecisionReason::kPlanDropped),
               "plan-dropped");
  EXPECT_STREQ(DecisionReasonName(DecisionReason::kChainRule), "chain-rule");
  EXPECT_STREQ(DecisionReasonName(DecisionReason::kBypass), "bypass");
}

// Invariant: a command whose rule is in the dropped set NEVER passes,
// whatever the chain configuration (unless the chain dropped it first).
TEST_F(ImcfFirewallTest, DroppedRuleNeverActuates) {
  for (int variant = 0; variant < 3; ++variant) {
    MetaControlFirewall fw(&registry_);
    if (variant == 1) {
      ChainRule accept_all;
      accept_all.target = Verdict::kAccept;
      fw.chain()->Append(accept_all);
    } else if (variant == 2) {
      fw.chain()->set_default_policy(Verdict::kDrop);
    }
    fw.SetDroppedRules({4});
    EXPECT_EQ(fw.Filter(RuleCommand(ac_id_, 4)).verdict, Verdict::kDrop)
        << "variant " << variant;
  }
}

}  // namespace
}  // namespace firewall
}  // namespace imcf
