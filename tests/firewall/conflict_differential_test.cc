// Differential test tying detector (a) to the enforcement layer: for every
// contradictory setpoint pair the conflict pass finds in a randomized rule
// set, an arbitration that drops one side must leave the firewall chain
// accepting AT MOST one side's commands. If both sides of a detected
// contradiction ever pass MetaControlFirewall::Filter in the same slot, the
// detector and the enforcement disagree about what "conflict" means.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "devices/device.h"
#include "firewall/conflict/conflict_report.h"
#include "firewall/conflict/setpoint_analyzer.h"
#include "firewall/imcf_firewall.h"
#include "rules/meta_rule.h"

namespace imcf {
namespace firewall {
namespace {

using conflict::ConflictFinding;
using conflict::ConflictReport;
using conflict::SetpointOptions;
using devices::ActuationCommand;
using devices::DeviceKind;
using devices::DeviceRegistry;
using rules::MetaRule;
using rules::MetaRuleTable;
using rules::RuleAction;

/// Deterministic randomized MRT: `units` units, several temperature and
/// light rules each with windows and values spread widely enough that some
/// pairs contradict and some are benign.
MetaRuleTable RandomMrt(int units, uint64_t seed) {
  Rng rng(seed);
  MetaRuleTable mrt;
  for (int unit = 0; unit < units; ++unit) {
    for (int i = 0; i < 4; ++i) {
      MetaRule rule;
      rule.unit = unit;
      rule.action = (i % 2 == 0) ? RuleAction::kSetTemperature
                                 : RuleAction::kSetLight;
      const int start = static_cast<int>(rng.UniformInt(0, 20)) * 60;
      const int len = static_cast<int>(rng.UniformInt(2, 8)) * 60;
      rule.window = TimeWindow{
          start, std::min(start + len, static_cast<int>(kMinutesPerDay))};
      rule.value = rule.action == RuleAction::kSetTemperature
                       ? static_cast<double>(rng.UniformInt(14, 30))
                       : static_cast<double>(rng.UniformInt(0, 100));
      rule.description = "random";
      EXPECT_TRUE(mrt.Add(rule).ok());
    }
  }
  return mrt;
}

TEST(ConflictDifferentialTest, ChainNeverAppliesBothSidesOfAContradiction) {
  // Permissive thresholds so the randomized corpus yields many findings.
  SetpointOptions permissive;
  permissive.min_overlap_minutes = 30;
  permissive.temperature_gap_c = 3.0;
  permissive.light_gap_pct = 20.0;
  permissive.max_findings = 10000;

  int total_findings = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const int units = 6;
    MetaRuleTable mrt = RandomMrt(units, seed);
    ConflictReport report;
    conflict::FindContradictorySetpoints(mrt, permissive, &report);
    total_findings += static_cast<int>(report.findings.size());

    // Arbitration: drop the earlier-id side of every detected pair (the
    // paper's last-writer-wins, expressed as a planner verdict).
    std::set<int> dropped;
    for (const ConflictFinding& finding : report.findings) {
      dropped.insert(finding.rule_a);
    }

    DeviceRegistry registry;
    std::vector<devices::DeviceId> hvac(units), light(units);
    for (int unit = 0; unit < units; ++unit) {
      hvac[unit] = *registry.Add("hvac" + std::to_string(unit),
                                 DeviceKind::kHvac, unit, "");
      light[unit] = *registry.Add("light" + std::to_string(unit),
                                  DeviceKind::kLight, unit, "");
    }
    MetaControlFirewall fw(&registry);
    fw.SetDroppedRules({dropped.begin(), dropped.end()});

    auto command_of = [&](int rule_id) {
      const MetaRule& rule = *mrt.Get(rule_id).value();
      ActuationCommand cmd;
      cmd.device = rule.TargetKind() == DeviceKind::kHvac
                       ? hvac[static_cast<size_t>(rule.unit)]
                       : light[static_cast<size_t>(rule.unit)];
      cmd.type = rule.TargetCommand();
      cmd.value = rule.value;
      cmd.rule_id = rule_id;
      cmd.source = "mrt";
      return cmd;
    };

    for (const ConflictFinding& finding : report.findings) {
      const bool a_accepted =
          fw.Filter(command_of(finding.rule_a)).verdict == Verdict::kAccept;
      const bool b_accepted =
          fw.Filter(command_of(finding.rule_b)).verdict == Verdict::kAccept;
      EXPECT_FALSE(a_accepted && b_accepted)
          << "seed " << seed << ": both rule " << finding.rule_a
          << " and rule " << finding.rule_b
          << " accepted despite detected contradiction: "
          << finding.description;
    }
  }
  // The corpus must actually exercise the property.
  EXPECT_GT(total_findings, 10);
}

}  // namespace
}  // namespace firewall
}  // namespace imcf
