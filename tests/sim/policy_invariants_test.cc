// Cross-policy invariants, swept over datasets and seasons (TEST_P).
//
// These are the structural guarantees behind Fig. 6 and Lemmas 1-2, checked
// on every (dataset, season) cell rather than just the headline runs:
//   * NR consumes nothing and has the worst convenience error;
//   * MR has (near-)zero error and the highest energy;
//   * EP is feasible and dominates NR on error without exceeding MR's
//     energy;
//   * all runs account energy and error consistently.

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace imcf {
namespace sim {
namespace {

struct Cell {
  const char* dataset;
  int start_month;
  double budget_fraction;  ///< of the Table II budget, scaled to the window
};

class PolicySweep : public ::testing::TestWithParam<Cell> {
 protected:
  static SimulationOptions MakeOptions(const Cell& cell) {
    SimulationOptions options;
    if (std::string(cell.dataset) == "house") {
      options.spec = trace::HouseSpec();
    } else if (std::string(cell.dataset) == "dorms") {
      options.spec = trace::DormsSpec();
      options.spec.units = 10;  // trimmed fleet keeps the sweep fast
      options.spec.budget_kwh /= 10.0;
    } else {
      options.spec = trace::FlatSpec();
    }
    options.start = FromCivil(2015, cell.start_month, 1);
    options.hours = DaysInMonth(2015, cell.start_month) * 24;
    // One month's proportional share of the 3-year budget, scaled by the
    // cell's tightness knob.
    options.budget_kwh =
        options.spec.budget_kwh / 36.0 * cell.budget_fraction;
    return options;
  }
};

TEST_P(PolicySweep, DominanceAndFeasibility) {
  const Cell& cell = GetParam();
  Simulator simulator(MakeOptions(cell));
  ASSERT_TRUE(simulator.Prepare().ok());

  const auto nr = simulator.Run(Policy::kNoRule);
  const auto ep = simulator.Run(Policy::kEnergyPlanner);
  const auto mr = simulator.Run(Policy::kMetaRule);
  ASSERT_TRUE(nr.ok());
  ASSERT_TRUE(ep.ok());
  ASSERT_TRUE(mr.ok());

  // Lemma 1 / Lemma 2 structure.
  EXPECT_DOUBLE_EQ(nr->fe_kwh, 0.0);
  EXPECT_GE(nr->fce_pct, ep->fce_pct - 1e-9);
  EXPECT_LE(mr->fce_pct, 1.0);  // varied tables allow small conflict error
  EXPECT_LE(ep->fe_kwh, mr->fe_kwh + 1e-6);
  EXPECT_GE(ep->fe_kwh, 0.0);

  // EP honours the budget.
  EXPECT_TRUE(ep->within_budget)
      << cell.dataset << " month " << cell.start_month << ": "
      << ep->fe_kwh << " vs " << simulator.total_budget_kwh();

  // Accounting consistency on every run.
  for (const SimulationReport* report : {&*nr, &*ep, &*mr}) {
    EXPECT_EQ(report->activations, nr->activations);
    EXPECT_GE(report->commands_issued, report->commands_dropped);
    EXPECT_GE(report->co2_kg, 0.0);
    if (report->fe_kwh == 0.0) {
      EXPECT_DOUBLE_EQ(report->co2_kg, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndSeasons, PolicySweep,
    ::testing::Values(Cell{"flat", 1, 1.0}, Cell{"flat", 4, 1.0},
                      Cell{"flat", 7, 1.0}, Cell{"flat", 10, 0.8},
                      Cell{"house", 1, 1.0}, Cell{"house", 7, 0.8},
                      Cell{"dorms", 1, 1.0}, Cell{"dorms", 7, 1.0},
                      Cell{"flat", 1, 0.6}, Cell{"house", 4, 0.6}));

}  // namespace
}  // namespace sim
}  // namespace imcf
