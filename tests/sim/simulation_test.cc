#include "sim/simulation.h"

#include <gtest/gtest.h>

namespace imcf {
namespace sim {
namespace {

// Four winter-to-spring months of the flat dataset with a proportionally
// tight budget: long enough that budget pinches occur (the planner must
// drop rules), short enough that each test stays fast (~2900 slots).
SimulationOptions TightFlat() {
  SimulationOptions options;
  options.spec = trace::FlatSpec();
  options.start = FromCivil(2014, 1, 1);
  options.hours = (31 + 28 + 31 + 30) * 24;
  options.budget_kwh = 1600.0;  // demand over the window is ~2000 kWh
  return options;
}

TEST(SimulatorTest, RequiresPrepare) {
  Simulator simulator(TightFlat());
  EXPECT_TRUE(
      simulator.Run(Policy::kNoRule).status().IsFailedPrecondition());
}

TEST(SimulatorTest, NoRuleConsumesNothingMaximisesError) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto report = simulator.Run(Policy::kNoRule);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->fe_kwh, 0.0);
  EXPECT_GT(report->fce_pct, 30.0);  // winter ambient is uncomfortable
  EXPECT_TRUE(report->within_budget);
  EXPECT_EQ(report->commands_issued, report->commands_dropped);
  EXPECT_DOUBLE_EQ(report->mean_adopted_fraction, 0.0);
}

TEST(SimulatorTest, MetaRuleZeroErrorMaxEnergy) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto report = simulator.Run(Policy::kMetaRule);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->fce_pct, 0.0, 1e-9);  // flat table has no conflicts
  EXPECT_GT(report->fe_kwh, 100.0);
  EXPECT_EQ(report->commands_dropped, 0);
  EXPECT_DOUBLE_EQ(report->mean_adopted_fraction, 1.0);
}

TEST(SimulatorTest, EnergyPlannerRespectsBudgetAndBeatsNoRule) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto ep = simulator.Run(Policy::kEnergyPlanner);
  const auto nr = simulator.Run(Policy::kNoRule);
  const auto mr = simulator.Run(Policy::kMetaRule);
  ASSERT_TRUE(ep.ok());
  EXPECT_TRUE(ep->within_budget);
  EXPECT_LT(ep->fce_pct, nr->fce_pct / 3.0);
  EXPECT_LE(ep->fe_kwh, mr->fe_kwh + 1e-6);
  EXPECT_GT(ep->mean_adopted_fraction, 0.5);
  EXPECT_GT(ep->commands_dropped, 0);
}

TEST(SimulatorTest, IftttIsEnergyOblivious) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto ifttt = simulator.Run(Policy::kIfttt);
  const auto nr = simulator.Run(Policy::kNoRule);
  const auto ep = simulator.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(ifttt.ok());
  EXPECT_GT(ifttt->fe_kwh, 0.0);
  // IFTTT error sits between EP's and NR's (Fig. 6 ordering).
  EXPECT_LT(ifttt->fce_pct, nr->fce_pct);
  EXPECT_GT(ifttt->fce_pct, ep->fce_pct);
  EXPECT_EQ(ifttt->commands_dropped, 0);  // no plan filter for recipes
}

TEST(SimulatorTest, DeterministicPerSeedAndRep) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto a = simulator.Run(Policy::kEnergyPlanner, 3);
  const auto b = simulator.Run(Policy::kEnergyPlanner, 3);
  const auto c = simulator.Run(Policy::kEnergyPlanner, 4);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->fce_pct, b->fce_pct);
  EXPECT_DOUBLE_EQ(a->fe_kwh, b->fe_kwh);
  // A different repetition seed may legitimately converge to the same
  // plan (the greedy repair is deterministic); it must stay close.
  EXPECT_NEAR(a->fce_pct, c->fce_pct, 0.5);
}

TEST(SimulatorTest, ReportBookkeepingConsistent) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto report = simulator.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dataset, "flat");
  EXPECT_EQ(report->policy, "EP");
  EXPECT_EQ(report->slots, 120 * 24);
  // Table II windows cover 21h (temp) + 18h (light) per day: 39 rule-hours.
  EXPECT_EQ(report->activations, static_cast<int64_t>(120) * 39);
  EXPECT_EQ(report->commands_issued, report->activations);
  EXPECT_GE(report->ft_seconds, 0.0);
}

TEST(SimulatorTest, AnnealerComparableToClimber) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto sa = simulator.Run(Policy::kAnnealer);
  const auto ep = simulator.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(sa.ok());
  EXPECT_TRUE(sa->within_budget);
  EXPECT_LT(sa->fce_pct, ep->fce_pct + 5.0);
}

TEST(SimulatorTest, SavingsKnobShrinksBudget) {
  SimulationOptions options = TightFlat();
  options.savings_fraction = 0.3;
  Simulator simulator(options);
  ASSERT_TRUE(simulator.Prepare().ok());
  EXPECT_NEAR(simulator.total_budget_kwh(), 1600.0 * 0.7, 1e-6);
  const auto tight = simulator.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(tight.ok());

  Simulator baseline(TightFlat());
  ASSERT_TRUE(baseline.Prepare().ok());
  const auto loose = baseline.Run(Policy::kEnergyPlanner);
  EXPECT_LT(tight->fe_kwh, loose->fe_kwh);
  EXPECT_GE(tight->fce_pct, loose->fce_pct - 0.2);
}

TEST(SimulatorTest, ReconfigureRebuildsPlanWithoutReprepare) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto before = simulator.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(simulator.Reconfigure(0.4, energy::AmortizationKind::kEaf).ok());
  EXPECT_NEAR(simulator.total_budget_kwh(), 1600.0 * 0.6, 1e-6);
  const auto after = simulator.Run(Policy::kEnergyPlanner);
  EXPECT_LT(after->fe_kwh, before->fe_kwh);
  EXPECT_TRUE(simulator.Reconfigure(-0.1, energy::AmortizationKind::kEaf)
                  .IsOutOfRange());
}

TEST(SimulatorTest, AmortizationKindsProduceDifferentWinterBudgets) {
  SimulationOptions eaf = TightFlat();
  eaf.amortization = energy::AmortizationKind::kEaf;
  SimulationOptions laf = TightFlat();
  laf.amortization = energy::AmortizationKind::kLaf;
  Simulator sim_eaf(eaf), sim_laf(laf);
  ASSERT_TRUE(sim_eaf.Prepare().ok());
  ASSERT_TRUE(sim_laf.Prepare().ok());
  // The window's demand is January-heavy like the ECP; an EAF budget that
  // tracks the profile wastes less and serves more convenience than a flat
  // LAF split (this is the A1 ablation's claim).
  const auto eaf_report = sim_eaf.Run(Policy::kEnergyPlanner);
  const auto laf_report = sim_laf.Run(Policy::kEnergyPlanner);
  EXPECT_LT(eaf_report->fce_pct, laf_report->fce_pct);
}

TEST(SimulatorTest, RunRepeatedAggregatesStats) {
  Simulator simulator(TightFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto repeated = simulator.RunRepeated(Policy::kEnergyPlanner, 3);
  ASSERT_TRUE(repeated.ok());
  EXPECT_EQ(repeated->fce_pct.count(), 3);
  EXPECT_GT(repeated->fce_pct.mean(), 0.0);
  EXPECT_GE(repeated->fce_pct.stddev(), 0.0);
  EXPECT_EQ(repeated->policy, "EP");
}

TEST(SimulatorTest, ParallelRunRepeatedIsBitIdenticalToSerial) {
  // The determinism contract of the parallel substrate: repetitions derive
  // their streams from (seed, rep, policy) and aggregate in rep order, so
  // every thread count reproduces the serial metrics bit for bit (F_T is a
  // wall-clock measurement and is excluded).
  SimulationOptions options = TightFlat();
  options.hours = 30 * 24;  // keep 4 threads × reps affordable
  Simulator simulator(options);
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto serial = simulator.RunRepeated(Policy::kEnergyPlanner, 3,
                                            /*threads=*/1);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 4}) {
    const auto parallel =
        simulator.RunRepeated(Policy::kEnergyPlanner, 3, threads);
    ASSERT_TRUE(parallel.ok());
    EXPECT_DOUBLE_EQ(parallel->fce_pct.mean(), serial->fce_pct.mean());
    EXPECT_DOUBLE_EQ(parallel->fce_pct.stddev(), serial->fce_pct.stddev());
    EXPECT_DOUBLE_EQ(parallel->fe_kwh.mean(), serial->fe_kwh.mean());
    EXPECT_DOUBLE_EQ(parallel->fe_kwh.stddev(), serial->fe_kwh.stddev());
    EXPECT_DOUBLE_EQ(parallel->co2_kg.mean(), serial->co2_kg.mean());
  }
}

TEST(SimulatorTest, RunGridMatchesPerPolicyRuns) {
  SimulationOptions options = TightFlat();
  options.hours = 30 * 24;
  Simulator simulator(options);
  ASSERT_TRUE(simulator.Prepare().ok());
  const std::vector<Policy> policies = {Policy::kNoRule, Policy::kMetaRule,
                                        Policy::kEnergyPlanner};
  const auto grid = simulator.RunGrid(policies, 2, /*threads=*/4);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid->size(), 3u);
  for (size_t p = 0; p < policies.size(); ++p) {
    const auto one = simulator.RunRepeated(policies[p], 2, /*threads=*/1);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ((*grid)[p].policy, one->policy);
    EXPECT_DOUBLE_EQ((*grid)[p].fce_pct.mean(), one->fce_pct.mean());
    EXPECT_DOUBLE_EQ((*grid)[p].fe_kwh.mean(), one->fe_kwh.mean());
    EXPECT_DOUBLE_EQ((*grid)[p].co2_kg.mean(), one->co2_kg.mean());
  }
}

TEST(SimulatorTest, VariedDatasetsHaveConflictsUnderMr) {
  // House MRT variation can shift same-device windows into overlap; MR
  // still reports ~zero error because losers measure against winners.
  SimulationOptions options;
  options.spec = trace::HouseSpec();
  options.start = FromCivil(2014, 6, 1);
  options.hours = 14 * 24;
  Simulator simulator(options);
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto report = simulator.Run(Policy::kMetaRule);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->fce_pct, 2.0);
}


TEST(SimulatorTest, NecessityRulesAlwaysExecute) {
  // A necessity rule ("should always be executed regardless of whether the
  // long-term target is met") consumes energy even under No-Rule and under
  // a zero-headroom budget.
  SimulationOptions options = TightFlat();
  options.hours = 7 * 24;
  Simulator simulator(options);
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto nr_without = simulator.Run(Policy::kNoRule);
  ASSERT_TRUE(nr_without.ok());
  EXPECT_DOUBLE_EQ(nr_without->fe_kwh, 0.0);

  // Same window, MRT extended with a necessity heat rule via the spec's
  // variation path is not possible; use a custom simulator instead.
  // (Necessity rules enter through user tables, e.g. the prototype's.)
  rules::MetaRuleTable mrt;
  rules::MetaRule freezer;
  freezer.description = "Server Closet Cooling";
  freezer.window = TimeWindow{0, 1440};
  freezer.action = rules::RuleAction::kSetTemperature;
  freezer.value = 18.0;
  freezer.necessity = true;
  ASSERT_TRUE(mrt.Add(freezer).ok());
  EXPECT_EQ(mrt.convenience_count(), 0u);
  ASSERT_EQ(mrt.necessity_ids().size(), 1u);
  EXPECT_EQ(mrt.NecessityActiveAt(FromCivil(2014, 1, 1, 12)).size(), 1u);
}

TEST(SimulatorTest, ModeratelyCoarseSlotsStayWithinBudget) {
  // Algorithm 1's granularity input t: a 6-hour slot makes one adopt/drop
  // decision per span, priced at the span's mean conditions. Execution and
  // accounting stay hourly against ground truth, so the error is
  // comparable and the budget still holds.
  SimulationOptions hourly = TightFlat();
  SimulationOptions coarse_options = TightFlat();
  coarse_options.slot_hours = 6;
  Simulator sim_hourly(hourly), sim_coarse(coarse_options);
  ASSERT_TRUE(sim_hourly.Prepare().ok());
  ASSERT_TRUE(sim_coarse.Prepare().ok());
  const auto fine = sim_hourly.Run(Policy::kEnergyPlanner);
  const auto coarse = sim_coarse.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  // Same activation accounting on both paths (hourly ground truth).
  EXPECT_EQ(fine->activations, coarse->activations);
  // Mean-ambient pricing carries a small residual estimation error, so
  // under a very tight budget the coarse plan may overshoot slightly.
  EXPECT_LE(coarse->fe_kwh, 1.05 * sim_coarse.total_budget_kwh());
  EXPECT_NEAR(coarse->fe_kwh, fine->fe_kwh, fine->fe_kwh * 0.25);
  EXPECT_NEAR(coarse->fce_pct, fine->fce_pct, 4.0);
}

TEST(SimulatorTest, DailySlotsMispriceThresholdDevices) {
  // With 24-hour slots the mean-ambient estimate hides the deadband: gaps
  // that straddle the threshold look free, the planner adopts everything,
  // and real execution overshoots the budget — the finding that justifies
  // the paper's hourly slot choice.
  SimulationOptions hourly = TightFlat();
  SimulationOptions daily = TightFlat();
  daily.slot_hours = 24;
  Simulator sim_hourly(hourly), sim_daily(daily);
  ASSERT_TRUE(sim_hourly.Prepare().ok());
  ASSERT_TRUE(sim_daily.Prepare().ok());
  const auto fine = sim_hourly.Run(Policy::kEnergyPlanner);
  const auto coarse = sim_daily.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  EXPECT_GT(coarse->fe_kwh, fine->fe_kwh);
  EXPECT_FALSE(coarse->within_budget);
}

TEST(SimulatorTest, PolicyNames) {
  EXPECT_STREQ(PolicyName(Policy::kNoRule), "NR");
  EXPECT_STREQ(PolicyName(Policy::kIfttt), "IFTTT");
  EXPECT_STREQ(PolicyName(Policy::kEnergyPlanner), "EP");
  EXPECT_STREQ(PolicyName(Policy::kMetaRule), "MR");
  EXPECT_STREQ(PolicyName(Policy::kAnnealer), "SA");
}

TEST(SimulatorTest, InvalidSpecRejected) {
  SimulationOptions options = TightFlat();
  options.spec.units = 0;
  Simulator simulator(options);
  EXPECT_TRUE(simulator.Prepare().IsInvalidArgument());
}

}  // namespace
}  // namespace sim
}  // namespace imcf
