// CO2 accounting and carbon-aware tilting at the simulator level.

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace imcf {
namespace sim {
namespace {

SimulationOptions WinterFlat() {
  SimulationOptions options;
  options.spec = trace::FlatSpec();
  options.start = FromCivil(2014, 1, 1);
  options.hours = 60 * 24;
  options.budget_kwh = 900.0;
  return options;
}

TEST(CarbonSimTest, NoEnergyNoCarbon) {
  Simulator simulator(WinterFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto nr = simulator.Run(Policy::kNoRule);
  ASSERT_TRUE(nr.ok());
  EXPECT_DOUBLE_EQ(nr->co2_kg, 0.0);
}

TEST(CarbonSimTest, FootprintScalesWithEnergy) {
  Simulator simulator(WinterFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto ep = simulator.Run(Policy::kEnergyPlanner);
  const auto mr = simulator.Run(Policy::kMetaRule);
  ASSERT_TRUE(ep.ok());
  ASSERT_TRUE(mr.ok());
  EXPECT_GT(ep->co2_kg, 0.0);
  EXPECT_GT(mr->co2_kg, ep->co2_kg);
  // Mean intensity implied by the footprint is physically plausible
  // (200-700 gCO2/kWh).
  const double mean_intensity = 1000.0 * ep->co2_kg / ep->fe_kwh;
  EXPECT_GT(mean_intensity, 200.0);
  EXPECT_LT(mean_intensity, 700.0);
}

TEST(CarbonSimTest, TiltConservesEnergyReducesCarbon) {
  SimulationOptions baseline = WinterFlat();
  SimulationOptions tilted = WinterFlat();
  tilted.carbon_alpha = 1.0;
  Simulator sim_base(baseline), sim_tilt(tilted);
  ASSERT_TRUE(sim_base.Prepare().ok());
  ASSERT_TRUE(sim_tilt.Prepare().ok());
  const auto base = sim_base.Run(Policy::kEnergyPlanner);
  const auto tilt = sim_tilt.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(tilt.ok());
  // Same total budget: energy within a few percent.
  EXPECT_NEAR(tilt->fe_kwh, base->fe_kwh, base->fe_kwh * 0.05);
  // Emissions do not increase (the tilt spends in cleaner hours).
  EXPECT_LE(tilt->co2_kg, base->co2_kg * 1.01);
}

TEST(CarbonSimTest, RepeatedReportCarriesCarbon) {
  Simulator simulator(WinterFlat());
  ASSERT_TRUE(simulator.Prepare().ok());
  const auto repeated = simulator.RunRepeated(Policy::kEnergyPlanner, 2);
  ASSERT_TRUE(repeated.ok());
  EXPECT_EQ(repeated->co2_kg.count(), 2);
  EXPECT_GT(repeated->co2_kg.mean(), 0.0);
}

}  // namespace
}  // namespace sim
}  // namespace imcf
