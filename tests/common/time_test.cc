#include "common/time.h"

#include <gtest/gtest.h>

namespace imcf {
namespace {

TEST(TimeTest, EpochIsZero) {
  EXPECT_EQ(FromCivil(1970, 1, 1), 0);
  const CivilTime ct = ToCivil(0);
  EXPECT_EQ(ct.year, 1970);
  EXPECT_EQ(ct.month, 1);
  EXPECT_EQ(ct.day, 1);
  EXPECT_EQ(ct.hour, 0);
}

TEST(TimeTest, KnownDates) {
  // Start of the paper's CASAS trace span and of our evaluation period.
  EXPECT_EQ(FormatTime(FromCivil(2013, 10, 1)), "2013-10-01 00:00:00");
  EXPECT_EQ(FormatTime(FromCivil(2014, 1, 1)), "2014-01-01 00:00:00");
  EXPECT_EQ(FormatTime(FromCivil(2016, 12, 31, 23, 59, 59)),
            "2016-12-31 23:59:59");
}

TEST(TimeTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2016));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2014));
  EXPECT_EQ(DaysInMonth(2016, 2), 29);
  EXPECT_EQ(DaysInMonth(2014, 2), 28);
  EXPECT_EQ(DaysInMonth(2014, 12), 31);
}

TEST(TimeTest, MonthNames) {
  EXPECT_STREQ(MonthName(1), "January");
  EXPECT_STREQ(MonthName(12), "December");
}

TEST(TimeTest, DayOfWeek) {
  // 1970-01-01 was a Thursday.
  EXPECT_EQ(DayOfWeek(FromCivil(1970, 1, 1)), 4);
  // 2014-01-01 was a Wednesday.
  EXPECT_EQ(DayOfWeek(FromCivil(2014, 1, 1)), 3);
  // 2016-02-29 was a Monday.
  EXPECT_EQ(DayOfWeek(FromCivil(2016, 2, 29)), 1);
}

TEST(TimeTest, DayOfYear) {
  EXPECT_EQ(DayOfYear(FromCivil(2014, 1, 1)), 1);
  EXPECT_EQ(DayOfYear(FromCivil(2014, 12, 31)), 365);
  EXPECT_EQ(DayOfYear(FromCivil(2016, 12, 31)), 366);
  EXPECT_EQ(DayOfYear(FromCivil(2016, 3, 1)), 61);
}

TEST(TimeTest, YearFractionBounds) {
  EXPECT_DOUBLE_EQ(YearFraction(FromCivil(2014, 1, 1)), 0.0);
  EXPECT_GT(YearFraction(FromCivil(2014, 12, 31, 23)), 0.99);
  EXPECT_LT(YearFraction(FromCivil(2014, 12, 31, 23)), 1.0);
}

TEST(TimeTest, HourIndexAdjacency) {
  const SimTime t = FromCivil(2015, 6, 1, 10, 30);
  EXPECT_EQ(HourIndex(t + kSecondsPerHour), HourIndex(t) + 1);
  EXPECT_EQ(HourIndex(FromCivil(2015, 6, 1, 10, 0)),
            HourIndex(FromCivil(2015, 6, 1, 10, 59, 59)));
}

TEST(TimeTest, ParseTimeRoundTrip) {
  const auto t = ParseTime("2015-07-04 12:34:56");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(FormatTime(*t), "2015-07-04 12:34:56");
  const auto d = ParseTime("2015-07-04");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(FormatTime(*d), "2015-07-04 00:00:00");
}

TEST(TimeTest, ParseTimeRejectsGarbage) {
  EXPECT_FALSE(ParseTime("not a time").ok());
  EXPECT_FALSE(ParseTime("2015-13-01").ok());
  EXPECT_FALSE(ParseTime("2015-02-30").ok());
  EXPECT_FALSE(ParseTime("2015-01-01 25:00:00").ok());
}

TEST(TimeTest, MinuteOfDay) {
  EXPECT_EQ(MinuteOfDay(FromCivil(2014, 5, 5, 0, 0)), 0);
  EXPECT_EQ(MinuteOfDay(FromCivil(2014, 5, 5, 13, 45)), 13 * 60 + 45);
  EXPECT_EQ(MinuteOfDay(FromCivil(2014, 5, 5, 23, 59)), 1439);
}

// Round-trip property over a broad sweep of instants.
class TimeRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(TimeRoundTrip, CivilConversionRoundTrips) {
  const SimTime t = GetParam();
  const CivilTime ct = ToCivil(t);
  EXPECT_EQ(FromCivil(ct), t) << FormatTime(t);
  EXPECT_GE(ct.month, 1);
  EXPECT_LE(ct.month, 12);
  EXPECT_GE(ct.day, 1);
  EXPECT_LE(ct.day, DaysInMonth(ct.year, ct.month));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimeRoundTrip,
    ::testing::Values(0LL, 1LL, -1LL, 86399LL, 86400LL,
                      // paper evaluation period corners
                      1388534400LL /* 2014-01-01 */,
                      1483228799LL /* 2016-12-31 23:59:59 */,
                      1456704000LL /* 2016-02-29 */,
                      951782399LL /* 2000-02-28 23:59:59 */,
                      -86400LL /* 1969-12-31 */,
                      4102444800LL /* 2100-01-01 */));

// Monotonicity: civil order matches SimTime order across month borders.
TEST(TimeTest, MonotoneAcrossMonthBorders) {
  for (int month = 1; month <= 12; ++month) {
    const SimTime end = FromCivil(2015, month, DaysInMonth(2015, month), 23,
                                  59, 59);
    const SimTime next = end + 1;
    const CivilTime ct = ToCivil(next);
    EXPECT_EQ(ct.day, 1);
    EXPECT_EQ(ct.hour, 0);
    EXPECT_EQ(ct.month, month == 12 ? 1 : month + 1);
  }
}

TEST(TimeWindowTest, SimpleWindow) {
  const TimeWindow w{8 * 60, 16 * 60};  // "Day Heat" 08:00-16:00
  EXPECT_FALSE(w.ContainsMinute(7 * 60 + 59));
  EXPECT_TRUE(w.ContainsMinute(8 * 60));
  EXPECT_TRUE(w.ContainsMinute(12 * 60));
  EXPECT_FALSE(w.ContainsMinute(16 * 60));  // half-open
  EXPECT_EQ(w.DurationMinutes(), 8 * 60);
}

TEST(TimeWindowTest, MidnightEndWindow) {
  const TimeWindow w{18 * 60, 24 * 60};  // "Cosmetic Lights" 18:00-24:00
  EXPECT_TRUE(w.ContainsMinute(23 * 60 + 59));
  EXPECT_FALSE(w.ContainsMinute(0));
  EXPECT_EQ(w.DurationMinutes(), 6 * 60);
}

TEST(TimeWindowTest, WrappingWindow) {
  const TimeWindow w{22 * 60, 6 * 60};
  EXPECT_TRUE(w.ContainsMinute(23 * 60));
  EXPECT_TRUE(w.ContainsMinute(0));
  EXPECT_TRUE(w.ContainsMinute(5 * 60 + 59));
  EXPECT_FALSE(w.ContainsMinute(6 * 60));
  EXPECT_FALSE(w.ContainsMinute(12 * 60));
  EXPECT_EQ(w.DurationMinutes(), 8 * 60);
}

TEST(TimeWindowTest, EmptyWindowContainsNothing) {
  const TimeWindow w{600, 600};
  for (int m = 0; m < kMinutesPerDay; m += 60) {
    EXPECT_FALSE(w.ContainsMinute(m));
  }
}

TEST(TimeWindowTest, ContainsUsesInstantMinute) {
  const TimeWindow w{1 * 60, 7 * 60};  // "Night Heat"
  EXPECT_TRUE(w.Contains(FromCivil(2014, 2, 3, 3, 30)));
  EXPECT_FALSE(w.Contains(FromCivil(2014, 2, 3, 12, 0)));
}

TEST(TimeWindowTest, ParseVariants) {
  const auto spaced = ParseTimeWindow("01:00 - 07:00");
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(*spaced, (TimeWindow{60, 420}));
  const auto tight = ParseTimeWindow("18:00-24:00");
  ASSERT_TRUE(tight.ok());
  EXPECT_EQ(*tight, (TimeWindow{1080, 1440}));
}

TEST(TimeWindowTest, ParseRejectsBadBounds) {
  EXPECT_FALSE(ParseTimeWindow("25:00 - 26:00").ok());
  EXPECT_FALSE(ParseTimeWindow("10:60 - 11:00").ok());
  EXPECT_FALSE(ParseTimeWindow("10:00 - 24:30").ok());
  EXPECT_FALSE(ParseTimeWindow("banana").ok());
}

TEST(TimeWindowTest, ToStringRoundTrips) {
  const TimeWindow w{17 * 60, 24 * 60};
  const auto parsed = ParseTimeWindow(w.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, w);
}

}  // namespace
}  // namespace imcf
