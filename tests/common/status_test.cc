#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace imcf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NotFound("missing rule 7");
  EXPECT_EQ(s.ToString(), "not found: missing rule 7");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "io error");
}

Status Fails() { return Status::Internal("boom"); }

Status PropagatesViaMacro() {
  IMCF_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(PropagatesViaMacro().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hi"));
  EXPECT_EQ(r.value_or("fallback"), "hi");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  IMCF_ASSIGN_OR_RETURN(int half, HalveEven(x));
  IMCF_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_TRUE(QuarterViaMacro(6).status().IsInvalidArgument());
  EXPECT_TRUE(QuarterViaMacro(5).status().IsInvalidArgument());
}

TEST(ResultTest, ArrowOperatorOnStructs) {
  struct Pair {
    int a;
    int b;
  };
  Result<Pair> r(Pair{1, 2});
  EXPECT_EQ(r->a, 1);
  EXPECT_EQ(r->b, 2);
}

}  // namespace
}  // namespace imcf
