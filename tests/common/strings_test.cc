#include "common/strings.h"

#include <gtest/gtest.h>

namespace imcf {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("one", ','), (std::vector<std::string>{"one"}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t x \n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("Set Temperature"), "set temperature");
  EXPECT_EQ(ToLower("ABC123xyz"), "abc123xyz");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("*/15", "*/"));
  EXPECT_FALSE(StartsWith("15", "*/"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(ParseIntTest, ValidInputs) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt("  11000 ").value(), 11000);
  EXPECT_EQ(ParseInt("0").value(), 0);
}

TEST(ParseIntTest, Rejections) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12.5").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
  EXPECT_TRUE(ParseInt("99999999999999999999999").status().IsOutOfRange());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.5").value(), -0.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" 775.50 ").value(), 775.5);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
}

TEST(ParseDoubleTest, Rejections) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("12,5").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d kWh", 11000), "11000 kWh");
  EXPECT_EQ(StrFormat("%.2f%%", 2.345), "2.35%");
  EXPECT_EQ(StrFormat("%s-%c", "a", 'b'), "a-b");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_arg(5000, 'x');
  const std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

}  // namespace
}  // namespace imcf
