#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace imcf {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C check value for "123456789".
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes (RFC 3720 test vector).
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // 32 0xFF bytes.
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the imcf meta-control firewall";
  const uint32_t whole = Crc32c(data);
  uint32_t crc = Crc32c(0, data.data(), 10);
  crc = Crc32c(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, whole);
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::string data = "sensor reading block";
  const uint32_t original = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    EXPECT_NE(Crc32c(mutated), original) << "flip at byte " << i;
  }
}

TEST(MaskCrcTest, RoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu, 0xE3069283u}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
  }
}

TEST(MaskCrcTest, MaskChangesValue) {
  EXPECT_NE(MaskCrc(0xE3069283u), 0xE3069283u);
}

}  // namespace
}  // namespace imcf
