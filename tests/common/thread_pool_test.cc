#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace imcf {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait(): shutdown must still run everything already queued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  std::atomic<int> count{0};
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
}

// A task that throws must not kill its worker or wedge Wait(): the pool
// swallows the exception and keeps draining the queue. Before the fix, the
// first throw unwound WorkerLoop, leaking the in-flight count and leaving
// Wait() (and the destructor) blocked forever.
TEST(ThreadPoolTest, ThrowingTasksDoNotWedgeWaitOrShutdown) {
  std::atomic<int> survivors{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      if (i % 3 == 0) {
        pool.Submit([] { throw std::runtime_error("injected"); });
      } else {
        pool.Submit([&survivors] { survivors.fetch_add(1); });
      }
    }
    pool.Wait();  // must return despite 67 throwing tasks
    EXPECT_EQ(survivors.load(), 200 - 67);
    // The workers are still alive and accept more work after the throws.
    pool.Submit([&survivors] { survivors.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(survivors.load(), 200 - 67 + 1);
  }  // destructor must join cleanly, not deadlock
}

TEST(ThreadPoolTest, ParallelForSurvivesThrowingBodies) {
  std::vector<int> hits(64, 0);
  ParallelFor(4, 64, [&hits](int i) {
    hits[static_cast<size_t>(i)] = 1;
    if (i % 2 == 0) throw std::runtime_error("injected");
  });
  // Every index ran even though half of them threw afterwards.
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, CoversExactlyTheRange) {
  std::vector<int> hits(257, 0);
  ParallelFor(4, 257, [&hits](int i) { hits[static_cast<size_t>(i)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, SerialPathRunsInline) {
  std::vector<int> order;
  ParallelFor(1, 5, [&order](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  ParallelFor(4, 0, [](int) { FAIL() << "body must not run"; });
  ParallelFor(4, -3, [](int) { FAIL() << "body must not run"; });
}

// The determinism contract: per-index RNG streams make the parallel result
// bit-identical to the serial one for every thread count.
TEST(ParallelForTest, IndexSeededStreamsAreThreadCountInvariant) {
  constexpr int kItems = 64;
  const uint64_t seed = 0xfeedULL;
  auto run = [&](int threads) {
    std::vector<double> out(kItems, 0.0);
    ParallelFor(threads, kItems, [&out, seed](int i) {
      Rng rng(MixHash(seed, static_cast<uint64_t>(i)));
      double acc = 0.0;
      for (int draw = 0; draw < 100; ++draw) acc += rng.UniformDouble();
      out[static_cast<size_t>(i)] = acc;
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  for (int threads : {2, 3, 4, 8}) {
    const std::vector<double> parallel = run(threads);
    for (int i = 0; i < kItems; ++i) {
      EXPECT_EQ(serial[static_cast<size_t>(i)],
                parallel[static_cast<size_t>(i)])
          << "item " << i << " with " << threads << " threads";
    }
  }
}

TEST(ParallelForTest, ReusedPoolOverloadMatchesFreshPool) {
  ThreadPool pool(4);
  std::vector<int> out(100, 0);
  for (int round = 0; round < 3; ++round) {
    ParallelFor(&pool, 100, [&out, round](int i) {
      out[static_cast<size_t>(i)] = i + round;
    });
    for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i + round);
  }
}

}  // namespace
}  // namespace imcf
