#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace imcf {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child must differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(MixHashTest, DeterministicAndSpread) {
  EXPECT_EQ(MixHash(42), MixHash(42));
  EXPECT_NE(MixHash(42), MixHash(43));
  EXPECT_NE(MixHash(1, 2), MixHash(2, 1));  // order matters
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(MixHash(i));
  EXPECT_EQ(seen.size(), 1000u);
}

// Chi-square-lite bucket uniformity sweep across seeds.
class RngBuckets : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBuckets, UniformIntIsRoughlyUniform) {
  Rng rng(GetParam());
  constexpr int kBuckets = 8;
  constexpr int kDraws = 16000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(0, kBuckets - 1)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.12) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBuckets,
                         ::testing::Values(1u, 7u, 42u, 1234567u,
                                           0xDEADBEEFu));

}  // namespace
}  // namespace imcf
