#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"

namespace imcf {
namespace {

TEST(UnitsTest, TariffConversions) {
  // "1 kWh costs around 0.20 Euros in EU, so monetary to energy conversion
  // can be carried out directly": the paper's 100-euro monthly budget is
  // 500 kWh.
  EXPECT_DOUBLE_EQ(EurosToKwh(100.0), 500.0);
  EXPECT_DOUBLE_EQ(KwhToEuros(500.0), 100.0);
  EXPECT_DOUBLE_EQ(KwhToEuros(EurosToKwh(42.0)), 42.0);
}

TEST(UnitsTest, EnergyFromPower) {
  EXPECT_DOUBLE_EQ(EnergyKwh(2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(EnergyKwh(0.0, 100.0), 0.0);
}

TEST(UnitsTest, ClampAndLerp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(11.0, 0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.25), 12.5);
}

TEST(LoggingTest, LevelGating) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed levels must not evaluate their stream arguments.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  IMCF_LOG(kDebug) << "suppressed " << count();
  IMCF_LOG(kInfo) << "suppressed " << count();
  EXPECT_EQ(evaluations, 0);
  IMCF_LOG(kError) << "emitted " << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(LoggingTest, DefaultLevelIsWarning) {
  // Benchmarks rely on quiet-by-default logging.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(original);
}

}  // namespace
}  // namespace imcf
