#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace imcf {
namespace {

/// Test sink collecting every emitted line (thread-safe, as the sink
/// contract requires).
class CaptureSink : public LogSink {
 public:
  void Write(LogLevel level, const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    levels_.push_back(level);
    lines_.push_back(line);
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }
  std::vector<LogLevel> levels() const {
    std::lock_guard<std::mutex> lock(mu_);
    return levels_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

/// RAII sink swap so a test failure cannot leave the capture installed.
class ScopedSink {
 public:
  explicit ScopedSink(LogSink* sink) : previous_(SetLogSink(sink)) {}
  ~ScopedSink() { SetLogSink(previous_); }

 private:
  LogSink* previous_;
};

TEST(UnitsTest, TariffConversions) {
  // "1 kWh costs around 0.20 Euros in EU, so monetary to energy conversion
  // can be carried out directly": the paper's 100-euro monthly budget is
  // 500 kWh.
  EXPECT_DOUBLE_EQ(EurosToKwh(100.0), 500.0);
  EXPECT_DOUBLE_EQ(KwhToEuros(500.0), 100.0);
  EXPECT_DOUBLE_EQ(KwhToEuros(EurosToKwh(42.0)), 42.0);
}

TEST(UnitsTest, EnergyFromPower) {
  EXPECT_DOUBLE_EQ(EnergyKwh(2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(EnergyKwh(0.0, 100.0), 0.0);
}

TEST(UnitsTest, ClampAndLerp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(11.0, 0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.25), 12.5);
}

TEST(LoggingTest, LevelGating) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed levels must not evaluate their stream arguments.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  IMCF_LOG(kDebug) << "suppressed " << count();
  IMCF_LOG(kInfo) << "suppressed " << count();
  EXPECT_EQ(evaluations, 0);
  IMCF_LOG(kError) << "emitted " << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(LoggingTest, DefaultLevelIsWarning) {
  // Benchmarks rely on quiet-by-default logging.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(original);
}

TEST(LoggingTest, SinkReceivesFormattedLines) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CaptureSink capture;
  {
    ScopedSink scoped(&capture);
    IMCF_LOG(kInfo) << "loaded " << 7 << " rules";
    IMCF_LOG(kError) << "boom";
  }
  SetLogLevel(original);

  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(capture.levels()[0], LogLevel::kInfo);
  EXPECT_EQ(capture.levels()[1], LogLevel::kError);
  // Prefix shape: "[<seconds> t<id> LEVEL file:line] message".
  EXPECT_EQ(lines[0].front(), '[');
  EXPECT_NE(lines[0].find(" INFO logging_units_test.cc:"),
            std::string::npos);
  EXPECT_NE(lines[0].find("] loaded 7 rules"), std::string::npos);
  EXPECT_NE(lines[1].find(" ERROR logging_units_test.cc:"),
            std::string::npos);
  EXPECT_NE(lines[1].find("] boom"), std::string::npos);
  // Monotonic timestamp and thread id are present: "[12.345678 t0 ...".
  double seconds = -1.0;
  int thread_id = -1;
  ASSERT_EQ(std::sscanf(lines[0].c_str(), "[%lf t%d ", &seconds,
                        &thread_id),
            2);
  EXPECT_GE(seconds, 0.0);
  EXPECT_GE(thread_id, 0);
}

TEST(LoggingTest, SetLogSinkReturnsPreviousAndNullRestoresDefault) {
  CaptureSink first;
  CaptureSink second;
  LogSink* original = SetLogSink(&first);
  EXPECT_NE(original, nullptr);  // the default stderr sink
  EXPECT_EQ(SetLogSink(&second), &first);
  EXPECT_EQ(SetLogSink(nullptr), &second);
  // nullptr restored the default: installing again hands it back.
  EXPECT_EQ(SetLogSink(original), original);
}

TEST(LoggingTest, ConcurrentLoggingDeliversEveryLine) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CaptureSink capture;
  constexpr int kTasks = 32;
  {
    ScopedSink scoped(&capture);
    ParallelFor(4, kTasks, [](int i) {
      IMCF_LOG(kInfo) << "task " << i;
    });
  }
  SetLogLevel(original);
  EXPECT_EQ(capture.lines().size(), static_cast<size_t>(kTasks));
}

}  // namespace
}  // namespace imcf
