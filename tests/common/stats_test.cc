#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace imcf {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownSample) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance (n-1): sum of squared deviations = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, left, right;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeOfSingleSampleSplitsIsBitIdenticalToAdd) {
  // RunGrid aggregates repetitions by merging one single-sample stat per
  // cell (in rep order) instead of calling Add directly. For n2 == 1 the
  // Chan merge's mean update reduces to the exact Welford step (delta * 1 /
  // n), so means agree bit-for-bit; the m2 term is algebraically equal but
  // rounds differently, so variance agrees to rounding error only.
  RunningStat added, merged;
  Rng rng(11);
  for (int i = 0; i < 257; ++i) {
    const double x = rng.Gaussian(40.0, 15.0);
    added.Add(x);
    RunningStat single;
    single.Add(x);
    merged.Merge(single);
  }
  EXPECT_EQ(merged.count(), added.count());
  EXPECT_DOUBLE_EQ(merged.mean(), added.mean());
  EXPECT_NEAR(merged.variance(), added.variance(),
              1e-12 * added.variance());
  EXPECT_DOUBLE_EQ(merged.min(), added.min());
  EXPECT_DOUBLE_EQ(merged.max(), added.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatTest, ToStringFormat) {
  RunningStat s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_EQ(s.ToString(1), "2.0 ± 1.4");
}

TEST(RunningStatTest, NumericallyStableForLargeOffsets) {
  RunningStat s;
  for (int i = 0; i < 1000; ++i) {
    s.Add(1e9 + (i % 2));  // values 1e9 and 1e9+1
  }
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(VectorStatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), std::sqrt(2.0));
}

TEST(VectorStatsTest, AgreesWithRunningStat) {
  std::vector<double> xs;
  RunningStat s;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.UniformDouble(-10, 10);
    xs.push_back(x);
    s.Add(x);
  }
  EXPECT_NEAR(Mean(xs), s.mean(), 1e-9);
  EXPECT_NEAR(StdDev(xs), s.stddev(), 1e-9);
}

}  // namespace
}  // namespace imcf
