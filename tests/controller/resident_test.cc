#include "controller/resident.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace imcf {
namespace controller {
namespace {

TEST(DefaultFamilyTest, ThreeResidentsWithRoughlyThreeRulesEach) {
  const auto family = DefaultFamily();
  ASSERT_EQ(family.size(), 3u);
  for (const Resident& r : family) {
    EXPECT_GE(r.rules.size(), 3u);
    for (const rules::MetaRule& rule : r.rules) {
      EXPECT_EQ(rule.user, r.name);
    }
  }
  EXPECT_EQ(family[0].name, "Father");
  EXPECT_EQ(family[1].name, "Mother");
  EXPECT_EQ(family[2].name, "Daughter");
}

TEST(DefaultFamilyTest, EachResidentOwnsOneRoom) {
  const auto family = DefaultFamily();
  for (size_t i = 0; i < family.size(); ++i) {
    for (const rules::MetaRule& rule : family[i].rules) {
      EXPECT_EQ(rule.unit, static_cast<int>(i));
    }
  }
}

TEST(MergeResidentsTest, TagsAndOrdersRules) {
  const auto family = DefaultFamily();
  const auto mrt = MergeResidents(family);
  ASSERT_TRUE(mrt.ok());
  size_t expected = 0;
  for (const Resident& r : family) expected += r.rules.size();
  EXPECT_EQ(mrt->convenience_count(), expected);
  EXPECT_EQ(mrt->ConvenienceRule(0).user, "Father");
  EXPECT_EQ(mrt->ConvenienceRule(expected - 1).user, "Daughter");
}

class ResidentPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/imcf_residents_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ResidentPersistenceTest, RoundTripsThroughTableStore) {
  const auto family = DefaultFamily();
  {
    auto store = TableStore::Open(dir_);
    ASSERT_TRUE(store.ok());
    Table* table = (*store)->CreateTable(ResidentRuleSchema()).value();
    const auto bytes = PersistResidents(family, table);
    ASSERT_TRUE(bytes.ok());
    // The paper reports ~65 bytes of configuration per user; ours carries
    // longer descriptions but stays the same order of magnitude.
    EXPECT_GT(*bytes, 40.0);
    EXPECT_LT(*bytes, 300.0);
  }
  // Reopen and reload.
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->OpenOrCreateTable(ResidentRuleSchema()).value();
  const auto loaded = LoadResidents(*table);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), family.size());
  for (size_t i = 0; i < family.size(); ++i) {
    EXPECT_EQ((*loaded)[i].name, family[i].name);
    ASSERT_EQ((*loaded)[i].rules.size(), family[i].rules.size());
    for (size_t j = 0; j < family[i].rules.size(); ++j) {
      const rules::MetaRule& original = family[i].rules[j];
      const rules::MetaRule& restored = (*loaded)[i].rules[j];
      EXPECT_EQ(restored.description, original.description);
      EXPECT_EQ(restored.window, original.window);
      EXPECT_EQ(restored.action, original.action);
      EXPECT_DOUBLE_EQ(restored.value, original.value);
      EXPECT_EQ(restored.unit, original.unit);
    }
  }
}

TEST_F(ResidentPersistenceTest, LoadRejectsCorruptAction) {
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->CreateTable(ResidentRuleSchema()).value();
  ASSERT_TRUE(table
                  ->Insert({std::string("Eve"), std::string("bad"),
                            int64_t{0}, int64_t{60}, int64_t{9} /* bogus */,
                            22.0, int64_t{0}})
                  .ok());
  EXPECT_TRUE(LoadResidents(*table).status().IsCorruption());
}

TEST(ResidentRuleSchemaTest, Shape) {
  const TableSchema schema = ResidentRuleSchema();
  EXPECT_EQ(schema.name, "resident_rules");
  EXPECT_EQ(schema.columns.size(), 7u);
  EXPECT_EQ(schema.ColumnIndex("user"), 0);
  EXPECT_EQ(schema.ColumnIndex("value"), 5);
}

}  // namespace
}  // namespace controller
}  // namespace imcf
