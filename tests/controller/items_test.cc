#include "controller/items.h"

#include <gtest/gtest.h>

namespace imcf {
namespace controller {
namespace {

using devices::ActuationCommand;
using devices::CommandType;
using devices::DeviceKind;
using devices::DeviceRegistry;

TEST(ItemRegistryTest, AddAndGet) {
  ItemRegistry items;
  Item item;
  item.name = "Kitchen_Temperature";
  item.type = ItemType::kNumber;
  ASSERT_TRUE(items.Add(item).ok());
  EXPECT_TRUE(items.Add(item).IsAlreadyExists());
  const auto found = items.Get("Kitchen_Temperature");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->type, ItemType::kNumber);
  EXPECT_TRUE(items.Get("Nope").status().IsNotFound());
}

TEST(ItemRegistryTest, BindDevicesCreatesOpenHabLikeItems) {
  DeviceRegistry registry;
  (void)registry.Add("living_room_ac", DeviceKind::kHvac, 0, "192.168.0.5");
  (void)registry.Add("hall_light", DeviceKind::kLight, 0);
  ItemRegistry items;
  ASSERT_TRUE(items.BindDevices(registry).ok());
  // Power + SetPoint per device, as in the paper's daikin.items example.
  EXPECT_EQ(items.size(), 4u);
  const auto power = items.Get("living_room_ac_Power");
  ASSERT_TRUE(power.ok());
  EXPECT_EQ((*power)->type, ItemType::kSwitch);
  EXPECT_EQ((*power)->channel, "hvac:living_room_ac:power");
  const auto setpoint = items.Get("living_room_ac_SetPoint");
  ASSERT_TRUE(setpoint.ok());
  EXPECT_EQ((*setpoint)->type, ItemType::kSetpoint);
  EXPECT_EQ((*setpoint)->channel, "hvac:living_room_ac:settemp");
  const auto dimmer = items.Get("hall_light_SetPoint");
  ASSERT_TRUE(dimmer.ok());
  EXPECT_EQ((*dimmer)->type, ItemType::kDimmer);
  EXPECT_EQ((*dimmer)->channel, "light:hall_light:level");
}

TEST(ItemRegistryTest, UpdateState) {
  ItemRegistry items;
  Item item;
  item.name = "Sensor";
  ASSERT_TRUE(items.Add(item).ok());
  ASSERT_TRUE(items.Update("Sensor", 21.5, 1000).ok());
  const auto got = items.Get("Sensor");
  EXPECT_DOUBLE_EQ((*got)->state, 21.5);
  EXPECT_EQ((*got)->updated_at, 1000);
  EXPECT_TRUE(items.Update("Nope", 1.0, 0).IsNotFound());
}

TEST(ItemRegistryTest, ApplyCommandUpdatesSetpointAndPower) {
  DeviceRegistry registry;
  const auto ac = *registry.Add("ac", DeviceKind::kHvac, 0);
  ItemRegistry items;
  ASSERT_TRUE(items.BindDevices(registry).ok());

  ActuationCommand cmd;
  cmd.device = ac;
  cmd.type = CommandType::kSetTemperature;
  cmd.value = 24.0;
  cmd.time = 5000;
  ASSERT_TRUE(items.ApplyCommand(cmd).ok());
  EXPECT_DOUBLE_EQ((*items.Get("ac_SetPoint"))->state, 24.0);
  EXPECT_DOUBLE_EQ((*items.Get("ac_Power"))->state, 1.0);
  EXPECT_EQ((*items.Get("ac_SetPoint"))->updated_at, 5000);

  cmd.type = CommandType::kTurnOff;
  ASSERT_TRUE(items.ApplyCommand(cmd).ok());
  EXPECT_DOUBLE_EQ((*items.Get("ac_Power"))->state, 0.0);
  // Setpoint retains the last commanded value.
  EXPECT_DOUBLE_EQ((*items.Get("ac_SetPoint"))->state, 24.0);
}

TEST(ItemRegistryTest, ApplyCommandUnknownDeviceFails) {
  ItemRegistry items;
  ActuationCommand cmd;
  cmd.device = 42;
  EXPECT_TRUE(items.ApplyCommand(cmd).IsNotFound());
}

TEST(ItemTypeTest, Names) {
  EXPECT_STREQ(ItemTypeName(ItemType::kNumber), "Number");
  EXPECT_STREQ(ItemTypeName(ItemType::kSwitch), "Switch");
  EXPECT_STREQ(ItemTypeName(ItemType::kDimmer), "Dimmer");
  EXPECT_STREQ(ItemTypeName(ItemType::kSetpoint), "Setpoint");
}

}  // namespace
}  // namespace controller
}  // namespace imcf
