#include "controller/cloud.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/strings.h"

namespace imcf {
namespace controller {
namespace {

// Small, fast community: 3 households, 2 winter months.
CloudOptions FastOptions(AllocationPolicy policy) {
  CloudOptions options;
  options.policy = policy;
  options.start = FromCivil(2014, 1, 1);
  options.hours = (31 + 28) * 24;
  options.utilitarian_rounds = 1;
  return options;
}

double TotalAllocation(const CloudReport& report) {
  double total = 0.0;
  for (const HouseholdReport& hr : report.households) {
    total += hr.allocation_kwh;
  }
  return total;
}

TEST(CloudTest, RequiresHouseholdsAndBudget) {
  CloudMetaController empty(FastOptions(AllocationPolicy::kEqualShare));
  EXPECT_TRUE(empty.Run().status().IsFailedPrecondition());

  auto cmc = DefaultNeighborhood(2, /*community_budget_kwh=*/-5.0,
                                 FastOptions(AllocationPolicy::kEqualShare));
  ASSERT_TRUE(cmc.ok());
  EXPECT_TRUE((*cmc)->Run().status().IsInvalidArgument());
}

TEST(CloudTest, RejectsDuplicateHouseholds) {
  CloudMetaController cmc(FastOptions(AllocationPolicy::kEqualShare));
  ASSERT_TRUE(cmc.AddHousehold("a", trace::FlatSpec()).ok());
  EXPECT_TRUE(cmc.AddHousehold("a", trace::FlatSpec()).IsAlreadyExists());
}

TEST(CloudTest, EqualShareSplitsEvenly) {
  auto cmc = DefaultNeighborhood(3, 3000.0,
                                 FastOptions(AllocationPolicy::kEqualShare));
  ASSERT_TRUE(cmc.ok());
  const auto report = (*cmc)->Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->households.size(), 3u);
  for (const HouseholdReport& hr : report->households) {
    EXPECT_NEAR(hr.allocation_kwh, 1000.0, 1e-9);
  }
  EXPECT_NEAR(TotalAllocation(*report), 3000.0, 1e-6);
}

TEST(CloudTest, DemandProportionalFollowsAppetite) {
  auto cmc = DefaultNeighborhood(
      3, 3000.0, FastOptions(AllocationPolicy::kDemandProportional));
  ASSERT_TRUE(cmc.ok());
  const auto report = (*cmc)->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(TotalAllocation(*report), 3000.0, 1e-6);
  // Shares ordered like demand forecasts.
  for (const HouseholdReport& a : report->households) {
    for (const HouseholdReport& b : report->households) {
      if (a.demand_kwh > b.demand_kwh) {
        EXPECT_GT(a.allocation_kwh, b.allocation_kwh);
      }
    }
  }
  // Appetites genuinely differ in the default neighborhood.
  double min_demand = 1e18, max_demand = 0.0;
  for (const HouseholdReport& hr : report->households) {
    min_demand = std::min(min_demand, hr.demand_kwh);
    max_demand = std::max(max_demand, hr.demand_kwh);
  }
  EXPECT_GT(max_demand, min_demand * 1.1);
}

TEST(CloudTest, CommunityStaysWithinPool) {
  for (AllocationPolicy policy : {AllocationPolicy::kEqualShare,
                                  AllocationPolicy::kDemandProportional}) {
    auto cmc = DefaultNeighborhood(3, 2500.0, FastOptions(policy));
    ASSERT_TRUE(cmc.ok());
    const auto report = (*cmc)->Run();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->within_budget)
        << AllocationPolicyName(policy) << " total " << report->total_fe_kwh;
  }
}

TEST(CloudTest, DemandProportionalBeatsEqualShareOnFairness) {
  // With heterogeneous appetites, equal shares starve the hungry
  // households; demand-proportional shares equalise the pain.
  auto equal = DefaultNeighborhood(4, 3200.0,
                                   FastOptions(AllocationPolicy::kEqualShare));
  auto prop = DefaultNeighborhood(
      4, 3200.0, FastOptions(AllocationPolicy::kDemandProportional));
  ASSERT_TRUE(equal.ok());
  ASSERT_TRUE(prop.ok());
  const auto equal_report = (*equal)->Run();
  const auto prop_report = (*prop)->Run();
  ASSERT_TRUE(equal_report.ok());
  ASSERT_TRUE(prop_report.ok());
  // Demand-proportional equalises the pain across appetites. (It does not
  // necessarily improve the *mean*: under scarcity, convenience per kWh is
  // concave, so feeding the hungry can cost the community average.)
  EXPECT_LE(prop_report->fairness_stddev,
            equal_report->fairness_stddev + 0.25);
}

TEST(CloudTest, UtilitarianDoesNotRegressTheMean) {
  CloudOptions base = FastOptions(AllocationPolicy::kDemandProportional);
  base.hours = 31 * 24;  // keep probe runs cheap
  auto prop = DefaultNeighborhood(3, 1500.0, base);
  CloudOptions refined_options = base;
  refined_options.policy = AllocationPolicy::kUtilitarian;
  refined_options.utilitarian_rounds = 2;
  auto refined = DefaultNeighborhood(3, 1500.0, refined_options);
  ASSERT_TRUE(prop.ok());
  ASSERT_TRUE(refined.ok());
  const auto prop_report = (*prop)->Run();
  const auto refined_report = (*refined)->Run();
  ASSERT_TRUE(prop_report.ok());
  ASSERT_TRUE(refined_report.ok());
  EXPECT_NEAR(TotalAllocation(*refined_report), 1500.0, 1e-6);
  EXPECT_LE(refined_report->mean_fce_pct,
            prop_report->mean_fce_pct + 0.05);
}

TEST(CloudTest, CoordinatesTenantsFromBorrowedRegistry) {
  // The fleet-integration path: the service's registry admits tenants; the
  // CMC borrows it and coordinates their shared budget.
  serve::TenantRegistry registry(/*shards=*/2);
  for (int i = 0; i < 2; ++i) {
    serve::TenantConfig config;
    config.id = StrFormat("t%d", i);
    config.seed = 10 + static_cast<uint64_t>(i);
    config.start = FromCivil(2014, 1, 1);
    config.hours = 31 * 24;
    ASSERT_TRUE(registry.Admit(config).ok());
  }
  CloudOptions options = FastOptions(AllocationPolicy::kEqualShare);
  options.hours = 31 * 24;
  options.community_budget_kwh = 1200.0;
  options.registry = &registry;
  CloudMetaController cmc(options);
  ASSERT_TRUE(cmc.Adopt("t0").ok());
  ASSERT_TRUE(cmc.Adopt("t1").ok());
  EXPECT_TRUE(cmc.Adopt("t0").IsAlreadyExists());
  EXPECT_TRUE(cmc.Adopt("missing").IsNotFound());
  EXPECT_EQ(cmc.household_count(), 2u);
  EXPECT_EQ(&cmc.registry(), &registry);  // borrowed, not copied

  auto report = cmc.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->households.size(), 2u);
  EXPECT_DOUBLE_EQ(report->households[0].allocation_kwh, 600.0);
  EXPECT_GT(report->total_fe_kwh, 0.0);
}

TEST(CloudTest, PolicyNames) {
  EXPECT_STREQ(AllocationPolicyName(AllocationPolicy::kEqualShare),
               "equal-share");
  EXPECT_STREQ(AllocationPolicyName(AllocationPolicy::kDemandProportional),
               "demand-proportional");
  EXPECT_STREQ(AllocationPolicyName(AllocationPolicy::kUtilitarian),
               "utilitarian");
}

TEST(CloudTest, ReportBookkeeping) {
  auto cmc = DefaultNeighborhood(
      2, 2000.0, FastOptions(AllocationPolicy::kDemandProportional));
  ASSERT_TRUE(cmc.ok());
  EXPECT_EQ((*cmc)->household_count(), 2u);
  const auto report = (*cmc)->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->policy, "demand-proportional");
  EXPECT_DOUBLE_EQ(report->community_budget_kwh, 2000.0);
  double fe = 0.0;
  for (const HouseholdReport& hr : report->households) fe += hr.fe_kwh;
  EXPECT_NEAR(report->total_fe_kwh, fe, 1e-9);
}

}  // namespace
}  // namespace controller
}  // namespace imcf
