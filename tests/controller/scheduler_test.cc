#include "controller/scheduler.h"

#include <gtest/gtest.h>

namespace imcf {
namespace controller {
namespace {

TEST(CronSpecTest, ParseValidExpressions) {
  EXPECT_TRUE(CronSpec::Parse("0 * * * *").ok());
  EXPECT_TRUE(CronSpec::Parse("*/15 * * * *").ok());
  EXPECT_TRUE(CronSpec::Parse("30 6 1 1 *").ok());
  EXPECT_TRUE(CronSpec::Parse("0,30 8,20 * * 0").ok());
  EXPECT_TRUE(CronSpec::Parse("  5  4  *  *  *  ").ok());
}

TEST(CronSpecTest, ParseRejectsBadExpressions) {
  EXPECT_FALSE(CronSpec::Parse("").ok());
  EXPECT_FALSE(CronSpec::Parse("* * * *").ok());
  EXPECT_FALSE(CronSpec::Parse("60 * * * *").ok());
  EXPECT_FALSE(CronSpec::Parse("* 24 * * *").ok());
  EXPECT_FALSE(CronSpec::Parse("* * 0 * *").ok());
  EXPECT_FALSE(CronSpec::Parse("* * * 13 *").ok());
  EXPECT_FALSE(CronSpec::Parse("* * * * 7").ok());
  EXPECT_FALSE(CronSpec::Parse("*/0 * * * *").ok());
  EXPECT_FALSE(CronSpec::Parse("x * * * *").ok());
}

TEST(CronSpecTest, MatchesHourly) {
  const CronSpec spec = *CronSpec::Parse("0 * * * *");
  EXPECT_TRUE(spec.Matches(FromCivil(2016, 2, 15, 9, 0)));
  EXPECT_FALSE(spec.Matches(FromCivil(2016, 2, 15, 9, 1)));
}

TEST(CronSpecTest, MatchesStepMinutes) {
  const CronSpec spec = *CronSpec::Parse("*/15 * * * *");
  for (int m : {0, 15, 30, 45}) {
    EXPECT_TRUE(spec.Matches(FromCivil(2016, 2, 15, 9, m))) << m;
  }
  EXPECT_FALSE(spec.Matches(FromCivil(2016, 2, 15, 9, 20)));
}

TEST(CronSpecTest, MatchesDayOfWeek) {
  // 2016-02-15 was a Monday (dow 1).
  const CronSpec monday = *CronSpec::Parse("0 12 * * 1");
  EXPECT_TRUE(monday.Matches(FromCivil(2016, 2, 15, 12, 0)));
  EXPECT_FALSE(monday.Matches(FromCivil(2016, 2, 16, 12, 0)));
}

TEST(CronSpecTest, MatchesSpecificDate) {
  const CronSpec new_year = *CronSpec::Parse("0 0 1 1 *");
  EXPECT_TRUE(new_year.Matches(FromCivil(2017, 1, 1, 0, 0)));
  EXPECT_FALSE(new_year.Matches(FromCivil(2017, 1, 2, 0, 0)));
}

TEST(CronSpecTest, NextFindsUpcomingFiring) {
  const CronSpec hourly = *CronSpec::Parse("0 * * * *");
  EXPECT_EQ(hourly.Next(FromCivil(2016, 2, 15, 9, 30)),
            FromCivil(2016, 2, 15, 10, 0));
  // Next of an exact match is the following firing.
  EXPECT_EQ(hourly.Next(FromCivil(2016, 2, 15, 9, 0)),
            FromCivil(2016, 2, 15, 10, 0));
  const CronSpec yearly = *CronSpec::Parse("0 0 1 1 *");
  EXPECT_EQ(yearly.Next(FromCivil(2016, 6, 1)), FromCivil(2017, 1, 1));
}

TEST(SchedulerTest, FiresExpectedCounts) {
  VirtualScheduler scheduler(FromCivil(2016, 2, 15));
  int hourly_count = 0, quarter_count = 0;
  ASSERT_TRUE(scheduler
                  .Schedule("hourly", "0 * * * *",
                            [&](SimTime) { ++hourly_count; })
                  .ok());
  ASSERT_TRUE(scheduler
                  .Schedule("quarter", "*/15 * * * *",
                            [&](SimTime) { ++quarter_count; })
                  .ok());
  const int64_t fired = scheduler.AdvanceTo(FromCivil(2016, 2, 16));
  // (0:00 exclusive .. 24:00 inclusive]: 24 hourly + 96 quarter firings.
  EXPECT_EQ(hourly_count, 24);
  EXPECT_EQ(quarter_count, 96);
  EXPECT_EQ(fired, 120);
  EXPECT_EQ(scheduler.now(), FromCivil(2016, 2, 16));
}

TEST(SchedulerTest, FiringsInTimeOrder) {
  VirtualScheduler scheduler(FromCivil(2016, 2, 15));
  std::vector<SimTime> firings;
  ASSERT_TRUE(scheduler
                  .Schedule("a", "*/20 * * * *",
                            [&](SimTime t) { firings.push_back(t); })
                  .ok());
  ASSERT_TRUE(scheduler
                  .Schedule("b", "*/30 * * * *",
                            [&](SimTime t) { firings.push_back(t); })
                  .ok());
  scheduler.AdvanceTo(FromCivil(2016, 2, 15, 3));
  ASSERT_FALSE(firings.empty());
  for (size_t i = 1; i < firings.size(); ++i) {
    EXPECT_LE(firings[i - 1], firings[i]);
  }
}

TEST(SchedulerTest, CoincidentJobsBothFire) {
  VirtualScheduler scheduler(FromCivil(2016, 2, 15));
  std::vector<std::string> order;
  (void)scheduler.Schedule("first", "0 * * * *",
                           [&](SimTime) { order.push_back("first"); });
  (void)scheduler.Schedule("second", "0 * * * *",
                           [&](SimTime) { order.push_back("second"); });
  scheduler.AdvanceTo(FromCivil(2016, 2, 15, 1, 30));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "first");  // registration order on ties
  EXPECT_EQ(order[1], "second");
}

TEST(SchedulerTest, AdvanceIsIncremental) {
  VirtualScheduler scheduler(FromCivil(2016, 2, 15));
  int count = 0;
  (void)scheduler.Schedule("hourly", "0 * * * *", [&](SimTime) { ++count; });
  scheduler.AdvanceTo(FromCivil(2016, 2, 15, 2, 30));
  EXPECT_EQ(count, 2);
  scheduler.AdvanceTo(FromCivil(2016, 2, 15, 2, 45));
  EXPECT_EQ(count, 2);  // nothing new between 2:30 and 2:45
  scheduler.AdvanceTo(FromCivil(2016, 2, 15, 4, 0));
  EXPECT_EQ(count, 4);  // 3:00 and 4:00
}

TEST(SchedulerTest, BadExpressionRejectedAtSchedule) {
  VirtualScheduler scheduler(0);
  EXPECT_FALSE(scheduler.Schedule("bad", "not cron", [](SimTime) {}).ok());
  EXPECT_TRUE(scheduler.jobs().empty());
}

TEST(SchedulerTest, JobReceivesFiringTime) {
  VirtualScheduler scheduler(FromCivil(2016, 3, 1));
  std::vector<SimTime> times;
  (void)scheduler.Schedule("t", "30 14 * * *",
                           [&](SimTime t) { times.push_back(t); });
  scheduler.AdvanceTo(FromCivil(2016, 3, 3));
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], FromCivil(2016, 3, 1, 14, 30));
  EXPECT_EQ(times[1], FromCivil(2016, 3, 2, 14, 30));
}

}  // namespace
}  // namespace controller
}  // namespace imcf
