#include "controller/prototype.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace imcf {
namespace controller {
namespace {

TEST(PrototypeTest, WeekRunMatchesPaperShape) {
  PrototypeOptions options;
  PrototypeStudy study(options);
  const auto report = study.Run();
  ASSERT_TRUE(report.ok());
  // Table IV: weekly energy within the 165 kWh cap with a small
  // convenience error (paper: 130.64 kWh, 2.35%).
  EXPECT_TRUE(report->within_budget);
  EXPECT_GT(report->fe_kwh, 80.0);
  EXPECT_LT(report->fe_kwh, 165.0);
  EXPECT_GT(report->fce_pct, 0.0);
  EXPECT_LT(report->fce_pct, 8.0);
  // One cron firing per hour of the week, sensors every 15 minutes.
  EXPECT_EQ(report->planner_runs, 7 * 24);
  EXPECT_EQ(report->sensor_refreshes, 7 * 24 * 4);
  EXPECT_GT(report->commands_issued, 0);
  EXPECT_GT(report->commands_dropped, 0);
}

TEST(PrototypeTest, TableVPerResidentErrors) {
  PrototypeStudy study(PrototypeOptions{});
  const auto report = study.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->residents.size(), 3u);
  double weighted = 0.0;
  int64_t acts = 0;
  for (const ResidentReport& rr : report->residents) {
    // Every resident keeps high satisfaction (paper: ~99.2%+).
    EXPECT_GE(rr.fce_pct, 0.0);
    EXPECT_LT(rr.fce_pct, 10.0);
    EXPECT_GT(rr.activations, 0);
    weighted += rr.fce_pct * static_cast<double>(rr.activations);
    acts += rr.activations;
  }
  // Per-resident errors decompose the overall F_CE.
  EXPECT_NEAR(weighted / static_cast<double>(acts), report->fce_pct, 1e-6);
}

TEST(PrototypeTest, DeterministicForSeed) {
  const auto a = PrototypeStudy(PrototypeOptions{}).Run();
  const auto b = PrototypeStudy(PrototypeOptions{}).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->fe_kwh, b->fe_kwh);
  EXPECT_DOUBLE_EQ(a->fce_pct, b->fce_pct);
}

TEST(PrototypeTest, TighterCapReducesEnergyRaisesError) {
  PrototypeOptions tight;
  tight.weekly_budget_kwh = 100.0;
  const auto constrained = PrototypeStudy(tight).Run();
  const auto baseline = PrototypeStudy(PrototypeOptions{}).Run();
  ASSERT_TRUE(constrained.ok());
  EXPECT_TRUE(constrained->within_budget);
  EXPECT_LT(constrained->fe_kwh, baseline->fe_kwh);
  EXPECT_GT(constrained->fce_pct, baseline->fce_pct);
}

TEST(PrototypeTest, PersistsConfigurationWhenStoreGiven) {
  const std::string dir = ::testing::TempDir() + "/imcf_proto_store";
  std::filesystem::remove_all(dir);
  PrototypeOptions options;
  options.store_dir = dir;
  const auto report = PrototypeStudy(options).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->config_bytes_per_user, 0.0);
  // The rules table exists on disk and reloads.
  auto store = TableStore::Open(dir);
  ASSERT_TRUE(store.ok());
  Table* table = (*store)->OpenOrCreateTable(ResidentRuleSchema()).value();
  const auto loaded = LoadResidents(*table);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  std::filesystem::remove_all(dir);
}

TEST(PrototypeTest, EmptyFamilyRejected) {
  PrototypeStudy study(PrototypeOptions{});
  EXPECT_TRUE(study.Run({}).status().IsInvalidArgument());
}

TEST(PrototypeTest, CustomWeekStillWithinBudget) {
  PrototypeOptions options;
  options.week_start = FromCivil(2016, 5, 9);  // a mild May week
  const auto report = PrototypeStudy(options).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->within_budget);
  EXPECT_LT(report->fce_pct, 5.0);
}

}  // namespace
}  // namespace controller
}  // namespace imcf
