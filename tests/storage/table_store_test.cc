#include "storage/table_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/strings.h"

namespace imcf {
namespace {

TableSchema RuleSchema() {
  return TableSchema{"rules",
                     {{"description", ColumnType::kString},
                      {"value", ColumnType::kDouble},
                      {"unit", ColumnType::kInt}}};
}

class TableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/imcf_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(TableStoreTest, CreatesDirectoryAndTable) {
  auto store = TableStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(RuleSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 0u);
  EXPECT_EQ((*store)->TableNames(), std::vector<std::string>{"rules"});
}

TEST_F(TableStoreTest, InsertAndScan) {
  auto store = TableStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  Table* table = (*store)->CreateTable(RuleSchema()).value();
  ASSERT_TRUE(table->Insert({std::string("Night Heat"), 25.0, int64_t{0}}).ok());
  ASSERT_TRUE(table->Insert({std::string("Day Heat"), 22.0, int64_t{0}}).ok());
  EXPECT_EQ(table->size(), 2u);
  EXPECT_EQ(std::get<std::string>(table->rows()[0][0]), "Night Heat");
  EXPECT_DOUBLE_EQ(std::get<double>(table->rows()[1][1]), 22.0);
}

TEST_F(TableStoreTest, SchemaValidationRejectsBadRows) {
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->CreateTable(RuleSchema()).value();
  // Wrong arity.
  EXPECT_TRUE(table->Insert({std::string("x")}).IsInvalidArgument());
  // Wrong type in column 1 (int where double expected).
  EXPECT_TRUE(table->Insert({std::string("x"), int64_t{22}, int64_t{0}})
                  .IsInvalidArgument());
  EXPECT_EQ(table->size(), 0u);
}

TEST_F(TableStoreTest, PersistsAcrossReopen) {
  {
    auto store = TableStore::Open(dir_);
    Table* table = (*store)->CreateTable(RuleSchema()).value();
    ASSERT_TRUE(
        table->Insert({std::string("Midday Lights"), 30.0, int64_t{2}}).ok());
    ASSERT_TRUE(table->Flush().ok());
  }
  {
    auto store = TableStore::Open(dir_);
    Table* table = (*store)->OpenOrCreateTable(RuleSchema()).value();
    ASSERT_EQ(table->size(), 1u);
    EXPECT_EQ(std::get<std::string>(table->rows()[0][0]), "Midday Lights");
    EXPECT_EQ(std::get<int64_t>(table->rows()[0][2]), 2);
  }
}

TEST_F(TableStoreTest, DuplicateCreateFails) {
  auto store = TableStore::Open(dir_);
  ASSERT_TRUE((*store)->CreateTable(RuleSchema()).ok());
  EXPECT_TRUE(
      (*store)->CreateTable(RuleSchema()).status().IsAlreadyExists());
  // OpenOrCreate returns the existing instance.
  EXPECT_TRUE((*store)->OpenOrCreateTable(RuleSchema()).ok());
}

TEST_F(TableStoreTest, GetTableByName) {
  auto store = TableStore::Open(dir_);
  (void)(*store)->CreateTable(RuleSchema());
  EXPECT_TRUE((*store)->GetTable("rules").ok());
  EXPECT_TRUE((*store)->GetTable("nope").status().IsNotFound());
}

TEST_F(TableStoreTest, SelectWithPredicate) {
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->CreateTable(RuleSchema()).value();
  for (int u = 0; u < 5; ++u) {
    ASSERT_TRUE(table
                    ->Insert({std::string("rule"), 20.0 + u,
                              static_cast<int64_t>(u)})
                    .ok());
  }
  const auto hot = table->Select([](const Row& row) {
    return std::get<double>(row[1]) >= 22.0;
  });
  EXPECT_EQ(hot.size(), 3u);
}

TEST_F(TableStoreTest, TruncateClearsRowsDurably) {
  {
    auto store = TableStore::Open(dir_);
    Table* table = (*store)->CreateTable(RuleSchema()).value();
    ASSERT_TRUE(table->Insert({std::string("x"), 1.0, int64_t{0}}).ok());
    ASSERT_TRUE(table->Truncate().ok());
    EXPECT_EQ(table->size(), 0u);
    ASSERT_TRUE(table->Insert({std::string("y"), 2.0, int64_t{0}}).ok());
    ASSERT_TRUE(table->Flush().ok());
  }
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->OpenOrCreateTable(RuleSchema()).value();
  ASSERT_EQ(table->size(), 1u);
  EXPECT_EQ(std::get<std::string>(table->rows()[0][0]), "y");
}

TEST_F(TableStoreTest, TruncateTracksStaleRecordsAndCompacts) {
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->CreateTable(RuleSchema()).value();
  table->set_compaction_threshold(0);  // manual compaction only
  ASSERT_TRUE(table->Insert({std::string("x"), 1.0, int64_t{0}}).ok());
  ASSERT_TRUE(table->Insert({std::string("y"), 2.0, int64_t{1}}).ok());
  EXPECT_EQ(table->stale_records(), 0u);
  ASSERT_TRUE(table->Truncate().ok());
  EXPECT_EQ(table->stale_records(), 3u);  // two rows + the marker
  ASSERT_TRUE(table->Insert({std::string("z"), 3.0, int64_t{2}}).ok());
  ASSERT_TRUE(table->Compact().ok());
  EXPECT_EQ(table->stale_records(), 0u);
  EXPECT_EQ(table->size(), 1u);
  ASSERT_TRUE(table->Truncate().ok());
  EXPECT_EQ(table->stale_records(), 2u);  // one live row + marker
  // Truncating an already-empty table appends nothing.
  ASSERT_TRUE(table->Truncate().ok());
  EXPECT_EQ(table->stale_records(), 2u);
}

TEST_F(TableStoreTest, ReopenAfterCompactionYieldsIdenticalRows) {
  std::vector<Row> expected;
  {
    auto store = TableStore::Open(dir_);
    Table* table = (*store)->CreateTable(RuleSchema()).value();
    table->set_compaction_threshold(0);
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE(table->Truncate().ok());
      for (int u = 0; u <= round; ++u) {
        ASSERT_TRUE(table
                        ->Insert({StrFormat("rule%d", u), 20.0 + u,
                                  static_cast<int64_t>(u)})
                        .ok());
      }
    }
    expected = table->rows();
    ASSERT_TRUE(table->Compact().ok());
    EXPECT_EQ(table->rows(), expected);  // compaction preserves live rows
    ASSERT_TRUE(table->Flush().ok());
  }
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->OpenOrCreateTable(RuleSchema()).value();
  EXPECT_EQ(table->rows(), expected);
  EXPECT_EQ(table->stale_records(), 0u);  // the compacted log is all live
  // The table stays writable after reopen (the log reopened in append
  // mode at the right offset).
  ASSERT_TRUE(table->Insert({std::string("post"), 1.0, int64_t{9}}).ok());
  ASSERT_TRUE(table->Flush().ok());
}

TEST_F(TableStoreTest, AutoCompactionTriggersAtThreshold) {
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->CreateTable(RuleSchema()).value();
  table->set_compaction_threshold(4);
  ASSERT_TRUE(table->Insert({std::string("a"), 1.0, int64_t{0}}).ok());
  ASSERT_TRUE(table->Truncate().ok());  // 2 stale: below threshold
  EXPECT_EQ(table->stale_records(), 2u);
  ASSERT_TRUE(table->Insert({std::string("b"), 2.0, int64_t{1}}).ok());
  ASSERT_TRUE(table->Truncate().ok());  // crosses 4: auto-compacts
  EXPECT_EQ(table->stale_records(), 0u);
  const auto log_size =
      std::filesystem::file_size(dir_ + "/rules.tlog");
  // Compacted empty table = schema record only (12-byte frame + payload).
  EXPECT_LT(log_size, 100u);
}

TEST_F(TableStoreTest, MarkerBasedTruncateRecoversAcrossReopen) {
  // Truncate without compaction, reopen: recovery must replay the marker.
  {
    auto store = TableStore::Open(dir_);
    Table* table = (*store)->CreateTable(RuleSchema()).value();
    table->set_compaction_threshold(0);
    ASSERT_TRUE(table->Insert({std::string("old"), 1.0, int64_t{0}}).ok());
    ASSERT_TRUE(table->Truncate().ok());
    ASSERT_TRUE(table->Insert({std::string("new"), 2.0, int64_t{1}}).ok());
    ASSERT_TRUE(table->Flush().ok());
  }
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->OpenOrCreateTable(RuleSchema()).value();
  ASSERT_EQ(table->size(), 1u);
  EXPECT_EQ(std::get<std::string>(table->rows()[0][0]), "new");
  EXPECT_EQ(table->stale_records(), 2u);  // dead row + marker, until compact
}

/// Installs a sync observer for the test's lifetime and always resets it,
/// so an ASSERT in one test can't leak fault injection into the next.
class SyncObserverGuard {
 public:
  explicit SyncObserverGuard(
      std::function<Status(const std::string&, bool)> observer) {
    SetSyncObserverForTest(std::move(observer));
  }
  ~SyncObserverGuard() { SetSyncObserverForTest(nullptr); }
};

TEST_F(TableStoreTest, CompactionSyncsTempFileThenDirectory) {
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->CreateTable(RuleSchema()).value();
  table->set_compaction_threshold(0);
  ASSERT_TRUE(table->Insert({std::string("x"), 1.0, int64_t{0}}).ok());
  ASSERT_TRUE(table->Truncate().ok());
  ASSERT_TRUE(table->Insert({std::string("y"), 2.0, int64_t{1}}).ok());

  struct Event {
    std::string path;
    bool is_directory;
  };
  std::vector<Event> events;
  SyncObserverGuard guard([&](const std::string& path, bool is_directory) {
    events.push_back({path, is_directory});
    return Status::Ok();
  });
  ASSERT_TRUE(table->Compact().ok());

  // The rename barrier: the temp file's data reaches disk before the
  // rename, and the directory entry after it.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].path, dir_ + "/rules.tlog.compacting");
  EXPECT_FALSE(events[0].is_directory);
  EXPECT_EQ(events[1].path, dir_);
  EXPECT_TRUE(events[1].is_directory);
}

TEST_F(TableStoreTest, FailedTempFileSyncAbortsCompaction) {
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->CreateTable(RuleSchema()).value();
  table->set_compaction_threshold(0);
  ASSERT_TRUE(table->Insert({std::string("x"), 1.0, int64_t{0}}).ok());
  ASSERT_TRUE(table->Truncate().ok());
  ASSERT_TRUE(table->Insert({std::string("y"), 2.0, int64_t{1}}).ok());

  SyncObserverGuard guard([&](const std::string&, bool is_directory) {
    return is_directory ? Status::Ok()
                        : Status::IOError("injected fsync failure");
  });
  const Status compacted = table->Compact();
  ASSERT_FALSE(compacted.ok());
  EXPECT_NE(compacted.message().find("injected"), std::string::npos);
  // The live log was never replaced: the stale counter still reflects the
  // uncompacted state and the data survives a reopen.
  EXPECT_GT(table->stale_records(), 0u);
}

TEST_F(TableStoreTest, FailedDirectorySyncSurfacesAsError) {
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->CreateTable(RuleSchema()).value();
  table->set_compaction_threshold(0);
  ASSERT_TRUE(table->Insert({std::string("x"), 1.0, int64_t{0}}).ok());
  ASSERT_TRUE(table->Truncate().ok());
  ASSERT_TRUE(table->Insert({std::string("y"), 2.0, int64_t{1}}).ok());

  SyncObserverGuard guard([&](const std::string&, bool is_directory) {
    return is_directory ? Status::IOError("injected dirsync failure")
                        : Status::Ok();
  });
  const Status compacted = table->Compact();
  ASSERT_FALSE(compacted.ok());
  EXPECT_NE(compacted.message().find("injected"), std::string::npos);
}

TEST_F(TableStoreTest, ReopenAfterFailedTempSyncSeesOldData) {
  // A compaction aborted by a temp-file sync failure must leave the
  // on-disk log byte-for-byte reusable: reopen and read everything back.
  {
    auto store = TableStore::Open(dir_);
    Table* table = (*store)->CreateTable(RuleSchema()).value();
    table->set_compaction_threshold(0);
    ASSERT_TRUE(table->Insert({std::string("old"), 1.0, int64_t{0}}).ok());
    ASSERT_TRUE(table->Truncate().ok());
    ASSERT_TRUE(table->Insert({std::string("live"), 2.0, int64_t{1}}).ok());
    ASSERT_TRUE(table->Flush().ok());
    SyncObserverGuard guard([&](const std::string&, bool) {
      return Status::IOError("injected fsync failure");
    });
    ASSERT_FALSE(table->Compact().ok());
  }
  auto store = TableStore::Open(dir_);
  Table* table = (*store)->OpenOrCreateTable(RuleSchema()).value();
  ASSERT_EQ(table->size(), 1u);
  EXPECT_EQ(std::get<std::string>(table->rows()[0][0]), "live");
  // And a retried compaction (fault cleared) succeeds from that state.
  table->set_compaction_threshold(0);
  ASSERT_TRUE(table->Compact().ok());
  EXPECT_EQ(table->stale_records(), 0u);
  ASSERT_EQ(table->size(), 1u);
}

TEST_F(TableStoreTest, SchemaColumnIndex) {
  const TableSchema schema = RuleSchema();
  EXPECT_EQ(schema.ColumnIndex("description"), 0);
  EXPECT_EQ(schema.ColumnIndex("unit"), 2);
  EXPECT_EQ(schema.ColumnIndex("missing"), -1);
}

TEST(RowCodecTest, RoundTripsAllTypes) {
  const TableSchema schema{"t",
                           {{"i", ColumnType::kInt},
                            {"d", ColumnType::kDouble},
                            {"s", ColumnType::kString}}};
  const Row row{int64_t{-42}, 3.14159, std::string("hello \x01 world")};
  const auto decoded = DecodeRow(schema, EncodeRow(schema, row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(RowCodecTest, RejectsTrailingBytes) {
  const TableSchema schema{"t", {{"i", ColumnType::kInt}}};
  std::string encoded = EncodeRow(schema, {int64_t{1}});
  encoded += "junk";
  EXPECT_TRUE(DecodeRow(schema, encoded).status().IsCorruption());
}

TEST(SchemaCodecTest, RoundTrips) {
  const TableSchema schema = RuleSchema();
  const auto decoded = DecodeSchema(EncodeSchema(schema));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "rules");
  ASSERT_EQ(decoded->columns.size(), 3u);
  EXPECT_EQ(decoded->columns[1].name, "value");
  EXPECT_EQ(decoded->columns[1].type, ColumnType::kDouble);
}

TEST(ValueTest, TypeOfAndToString) {
  EXPECT_EQ(TypeOf(Value{int64_t{3}}), ColumnType::kInt);
  EXPECT_EQ(TypeOf(Value{2.5}), ColumnType::kDouble);
  EXPECT_EQ(TypeOf(Value{std::string("x")}), ColumnType::kString);
  EXPECT_EQ(ValueToString(Value{int64_t{-3}}), "-3");
  EXPECT_EQ(ValueToString(Value{std::string("abc")}), "abc");
}

}  // namespace
}  // namespace imcf
