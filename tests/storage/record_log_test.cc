#include "storage/record_log.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "storage/csv.h"

namespace imcf {
namespace {

class RecordLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/imcf_record_log_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(RecordLogTest, RoundTripsRecords) {
  RecordLogWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append("first").ok());
  ASSERT_TRUE(writer.Append("").ok());  // empty records are valid
  ASSERT_TRUE(writer.Append(std::string(100000, 'x')).ok());
  ASSERT_TRUE(writer.Close().ok());

  bool truncated = true;
  const auto records = RecordLogReader::ReadAll(path_, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0], "first");
  EXPECT_EQ((*records)[1], "");
  EXPECT_EQ((*records)[2].size(), 100000u);
}

TEST_F(RecordLogTest, AppendAfterReopenExtends) {
  {
    RecordLogWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append("a").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    RecordLogWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append("b").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  const auto records = RecordLogReader::ReadAll(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records, (std::vector<std::string>{"a", "b"}));
}

TEST_F(RecordLogTest, TornTailIsDropped) {
  {
    RecordLogWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append("intact").ok());
    ASSERT_TRUE(writer.Append("will be torn").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Truncate the file mid-record (simulated crash).
  auto data = ReadFileToString(path_);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteStringToFile(path_, data->substr(0, data->size() - 5)).ok());

  bool truncated = false;
  const auto records = RecordLogReader::ReadAll(path_, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "intact");
}

TEST_F(RecordLogTest, CorruptPayloadStopsReading) {
  {
    RecordLogWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    ASSERT_TRUE(writer.Append("good").ok());
    ASSERT_TRUE(writer.Append("bad").ok());
    ASSERT_TRUE(writer.Append("unreachable").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto data = ReadFileToString(path_);
  ASSERT_TRUE(data.ok());
  // Flip a byte inside the second record's payload.
  std::string mutated = *data;
  const size_t second_payload = 8 + 4 /*"good"*/ + 8;
  mutated[second_payload] = static_cast<char>(mutated[second_payload] ^ 0xFF);
  ASSERT_TRUE(WriteStringToFile(path_, mutated).ok());

  bool truncated = false;
  const auto records = RecordLogReader::ReadAll(path_, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(truncated);
  EXPECT_EQ(*records, (std::vector<std::string>{"good"}));
}

TEST_F(RecordLogTest, EmptyFileHasNoRecords) {
  ASSERT_TRUE(WriteStringToFile(path_, "").ok());
  const auto records = RecordLogReader::ReadAll(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(RecordLogTest, AppendWithoutOpenFails) {
  RecordLogWriter writer;
  EXPECT_TRUE(writer.Append("x").IsFailedPrecondition());
  EXPECT_TRUE(writer.Flush().IsFailedPrecondition());
}

TEST_F(RecordLogTest, DoubleOpenFails) {
  RecordLogWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  EXPECT_TRUE(writer.Open(path_).IsFailedPrecondition());
}

TEST_F(RecordLogTest, BinaryPayloadsSurvive) {
  RecordLogWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  ASSERT_TRUE(writer.Append(binary).ok());
  ASSERT_TRUE(writer.Close().ok());
  const auto records = RecordLogReader::ReadAll(path_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], binary);
}

}  // namespace
}  // namespace imcf
