#include "storage/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"

namespace imcf {
namespace {

TEST(CsvEncodeTest, PlainFields) {
  EXPECT_EQ(EncodeCsvRow({"a", "b", "c"}), "a,b,c");
  EXPECT_EQ(EncodeCsvRow({"one"}), "one");
  EXPECT_EQ(EncodeCsvRow({}), "");
}

TEST(CsvEncodeTest, QuotesSpecialCharacters) {
  EXPECT_EQ(EncodeCsvRow({"a,b"}), "\"a,b\"");
  EXPECT_EQ(EncodeCsvRow({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(EncodeCsvRow({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(CsvParseTest, PlainLine) {
  const auto row = ParseCsvLine("a,b,c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"a", "b", "c"}));
}

TEST(CsvParseTest, QuotedFields) {
  const auto row = ParseCsvLine("\"a,b\",plain,\"with \"\"quotes\"\"\"");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"a,b", "plain", "with \"quotes\""}));
}

TEST(CsvParseTest, EmptyFields) {
  const auto row = ParseCsvLine(",,");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->size(), 3u);
}

TEST(CsvParseTest, ToleratesCarriageReturn) {
  const auto row = ParseCsvLine("a,b\r");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"a", "b"}));
}

TEST(CsvParseTest, RejectsUnterminatedQuote) {
  EXPECT_TRUE(ParseCsvLine("\"oops").status().IsCorruption());
}

TEST(CsvParseTest, WholeDocument) {
  const auto rows = ParseCsv("h1,h2\n1,2\n3,4\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (CsvRow{"h1", "h2"}));
  EXPECT_EQ((*rows)[2], (CsvRow{"3", "4"}));
}

TEST(CsvParseTest, DocumentWithoutTrailingNewline) {
  const auto rows = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

// Property: encode-then-parse round-trips arbitrary content.
class CsvRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTrip, RandomRowsRoundTrip) {
  Rng rng(GetParam());
  const char kAlphabet[] = "ab,\"\n\r x0";
  for (int trial = 0; trial < 50; ++trial) {
    CsvRow row;
    const int fields = 1 + static_cast<int>(rng.UniformInt(0, 4));
    for (int f = 0; f < fields; ++f) {
      std::string field;
      const int len = static_cast<int>(rng.UniformInt(0, 12));
      for (int i = 0; i < len; ++i) {
        field.push_back(
            kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)]);
      }
      row.push_back(std::move(field));
    }
    // Fields with commas, quotes, newlines or '\r' are quoted by the
    // encoder; the quote-aware document parser must recover the row
    // exactly, including embedded newlines.
    const std::string encoded = EncodeCsvRow(row);
    const auto rows = ParseCsv(encoded + "\n");
    ASSERT_TRUE(rows.ok()) << encoded;
    ASSERT_EQ(rows->size(), 1u) << encoded;
    EXPECT_EQ((*rows)[0], row) << encoded;
    bool has_newline = false;
    for (const auto& f : row) {
      if (f.find('\n') != std::string::npos) has_newline = true;
    }
    if (!has_newline) {
      const auto parsed = ParseCsvLine(encoded);
      ASSERT_TRUE(parsed.ok()) << encoded;
      EXPECT_EQ(*parsed, row) << encoded;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/imcf_csv_test.csv";
  const std::vector<CsvRow> rows = {{"time", "value"},
                                    {"2014-01-01 00:00:00", "21.5"},
                                    {"with,comma", "x"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  const auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/dir/x.csv").status().IsIOError());
}

TEST(FileIoTest, StringRoundTrip) {
  const std::string path = ::testing::TempDir() + "/imcf_blob_test.bin";
  std::string data = "binary\0data\xff", full(data.data(), 12);
  ASSERT_TRUE(WriteStringToFile(path, full).ok());
  const auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, full);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imcf
