#include "storage/trace_file.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "storage/csv.h"

namespace imcf {
namespace {

class TraceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/imcf_trace_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".trc";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

SensorRecord MakeRecord(SimTime t, uint32_t id, uint8_t kind, float value) {
  return SensorRecord{t, id, kind, value};
}

TEST_F(TraceFileTest, EmptyFileRoundTrips) {
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Finish().ok());
  const auto records = TraceFileReader::ReadAll(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(TraceFileTest, SmallBatchRoundTrips) {
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  std::vector<SensorRecord> input = {
      MakeRecord(1000, 0, 0, 21.5f),
      MakeRecord(1000, 1, 1, 35.0f),  // same timestamp is allowed
      MakeRecord(1060, 0, 0, 21.6f),
      MakeRecord(1060, 2, 2, 1.0f),
  };
  for (const auto& r : input) ASSERT_TRUE(writer.Append(r).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.records_written(), 4);

  const auto records = TraceFileReader::ReadAll(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records, input);
}

TEST_F(TraceFileTest, MultiBlockRoundTrip) {
  // More than one 4096-record block.
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  Rng rng(5);
  std::vector<SensorRecord> input;
  SimTime t = 1400000000;
  for (int i = 0; i < 10000; ++i) {
    t += rng.UniformInt(0, 3);
    input.push_back(MakeRecord(t, static_cast<uint32_t>(i % 8),
                               static_cast<uint8_t>(i % 3),
                               static_cast<float>(i) * 0.5f));
  }
  for (const auto& r : input) ASSERT_TRUE(writer.Append(r).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = TraceFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  SensorRecord record;
  size_t count = 0;
  while ((*reader)->Next(&record)) {
    ASSERT_LT(count, input.size());
    EXPECT_EQ(record, input[count]) << "record " << count;
    ++count;
  }
  ASSERT_TRUE((*reader)->status().ok());
  EXPECT_EQ(count, input.size());
  EXPECT_EQ((*reader)->footer_count(), static_cast<int64_t>(input.size()));
}

TEST_F(TraceFileTest, RejectsOutOfOrderAppends) {
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append(MakeRecord(100, 0, 0, 1.0f)).ok());
  EXPECT_TRUE(writer.Append(MakeRecord(99, 0, 0, 1.0f)).IsInvalidArgument());
}

TEST_F(TraceFileTest, DetectsBadMagic) {
  ASSERT_TRUE(WriteStringToFile(path_, "NOTATRACEFILE").ok());
  EXPECT_TRUE(TraceFileReader::Open(path_).status().IsCorruption());
}

TEST_F(TraceFileTest, DetectsCorruptBlock) {
  {
    TraceFileWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(writer.Append(MakeRecord(1000 + i, 0, 0, 1.0f)).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto data = ReadFileToString(path_);
  ASSERT_TRUE(data.ok());
  std::string mutated = *data;
  mutated[20] = static_cast<char>(mutated[20] ^ 0x40);  // inside block payload
  ASSERT_TRUE(WriteStringToFile(path_, mutated).ok());

  auto reader = TraceFileReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  SensorRecord record;
  while ((*reader)->Next(&record)) {
  }
  EXPECT_TRUE((*reader)->status().IsCorruption());
}

TEST_F(TraceFileTest, MissingFooterDetectedByReadAll) {
  {
    TraceFileWriter writer;
    ASSERT_TRUE(writer.Open(path_).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer.Append(MakeRecord(1000 + i, 0, 0, 1.0f)).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  // Chop the footer off: reading then ends with a corruption error.
  auto data = ReadFileToString(path_);
  ASSERT_TRUE(WriteStringToFile(path_, data->substr(0, data->size() - 9))
                  .ok());
  EXPECT_FALSE(TraceFileReader::ReadAll(path_).ok());
}

TEST_F(TraceFileTest, CompressionIsEffective) {
  // Minute-cadence readings should cost only a few bytes per record, far
  // below the 17-byte naive encoding.
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        writer.Append(MakeRecord(1400000000 + i * 60, 3, 0, 21.0f)).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  const auto data = ReadFileToString(path_);
  ASSERT_TRUE(data.ok());
  const double bytes_per_record = static_cast<double>(data->size()) / 20000.0;
  EXPECT_LT(bytes_per_record, 9.0);
}

TEST_F(TraceFileTest, FinishIsIdempotent) {
  TraceFileWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  ASSERT_TRUE(writer.Append(MakeRecord(5, 0, 0, 1.0f)).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_TRUE(writer.Finish().ok());
  EXPECT_TRUE(writer.Append(MakeRecord(6, 0, 0, 1.0f))
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace imcf
