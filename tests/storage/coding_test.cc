#include "storage/coding.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace imcf {
namespace {

TEST(FixedCodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(GetFixed32(buf.data()), 0xDEADBEEFu);
  // Little-endian layout.
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0xEF);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0xDE);
}

TEST(FixedCodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(GetFixed64(buf.data()), 0x0123456789ABCDEFull);
}

TEST(VarintTest, SmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 127ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
  }
}

TEST(VarintTest, BoundaryLengths) {
  std::string buf;
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  Decoder dec(buf);
  const auto v = dec.ReadVarint64();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
  EXPECT_TRUE(dec.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                      0xFFFFFFFFull, 0x123456789ABCDEFull,
                      std::numeric_limits<uint64_t>::max()));

class SignedVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTrip, ZigZag) {
  std::string buf;
  PutVarintSigned64(&buf, GetParam());
  Decoder dec(buf);
  const auto v = dec.ReadVarintSigned64();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SignedVarintRoundTrip,
    ::testing::Values(0ll, 1ll, -1ll, 63ll, -64ll, 64ll, 1000000ll,
                      -1000000ll, std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

TEST(ZigZagTest, SmallNegativesEncodeCompactly) {
  std::string buf;
  PutVarintSigned64(&buf, -1);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarintSigned64(&buf, -60);  // a small backwards timestamp delta
  EXPECT_EQ(buf.size(), 1u);
}

TEST(DecoderTest, TruncatedInputsFail) {
  Decoder d1(std::string_view("\x01\x02", 2));
  EXPECT_TRUE(d1.ReadFixed32().status().IsCorruption());
  Decoder d2(std::string_view("\xFF\xFF", 2));  // unterminated varint
  EXPECT_TRUE(d2.ReadVarint64().status().IsCorruption());
  Decoder d3(std::string_view("abc", 3));
  EXPECT_TRUE(d3.ReadBytes(4).status().IsCorruption());
}

TEST(DecoderTest, SequentialReads) {
  std::string buf;
  PutVarint64(&buf, 7);
  PutFixed32(&buf, 99);
  PutLengthPrefixed(&buf, "hello");
  PutDouble(&buf, 3.25);
  Decoder dec(buf);
  EXPECT_EQ(dec.ReadVarint64().value(), 7u);
  EXPECT_EQ(dec.ReadFixed32().value(), 99u);
  EXPECT_EQ(ReadLengthPrefixed(&dec).value(), "hello");
  EXPECT_DOUBLE_EQ(ReadDouble(&dec).value(), 3.25);
  EXPECT_TRUE(dec.empty());
}

TEST(DoubleCodingTest, SpecialValues) {
  for (double v : {0.0, -0.0, 1.5, -775.5, 1e308, -1e-308}) {
    std::string buf;
    PutDouble(&buf, v);
    Decoder dec(buf);
    EXPECT_EQ(ReadDouble(&dec).value(), v);
  }
}

TEST(LengthPrefixedTest, EmptyAndBinary) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string_view("\x00\xff\x7f", 3));
  Decoder dec(buf);
  EXPECT_EQ(ReadLengthPrefixed(&dec).value(), "");
  EXPECT_EQ(ReadLengthPrefixed(&dec).value(), std::string_view("\x00\xff\x7f", 3));
}

TEST(CodingFuzzTest, RandomSequencesRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string buf;
    std::vector<uint64_t> unsigneds;
    std::vector<int64_t> signeds;
    for (int i = 0; i < 20; ++i) {
      const uint64_t u = rng.Next() >> (rng.UniformInt(0, 63));
      const int64_t s = static_cast<int64_t>(rng.Next()) >>
                        rng.UniformInt(0, 63);
      unsigneds.push_back(u);
      signeds.push_back(s);
      PutVarint64(&buf, u);
      PutVarintSigned64(&buf, s);
    }
    Decoder dec(buf);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(dec.ReadVarint64().value(), unsigneds[static_cast<size_t>(i)]);
      EXPECT_EQ(dec.ReadVarintSigned64().value(),
                signeds[static_cast<size_t>(i)]);
    }
    EXPECT_TRUE(dec.empty());
  }
}

}  // namespace
}  // namespace imcf
