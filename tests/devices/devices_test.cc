#include "devices/device.h"

#include <gtest/gtest.h>

#include "devices/energy_model.h"

namespace imcf {
namespace devices {
namespace {

TEST(DeviceRegistryTest, AssignsDenseIds) {
  DeviceRegistry registry;
  const auto a = registry.Add("living_room_ac", DeviceKind::kHvac, 0,
                              "192.168.0.5");
  const auto b = registry.Add("living_room_light", DeviceKind::kLight, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(DeviceRegistryTest, RejectsDuplicateNames) {
  DeviceRegistry registry;
  ASSERT_TRUE(registry.Add("ac", DeviceKind::kHvac, 0).ok());
  EXPECT_TRUE(
      registry.Add("ac", DeviceKind::kLight, 1).status().IsAlreadyExists());
}

TEST(DeviceRegistryTest, LookupById) {
  DeviceRegistry registry;
  const DeviceId id = *registry.Add("ac", DeviceKind::kHvac, 3, "10.0.0.9");
  const auto thing = registry.Get(id);
  ASSERT_TRUE(thing.ok());
  EXPECT_EQ((*thing)->name, "ac");
  EXPECT_EQ((*thing)->unit, 3);
  EXPECT_EQ((*thing)->address, "10.0.0.9");
  EXPECT_TRUE(registry.Get(42).status().IsNotFound());
}

TEST(DeviceRegistryTest, LookupByName) {
  DeviceRegistry registry;
  (void)registry.Add("bedroom_light", DeviceKind::kLight, 1);
  EXPECT_TRUE(registry.FindByName("bedroom_light").ok());
  EXPECT_TRUE(registry.FindByName("nope").status().IsNotFound());
}

TEST(DeviceRegistryTest, FindByUnitAndKind) {
  DeviceRegistry registry;
  (void)registry.Add("u0_ac", DeviceKind::kHvac, 0);
  (void)registry.Add("u0_light", DeviceKind::kLight, 0);
  (void)registry.Add("u1_ac", DeviceKind::kHvac, 1);
  EXPECT_EQ(*registry.FindByUnitAndKind(0, DeviceKind::kLight), 1u);
  EXPECT_EQ(*registry.FindByUnitAndKind(1, DeviceKind::kHvac), 2u);
  EXPECT_TRUE(
      registry.FindByUnitAndKind(1, DeviceKind::kLight).status().IsNotFound());
}

TEST(DeviceRegistryTest, UnitCount) {
  DeviceRegistry registry;
  EXPECT_EQ(registry.UnitCount(), 0);
  (void)registry.Add("a", DeviceKind::kHvac, 0);
  (void)registry.Add("b", DeviceKind::kLight, 0);
  (void)registry.Add("c", DeviceKind::kHvac, 5);
  EXPECT_EQ(registry.UnitCount(), 2);
}

TEST(NamesTest, EnumsHaveStableNames) {
  EXPECT_STREQ(DeviceKindName(DeviceKind::kHvac), "hvac");
  EXPECT_STREQ(DeviceKindName(DeviceKind::kLight), "light");
  EXPECT_STREQ(CommandTypeName(CommandType::kSetTemperature),
               "Set Temperature");
  EXPECT_STREQ(CommandTypeName(CommandType::kSetLight), "Set Light");
  EXPECT_STREQ(CommandTypeName(CommandType::kTurnOff), "Turn Off");
}

TEST(HvacModelTest, FanOnlyInsideDeadband) {
  HvacModelOptions options;
  options.kw_per_degree = 0.1;
  options.fan_kw = 0.05;
  options.deadband_c = 2.0;
  HvacEnergyModel model(options);
  EXPECT_DOUBLE_EQ(model.PowerKw(22.0, 22.0), 0.05);
  EXPECT_DOUBLE_EQ(model.PowerKw(22.0, 20.5), 0.05);   // gap 1.5 < deadband
  EXPECT_DOUBLE_EQ(model.PowerKw(22.0, 19.5), 0.30);   // gap 2.5: fan + comp
}

TEST(HvacModelTest, SymmetricHeatingCooling) {
  HvacEnergyModel model;
  EXPECT_DOUBLE_EQ(model.PowerKw(22.0, 16.0), model.PowerKw(22.0, 28.0));
}

TEST(HvacModelTest, PowerGrowsWithGap) {
  HvacEnergyModel model;
  double prev = 0.0;
  for (double gap = 1.0; gap <= 15.0; gap += 1.0) {
    const double p = model.PowerKw(22.0, 22.0 - gap);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(HvacModelTest, CompressorCappedAtRatedPower) {
  HvacModelOptions options;
  options.kw_per_degree = 0.5;
  options.rated_power_kw = 2.0;
  options.fan_kw = 0.1;
  HvacEnergyModel model(options);
  // Gap 10 would want 5 kW; cap at 2.0 plus fan.
  EXPECT_DOUBLE_EQ(model.PowerKw(25.0, 15.0), 2.1);
}

TEST(HvacModelTest, EnergyScalesWithHours) {
  HvacEnergyModel model;
  const double p = model.PowerKw(24.0, 14.0);
  EXPECT_DOUBLE_EQ(model.EnergyKwh(24.0, 14.0, 3.0), 3.0 * p);
  EXPECT_DOUBLE_EQ(model.EnergyKwh(24.0, 14.0, 0.0), 0.0);
}

TEST(LightModelTest, LinearInIntensity) {
  LightModelOptions options;
  options.max_power_kw = 0.6;
  LightEnergyModel model(options);
  EXPECT_DOUBLE_EQ(model.PowerKw(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.PowerKw(50.0), 0.3);
  EXPECT_DOUBLE_EQ(model.PowerKw(100.0), 0.6);
}

TEST(LightModelTest, ClampsIntensity) {
  LightEnergyModel model;
  EXPECT_DOUBLE_EQ(model.PowerKw(-10.0), 0.0);
  EXPECT_DOUBLE_EQ(model.PowerKw(150.0), model.PowerKw(100.0));
}

TEST(UnitModelsTest, CommandEnergyDispatch) {
  UnitEnergyModels models;
  models.hvac = HvacEnergyModel();
  models.light = LightEnergyModel();
  const double hvac_energy = models.CommandEnergyKwh(
      CommandType::kSetTemperature, 25.0, 15.0, 1.0);
  EXPECT_GT(hvac_energy, 0.0);
  const double light_energy =
      models.CommandEnergyKwh(CommandType::kSetLight, 40.0, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(light_energy, 2.0 * models.light.PowerKw(40.0));
  EXPECT_DOUBLE_EQ(
      models.CommandEnergyKwh(CommandType::kTurnOff, 0.0, 15.0, 1.0), 0.0);
}

// Parameterised sweep: the paper's DoE rule of thumb — each extra degree of
// setpoint-ambient gap costs roughly a constant increment.
class HvacLinearity : public ::testing::TestWithParam<double> {};

TEST_P(HvacLinearity, MarginalCostPerDegreeConstant) {
  HvacEnergyModel model;
  const double gap = GetParam();
  const double p1 = model.PowerKw(22.0, 22.0 - gap);
  const double p2 = model.PowerKw(22.0, 22.0 - gap - 1.0);
  EXPECT_NEAR(p2 - p1, model.options().kw_per_degree, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Gaps, HvacLinearity,
                         ::testing::Values(1.0, 3.0, 5.0, 8.0, 12.0));

}  // namespace
}  // namespace devices
}  // namespace imcf
