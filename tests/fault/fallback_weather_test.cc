#include "fault/fallback_weather.h"

#include <gtest/gtest.h>

#include <vector>

namespace imcf {
namespace fault {
namespace {

weather::ClimateOptions TestClimate() {
  weather::ClimateOptions climate;
  climate.seed = 3;
  return climate;
}

TEST(FallbackWeatherTest, DisabledPlanPassesThrough) {
  weather::SyntheticWeather inner(TestClimate());
  FaultPlan plan;  // disabled
  FallbackWeather proxy(&inner, &plan);
  for (SimTime t = 0; t < 72 * kSecondsPerHour; t += kSecondsPerHour / 2) {
    const weather::WeatherSample a = inner.At(t);
    const weather::WeatherSample b = proxy.At(t);
    EXPECT_EQ(a.outdoor_temp_c, b.outdoor_temp_c);
    EXPECT_EQ(a.daylight, b.daylight);
    EXPECT_EQ(a.sky, b.sky);
  }
  EXPECT_EQ(proxy.outages(), 0);
  EXPECT_EQ(proxy.fallbacks(), 0);
}

TEST(FallbackWeatherTest, OutageServesLastHealthyHour) {
  weather::SyntheticWeather inner(TestClimate());
  FaultOptions options;
  options.enabled = true;
  options.weather.drop_prob = 0.3;
  FaultPlan plan(options);
  FallbackWeather proxy(&inner, &plan);

  // Find an outage hour whose previous hour is healthy.
  SimTime outage = -1;
  for (SimTime h = 1; h < 1000; ++h) {
    const SimTime t = h * kSecondsPerHour;
    if (plan.At("weather", t).faulted() &&
        !plan.At("weather", t - kSecondsPerHour).faulted()) {
      outage = t;
      break;
    }
  }
  ASSERT_GE(outage, 0) << "no isolated outage hour found at p=0.3";

  const weather::WeatherSample served = proxy.At(outage);
  const weather::WeatherSample previous = inner.At(outage - kSecondsPerHour);
  EXPECT_EQ(served.outdoor_temp_c, previous.outdoor_temp_c);
  EXPECT_EQ(served.daylight, previous.daylight);
  EXPECT_GE(proxy.outages(), 1);
  EXPECT_GE(proxy.fallbacks(), 1);
}

TEST(FallbackWeatherTest, HealthyHoursUnaffectedByOutagesElsewhere) {
  weather::SyntheticWeather inner(TestClimate());
  FaultOptions options;
  options.enabled = true;
  options.weather.drop_prob = 0.3;
  FaultPlan plan(options);
  FallbackWeather proxy(&inner, &plan);
  for (SimTime h = 0; h < 500; ++h) {
    const SimTime t = h * kSecondsPerHour;
    if (!plan.At("weather", t).faulted()) {
      EXPECT_EQ(proxy.At(t).outdoor_temp_c, inner.At(t).outdoor_temp_c);
    }
  }
}

TEST(FallbackWeatherTest, StatelessDeterministicInT) {
  weather::SyntheticWeather inner(TestClimate());
  FaultOptions options;
  options.enabled = true;
  options.weather.drop_prob = 0.4;
  FaultPlan plan(options);
  FallbackWeather forward(&inner, &plan);
  FallbackWeather backward(&inner, &plan);
  // Query one proxy forward and the other backward: samples must agree —
  // the fallback derives from the plan, never from the call history.
  const int hours = 300;
  std::vector<double> f(hours), b(hours);
  for (int h = 0; h < hours; ++h) {
    f[static_cast<size_t>(h)] = forward.At(h * kSecondsPerHour).outdoor_temp_c;
  }
  for (int h = hours - 1; h >= 0; --h) {
    b[static_cast<size_t>(h)] = backward.At(h * kSecondsPerHour).outdoor_temp_c;
  }
  EXPECT_EQ(f, b);
}

TEST(FallbackWeatherTest, TotalOutageDegradesToInnerModel) {
  weather::SyntheticWeather inner(TestClimate());
  FaultOptions options;
  options.enabled = true;
  options.weather.drop_prob = 1.0;  // every hour faulted
  FaultPlan plan(options);
  FallbackWeather proxy(&inner, &plan);
  const SimTime t = 100 * kSecondsPerHour;
  // No healthy hour within lookback: the proxy still answers (synthetic
  // model as last line of defence) instead of failing.
  EXPECT_EQ(proxy.At(t).outdoor_temp_c, inner.At(t).outdoor_temp_c);
  EXPECT_GE(proxy.outages(), 1);
  EXPECT_EQ(proxy.fallbacks(), 0);
}

}  // namespace
}  // namespace fault
}  // namespace imcf
