#include "fault/command_bus.h"

#include <gtest/gtest.h>

#include <vector>

namespace imcf {
namespace fault {
namespace {

devices::DeviceRegistry MakeRegistry(devices::DeviceId* ac,
                                     devices::DeviceId* light) {
  devices::DeviceRegistry registry;
  *ac = *registry.Add("unit00_ac", devices::DeviceKind::kHvac, 0, "10.0.0.1");
  *light =
      *registry.Add("unit00_light", devices::DeviceKind::kLight, 0, "10.0.0.2");
  return registry;
}

devices::ActuationCommand MakeCommand(devices::DeviceId device, SimTime t) {
  devices::ActuationCommand cmd;
  cmd.device = device;
  cmd.type = devices::CommandType::kSetTemperature;
  cmd.value = 22.0;
  cmd.time = t;
  cmd.source = "test";
  return cmd;
}

TEST(CommandBusTest, NullPlanDeliversFirstAttempt) {
  devices::DeviceId ac, light;
  devices::DeviceRegistry registry = MakeRegistry(&ac, &light);
  CommandBus bus(nullptr, RetryPolicy{}, &registry);
  const Delivery d = bus.Deliver(MakeCommand(ac, 0));
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.attempts, 1);
  EXPECT_EQ(d.latency_seconds, 0);
  EXPECT_EQ(bus.stats().deliveries, 1);
  EXPECT_EQ(bus.stats().delivered, 1);
  EXPECT_EQ(bus.stats().undeliverable, 0);
}

TEST(CommandBusTest, DisabledPlanDeliversFirstAttempt) {
  devices::DeviceId ac, light;
  devices::DeviceRegistry registry = MakeRegistry(&ac, &light);
  FaultPlan plan;  // default: disabled
  CommandBus bus(&plan, RetryPolicy{}, &registry);
  for (int i = 0; i < 50; ++i) {
    const Delivery d =
        bus.Deliver(MakeCommand(ac, static_cast<SimTime>(i) * 60));
    EXPECT_TRUE(d.delivered);
    EXPECT_EQ(d.attempts, 1);
  }
  EXPECT_EQ(bus.stats().retries, 0);
}

TEST(CommandBusTest, PermanentDropExhaustsRetries) {
  devices::DeviceId ac, light;
  devices::DeviceRegistry registry = MakeRegistry(&ac, &light);
  FaultOptions options;
  options.enabled = true;
  options.device.drop_prob = 1.0;
  FaultPlan plan(options);
  RetryPolicy policy;
  policy.max_attempts = 3;
  CommandBus bus(&plan, policy, &registry);
  const Delivery d = bus.Deliver(MakeCommand(ac, 1000));
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.attempts, 3);
  EXPECT_EQ(d.last_fault, FaultKind::kDrop);
  EXPECT_EQ(bus.stats().undeliverable, 1);
  EXPECT_EQ(bus.stats().retries, 2);
  EXPECT_EQ(bus.stats().faults[static_cast<size_t>(FaultKind::kDrop)], 3);
}

TEST(CommandBusTest, ModerateFaultsStatsStayConsistent) {
  devices::DeviceId ac, light;
  devices::DeviceRegistry registry = MakeRegistry(&ac, &light);
  FaultPlan plan(FaultOptions::UniformRate(0.4, 5));
  CommandBus bus(&plan, RetryPolicy{}, &registry);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    (void)bus.Deliver(
        MakeCommand(i % 2 == 0 ? ac : light,
                    static_cast<SimTime>(i) * kSecondsPerHour));
  }
  const BusStats& stats = bus.stats();
  EXPECT_EQ(stats.deliveries, n);
  EXPECT_EQ(stats.delivered + stats.undeliverable, n);
  EXPECT_GE(stats.attempts, stats.deliveries);
  EXPECT_EQ(stats.retries, stats.attempts - stats.deliveries);
  // At 40% fault rate with 3 attempts, both outcomes and retries occur.
  EXPECT_GT(stats.delivered, 0);
  EXPECT_GT(stats.delivered_after_retry, 0);
  EXPECT_GT(stats.retries, 0);
}

TEST(CommandBusTest, DeterministicAcrossInstances) {
  devices::DeviceId ac, light;
  devices::DeviceRegistry registry = MakeRegistry(&ac, &light);
  const FaultOptions options = FaultOptions::UniformRate(0.5, 11);
  FaultPlan plan_a(options);
  FaultPlan plan_b(options);
  CommandBus bus_a(&plan_a, RetryPolicy{}, &registry);
  CommandBus bus_b(&plan_b, RetryPolicy{}, &registry);
  for (int i = 0; i < 200; ++i) {
    const devices::ActuationCommand cmd =
        MakeCommand(ac, static_cast<SimTime>(i) * kSecondsPerHour);
    const Delivery da = bus_a.Deliver(cmd);
    const Delivery db = bus_b.Deliver(cmd);
    EXPECT_EQ(da.delivered, db.delivered);
    EXPECT_EQ(da.attempts, db.attempts);
    EXPECT_EQ(da.latency_seconds, db.latency_seconds);
  }
}

TEST(CommandBusTest, UnknownDeviceStillGetsAChannel) {
  FaultOptions options;
  options.enabled = true;
  options.device.transient_error_prob = 1.0;
  FaultPlan plan(options);
  CommandBus bus(&plan, RetryPolicy{}, /*registry=*/nullptr);
  const Delivery d = bus.Deliver(MakeCommand(devices::DeviceId{42}, 0));
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.last_fault, FaultKind::kTransientError);
}

}  // namespace
}  // namespace fault
}  // namespace imcf
