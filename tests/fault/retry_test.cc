#include "fault/retry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace imcf {
namespace fault {
namespace {

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBand) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 2;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 60;
  policy.jitter_fraction = 0.25;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const double base = 2.0 * std::pow(2.0, attempt - 1);
    const SimTime backoff = policy.BackoffSeconds(attempt, /*token=*/99);
    EXPECT_GE(backoff, static_cast<SimTime>(base));
    EXPECT_LE(backoff, static_cast<SimTime>(base * 1.25) + 1);
  }
}

TEST(RetryPolicyTest, BackoffIsCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 2;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_seconds = 30;
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(policy.BackoffSeconds(5, 1), 30);
}

TEST(RetryPolicyTest, BackoffDeterministicPerToken) {
  RetryPolicy policy;
  EXPECT_EQ(policy.BackoffSeconds(2, 7), policy.BackoffSeconds(2, 7));
  // Different tokens should eventually produce different jitter.
  bool any_differ = false;
  for (uint64_t token = 0; token < 32 && !any_differ; ++token) {
    any_differ =
        policy.BackoffSeconds(3, token) != policy.BackoffSeconds(3, token + 1);
  }
  EXPECT_TRUE(any_differ);
}

TEST(RunWithRetryTest, ImmediateSuccess) {
  RetryPolicy policy;
  int calls = 0;
  const RetryTrace trace =
      RunWithRetry(policy, /*token=*/1, /*start=*/1000, [&](SimTime when) {
        ++calls;
        EXPECT_EQ(when, 1000);
        return AttemptResult{};
      });
  EXPECT_TRUE(trace.success);
  EXPECT_EQ(trace.attempts, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(trace.elapsed_seconds, 0);
  EXPECT_FALSE(trace.timed_out);
}

TEST(RunWithRetryTest, DelayIsSuccessWithLatency) {
  RetryPolicy policy;
  const RetryTrace trace =
      RunWithRetry(policy, 1, 0, [&](SimTime) {
        AttemptResult r;
        r.fault = FaultKind::kDelay;
        r.latency_seconds = 5;
        return r;
      });
  EXPECT_TRUE(trace.success);
  EXPECT_EQ(trace.attempts, 1);
  EXPECT_EQ(trace.elapsed_seconds, 5);
  EXPECT_EQ(trace.last_fault, FaultKind::kDelay);
}

TEST(RunWithRetryTest, RecoversAfterTransientErrors) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  SimTime last_when = -1;
  const RetryTrace trace = RunWithRetry(policy, 1, 0, [&](SimTime when) {
    EXPECT_GT(when, last_when);  // attempts move forward in virtual time
    last_when = when;
    ++calls;
    AttemptResult r;
    if (calls < 3) r.fault = FaultKind::kTransientError;
    return r;
  });
  EXPECT_TRUE(trace.success);
  EXPECT_EQ(trace.attempts, 3);
  EXPECT_GT(trace.elapsed_seconds, 0);  // backoff elapsed between attempts
}

TEST(RunWithRetryTest, ExhaustsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  const RetryTrace trace = RunWithRetry(policy, 1, 0, [&](SimTime) {
    ++calls;
    AttemptResult r;
    r.fault = FaultKind::kDrop;
    return r;
  });
  EXPECT_FALSE(trace.success);
  EXPECT_EQ(trace.attempts, 4);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(trace.last_fault, FaultKind::kDrop);
  // Each dropped attempt burned its timeout on top of the backoff.
  EXPECT_GE(trace.elapsed_seconds, 4 * policy.attempt_timeout_seconds);
}

TEST(RunWithRetryTest, CommandTimeoutStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.attempt_timeout_seconds = 10;
  policy.initial_backoff_seconds = 10;
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.0;
  policy.command_timeout_seconds = 45;  // room for only a couple of attempts
  int calls = 0;
  const RetryTrace trace = RunWithRetry(policy, 1, 0, [&](SimTime) {
    ++calls;
    AttemptResult r;
    r.fault = FaultKind::kDrop;
    return r;
  });
  EXPECT_FALSE(trace.success);
  EXPECT_TRUE(trace.timed_out);
  EXPECT_LT(calls, 6);
  EXPECT_LE(trace.elapsed_seconds,
            policy.command_timeout_seconds + policy.attempt_timeout_seconds);
}

TEST(RunWithRetryTest, DeterministicTraceForSameToken) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  auto failing = [](SimTime) {
    AttemptResult r;
    r.fault = FaultKind::kTransientError;
    return r;
  };
  const RetryTrace a = RunWithRetry(policy, 33, 100, failing);
  const RetryTrace b = RunWithRetry(policy, 33, 100, failing);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

}  // namespace
}  // namespace fault
}  // namespace imcf
