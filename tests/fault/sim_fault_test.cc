// End-to-end fault-injection tests over the simulator: zero cost when
// disabled, deterministic degradation when enabled, thread-count
// invariance, and firewall/energy accounting consistency.

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "sim/simulation.h"

namespace imcf {
namespace sim {
namespace {

SimulationOptions TightFlat() {
  SimulationOptions options;
  options.spec = trace::FlatSpec();
  options.start = FromCivil(2014, 1, 1);
  options.hours = (31 + 28) * 24;  // two months keeps each run fast
  options.budget_kwh = 800.0;
  return options;
}

TEST(SimFaultTest, DisabledFaultsAreBitIdentical) {
  // Default options leave the fault layer off entirely: no command bus is
  // constructed and the weather proxy passes through, so two independent
  // simulators must agree to the last bit.
  Simulator a(TightFlat());
  Simulator b(TightFlat());
  ASSERT_TRUE(a.Prepare().ok());
  ASSERT_TRUE(b.Prepare().ok());
  for (const Policy policy :
       {Policy::kNoRule, Policy::kMetaRule, Policy::kEnergyPlanner}) {
    const auto ra = a.Run(policy);
    const auto rb = b.Run(policy);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_DOUBLE_EQ(ra->fce_pct, rb->fce_pct);
    EXPECT_DOUBLE_EQ(ra->fe_kwh, rb->fe_kwh);
    EXPECT_EQ(ra->commands_failed, 0);
    EXPECT_EQ(rb->commands_failed, 0);
  }
}

TEST(SimFaultTest, FaultsCauseFailuresAndReduceEnergy) {
  SimulationOptions faulty = TightFlat();
  faulty.fault = fault::FaultOptions::UniformRate(0.25, /*seed=*/9);
  Simulator clean_sim(TightFlat());
  Simulator faulty_sim(faulty);
  ASSERT_TRUE(clean_sim.Prepare().ok());
  ASSERT_TRUE(faulty_sim.Prepare().ok());

  const auto clean = clean_sim.Run(Policy::kMetaRule);
  const auto degraded = faulty_sim.Run(Policy::kMetaRule);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(degraded.ok());

  // Some accepted commands could not be delivered...
  EXPECT_GT(degraded->commands_failed, 0);
  // ...each of them is also counted as dropped...
  EXPECT_LE(degraded->commands_failed, degraded->commands_dropped);
  // ...their energy was never charged, and the missed actuations show up
  // as convenience error (MR is exact when healthy).
  EXPECT_LT(degraded->fe_kwh, clean->fe_kwh);
  EXPECT_GT(degraded->fce_pct, clean->fce_pct);
}

TEST(SimFaultTest, FaultRunsReplayDeterministically) {
  SimulationOptions options = TightFlat();
  options.fault = fault::FaultOptions::UniformRate(0.25, /*seed=*/9);
  Simulator a(options);
  Simulator b(options);
  ASSERT_TRUE(a.Prepare().ok());
  ASSERT_TRUE(b.Prepare().ok());
  const auto ra = a.Run(Policy::kEnergyPlanner);
  const auto rb = b.Run(Policy::kEnergyPlanner);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->fce_pct, rb->fce_pct);
  EXPECT_DOUBLE_EQ(ra->fe_kwh, rb->fe_kwh);
  EXPECT_EQ(ra->commands_failed, rb->commands_failed);
  EXPECT_EQ(ra->commands_dropped, rb->commands_dropped);
}

TEST(SimFaultTest, FaultRunsInvariantToThreadCount) {
  SimulationOptions options = TightFlat();
  options.fault = fault::FaultOptions::UniformRate(0.2, /*seed=*/3);
  Simulator simulator(options);
  ASSERT_TRUE(simulator.Prepare().ok());
  const std::vector<Policy> policies = {Policy::kMetaRule,
                                        Policy::kEnergyPlanner};
  const auto serial = simulator.RunGrid(policies, /*repetitions=*/3,
                                        /*threads=*/1);
  const auto parallel = simulator.RunGrid(policies, /*repetitions=*/3,
                                          /*threads=*/4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_DOUBLE_EQ((*serial)[i].fce_pct.mean(), (*parallel)[i].fce_pct.mean());
    EXPECT_DOUBLE_EQ((*serial)[i].fe_kwh.mean(), (*parallel)[i].fe_kwh.mean());
    EXPECT_DOUBLE_EQ((*serial)[i].fce_pct.stddev(),
                     (*parallel)[i].fce_pct.stddev());
  }
}

// Satellite: a command the firewall rejects must never appear in the
// energy totals. Block unit 0's HVAC at the chain level (the paper's
// "iptables -s <addr> -j DROP") and check the blocked run consumes
// strictly less energy and reports more error — the blocked necessity
// rules are counted as discomfort, not silently ignored.
TEST(SimFaultTest, FirewallRejectedCommandsNeverCharged) {
  SimulationOptions blocked_options = TightFlat();
  blocked_options.chain_setup = [](firewall::Chain* chain) {
    firewall::ChainRule rule;
    rule.address = "10.0.0.1";  // unit 0 HVAC
    rule.target = firewall::Verdict::kDrop;
    chain->Append(rule);
  };
  Simulator clean_sim(TightFlat());
  Simulator blocked_sim(blocked_options);
  ASSERT_TRUE(clean_sim.Prepare().ok());
  ASSERT_TRUE(blocked_sim.Prepare().ok());

  const auto clean = clean_sim.Run(Policy::kMetaRule);
  const auto blocked = blocked_sim.Run(Policy::kMetaRule);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(blocked.ok());

  EXPECT_GT(blocked->commands_dropped, 0);
  EXPECT_LT(blocked->fe_kwh, clean->fe_kwh);
  EXPECT_GT(blocked->fce_pct, clean->fce_pct);
  // Chain drops are admin policy, not delivery failures.
  EXPECT_EQ(blocked->commands_failed, 0);
}

}  // namespace
}  // namespace sim
}  // namespace imcf
