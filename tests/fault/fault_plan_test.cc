#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <array>

namespace imcf {
namespace fault {
namespace {

TEST(FaultPlanTest, DefaultConstructedNeverFaults) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (SimTime t = 0; t < 100 * kSecondsPerHour; t += kSecondsPerHour) {
    EXPECT_FALSE(plan.At("device:unit00_ac", t).faulted());
    EXPECT_FALSE(plan.At("weather", t).faulted());
  }
}

TEST(FaultPlanTest, EnabledWithZeroRatesNeverFaults) {
  FaultOptions options;
  options.enabled = true;  // rates all default to zero
  FaultPlan plan(options);
  for (SimTime t = 0; t < 1000 * kSecondsPerHour; t += kSecondsPerHour) {
    EXPECT_FALSE(plan.At("device:unit00_ac", t).faulted());
  }
}

TEST(FaultPlanTest, PureFunctionOfSeedChannelAndTime) {
  const FaultOptions options = FaultOptions::UniformRate(0.3, /*seed=*/42);
  FaultPlan a(options);
  FaultPlan b(options);  // independent instance, same config
  for (SimTime t = 0; t < 500 * kSecondsPerHour; t += kSecondsPerHour / 3) {
    const FaultDecision da = a.At("device:unit01_light", t);
    const FaultDecision db = b.At("device:unit01_light", t);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.delay_seconds, db.delay_seconds);
    // Re-querying the same instance must not advance any state.
    EXPECT_EQ(a.At("device:unit01_light", t).kind, da.kind);
  }
}

TEST(FaultPlanTest, SeedsAndChannelsDecorrelate) {
  const int n = 2000;
  int differ_by_seed = 0, differ_by_channel = 0;
  FaultPlan s1(FaultOptions::UniformRate(0.5, 1));
  FaultPlan s2(FaultOptions::UniformRate(0.5, 2));
  for (int i = 0; i < n; ++i) {
    const SimTime t = static_cast<SimTime>(i) * kSecondsPerHour;
    if (s1.At("device:a", t).kind != s2.At("device:a", t).kind) {
      ++differ_by_seed;
    }
    if (s1.At("device:a", t).kind != s1.At("device:b", t).kind) {
      ++differ_by_channel;
    }
  }
  EXPECT_GT(differ_by_seed, n / 10);
  EXPECT_GT(differ_by_channel, n / 10);
}

TEST(FaultPlanTest, UniformRateFrequenciesMatchConfiguration) {
  const double rate = 0.30;
  FaultPlan plan(FaultOptions::UniformRate(rate, 7));
  const int n = 20000;
  std::array<int, kNumFaultKinds> counts{};
  for (int i = 0; i < n; ++i) {
    // Sample at sub-hour offsets so at most a few samples share one stuck
    // window; the per-attempt kinds dominate the tallies.
    const SimTime t = static_cast<SimTime>(i) * 37 * kSecondsPerMinute;
    ++counts[static_cast<size_t>(plan.At("device:x", t).kind)];
  }
  const double third = rate / 3.0 * n;
  EXPECT_NEAR(counts[static_cast<size_t>(FaultKind::kDrop)], third,
              0.3 * third);
  EXPECT_NEAR(counts[static_cast<size_t>(FaultKind::kDelay)], third,
              0.3 * third);
  EXPECT_NEAR(counts[static_cast<size_t>(FaultKind::kTransientError)], third,
              0.3 * third);
  // Weather channels have no stuck faults under UniformRate.
  for (int i = 0; i < n; ++i) {
    const SimTime t = static_cast<SimTime>(i) * 37 * kSecondsPerMinute;
    EXPECT_NE(plan.At("weather", t).kind, FaultKind::kStuck);
  }
}

TEST(FaultPlanTest, StuckCoversWholeWindow) {
  FaultOptions options;
  options.enabled = true;
  options.device.stuck_prob = 0.2;
  options.device.stuck_window_seconds = kSecondsPerHour;
  FaultPlan plan(options);

  // Find a stuck hour, then verify every second of that window is stuck
  // and the neighbouring windows decide independently.
  SimTime stuck_start = -1;
  for (SimTime h = 0; h < 500; ++h) {
    if (plan.At("device:d", h * kSecondsPerHour).kind == FaultKind::kStuck) {
      stuck_start = h * kSecondsPerHour;
      break;
    }
  }
  ASSERT_GE(stuck_start, 0) << "no stuck window in 500 hours at p=0.2";
  for (SimTime off = 0; off < kSecondsPerHour; off += 97) {
    EXPECT_EQ(plan.At("device:d", stuck_start + off).kind, FaultKind::kStuck);
  }
}

TEST(FaultPlanTest, DelayCarriesConfiguredLatency) {
  FaultOptions options;
  options.enabled = true;
  options.device.delay_prob = 1.0;
  options.device.delay_seconds = 17;
  FaultPlan plan(options);
  const FaultDecision d = plan.At("device:d", 123);
  EXPECT_EQ(d.kind, FaultKind::kDelay);
  EXPECT_EQ(d.delay_seconds, 17);
}

TEST(FaultPlanTest, ChannelHashIsStableAcrossCalls) {
  EXPECT_EQ(ChannelHash("device:unit00_ac"), ChannelHash("device:unit00_ac"));
  EXPECT_NE(ChannelHash("device:unit00_ac"), ChannelHash("device:unit01_ac"));
}

}  // namespace
}  // namespace fault
}  // namespace imcf
