#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/hill_climber.h"

namespace imcf {
namespace core {
namespace {

using devices::CommandType;

// A hand-constructed slot: two device groups (one HVAC, one light), three
// active rules of five total — rules 1 and 3 share the light group (3 wins
// when both adopted).
SlotProblem TwoGroupSlot() {
  SlotProblem problem;
  problem.n_rules = 5;
  problem.budget_kwh = 1.0;
  problem.groups = {
      {14.0, CommandType::kSetTemperature},  // ambient 14°C
      {5.0, CommandType::kSetLight},         // ambient light 5
  };
  ActiveRule heat;
  heat.rule_index = 0;
  heat.group = 0;
  heat.desired = 24.0;
  heat.type = CommandType::kSetTemperature;
  heat.energy_kwh = 0.8;
  heat.drop_error = NormalizedError(CommandType::kSetTemperature, 24.0, 14.0);
  ActiveRule dim_light;
  dim_light.rule_index = 1;
  dim_light.group = 1;
  dim_light.desired = 30.0;
  dim_light.type = CommandType::kSetLight;
  dim_light.energy_kwh = 0.15;
  dim_light.drop_error = NormalizedError(CommandType::kSetLight, 30.0, 5.0);
  ActiveRule bright_light;
  bright_light.rule_index = 3;
  bright_light.group = 1;
  bright_light.desired = 40.0;
  bright_light.type = CommandType::kSetLight;
  bright_light.energy_kwh = 0.2;
  bright_light.drop_error = NormalizedError(CommandType::kSetLight, 40.0, 5.0);
  problem.active = {heat, dim_light, bright_light};
  return problem;
}

TEST(NormalizedErrorTest, TemperatureTwoSidedWithComfortZone) {
  // Inside the 1°C comfort zone: no error.
  EXPECT_DOUBLE_EQ(
      NormalizedError(CommandType::kSetTemperature, 22.0, 22.5), 0.0);
  EXPECT_DOUBLE_EQ(
      NormalizedError(CommandType::kSetTemperature, 22.0, 21.0), 0.0);
  // Beyond: (gap - 1) / 10, both directions.
  EXPECT_NEAR(NormalizedError(CommandType::kSetTemperature, 22.0, 17.0), 0.4,
              1e-12);
  EXPECT_NEAR(NormalizedError(CommandType::kSetTemperature, 22.0, 27.0), 0.4,
              1e-12);
  // Clamped at 1.
  EXPECT_DOUBLE_EQ(
      NormalizedError(CommandType::kSetTemperature, 25.0, 5.0), 1.0);
}

TEST(NormalizedErrorTest, LightShortfallOnly) {
  EXPECT_NEAR(NormalizedError(CommandType::kSetLight, 40.0, 0.0), 0.8, 1e-12);
  EXPECT_NEAR(NormalizedError(CommandType::kSetLight, 30.0, 20.0), 0.2,
              1e-12);
  // Brighter than desired costs nothing.
  EXPECT_DOUBLE_EQ(NormalizedError(CommandType::kSetLight, 30.0, 60.0), 0.0);
  // Clamped at 1.
  EXPECT_DOUBLE_EQ(NormalizedError(CommandType::kSetLight, 100.0, 0.0), 1.0);
}

TEST(EvaluatorTest, NoRuleObjectives) {
  const SlotProblem problem = TwoGroupSlot();
  SlotEvaluator evaluator(&problem);
  const Objectives obj = evaluator.NoRuleObjectives();
  EXPECT_DOUBLE_EQ(obj.energy_kwh, 0.0);
  const double expected = problem.active[0].drop_error +
                          problem.active[1].drop_error +
                          problem.active[2].drop_error;
  EXPECT_NEAR(obj.error_sum, expected, 1e-12);
  // Matches full evaluation of the zero vector.
  const Objectives zero = evaluator.Evaluate(Solution(5));
  EXPECT_NEAR(zero.error_sum, obj.error_sum, 1e-12);
  EXPECT_DOUBLE_EQ(zero.energy_kwh, obj.energy_kwh);
}

TEST(EvaluatorTest, AllRulesWinnersAndConflicts) {
  const SlotProblem problem = TwoGroupSlot();
  SlotEvaluator evaluator(&problem);
  const Objectives obj = evaluator.AllRulesObjectives();
  // Heat (0.8) + winning light rule 3 (0.2); rule 1 loses the group.
  EXPECT_NEAR(obj.energy_kwh, 1.0, 1e-12);
  // Loser rule 1's error vs the winner's setpoint 40: one-sided => 0.
  EXPECT_NEAR(obj.error_sum, 0.0, 1e-12);
}

TEST(EvaluatorTest, PartialAdoption) {
  const SlotProblem problem = TwoGroupSlot();
  SlotEvaluator evaluator(&problem);
  Solution s(5);
  s.set(0, true);  // heat only
  const Objectives obj = evaluator.Evaluate(s);
  EXPECT_NEAR(obj.energy_kwh, 0.8, 1e-12);
  EXPECT_NEAR(obj.error_sum,
              problem.active[1].drop_error + problem.active[2].drop_error,
              1e-12);
}

TEST(EvaluatorTest, LoserMeasuredAgainstWinnerValue) {
  SlotProblem problem = TwoGroupSlot();
  // Make the conflict matter: rule 1 wants 30, rule 3 wants only 10.
  problem.active[2].desired = 10.0;
  SlotEvaluator evaluator(&problem);
  Solution s(5);
  s.set(0, true);  // heat adopted: zero error in its group
  s.set(1, true);
  s.set(3, true);
  const Objectives obj = evaluator.Evaluate(s);
  // Rule 3 wins the light group (higher table position): device at 10.
  // Rule 1's shortfall is (30-10)/50 = 0.4; the winner itself and the
  // adopted heat rule contribute nothing.
  EXPECT_NEAR(obj.error_sum, 0.4, 1e-12);
}

TEST(EvaluatorTest, BaseEnergyAlwaysCharged) {
  SlotProblem problem = TwoGroupSlot();
  problem.base_energy_kwh = 0.25;  // necessity rules
  SlotEvaluator evaluator(&problem);
  EXPECT_NEAR(evaluator.Evaluate(Solution(5)).energy_kwh, 0.25, 1e-12);
  EXPECT_NEAR(evaluator.AllRulesObjectives().energy_kwh, 1.25, 1e-12);
}

TEST(EvaluatorTest, InactiveRulesDoNotMatter) {
  const SlotProblem problem = TwoGroupSlot();
  SlotEvaluator evaluator(&problem);
  Solution a(5), b(5);
  // Rules 2 and 4 are inactive in this slot: toggling them changes nothing.
  b.set(2, true);
  b.set(4, true);
  const Objectives oa = evaluator.Evaluate(a);
  const Objectives ob = evaluator.Evaluate(b);
  EXPECT_DOUBLE_EQ(oa.energy_kwh, ob.energy_kwh);
  EXPECT_DOUBLE_EQ(oa.error_sum, ob.error_sum);
  EXPECT_TRUE(evaluator.IsActive(0));
  EXPECT_FALSE(evaluator.IsActive(2));
  EXPECT_FALSE(evaluator.IsActive(4));
}

TEST(EvaluatorTest, FeasibilityCheck) {
  const SlotProblem problem = TwoGroupSlot();
  SlotEvaluator evaluator(&problem);
  const Objectives all = evaluator.AllRulesObjectives();
  EXPECT_TRUE(all.FeasibleUnder(1.0));   // exactly at budget
  EXPECT_FALSE(all.FeasibleUnder(0.9));
}

// Property: incremental flip evaluation equals full evaluation, for random
// solutions and random flip sets.
class FlipDeltaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlipDeltaProperty, MatchesFullEvaluation) {
  Rng rng(GetParam());
  // Random slot problem: 12 rules, 4 groups, random subset active.
  SlotProblem problem;
  problem.n_rules = 12;
  problem.budget_kwh = 5.0;
  for (int g = 0; g < 4; ++g) {
    DeviceGroup group;
    group.type = (g % 2 == 0) ? CommandType::kSetTemperature
                              : CommandType::kSetLight;
    group.ambient = group.type == CommandType::kSetTemperature
                        ? rng.UniformDouble(8.0, 28.0)
                        : rng.UniformDouble(0.0, 70.0);
    problem.groups.push_back(group);
  }
  for (int i = 0; i < 12; ++i) {
    if (rng.Bernoulli(0.3)) continue;  // inactive
    ActiveRule rule;
    rule.rule_index = i;
    rule.group = static_cast<int>(rng.UniformInt(0, 3));
    rule.type = problem.groups[static_cast<size_t>(rule.group)].type;
    rule.desired = rule.type == CommandType::kSetTemperature
                       ? rng.UniformDouble(18.0, 26.0)
                       : rng.UniformDouble(10.0, 60.0);
    rule.energy_kwh = rng.UniformDouble(0.0, 1.0);
    rule.drop_error = NormalizedError(
        rule.type, rule.desired,
        problem.groups[static_cast<size_t>(rule.group)].ambient);
    problem.active.push_back(rule);
  }
  SlotEvaluator evaluator(&problem);

  for (int trial = 0; trial < 200; ++trial) {
    Solution s = Solution::Init(12, InitStrategy::kRandom, &rng);
    const Solution snapshot = s;
    const Objectives base = evaluator.Evaluate(s);
    std::vector<int> flips;
    const int k = 1 + static_cast<int>(rng.UniformInt(0, 5));
    SampleDistinct(12, k, &rng, &flips);
    const Objectives incremental = evaluator.EvaluateWithFlips(&s, base,
                                                               flips);
    EXPECT_EQ(s, snapshot) << "flips not reverted";
    Solution flipped = s;
    for (int i : flips) flipped.flip(static_cast<size_t>(i));
    const Objectives full = evaluator.Evaluate(flipped);
    EXPECT_NEAR(incremental.energy_kwh, full.energy_kwh, 1e-9);
    EXPECT_NEAR(incremental.error_sum, full.error_sum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlipDeltaProperty,
                         ::testing::Values(1u, 2u, 3u, 7u, 11u, 42u));

}  // namespace
}  // namespace core
}  // namespace imcf
