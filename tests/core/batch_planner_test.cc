// BatchPlanner invariants (batch_planner.h): batching changes where the
// evaluator's memory comes from, never what the planner computes. Every
// batched outcome must be bit-identical to a solo PlanSlot call with the
// same rng stream, and the shared arena must stop allocating once warm.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/batch_planner.h"
#include "core/hill_climber.h"
#include "core/soa_evaluator.h"
#include "random_problem.h"

namespace imcf {
namespace core {
namespace {

using testutil::RandomProblem;

void ExpectSameOutcome(const PlanOutcome& got, const PlanOutcome& want,
                       uint64_t seed) {
  ASSERT_EQ(got.solution, want.solution) << "seed " << seed;
  EXPECT_EQ(got.objectives.energy_kwh, want.objectives.energy_kwh)
      << "seed " << seed;
  EXPECT_EQ(got.objectives.error_sum, want.objectives.error_sum)
      << "seed " << seed;
  EXPECT_EQ(got.iterations, want.iterations) << "seed " << seed;
  EXPECT_EQ(got.feasible, want.feasible) << "seed " << seed;
  EXPECT_EQ(got.moves_accepted, want.moves_accepted) << "seed " << seed;
  EXPECT_EQ(got.moves_rejected, want.moves_rejected) << "seed " << seed;
  EXPECT_EQ(got.repair_drops, want.repair_drops) << "seed " << seed;
  EXPECT_EQ(got.early_exit, want.early_exit) << "seed " << seed;
  EXPECT_EQ(got.zero_fallback, want.zero_fallback) << "seed " << seed;
}

// Solo reference: a freshly built configured evaluator with private
// storage, planned with the same seed the batch item gets.
PlanOutcome SoloPlan(const SlotPlanner& planner, const SlotProblem& problem,
                     uint64_t seed) {
  const std::unique_ptr<Evaluator> evaluator = MakeSlotEvaluator(&problem);
  Rng rng(seed);
  return planner.PlanSlot(*evaluator, &rng);
}

TEST(BatchPlannerTest, PlanOneBitIdenticalToSolo) {
  EpOptions options;
  options.init = InitStrategy::kRandom;
  const HillClimbingPlanner planner(options);
  BatchPlanner batch(&planner);
  Rng problem_rng(0xBA7C41);
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const SlotProblem problem = RandomProblem(&problem_rng, 2, 12);
    const PlanOutcome want = SoloPlan(planner, problem, MixHash(seed, 99));
    Rng rng(MixHash(seed, 99));
    const PlanOutcome got = batch.PlanOne(problem, &rng);
    ExpectSameOutcome(got, want, seed);
  }
}

TEST(BatchPlannerTest, PlanBatchAlignsOutcomesWithItems) {
  EpOptions options;
  options.init = InitStrategy::kRandom;
  const HillClimbingPlanner planner(options);
  BatchPlanner batch(&planner);

  Rng problem_rng(0x0B47);
  std::vector<SlotProblem> problems;
  for (int i = 0; i < 12; ++i) {
    problems.push_back(RandomProblem(&problem_rng, 1, 10));
  }
  std::vector<Rng> rngs;
  for (uint64_t i = 0; i < problems.size(); ++i) {
    rngs.emplace_back(MixHash(0xF1EE7, i));
  }
  std::vector<BatchPlanItem> items;
  for (size_t i = 0; i < problems.size(); ++i) {
    items.push_back({&problems[i], &rngs[i]});
  }

  const std::vector<PlanOutcome> outcomes = batch.PlanBatch(items);
  ASSERT_EQ(outcomes.size(), items.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const PlanOutcome want =
        SoloPlan(planner, problems[i], MixHash(0xF1EE7, i));
    ExpectSameOutcome(outcomes[i], want, i);
  }
}

TEST(BatchPlannerTest, ArenaStopsGrowingOnceWarm) {
  const HillClimbingPlanner planner;
  BatchPlanner batch(&planner);
  Rng problem_rng(0xAEA0);
  // All problems the same shape: after the first plan grows the arena, the
  // rest must be served from retained blocks.
  const SlotProblem problem = RandomProblem(&problem_rng, 4, 4);
  Rng rng(1);
  batch.PlanOne(problem, &rng);
  const size_t warmed_blocks = batch.arena().block_count();
  const size_t high_water = batch.arena().high_water_bytes();
  for (int i = 0; i < 20; ++i) {
    Rng per_plan(MixHash(2, static_cast<uint64_t>(i)));
    batch.PlanOne(problem, &per_plan);
    EXPECT_EQ(batch.arena().block_count(), warmed_blocks) << "plan " << i;
    EXPECT_EQ(batch.arena().high_water_bytes(), high_water) << "plan " << i;
  }
}

TEST(BatchPlannerTest, EmptyBatchYieldsNoOutcomes) {
  const HillClimbingPlanner planner;
  BatchPlanner batch(&planner);
  const std::vector<BatchPlanItem> items;
  EXPECT_TRUE(batch.PlanBatch(items).empty());
}

}  // namespace
}  // namespace core
}  // namespace imcf
