#include "core/hill_climber.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baselines.h"

namespace imcf {
namespace core {
namespace {

using devices::CommandType;

// A slot with 6 independent rules (one group each) whose energies and
// drop errors are chosen so the optimum under a tight budget is knowable.
SlotProblem IndependentSlot(double budget) {
  SlotProblem problem;
  problem.n_rules = 6;
  problem.budget_kwh = budget;
  const double energies[6] = {0.9, 0.2, 0.5, 0.15, 0.6, 0.25};
  const double drop_errors[6] = {1.0, 0.7, 0.45, 0.1, 0.65, 0.8};
  for (int i = 0; i < 6; ++i) {
    problem.groups.push_back({0.0, CommandType::kSetLight});
    ActiveRule rule;
    rule.rule_index = i;
    rule.group = i;
    rule.type = CommandType::kSetLight;
    rule.desired = 40.0;
    rule.energy_kwh = energies[i];
    rule.drop_error = drop_errors[i];
    problem.active.push_back(rule);
  }
  return problem;
}

TEST(SampleDistinctTest, ProducesDistinctIndicesInRange) {
  Rng rng(3);
  std::vector<int> out;
  for (int trial = 0; trial < 100; ++trial) {
    SampleDistinct(10, 4, &rng, &out);
    ASSERT_EQ(out.size(), 4u);
    std::set<int> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), 4u);
    for (int v : out) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
}

TEST(SampleDistinctTest, KAtLeastNSelectsAll) {
  Rng rng(3);
  std::vector<int> out;
  SampleDistinct(4, 6, &rng, &out);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(HillClimberTest, KeepsEverythingWhenBudgetIsLoose) {
  const SlotProblem problem = IndependentSlot(10.0);
  SlotEvaluator evaluator(&problem);
  HillClimbingPlanner planner;
  Rng rng(1);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.solution.CountAdopted(), 6u);
  EXPECT_DOUBLE_EQ(outcome.objectives.error_sum, 0.0);
}

TEST(HillClimberTest, RespectsBudgetConstraint) {
  const SlotProblem problem = IndependentSlot(1.0);  // demand is 2.6
  SlotEvaluator evaluator(&problem);
  EpOptions options;
  options.tau_max = 500;
  HillClimbingPlanner planner(options);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
    EXPECT_TRUE(outcome.feasible);
    EXPECT_LE(outcome.objectives.energy_kwh, 1.0 + 1e-9);
  }
}

TEST(HillClimberTest, FindsNearOptimalSubset) {
  // Budget 1.0; the best subset adopts the high-error-per-kWh rules.
  // Optimal: {1 (0.2/0.7), 3 (0.15/0.1), 5 (0.25/0.8), 2 (0.5/0.45)}? Check
  // exhaustively instead of guessing.
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  double best_error = 1e18;
  for (int mask = 0; mask < 64; ++mask) {
    Solution s(6);
    for (int i = 0; i < 6; ++i) s.set(static_cast<size_t>(i), mask & (1 << i));
    const Objectives obj = evaluator.Evaluate(s);
    if (obj.FeasibleUnder(1.0)) best_error = std::min(best_error, obj.error_sum);
  }
  // A single k-opt run can stall in a local optimum (the very reason the
  // paper studies k, Fig. 7); across seeds and k the optimum is reached.
  EpOptions options;
  options.tau_max = 2000;
  double best_found = 1e18;
  for (int k = 2; k <= 4; ++k) {
    options.k = k;
    HillClimbingPlanner planner(options);
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Rng rng(seed);
      const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
      EXPECT_TRUE(outcome.feasible);
      best_found = std::min(best_found, outcome.objectives.error_sum);
    }
  }
  EXPECT_LE(best_found, best_error + 0.1);
}

TEST(HillClimberTest, DeterministicGivenSeed) {
  const SlotProblem problem = IndependentSlot(1.2);
  SlotEvaluator evaluator(&problem);
  HillClimbingPlanner planner;
  Rng rng_a(99), rng_b(99);
  const PlanOutcome a = planner.PlanSlot(evaluator, &rng_a);
  const PlanOutcome b = planner.PlanSlot(evaluator, &rng_b);
  EXPECT_EQ(a.solution, b.solution);
  EXPECT_DOUBLE_EQ(a.objectives.error_sum, b.objectives.error_sum);
}

TEST(HillClimberTest, ZeroBudgetFallsBackToNoRule) {
  const SlotProblem problem = IndependentSlot(0.0);
  SlotEvaluator evaluator(&problem);
  EpOptions options;
  options.tau_max = 50;
  HillClimbingPlanner planner(options);
  Rng rng(5);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  // Lemma 1's worst case: with no budget IMCF acts as NR.
  EXPECT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.solution.CountAdopted(), 0u);
  EXPECT_DOUBLE_EQ(outcome.objectives.energy_kwh, 0.0);
}

TEST(HillClimberTest, AllZerosInitStaysFeasibleThroughout) {
  const SlotProblem problem = IndependentSlot(0.8);
  SlotEvaluator evaluator(&problem);
  EpOptions options;
  options.init = InitStrategy::kAllZeros;
  options.tau_max = 300;
  options.k = 2;
  HillClimbingPlanner planner(options);
  Rng rng(3);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_LE(outcome.objectives.energy_kwh, 0.8 + 1e-9);
  EXPECT_GT(outcome.solution.CountAdopted(), 0u);  // improved from zeros
}

TEST(HillClimberTest, EarlyExitStopsAtZeroError) {
  const SlotProblem problem = IndependentSlot(10.0);
  SlotEvaluator evaluator(&problem);
  EpOptions options;
  options.tau_max = 10000;
  options.early_exit = true;
  HillClimbingPlanner planner(options);
  Rng rng(1);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_EQ(outcome.iterations, 0);  // all-1s start is already optimal
  EpOptions no_exit = options;
  no_exit.early_exit = false;
  HillClimbingPlanner stubborn(no_exit);
  Rng rng2(1);
  EXPECT_EQ(stubborn.PlanSlot(evaluator, &rng2).iterations, 10000);
}

TEST(HillClimberTest, EffectiveTauMaxScalesWithRules) {
  HillClimbingPlanner planner;  // tau_max = 0 => auto
  EXPECT_EQ(planner.EffectiveTauMax(6), 120);
  EXPECT_EQ(planner.EffectiveTauMax(600), 1200);
  EpOptions fixed;
  fixed.tau_max = 40;
  EXPECT_EQ(HillClimbingPlanner(fixed).EffectiveTauMax(600), 40);
}

TEST(HillClimberTest, MoreIterationsNeverHurt) {
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  EpOptions short_run;
  short_run.tau_max = 5;
  short_run.init = InitStrategy::kAllZeros;
  EpOptions long_run = short_run;
  long_run.tau_max = 1000;
  double short_err = 0.0, long_err = 0.0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng r1(seed), r2(seed);
    short_err += HillClimbingPlanner(short_run)
                     .PlanSlot(evaluator, &r1)
                     .objectives.error_sum;
    long_err += HillClimbingPlanner(long_run)
                    .PlanSlot(evaluator, &r2)
                    .objectives.error_sum;
  }
  EXPECT_LE(long_err, short_err + 1e-9);
}


TEST(HillClimberTest, GreedyRepairBeatsStochasticRepairAtLowBudgets) {
  // With the greedy repair disabled, recovery from an infeasible all-1s
  // start is a random energy descent — strictly worse (or equal) on
  // average at small iteration budgets.
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  EpOptions with_repair;
  with_repair.tau_max = 10;
  EpOptions without = with_repair;
  without.greedy_repair = false;
  double repaired = 0.0, stochastic = 0.0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng r1(seed), r2(seed);
    repaired += HillClimbingPlanner(with_repair)
                    .PlanSlot(evaluator, &r1)
                    .objectives.error_sum;
    stochastic += HillClimbingPlanner(without)
                      .PlanSlot(evaluator, &r2)
                      .objectives.error_sum;
  }
  EXPECT_LE(repaired, stochastic + 1e-9);
}

TEST(HillClimberTest, StochasticRepairStillReachesFeasibility) {
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  EpOptions options;
  options.greedy_repair = false;
  options.tau_max = 500;
  HillClimbingPlanner planner(options);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
    EXPECT_TRUE(outcome.feasible);
    EXPECT_LE(outcome.objectives.energy_kwh, 1.0 + 1e-9);
  }
}

TEST(BaselinesTest, NoRulePlanner) {
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  NoRulePlanner planner;
  Rng rng(1);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_EQ(outcome.solution.CountAdopted(), 0u);
  EXPECT_DOUBLE_EQ(outcome.objectives.energy_kwh, 0.0);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_EQ(planner.name(), "NR");
  // Maximum error: every drop error incurred.
  EXPECT_NEAR(outcome.objectives.error_sum, 3.7, 1e-9);
}

TEST(BaselinesTest, MetaRulePlannerIgnoresBudget) {
  const SlotProblem problem = IndependentSlot(1.0);  // demand 2.6 > 1.0
  SlotEvaluator evaluator(&problem);
  MetaRulePlanner planner;
  Rng rng(1);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_EQ(outcome.solution.CountAdopted(), 6u);
  EXPECT_NEAR(outcome.objectives.energy_kwh, 2.6, 1e-9);
  EXPECT_DOUBLE_EQ(outcome.objectives.error_sum, 0.0);
  EXPECT_FALSE(outcome.feasible);
  EXPECT_EQ(planner.name(), "MR");
}

// Dominance property: for any seed, EP's error is never worse than NR's and
// EP's energy never exceeds MR's (on feasible instances).
class DominanceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DominanceSweep, EpBetweenBaselines) {
  Rng rng(GetParam());
  const double budget = rng.UniformDouble(0.2, 3.0);
  const SlotProblem problem = IndependentSlot(budget);
  SlotEvaluator evaluator(&problem);
  HillClimbingPlanner ep;
  NoRulePlanner nr;
  MetaRulePlanner mr;
  Rng rng_ep(GetParam());
  Rng rng_base(GetParam());
  const PlanOutcome ep_out = ep.PlanSlot(evaluator, &rng_ep);
  const PlanOutcome nr_out = nr.PlanSlot(evaluator, &rng_base);
  const PlanOutcome mr_out = mr.PlanSlot(evaluator, &rng_base);
  EXPECT_LE(ep_out.objectives.error_sum, nr_out.objectives.error_sum + 1e-9);
  EXPECT_LE(ep_out.objectives.energy_kwh, mr_out.objectives.energy_kwh + 1e-9);
  EXPECT_TRUE(ep_out.feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

}  // namespace
}  // namespace core
}  // namespace imcf
