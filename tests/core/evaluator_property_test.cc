// Randomized consistency properties of the incremental SlotEvaluator: on
// 1000 random problems, delta evaluation — via the cached fast path, the
// stale-cache fallback path, and the >16-touched-groups degenerate path —
// must agree with a from-scratch full Evaluate, and ApplyFlips must leave
// the cache agreeing with the solution it mirrors.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/hill_climber.h"
#include "random_problem.h"

namespace imcf {
namespace core {
namespace {

using devices::CommandType;
using testutil::RandomFlips;
using testutil::RandomProblem;

constexpr double kTol = 1e-9;

// Reference value from an evaluator with no cache history.
Objectives FreshEvaluate(const SlotProblem& problem, const Solution& s) {
  SlotEvaluator fresh(&problem);
  return fresh.Evaluate(s);
}

// Cached path: the cache is synchronized with `s` (Evaluate / ApplyFlips
// precede every delta), which is the hill climber's steady state.
TEST(EvaluatorPropertyTest, CachedDeltaMatchesFullEvaluate) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(MixHash(0xCAC4EDULL, seed));
    const SlotProblem problem = RandomProblem(&rng);
    SlotEvaluator evaluator(&problem);
    Solution s = Solution::Init(static_cast<size_t>(problem.n_rules),
                                InitStrategy::kRandom, &rng);
    Objectives base = evaluator.Evaluate(s);
    for (int move = 0; move < 8; ++move) {
      const std::vector<int> flips = RandomFlips(problem, &rng);
      const Solution snapshot = s;
      const Objectives delta = evaluator.EvaluateWithFlips(&s, base, flips);
      ASSERT_EQ(s, snapshot) << "flips not reverted, seed " << seed;

      Solution flipped = s;
      for (int i : flips) flipped.flip(static_cast<size_t>(i));
      const Objectives full = FreshEvaluate(problem, flipped);
      ASSERT_NEAR(delta.energy_kwh, full.energy_kwh, kTol) << "seed " << seed;
      ASSERT_NEAR(delta.error_sum, full.error_sum, kTol) << "seed " << seed;

      if (rng.Bernoulli(0.5)) {  // accept: cache follows via ApplyFlips
        evaluator.ApplyFlips(&s, flips);
        base = delta;
        ASSERT_EQ(s, flipped);
      }
    }
  }
}

// Fallback path: the solution is mutated behind the evaluator's back, so
// every touched group fails the freshness check and is rescanned. The
// self-healing contract: results stay correct, never stale.
TEST(EvaluatorPropertyTest, StaleCacheFallbackMatchesFullEvaluate) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(MixHash(0x57A1EULL, seed));
    const SlotProblem problem = RandomProblem(&rng);
    SlotEvaluator evaluator(&problem);
    Solution s = Solution::Init(static_cast<size_t>(problem.n_rules),
                                InitStrategy::kRandom, &rng);
    evaluator.Evaluate(s);  // sync the cache ...
    for (int i = 0; i < problem.n_rules; ++i) {
      if (rng.Bernoulli(0.5)) s.flip(static_cast<size_t>(i));  // ... then go stale
    }
    const Objectives base = FreshEvaluate(problem, s);
    const std::vector<int> flips = RandomFlips(problem, &rng);
    const Objectives delta = evaluator.EvaluateWithFlips(&s, base, flips);

    Solution flipped = s;
    for (int i : flips) flipped.flip(static_cast<size_t>(i));
    const Objectives full = FreshEvaluate(problem, flipped);
    EXPECT_NEAR(delta.energy_kwh, full.energy_kwh, kTol) << "seed " << seed;
    EXPECT_NEAR(delta.error_sum, full.error_sum, kTol) << "seed " << seed;
  }
}

// Degenerate path: flips spanning more than 16 distinct groups abandon the
// per-group delta and fall back to a full evaluation of a flipped copy.
TEST(EvaluatorPropertyTest, ManyTouchedGroupsDegenerateMatchesFullEvaluate) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(MixHash(0xB16ULL, seed));
    // 17-24 groups, one guaranteed active rule per group so a flip set can
    // touch >16 groups.
    const int n_groups = static_cast<int>(rng.UniformInt(17, 24));
    SlotProblem problem;
    problem.n_rules = n_groups;
    problem.budget_kwh = 10.0;
    for (int g = 0; g < n_groups; ++g) {
      DeviceGroup group;
      group.type = (g % 2 == 0) ? CommandType::kSetTemperature
                                : CommandType::kSetLight;
      group.ambient = group.type == CommandType::kSetTemperature
                          ? rng.UniformDouble(5.0, 30.0)
                          : rng.UniformDouble(0.0, 80.0);
      problem.groups.push_back(group);
      ActiveRule rule;
      rule.rule_index = g;
      rule.group = g;
      rule.type = group.type;
      rule.desired = rule.type == CommandType::kSetTemperature
                         ? rng.UniformDouble(16.0, 28.0)
                         : rng.UniformDouble(10.0, 70.0);
      rule.energy_kwh = rng.UniformDouble(0.0, 1.5);
      rule.drop_error = NormalizedError(rule.type, rule.desired, group.ambient);
      problem.active.push_back(rule);
    }
    SlotEvaluator evaluator(&problem);
    Solution s = Solution::Init(static_cast<size_t>(problem.n_rules),
                                InitStrategy::kRandom, &rng);
    const Objectives base = evaluator.Evaluate(s);

    std::vector<int> flips;  // every rule: touches n_groups > 16 groups
    for (int i = 0; i < problem.n_rules; ++i) flips.push_back(i);
    const Solution snapshot = s;
    const Objectives delta = evaluator.EvaluateWithFlips(&s, base, flips);
    ASSERT_EQ(s, snapshot) << "degenerate path must also revert, seed "
                           << seed;

    Solution flipped = s;
    for (int i : flips) flipped.flip(static_cast<size_t>(i));
    const Objectives full = FreshEvaluate(problem, flipped);
    EXPECT_NEAR(delta.energy_kwh, full.energy_kwh, kTol) << "seed " << seed;
    EXPECT_NEAR(delta.error_sum, full.error_sum, kTol) << "seed " << seed;

    // The degenerate path must not have poisoned the cache for *s: the
    // next (small) delta still agrees with a fresh evaluation.
    std::vector<int> one_flip = {static_cast<int>(rng.UniformInt(
        0, problem.n_rules - 1))};
    const Objectives small_delta =
        evaluator.EvaluateWithFlips(&s, base, one_flip);
    Solution one = s;
    one.flip(static_cast<size_t>(one_flip[0]));
    const Objectives one_full = FreshEvaluate(problem, one);
    EXPECT_NEAR(small_delta.energy_kwh, one_full.energy_kwh, kTol);
    EXPECT_NEAR(small_delta.error_sum, one_full.error_sum, kTol);
  }
}

// ApplyFlips is behaviourally identical to flipping bits by hand: after a
// mixed sequence of accepted/rejected moves the tracked objectives equal a
// from-scratch evaluation of the final solution.
TEST(EvaluatorPropertyTest, ApplyFlipsKeepsRunningObjectivesConsistent) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(MixHash(0xAB71E5ULL, seed));
    const SlotProblem problem = RandomProblem(&rng, 2, 10);
    SlotEvaluator evaluator(&problem);
    Solution s = Solution::Init(static_cast<size_t>(problem.n_rules),
                                InitStrategy::kAllOnes, &rng);
    Objectives running = evaluator.Evaluate(s);
    for (int move = 0; move < 20; ++move) {
      const std::vector<int> flips = RandomFlips(problem, &rng);
      const Objectives candidate =
          evaluator.EvaluateWithFlips(&s, running, flips);
      if (rng.Bernoulli(0.7)) {
        evaluator.ApplyFlips(&s, flips);
        running = candidate;
      }
    }
    const Objectives full = FreshEvaluate(problem, s);
    EXPECT_NEAR(running.energy_kwh, full.energy_kwh, 1e-7) << "seed " << seed;
    EXPECT_NEAR(running.error_sum, full.error_sum, 1e-7) << "seed " << seed;
  }
}

}  // namespace
}  // namespace core
}  // namespace imcf
