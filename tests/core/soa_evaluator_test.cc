// Differential tests: the SoA kernel against the legacy SlotEvaluator as
// oracle, over random problem corpora (tests/core/random_problem.h).
//
// Contract being held (soa_evaluator.h, DESIGN.md §12):
//  * the delta path (EvaluateWithFlips / SingleFlipDelta) performs the same
//    scalar arithmetic in the same order as the legacy kernel, so given the
//    same base objectives the results agree BIT-FOR-BIT — asserted with
//    exact double equality;
//  * full Evaluate sums with SIMD lane folding, so absolute objectives may
//    differ from the legacy sequential sum in the final ulps — asserted
//    within 1e-9;
//  * both kernels driven by the same planner and rng stream walk the same
//    trajectory and return identical solutions and counters.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/hill_climber.h"
#include "core/plan_arena.h"
#include "core/soa_evaluator.h"
#include "random_problem.h"

namespace imcf {
namespace core {
namespace {

using devices::CommandType;
using testutil::RandomFlips;
using testutil::RandomProblem;

constexpr double kFullEvalTol = 1e-9;

TEST(SoaEvaluatorTest, FullEvaluateMatchesLegacy) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(MixHash(0x50AF11ULL, seed));
    const SlotProblem problem = RandomProblem(&rng, 1, 12);
    SlotEvaluator legacy(&problem);
    SoaEvaluator soa(&problem);
    for (int trial = 0; trial < 4; ++trial) {
      const Solution s = Solution::Init(static_cast<size_t>(problem.n_rules),
                                        InitStrategy::kRandom, &rng);
      const Objectives want = legacy.Evaluate(s);
      const Objectives got = soa.Evaluate(s);
      ASSERT_NEAR(got.energy_kwh, want.energy_kwh, kFullEvalTol)
          << "seed " << seed;
      ASSERT_NEAR(got.error_sum, want.error_sum, kFullEvalTol)
          << "seed " << seed;
    }
    const Objectives none_want = legacy.NoRuleObjectives();
    const Objectives none_got = soa.NoRuleObjectives();
    EXPECT_NEAR(none_got.energy_kwh, none_want.energy_kwh, kFullEvalTol);
    EXPECT_NEAR(none_got.error_sum, none_want.error_sum, kFullEvalTol);
    const Objectives all_want = legacy.AllRulesObjectives();
    const Objectives all_got = soa.AllRulesObjectives();
    EXPECT_NEAR(all_got.energy_kwh, all_want.energy_kwh, kFullEvalTol);
    EXPECT_NEAR(all_got.error_sum, all_want.error_sum, kFullEvalTol);
  }
}

// Deltas from an identical base must be bit-exact between the kernels:
// both read the same tabulated contribution values and apply them with the
// same subtract-then-add order. This is the property that makes the two
// kernels take identical accept/reject decisions inside the planner.
TEST(SoaEvaluatorTest, DeltaPathBitExactAgainstLegacy) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(MixHash(0xB17E8AC7ULL, seed));
    const SlotProblem problem = RandomProblem(&rng, 1, 12);
    SlotEvaluator legacy(&problem);
    SoaEvaluator soa(&problem);
    Solution s = Solution::Init(static_cast<size_t>(problem.n_rules),
                                InitStrategy::kRandom, &rng);
    Solution s_soa = s;
    // Shared base: the legacy full eval (any common starting point works
    // for a bit-exactness claim about the *delta* arithmetic).
    Objectives base = legacy.Evaluate(s);
    soa.Evaluate(s_soa);  // sync the SoA cache on the same solution
    for (int move = 0; move < 12; ++move) {
      const std::vector<int> flips = RandomFlips(problem, &rng);
      const Objectives want = legacy.EvaluateWithFlips(&s, base, flips);
      const Objectives got = soa.EvaluateWithFlips(&s_soa, base, flips);
      ASSERT_EQ(got.energy_kwh, want.energy_kwh)
          << "seed " << seed << " move " << move;
      ASSERT_EQ(got.error_sum, want.error_sum)
          << "seed " << seed << " move " << move;

      if (!flips.empty()) {
        const Evaluator::FlipDelta dl = legacy.SingleFlipDelta(s, flips[0]);
        const Evaluator::FlipDelta ds = soa.SingleFlipDelta(s_soa, flips[0]);
        ASSERT_EQ(ds.before_energy, dl.before_energy) << "seed " << seed;
        ASSERT_EQ(ds.after_energy, dl.after_energy) << "seed " << seed;
        ASSERT_EQ(ds.before_error, dl.before_error) << "seed " << seed;
        ASSERT_EQ(ds.after_error, dl.after_error) << "seed " << seed;
      }

      if (rng.Bernoulli(0.5)) {
        legacy.ApplyFlips(&s, flips);
        soa.ApplyFlips(&s_soa, flips);
        ASSERT_EQ(s, s_soa) << "seed " << seed;
        base = want;
      }
    }
  }
}

// Flip sets spanning more than 16 distinct groups push both kernels onto
// their degenerate full-rescan path; they must still agree.
TEST(SoaEvaluatorTest, ManyTouchedGroupsDegenerateMatchesLegacy) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(MixHash(0xDE6E4ULL, seed));
    // One active rule per group, 17-24 groups, so flipping everything
    // touches more groups than the kMaxTouchedGroups dedup tracks.
    const int n_groups = static_cast<int>(rng.UniformInt(17, 24));
    SlotProblem problem;
    problem.n_rules = n_groups;
    problem.budget_kwh = 10.0;
    for (int g = 0; g < n_groups; ++g) {
      DeviceGroup group;
      group.type = (g % 2 == 0) ? CommandType::kSetTemperature
                                : CommandType::kSetLight;
      group.ambient = group.type == CommandType::kSetTemperature
                          ? rng.UniformDouble(5.0, 30.0)
                          : rng.UniformDouble(0.0, 80.0);
      problem.groups.push_back(group);
      ActiveRule rule;
      rule.rule_index = g;
      rule.group = g;
      rule.type = group.type;
      rule.desired = rule.type == CommandType::kSetTemperature
                         ? rng.UniformDouble(16.0, 28.0)
                         : rng.UniformDouble(10.0, 70.0);
      rule.energy_kwh = rng.UniformDouble(0.0, 1.5);
      rule.drop_error = NormalizedError(rule.type, rule.desired, group.ambient);
      problem.active.push_back(rule);
    }
    SlotEvaluator legacy(&problem);
    SoaEvaluator soa(&problem);
    Solution s = Solution::Init(static_cast<size_t>(problem.n_rules),
                                InitStrategy::kRandom, &rng);
    Solution s_soa = s;
    const Objectives base = legacy.Evaluate(s);
    soa.Evaluate(s_soa);

    std::vector<int> flips;
    for (int i = 0; i < problem.n_rules; ++i) flips.push_back(i);
    const Solution snapshot = s_soa;
    const Objectives want = legacy.EvaluateWithFlips(&s, base, flips);
    const Objectives got = soa.EvaluateWithFlips(&s_soa, base, flips);
    ASSERT_EQ(s_soa, snapshot) << "degenerate path must revert, seed " << seed;
    // Both sides full-rescan here; the SoA side folds with SIMD, so this
    // comparison is toleranced like a full evaluation.
    EXPECT_NEAR(got.energy_kwh, want.energy_kwh, kFullEvalTol)
        << "seed " << seed;
    EXPECT_NEAR(got.error_sum, want.error_sum, kFullEvalTol)
        << "seed " << seed;

    // The wide ApplyFlips resyncs wholesale; the cache must come back
    // coherent for the next narrow delta.
    legacy.ApplyFlips(&s, flips);
    soa.ApplyFlips(&s_soa, flips);
    ASSERT_EQ(s, s_soa);
    const Objectives next_base = legacy.Evaluate(s);
    const std::vector<int> one = {static_cast<int>(
        rng.UniformInt(0, problem.n_rules - 1))};
    const Objectives next_want = legacy.EvaluateWithFlips(&s, next_base, one);
    const Objectives next_got = soa.EvaluateWithFlips(&s_soa, next_base, one);
    EXPECT_EQ(next_got.energy_kwh, next_want.energy_kwh) << "seed " << seed;
    EXPECT_EQ(next_got.error_sum, next_want.error_sum) << "seed " << seed;
  }
}

// Edge shapes: no active rules at all, and a zero-rule problem.
TEST(SoaEvaluatorTest, DegenerateProblemShapes) {
  {
    SlotProblem empty;
    empty.n_rules = 0;
    empty.budget_kwh = 1.0;
    empty.base_energy_kwh = 0.25;
    SlotEvaluator legacy(&empty);
    SoaEvaluator soa(&empty);
    const Solution s(0);
    const Objectives want = legacy.Evaluate(s);
    const Objectives got = soa.Evaluate(s);
    EXPECT_EQ(got.energy_kwh, want.energy_kwh);
    EXPECT_EQ(got.error_sum, want.error_sum);
    EXPECT_FALSE(soa.IsActive(0));
  }
  {
    // Rules exist but the firewall pruned every one: groups present, no
    // active members.
    SlotProblem inactive;
    inactive.n_rules = 6;
    inactive.budget_kwh = 1.0;
    DeviceGroup group;
    group.type = CommandType::kSetTemperature;
    group.ambient = 15.0;
    inactive.groups.push_back(group);
    SlotEvaluator legacy(&inactive);
    SoaEvaluator soa(&inactive);
    const Solution s(6, 1);
    const Objectives want = legacy.Evaluate(s);
    const Objectives got = soa.Evaluate(s);
    EXPECT_EQ(got.energy_kwh, want.energy_kwh);
    EXPECT_EQ(got.error_sum, want.error_sum);
    for (int r = 0; r < 6; ++r) EXPECT_FALSE(soa.IsActive(r));
    // Flipping inactive rules is a no-op for the objectives.
    const std::vector<int> flips = {0, 3, 5};
    Solution scratch = s;
    const Objectives delta = soa.EvaluateWithFlips(&scratch, got, flips);
    EXPECT_EQ(delta.energy_kwh, got.energy_kwh);
    EXPECT_EQ(delta.error_sum, got.error_sum);
  }
}

// The planner invariant the whole PR rests on: the same planner + seed
// walks the identical trajectory on either kernel.
TEST(SoaEvaluatorTest, HillClimberTrajectoryIdenticalAcrossKernels) {
  EpOptions options;
  options.init = InitStrategy::kRandom;
  const HillClimbingPlanner planner(options);
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(MixHash(0x7247ECULL, seed));
    const SlotProblem problem = RandomProblem(&rng, 2, 16);
    SlotEvaluator legacy(&problem);
    SoaEvaluator soa(&problem);
    Rng rng_legacy(MixHash(seed, 1));
    Rng rng_soa(MixHash(seed, 1));
    const PlanOutcome want = planner.PlanSlot(legacy, &rng_legacy);
    const PlanOutcome got = planner.PlanSlot(soa, &rng_soa);
    ASSERT_EQ(got.solution, want.solution) << "seed " << seed;
    EXPECT_EQ(got.iterations, want.iterations) << "seed " << seed;
    EXPECT_EQ(got.moves_accepted, want.moves_accepted) << "seed " << seed;
    EXPECT_EQ(got.moves_rejected, want.moves_rejected) << "seed " << seed;
    EXPECT_EQ(got.repair_drops, want.repair_drops) << "seed " << seed;
    EXPECT_EQ(got.feasible, want.feasible) << "seed " << seed;
    EXPECT_EQ(got.early_exit, want.early_exit) << "seed " << seed;
    EXPECT_EQ(got.zero_fallback, want.zero_fallback) << "seed " << seed;
    // Final objectives come from each kernel's own full Evaluate, so they
    // are toleranced, not exact.
    EXPECT_NEAR(got.objectives.energy_kwh, want.objectives.energy_kwh,
                kFullEvalTol)
        << "seed " << seed;
    EXPECT_NEAR(got.objectives.error_sum, want.objectives.error_sum,
                kFullEvalTol)
        << "seed " << seed;
    // Both rngs must have consumed the same number of draws.
    EXPECT_EQ(rng_soa.Next(), rng_legacy.Next()) << "seed " << seed;
  }
}

// The factory respects the build-time kernel selection.
TEST(SoaEvaluatorTest, FactoryBuildsConfiguredKernel) {
  SlotProblem problem;
  problem.n_rules = 2;
  problem.budget_kwh = 1.0;
  const std::unique_ptr<Evaluator> evaluator = MakeSlotEvaluator(&problem);
  EXPECT_STREQ(evaluator->kernel_name(), ConfiguredKernelName());
#if IMCF_SOA_EVAL
  EXPECT_STREQ(evaluator->kernel_name(), "soa");
  EXPECT_NE(evaluator->AsSoa(), nullptr);
#else
  EXPECT_STREQ(evaluator->kernel_name(), "legacy");
  EXPECT_EQ(evaluator->AsSoa(), nullptr);
#endif
}

// Borrowed-arena lifetime: reset-then-rebuild reuses the arena blocks and
// yields an evaluator that still agrees with the oracle.
TEST(SoaEvaluatorTest, BorrowedArenaRebuildAfterReset) {
  Rng rng(0xA2E7A);
  PlanArena arena;
  for (int round = 0; round < 8; ++round) {
    arena.Reset();
    const SlotProblem problem = RandomProblem(&rng, 2, 10);
    SlotEvaluator legacy(&problem);
    SoaEvaluator soa(&problem, &arena);
    EXPECT_GT(arena.allocated_bytes(), 0u);
    const Solution s = Solution::Init(static_cast<size_t>(problem.n_rules),
                                      InitStrategy::kRandom, &rng);
    const Objectives want = legacy.Evaluate(s);
    const Objectives got = soa.Evaluate(s);
    EXPECT_NEAR(got.energy_kwh, want.energy_kwh, kFullEvalTol);
    EXPECT_NEAR(got.error_sum, want.error_sum, kFullEvalTol);
  }
}

}  // namespace
}  // namespace core
}  // namespace imcf
