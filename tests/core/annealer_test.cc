#include "core/annealer.h"

#include <gtest/gtest.h>

#include "core/hill_climber.h"

namespace imcf {
namespace core {
namespace {

using devices::CommandType;

SlotProblem IndependentSlot(double budget) {
  SlotProblem problem;
  problem.n_rules = 8;
  problem.budget_kwh = budget;
  const double energies[8] = {0.9, 0.2, 0.5, 0.15, 0.6, 0.25, 0.4, 0.3};
  const double drop_errors[8] = {1.0, 0.7, 0.45, 0.1, 0.65, 0.8, 0.3, 0.5};
  for (int i = 0; i < 8; ++i) {
    problem.groups.push_back({0.0, CommandType::kSetLight});
    ActiveRule rule;
    rule.rule_index = i;
    rule.group = i;
    rule.type = CommandType::kSetLight;
    rule.desired = 40.0;
    rule.energy_kwh = energies[i];
    rule.drop_error = drop_errors[i];
    problem.active.push_back(rule);
  }
  return problem;
}

TEST(AnnealerTest, FeasibleUnderTightBudget) {
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  SimulatedAnnealingPlanner planner;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
    EXPECT_TRUE(outcome.feasible);
    EXPECT_LE(outcome.objectives.energy_kwh, 1.0 + 1e-9);
  }
}

TEST(AnnealerTest, LooseBudgetKeepsEverything) {
  const SlotProblem problem = IndependentSlot(10.0);
  SlotEvaluator evaluator(&problem);
  SimulatedAnnealingPlanner planner;
  Rng rng(1);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_DOUBLE_EQ(outcome.objectives.error_sum, 0.0);
}

TEST(AnnealerTest, DeterministicGivenSeed) {
  const SlotProblem problem = IndependentSlot(1.3);
  SlotEvaluator evaluator(&problem);
  SimulatedAnnealingPlanner planner;
  Rng a(5), b(5);
  EXPECT_EQ(planner.PlanSlot(evaluator, &a).solution,
            planner.PlanSlot(evaluator, &b).solution);
}

TEST(AnnealerTest, ReportsBestSeenNotLastVisited) {
  // With a high initial temperature the walker accepts worse moves, but
  // the outcome must never be worse than what it visited.
  SaOptions options;
  options.initial_temperature = 2.0;
  options.cooling = 0.999;
  options.tau_max = 300;
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  SimulatedAnnealingPlanner planner(options);
  HillClimbingPlanner greedy;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
    EXPECT_TRUE(outcome.feasible);
    // SA should be in the same quality league as the climber.
    Rng rng2(seed);
    const PlanOutcome hc = greedy.PlanSlot(evaluator, &rng2);
    EXPECT_LE(outcome.objectives.error_sum,
              hc.objectives.error_sum + 0.8);
  }
}

TEST(AnnealerTest, ZeroBudgetFallsBackToNoRule) {
  const SlotProblem problem = IndependentSlot(0.0);
  SlotEvaluator evaluator(&problem);
  SaOptions options;
  options.tau_max = 60;
  SimulatedAnnealingPlanner planner(options);
  Rng rng(2);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.solution.CountAdopted(), 0u);
}

TEST(AnnealerTest, Name) {
  EXPECT_EQ(SimulatedAnnealingPlanner().name(), "SA");
}

// Escaping a local optimum: construct a slot where flipping any single pair
// of "bundle" rules worsens error but the global optimum swaps a bundle.
TEST(AnnealerTest, HighTemperatureExploresMore) {
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  SaOptions cold;
  cold.initial_temperature = 1e-6;
  cold.tau_max = 200;
  SaOptions hot;
  hot.initial_temperature = 1.0;
  hot.cooling = 0.98;
  hot.tau_max = 200;
  double cold_total = 0.0, hot_total = 0.0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng r1(seed), r2(seed);
    cold_total += SimulatedAnnealingPlanner(cold)
                      .PlanSlot(evaluator, &r1)
                      .objectives.error_sum;
    hot_total += SimulatedAnnealingPlanner(hot)
                     .PlanSlot(evaluator, &r2)
                     .objectives.error_sum;
  }
  // Both must be in a sane band; hot exploration should not be
  // catastrophically worse (best-seen tracking) and typically helps.
  EXPECT_LT(hot_total, cold_total * 1.5 + 1.0);
}

}  // namespace
}  // namespace core
}  // namespace imcf
