// PlanArena contract tests: alignment, accounting, block retention across
// Reset(), and non-overlap of handed-out regions (the lifetime rules are
// documented in plan_arena.h and DESIGN.md §12).

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_arena.h"

namespace imcf {
namespace core {
namespace {

bool IsAligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % PlanArena::kAlignment == 0;
}

TEST(PlanArenaTest, EveryAllocationIsCacheLineAligned) {
  PlanArena arena;
  // Deliberately awkward sizes so the bump pointer lands off-alignment
  // between calls and has to round back up.
  const size_t sizes[] = {1, 3, 64, 65, 7, 1000, 13, 4096, 1};
  for (size_t bytes : sizes) {
    void* p = arena.AllocateBytes(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(IsAligned(p)) << "allocation of " << bytes << " bytes";
  }
  EXPECT_TRUE(IsAligned(arena.AllocateArray<double>(17)));
  EXPECT_TRUE(IsAligned(arena.AllocateArray<int32_t>(3)));
}

TEST(PlanArenaTest, ZeroByteAllocationIsValidAndNonNull) {
  PlanArena arena;
  void* a = arena.AllocateBytes(0);
  EXPECT_NE(a, nullptr);
  EXPECT_TRUE(IsAligned(a));
}

TEST(PlanArenaTest, RegionsDoNotOverlap) {
  PlanArena arena(256);  // small first block to force several growths
  std::vector<std::pair<char*, size_t>> regions;
  const size_t sizes[] = {32, 100, 256, 7, 512, 64, 2048, 1, 300};
  for (size_t bytes : sizes) {
    char* p = static_cast<char*>(arena.AllocateBytes(bytes));
    std::memset(p, 0xAB, bytes);
    regions.emplace_back(p, bytes);
  }
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = i + 1; j < regions.size(); ++j) {
      const char* a_lo = regions[i].first;
      const char* a_hi = a_lo + regions[i].second;
      const char* b_lo = regions[j].first;
      const char* b_hi = b_lo + regions[j].second;
      EXPECT_TRUE(a_hi <= b_lo || b_hi <= a_lo)
          << "regions " << i << " and " << j << " overlap";
    }
  }
  // Writes through one region must not have corrupted another: fill each
  // with a distinct byte, then verify all of them.
  for (size_t i = 0; i < regions.size(); ++i) {
    std::memset(regions[i].first, static_cast<int>(i + 1),
                regions[i].second);
  }
  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t b = 0; b < regions[i].second; ++b) {
      ASSERT_EQ(regions[i].first[b], static_cast<char>(i + 1))
          << "region " << i << " byte " << b;
    }
  }
}

TEST(PlanArenaTest, AccountingTracksAllocationsAndHighWater) {
  PlanArena arena;
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  arena.AllocateBytes(100);
  arena.AllocateBytes(28);
  EXPECT_EQ(arena.allocated_bytes(), 128u);
  EXPECT_GE(arena.high_water_bytes(), 128u);
  const size_t high = arena.high_water_bytes();
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.high_water_bytes(), high) << "high water survives Reset";
  arena.AllocateBytes(16);
  EXPECT_EQ(arena.allocated_bytes(), 16u);
  EXPECT_EQ(arena.high_water_bytes(), high);
}

TEST(PlanArenaTest, ResetRetainsBlocksSoSteadyStateDoesNotAllocate) {
  PlanArena arena(1024);
  // Warm up well past the first block.
  for (int i = 0; i < 16; ++i) arena.AllocateBytes(1024);
  const size_t warmed_blocks = arena.block_count();
  EXPECT_GE(warmed_blocks, 1u);
  // Steady state: the same fill pattern after Reset() must be served
  // entirely from retained blocks.
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    for (int i = 0; i < 16; ++i) {
      void* p = arena.AllocateBytes(1024);
      ASSERT_NE(p, nullptr);
      ASSERT_TRUE(IsAligned(p));
    }
    EXPECT_EQ(arena.block_count(), warmed_blocks) << "round " << round;
  }
}

TEST(PlanArenaTest, OversizedRequestGetsItsOwnBlock) {
  PlanArena arena(64);
  // Far larger than the first block: must still succeed, aligned.
  char* p = static_cast<char*>(arena.AllocateBytes(1 << 20));
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(IsAligned(p));
  std::memset(p, 0x5C, 1 << 20);  // the whole region must be writable
  EXPECT_EQ(arena.allocated_bytes(), static_cast<size_t>(1 << 20));
}

TEST(PlanArenaTest, TypedArraysAreUsable) {
  PlanArena arena;
  double* d = arena.AllocateArray<double>(33);
  int32_t* i32 = arena.AllocateArray<int32_t>(7);
  uint64_t* u64 = arena.AllocateArray<uint64_t>(5);
  for (int i = 0; i < 33; ++i) d[i] = 1.5 * i;
  for (int i = 0; i < 7; ++i) i32[i] = -i;
  for (int i = 0; i < 5; ++i) u64[i] = ~static_cast<uint64_t>(i);
  for (int i = 0; i < 33; ++i) ASSERT_EQ(d[i], 1.5 * i);
  for (int i = 0; i < 7; ++i) ASSERT_EQ(i32[i], -i);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(u64[i], ~static_cast<uint64_t>(i));
}

}  // namespace
}  // namespace core
}  // namespace imcf
