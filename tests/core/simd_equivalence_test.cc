// Scalar-vs-SIMD equivalence for the simd::SumColumns reduction.
//
// This translation unit is compiled with -mavx2 when the toolchain
// supports it (see tests/CMakeLists.txt), so simd::SumColumns here is the
// same AVX2 backend the SoA evaluator's TU gets, while SumColumnsScalar is
// the strict left-to-right reference. In IMCF_SIMD_AVX2=OFF builds the
// global IMCF_SIMD_FORCE_SCALAR definition collapses both to the scalar
// backend and the suite degenerates to an exact self-comparison — still a
// valid (if trivial) run, so no test is skipped in any configuration.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"

namespace imcf {
namespace simd {
namespace {

// Lane folding reassociates the sum, so the two backends may disagree by a
// few ulps per element; this bound is far looser than that and far tighter
// than anything the planner's 1e-9 differential tolerance could mask.
constexpr double kTol = 1e-9;

TEST(SimdEquivalenceTest, BackendNameIsKnown) {
  const std::string name = BackendName();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
}

TEST(SimdEquivalenceTest, MatchesScalarAcrossSizesAndMagnitudes) {
  Rng rng(0x51D3);
  // Sizes straddling every path boundary: the n<4 scalar early-out, the
  // 4-wide vector loop, and the 1-3 element tail after it.
  const size_t sizes[] = {0,  1,  2,  3,  4,  5,  6,  7,   8,
                          15, 16, 63, 64, 65, 100, 128, 1000};
  for (size_t n : sizes) {
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<double> a(n);
      std::vector<double> b(n);
      for (size_t i = 0; i < n; ++i) {
        // Mixed magnitudes and signs make the reassociation error real
        // rather than structurally zero.
        a[i] = rng.UniformDouble(-1.0, 1.0) *
               std::pow(10.0, rng.UniformDouble(-3.0, 3.0));
        b[i] = rng.UniformDouble(-1.0, 1.0) *
               std::pow(10.0, rng.UniformDouble(-3.0, 3.0));
      }
      double want_a = 0.0;
      double want_b = 0.0;
      SumColumnsScalar(a.data(), b.data(), n, &want_a, &want_b);
      double got_a = 0.0;
      double got_b = 0.0;
      SumColumns(a.data(), b.data(), n, &got_a, &got_b);
      const double scale =
          1.0 + std::max(std::abs(want_a), std::abs(want_b));
      ASSERT_NEAR(got_a, want_a, kTol * scale) << "n=" << n;
      ASSERT_NEAR(got_b, want_b, kTol * scale) << "n=" << n;
    }
  }
}

TEST(SimdEquivalenceTest, TinyColumnsAreBitExact) {
  // n < 4 takes the scalar early-out on every backend (on AVX2 this also
  // keeps the YMM upper state clean — see simd.h), so the result is the
  // exact sequential sum, bit for bit.
  Rng rng(0xB17);
  for (size_t n = 0; n < 4; ++n) {
    for (int trial = 0; trial < 200; ++trial) {
      double a[4] = {};
      double b[4] = {};
      for (size_t i = 0; i < n; ++i) {
        a[i] = rng.UniformDouble(-1e6, 1e6);
        b[i] = rng.UniformDouble(-1e6, 1e6);
      }
      double want_a = 0.0;
      double want_b = 0.0;
      SumColumnsScalar(a, b, n, &want_a, &want_b);
      double got_a = 0.0;
      double got_b = 0.0;
      SumColumns(a, b, n, &got_a, &got_b);
      EXPECT_EQ(got_a, want_a) << "n=" << n;
      EXPECT_EQ(got_b, want_b) << "n=" << n;
    }
  }
}

TEST(SimdEquivalenceTest, ExactForIntegerValuedInputs) {
  // Integer-valued doubles sum exactly in any association order, so both
  // backends must agree bit-for-bit — this isolates "wrong elements read"
  // bugs from benign reassociation noise.
  Rng rng(0x1A7E6E2);
  const size_t sizes[] = {4, 5, 7, 8, 64, 129, 1000};
  for (size_t n : sizes) {
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<double>(static_cast<int>(rng.UniformInt(0, 1000)));
      b[i] = static_cast<double>(static_cast<int>(rng.UniformInt(0, 1000)));
    }
    double want_a = 0.0;
    double want_b = 0.0;
    SumColumnsScalar(a.data(), b.data(), n, &want_a, &want_b);
    double got_a = 0.0;
    double got_b = 0.0;
    SumColumns(a.data(), b.data(), n, &got_a, &got_b);
    EXPECT_EQ(got_a, want_a) << "n=" << n;
    EXPECT_EQ(got_b, want_b) << "n=" << n;
  }
}

}  // namespace
}  // namespace simd
}  // namespace imcf
