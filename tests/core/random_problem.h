// Shared random SlotProblem corpus generator for the core differential and
// property tests. Every test that wants "a thousand structurally diverse
// slot problems" draws them from here so the corpora stay comparable
// across suites (and a kernel bug caught by one suite reproduces under the
// others with the same seed).

#ifndef IMCF_TESTS_CORE_RANDOM_PROBLEM_H_
#define IMCF_TESTS_CORE_RANDOM_PROBLEM_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/hill_climber.h"

namespace imcf {
namespace core {
namespace testutil {

/// A random slot problem: 1..max_groups device groups of mixed command
/// types, each rule assigned to a random group with ~25% of rule slots left
/// inactive (the MRT positions the firewall pruned before planning).
inline SlotProblem RandomProblem(Rng* rng, int min_groups = 1,
                                 int max_groups = 8) {
  using devices::CommandType;
  SlotProblem problem;
  const int n_groups =
      static_cast<int>(rng->UniformInt(min_groups, max_groups));
  problem.n_rules = static_cast<int>(rng->UniformInt(n_groups, 4 * n_groups));
  problem.budget_kwh = rng->UniformDouble(0.5, 10.0);
  problem.base_energy_kwh = rng->UniformDouble(0.0, 1.0);
  for (int g = 0; g < n_groups; ++g) {
    DeviceGroup group;
    group.type = rng->Bernoulli(0.5) ? CommandType::kSetTemperature
                                     : CommandType::kSetLight;
    group.ambient = group.type == CommandType::kSetTemperature
                        ? rng->UniformDouble(5.0, 30.0)
                        : rng->UniformDouble(0.0, 80.0);
    problem.groups.push_back(group);
  }
  for (int i = 0; i < problem.n_rules; ++i) {
    if (rng->Bernoulli(0.25)) continue;  // leave some rules inactive
    ActiveRule rule;
    rule.rule_index = i;
    rule.group = static_cast<int>(rng->UniformInt(0, n_groups - 1));
    rule.type = problem.groups[static_cast<size_t>(rule.group)].type;
    rule.desired = rule.type == CommandType::kSetTemperature
                       ? rng->UniformDouble(16.0, 28.0)
                       : rng->UniformDouble(10.0, 70.0);
    rule.energy_kwh = rng->UniformDouble(0.0, 1.5);
    rule.drop_error = NormalizedError(
        rule.type, rule.desired,
        problem.groups[static_cast<size_t>(rule.group)].ambient);
    problem.active.push_back(rule);
  }
  return problem;
}

/// A random k-opt flip set over the problem's rule indices, k in [1, 8]
/// (the EP's neighborhood shape).
inline std::vector<int> RandomFlips(const SlotProblem& problem, Rng* rng) {
  std::vector<int> flips;
  const int k = 1 + static_cast<int>(
                        rng->UniformInt(0, std::min(7, problem.n_rules - 1)));
  SampleDistinct(problem.n_rules, k, rng, &flips);
  return flips;
}

}  // namespace testutil
}  // namespace core
}  // namespace imcf

#endif  // IMCF_TESTS_CORE_RANDOM_PROBLEM_H_
