#include "core/solution.h"

#include <gtest/gtest.h>

namespace imcf {
namespace core {
namespace {

TEST(SolutionTest, DefaultAndFill) {
  Solution empty;
  EXPECT_EQ(empty.size(), 0u);
  Solution zeros(6);
  EXPECT_EQ(zeros.CountAdopted(), 0u);
  Solution ones(6, 1);
  EXPECT_EQ(ones.CountAdopted(), 6u);
}

TEST(SolutionTest, SetFlipAdopted) {
  Solution s(4);
  s.set(1, true);
  s.set(3, true);
  EXPECT_FALSE(s.adopted(0));
  EXPECT_TRUE(s.adopted(1));
  EXPECT_EQ(s.ToString(), "0101");
  s.flip(1);
  s.flip(0);
  EXPECT_EQ(s.ToString(), "1001");
  EXPECT_EQ(s.CountAdopted(), 2u);
}

TEST(SolutionTest, Equality) {
  Solution a(3), b(3);
  EXPECT_EQ(a, b);
  a.set(2, true);
  EXPECT_NE(a, b);
  b.set(2, true);
  EXPECT_EQ(a, b);
}

TEST(InitTest, AllOnes) {
  Rng rng(1);
  const Solution s = Solution::Init(6, InitStrategy::kAllOnes, &rng);
  EXPECT_EQ(s.CountAdopted(), 6u);
}

TEST(InitTest, AllZeros) {
  Rng rng(1);
  const Solution s = Solution::Init(6, InitStrategy::kAllZeros, &rng);
  EXPECT_EQ(s.CountAdopted(), 0u);
}

TEST(InitTest, RandomIsBalancedAndSeeded) {
  Rng rng_a(5), rng_b(5), rng_c(6);
  const Solution a = Solution::Init(1000, InitStrategy::kRandom, &rng_a);
  const Solution b = Solution::Init(1000, InitStrategy::kRandom, &rng_b);
  const Solution c = Solution::Init(1000, InitStrategy::kRandom, &rng_c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(a.CountAdopted(), 400u);
  EXPECT_LT(a.CountAdopted(), 600u);
}

TEST(InitTest, StrategyNames) {
  EXPECT_STREQ(InitStrategyName(InitStrategy::kAllOnes), "all-1s");
  EXPECT_STREQ(InitStrategyName(InitStrategy::kRandom), "random");
  EXPECT_STREQ(InitStrategyName(InitStrategy::kAllZeros), "all-0s");
}

// The paper's running example (Fig. 4): s* = <1,0,0,1>, flip components
// 2 and 4 (1-based) to get s = <1,1,0,0>.
TEST(SolutionTest, PaperExampleTransition) {
  Solution s(4);
  s.set(0, true);
  s.set(3, true);
  EXPECT_EQ(s.ToString(), "1001");
  s.flip(1);
  s.flip(3);
  EXPECT_EQ(s.ToString(), "1100");
}

}  // namespace
}  // namespace core
}  // namespace imcf
