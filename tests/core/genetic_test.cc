#include "core/genetic.h"

#include <gtest/gtest.h>

#include "core/hill_climber.h"

namespace imcf {
namespace core {
namespace {

using devices::CommandType;

SlotProblem IndependentSlot(double budget) {
  SlotProblem problem;
  problem.n_rules = 8;
  problem.budget_kwh = budget;
  const double energies[8] = {0.9, 0.2, 0.5, 0.15, 0.6, 0.25, 0.4, 0.3};
  const double drop_errors[8] = {1.0, 0.7, 0.45, 0.1, 0.65, 0.8, 0.3, 0.5};
  for (int i = 0; i < 8; ++i) {
    problem.groups.push_back({0.0, CommandType::kSetLight});
    ActiveRule rule;
    rule.rule_index = i;
    rule.group = i;
    rule.type = CommandType::kSetLight;
    rule.desired = 40.0;
    rule.energy_kwh = energies[i];
    rule.drop_error = drop_errors[i];
    problem.active.push_back(rule);
  }
  return problem;
}

TEST(GeneticPlannerTest, FeasibleUnderTightBudget) {
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  GeneticPlanner planner;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
    EXPECT_TRUE(outcome.feasible);
    EXPECT_LE(outcome.objectives.energy_kwh, 1.0 + 1e-9);
  }
}

TEST(GeneticPlannerTest, LooseBudgetReachesZeroError) {
  const SlotProblem problem = IndependentSlot(10.0);
  SlotEvaluator evaluator(&problem);
  GeneticPlanner planner;
  Rng rng(1);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  // The seeded all-1s elite is already optimal.
  EXPECT_TRUE(outcome.feasible);
  EXPECT_DOUBLE_EQ(outcome.objectives.error_sum, 0.0);
}

TEST(GeneticPlannerTest, DeterministicGivenSeed) {
  const SlotProblem problem = IndependentSlot(1.3);
  SlotEvaluator evaluator(&problem);
  GeneticPlanner planner;
  Rng a(5), b(5);
  EXPECT_EQ(planner.PlanSlot(evaluator, &a).solution,
            planner.PlanSlot(evaluator, &b).solution);
}

TEST(GeneticPlannerTest, QualityComparableToClimber) {
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  GaOptions ga;
  ga.tau_max = 600;
  GeneticPlanner genetic(ga);
  EpOptions ep;
  ep.tau_max = 600;
  HillClimbingPlanner climber(ep);
  double ga_total = 0.0, hc_total = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng r1(seed), r2(seed);
    ga_total += genetic.PlanSlot(evaluator, &r1).objectives.error_sum;
    hc_total += climber.PlanSlot(evaluator, &r2).objectives.error_sum;
  }
  EXPECT_LT(ga_total, hc_total + 2.0);  // same quality league
}

TEST(GeneticPlannerTest, ZeroBudgetFallsBackToNoRule) {
  const SlotProblem problem = IndependentSlot(0.0);
  SlotEvaluator evaluator(&problem);
  GaOptions options;
  options.tau_max = 64;
  GeneticPlanner planner(options);
  Rng rng(2);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.solution.CountAdopted(), 0u);
}

TEST(GeneticPlannerTest, EvaluationBudgetRespected) {
  const SlotProblem problem = IndependentSlot(1.0);
  SlotEvaluator evaluator(&problem);
  GaOptions options;
  options.tau_max = 100;
  GeneticPlanner planner(options);
  Rng rng(3);
  const PlanOutcome outcome = planner.PlanSlot(evaluator, &rng);
  EXPECT_LE(outcome.iterations, 100);
  EXPECT_GE(outcome.iterations, options.population);
}

TEST(GeneticPlannerTest, Name) { EXPECT_EQ(GeneticPlanner().name(), "GA"); }

}  // namespace
}  // namespace core
}  // namespace imcf
