#include "energy/carbon.h"

#include <gtest/gtest.h>

#include <numeric>

namespace imcf {
namespace energy {
namespace {

TEST(CarbonProfileTest, DeterministicAndPositive) {
  CarbonProfile a, b;
  for (int h = 0; h < 48; ++h) {
    const SimTime t = FromCivil(2015, 6, 1, h % 24) +
                      (h / 24) * kSecondsPerDay;
    EXPECT_DOUBLE_EQ(a.IntensityAt(t), b.IntensityAt(t));
    EXPECT_GT(a.IntensityAt(t), 0.0);
  }
}

TEST(CarbonProfileTest, MiddaySolarDip) {
  CarbonProfile profile;
  double midday = 0.0, predawn = 0.0;
  for (int day = 1; day <= 28; ++day) {
    midday += profile.IntensityAt(FromCivil(2015, 7, day, 13));
    predawn += profile.IntensityAt(FromCivil(2015, 7, day, 4));
  }
  EXPECT_LT(midday / 28, predawn / 28 - 40.0);
}

TEST(CarbonProfileTest, EveningPeak) {
  CarbonProfile profile;
  double evening = 0.0, afternoon = 0.0;
  for (int day = 1; day <= 28; ++day) {
    evening += profile.IntensityAt(FromCivil(2015, 1, day, 20));
    afternoon += profile.IntensityAt(FromCivil(2015, 1, day, 15));
  }
  EXPECT_GT(evening / 28, afternoon / 28);
}

TEST(CarbonProfileTest, WinterDirtierThanSummer) {
  CarbonProfile profile;
  double winter = 0.0, summer = 0.0;
  for (int day = 1; day <= 28; ++day) {
    winter += profile.DailyMean(FromCivil(2015, 1, day));
    summer += profile.DailyMean(FromCivil(2015, 7, day));
  }
  EXPECT_GT(winter / 28, summer / 28 + 40.0);
}

TEST(CarbonProfileTest, SolarDipStrongerInSummer) {
  CarbonProfile profile;
  auto dip = [&](int month) {
    double night = 0.0, noon = 0.0;
    for (int day = 1; day <= 28; ++day) {
      night += profile.IntensityAt(FromCivil(2015, month, day, 3));
      noon += profile.IntensityAt(FromCivil(2015, month, day, 13));
    }
    return (night - noon) / 28.0;
  };
  EXPECT_GT(dip(7), dip(1));
}

TEST(CarbonTiltTest, ZeroAlphaIsIdentity) {
  CarbonProfile profile;
  const auto weights =
      CarbonTiltWeights(profile, FromCivil(2015, 5, 10), 0.0);
  ASSERT_EQ(weights.size(), 24u);
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(CarbonTiltTest, ConservesDailyBudget) {
  CarbonProfile profile;
  for (double alpha : {0.2, 0.5, 1.0}) {
    const auto weights =
        CarbonTiltWeights(profile, FromCivil(2015, 5, 10), alpha);
    const double sum =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    EXPECT_NEAR(sum, 24.0, 1e-9) << "alpha " << alpha;
    for (double w : weights) EXPECT_GE(w, 0.0);
  }
}

TEST(CarbonTiltTest, ShiftsBudgetTowardCleanHours) {
  CarbonProfile profile;
  const SimTime day = FromCivil(2015, 7, 10);
  const auto weights = CarbonTiltWeights(profile, day, 0.8);
  // Midday (solar dip) must get more than the evening peak.
  EXPECT_GT(weights[13], weights[20]);
  EXPECT_GT(weights[13], 1.0);
  EXPECT_LT(weights[20], 1.0);
}

}  // namespace
}  // namespace energy
}  // namespace imcf
