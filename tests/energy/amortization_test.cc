#include "energy/amortization.h"

#include <gtest/gtest.h>

namespace imcf {
namespace energy {
namespace {

AmortizationOptions YearOptions(AmortizationKind kind, double budget) {
  AmortizationOptions options;
  options.kind = kind;
  options.total_budget_kwh = budget;
  options.period_start = FromCivil(2015, 1, 1);
  options.period_end = FromCivil(2016, 1, 1);
  return options;
}

TEST(AmortizationTest, ValidationErrors) {
  const Ecp ecp = FlatEcp();
  AmortizationOptions bad = YearOptions(AmortizationKind::kLaf, 1000);
  bad.period_end = bad.period_start;
  EXPECT_FALSE(AmortizationPlan::Create(bad, ecp).ok());

  bad = YearOptions(AmortizationKind::kLaf, 0.0);
  EXPECT_FALSE(AmortizationPlan::Create(bad, ecp).ok());

  bad = YearOptions(AmortizationKind::kBlaf, 1000);
  bad.balloon_fraction = 1.5;
  EXPECT_FALSE(AmortizationPlan::Create(bad, ecp).ok());

  bad = YearOptions(AmortizationKind::kBlaf, 1000);
  bad.balloon_months = {13};
  EXPECT_FALSE(AmortizationPlan::Create(bad, ecp).ok());
}

TEST(LafTest, UniformHourlyBudget) {
  // Eq. 3: E_p = TE / t. For TE = 3666 over a 365-day year the hourly
  // budget is 3666 / 8760 = 0.4185 everywhere.
  const auto plan =
      AmortizationPlan::Create(YearOptions(AmortizationKind::kLaf, 3666.0),
                               FlatEcp());
  ASSERT_TRUE(plan.ok());
  const double expected = 3666.0 / 8760.0;
  EXPECT_NEAR(plan->HourlyBudget(FromCivil(2015, 1, 15, 3)), expected, 1e-9);
  EXPECT_NEAR(plan->HourlyBudget(FromCivil(2015, 7, 4, 18)), expected, 1e-9);
  EXPECT_NEAR(plan->HourlyBudget(FromCivil(2015, 12, 31, 23)), expected,
              1e-9);
}

TEST(LafTest, ZeroOutsidePeriod) {
  const auto plan =
      AmortizationPlan::Create(YearOptions(AmortizationKind::kLaf, 3666.0),
                               FlatEcp());
  EXPECT_DOUBLE_EQ(plan->HourlyBudget(FromCivil(2014, 12, 31, 23)), 0.0);
  EXPECT_DOUBLE_EQ(plan->HourlyBudget(FromCivil(2016, 1, 1, 0)), 0.0);
}

TEST(LafTest, MonthBudgetsProportionalToHours) {
  const auto plan =
      AmortizationPlan::Create(YearOptions(AmortizationKind::kLaf, 8760.0),
                               FlatEcp());
  EXPECT_NEAR(plan->MonthBudget(FromCivil(2015, 1, 10)), 744.0, 1e-6);
  EXPECT_NEAR(plan->MonthBudget(FromCivil(2015, 2, 10)), 672.0, 1e-6);
  EXPECT_NEAR(plan->MonthBudget(FromCivil(2015, 4, 10)), 720.0, 1e-6);
}

TEST(BlafTest, ConservesTotalBudget) {
  auto options = YearOptions(AmortizationKind::kBlaf, 3666.0);
  options.balloon_fraction = 0.30;
  options.balloon_months = {4, 5, 6, 7, 8, 9, 10};
  const auto plan = AmortizationPlan::Create(options, FlatEcp());
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->TotalBudget(), 3666.0, 1e-6);
  double sum = 0.0;
  for (const auto& slot : plan->slots()) sum += slot.budget_kwh;
  EXPECT_NEAR(sum, 3666.0, 1e-6);
}

TEST(BlafTest, BalloonMonthsSaveOthersRelease) {
  auto options = YearOptions(AmortizationKind::kBlaf, 8760.0);
  options.balloon_fraction = 0.30;
  options.balloon_months = {4, 5, 6, 7, 8, 9, 10};
  const auto plan = AmortizationPlan::Create(options, FlatEcp());
  // Uniform would be 1.0 kWh/h: balloon months get 0.7, others more.
  EXPECT_NEAR(plan->HourlyBudget(FromCivil(2015, 6, 10, 12)), 0.7, 1e-6);
  EXPECT_GT(plan->HourlyBudget(FromCivil(2015, 1, 10, 12)), 1.0);
  // Paper's example proportions (Eq. 4): saved sigma redistributed across
  // the other five months.
  const double winter = plan->HourlyBudget(FromCivil(2015, 12, 10, 12));
  const double summer = plan->HourlyBudget(FromCivil(2015, 7, 10, 12));
  EXPECT_NEAR(winter / summer, (1.0 + 0.3 * (5136.0 / 3624.0)) / 0.7, 1e-3);
}

TEST(BlafTest, ZeroFractionDegeneratesToLaf) {
  auto options = YearOptions(AmortizationKind::kBlaf, 3666.0);
  options.balloon_fraction = 0.0;
  const auto blaf = AmortizationPlan::Create(options, FlatEcp());
  const auto laf = AmortizationPlan::Create(
      YearOptions(AmortizationKind::kLaf, 3666.0), FlatEcp());
  for (int month = 1; month <= 12; ++month) {
    const SimTime t = FromCivil(2015, month, 15);
    EXPECT_NEAR(blaf->HourlyBudget(t), laf->HourlyBudget(t), 1e-9);
  }
}

TEST(EafTest, FollowsEcpWeights) {
  // Eq. 5 example: hourly budget of month i is w_i * E / month_hours.
  const auto plan =
      AmortizationPlan::Create(YearOptions(AmortizationKind::kEaf, 3500.0),
                               FlatEcp());
  ASSERT_TRUE(plan.ok());
  const Ecp ecp = FlatEcp();
  for (int month = 1; month <= 12; ++month) {
    const double month_hours = DaysInMonth(2015, month) * 24.0;
    const double expected = ecp.Weight(month) * 3500.0 / month_hours;
    EXPECT_NEAR(plan->HourlyBudget(FromCivil(2015, month, 15, 10)), expected,
                1e-9)
        << MonthName(month);
  }
}

TEST(EafTest, ConservesTotalBudget) {
  const auto plan =
      AmortizationPlan::Create(YearOptions(AmortizationKind::kEaf, 3500.0),
                               FlatEcp());
  double sum = 0.0;
  for (const auto& slot : plan->slots()) sum += slot.budget_kwh;
  EXPECT_NEAR(sum, 3500.0, 1e-6);
}

TEST(EafTest, JanuaryGetsMostAprilLeast) {
  const auto plan =
      AmortizationPlan::Create(YearOptions(AmortizationKind::kEaf, 11000.0),
                               FlatEcp());
  double min_budget = 1e18, max_budget = 0.0;
  int min_month = 0, max_month = 0;
  for (int m = 1; m <= 12; ++m) {
    const double b = plan->MonthBudget(FromCivil(2015, m, 15));
    if (b < min_budget) {
      min_budget = b;
      min_month = m;
    }
    if (b > max_budget) {
      max_budget = b;
      max_month = m;
    }
  }
  EXPECT_EQ(max_month, 1);
  EXPECT_EQ(min_month, 4);
}

TEST(MultiYearTest, ThreeYearPeriodSplitsEvenly) {
  AmortizationOptions options;
  options.kind = AmortizationKind::kEaf;
  options.total_budget_kwh = 11000.0;
  options.period_start = FromCivil(2014, 1, 1);
  options.period_end = FromCivil(2017, 1, 1);
  const auto plan = AmortizationPlan::Create(options, FlatEcp());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->slots().size(), 36u);
  // Each January gets roughly a third of the total January allocation.
  const double jan_2014 = plan->MonthBudget(FromCivil(2014, 1, 15));
  const double jan_2016 = plan->MonthBudget(FromCivil(2016, 1, 15));
  EXPECT_NEAR(jan_2014, jan_2016, 1e-6);
  EXPECT_NEAR(jan_2014, 11000.0 * FlatEcp().Weight(1) / 3.0, 1.0);
}

TEST(PartialPeriodTest, WeekUsesOnlyItsShare) {
  AmortizationOptions options;
  options.kind = AmortizationKind::kLaf;
  options.total_budget_kwh = 165.0;  // the prototype family's weekly cap
  options.period_start = FromCivil(2016, 2, 15);
  options.period_end = options.period_start + 7 * kSecondsPerDay;
  const auto plan = AmortizationPlan::Create(options, FlatEcp());
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->HourlyBudget(options.period_start + kSecondsPerHour),
              165.0 / 168.0, 1e-9);
  double sum = 0.0;
  for (const auto& slot : plan->slots()) sum += slot.budget_kwh;
  EXPECT_NEAR(sum, 165.0, 1e-9);
}

TEST(PartialPeriodTest, EafRenormalisesAcrossPartialMonths) {
  AmortizationOptions options;
  options.kind = AmortizationKind::kEaf;
  options.total_budget_kwh = 600.0;
  options.period_start = FromCivil(2015, 1, 20);
  options.period_end = FromCivil(2015, 3, 10);
  const auto plan = AmortizationPlan::Create(options, FlatEcp());
  ASSERT_TRUE(plan.ok());
  double sum = 0.0;
  for (const auto& slot : plan->slots()) sum += slot.budget_kwh;
  EXPECT_NEAR(sum, 600.0, 1e-6);
  // January's partial slice still out-weighs March's per hour.
  EXPECT_GT(plan->HourlyBudget(FromCivil(2015, 1, 25)),
            plan->HourlyBudget(FromCivil(2015, 3, 5)));
}

TEST(KindNameTest, Names) {
  EXPECT_STREQ(AmortizationKindName(AmortizationKind::kLaf), "LAF");
  EXPECT_STREQ(AmortizationKindName(AmortizationKind::kBlaf), "BLAF");
  EXPECT_STREQ(AmortizationKindName(AmortizationKind::kEaf), "EAF");
}

// Conservation property across kinds and budgets.
class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<AmortizationKind, double>> {
};

TEST_P(ConservationSweep, PlanSpendsExactlyTheBudget) {
  const auto [kind, budget] = GetParam();
  const auto plan =
      AmortizationPlan::Create(YearOptions(kind, budget), FlatEcp());
  ASSERT_TRUE(plan.ok());
  double sum = 0.0;
  for (const auto& slot : plan->slots()) {
    sum += slot.budget_kwh;
    EXPECT_GE(slot.budget_kwh, 0.0);
  }
  EXPECT_NEAR(sum, budget, budget * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndBudgets, ConservationSweep,
    ::testing::Combine(::testing::Values(AmortizationKind::kLaf,
                                         AmortizationKind::kBlaf,
                                         AmortizationKind::kEaf),
                       ::testing::Values(100.0, 3666.0, 11000.0, 480000.0)));

}  // namespace
}  // namespace energy
}  // namespace imcf
