#include "energy/budget.h"

#include <gtest/gtest.h>

namespace imcf {
namespace energy {
namespace {

AmortizationPlan YearPlan(AmortizationKind kind, double budget) {
  AmortizationOptions options;
  options.kind = kind;
  options.total_budget_kwh = budget;
  options.period_start = FromCivil(2015, 1, 1);
  options.period_end = FromCivil(2016, 1, 1);
  return *AmortizationPlan::Create(options, FlatEcp());
}

TEST(BudgetLedgerTest, TracksTotals) {
  const AmortizationPlan plan = YearPlan(AmortizationKind::kLaf, 8760.0);
  BudgetLedger ledger(&plan);
  EXPECT_DOUBLE_EQ(ledger.TotalConsumedKwh(), 0.0);
  ledger.Charge(FromCivil(2015, 1, 10, 3), 1.5);
  ledger.Charge(FromCivil(2015, 1, 10, 4), 0.5);
  ledger.Charge(FromCivil(2015, 2, 1, 0), 2.0);
  EXPECT_DOUBLE_EQ(ledger.TotalConsumedKwh(), 4.0);
  EXPECT_DOUBLE_EQ(ledger.MonthConsumedKwh(FromCivil(2015, 1, 20)), 2.0);
  EXPECT_DOUBLE_EQ(ledger.MonthConsumedKwh(FromCivil(2015, 2, 20)), 2.0);
  EXPECT_DOUBLE_EQ(ledger.MonthConsumedKwh(FromCivil(2015, 3, 20)), 0.0);
}

TEST(BudgetLedgerTest, CumulativeBudgetGrowsLinearlyUnderLaf) {
  const AmortizationPlan plan = YearPlan(AmortizationKind::kLaf, 8760.0);
  BudgetLedger ledger(&plan);
  // After the first hour of the year: exactly 1 kWh of budget released.
  EXPECT_NEAR(ledger.CumulativeBudgetKwh(FromCivil(2015, 1, 1, 0, 30)), 1.0,
              1e-6);
  // After 10 full days: 240.
  EXPECT_NEAR(ledger.CumulativeBudgetKwh(FromCivil(2015, 1, 10, 23, 59)),
              240.0, 1e-6);
  // End of the year: everything.
  EXPECT_NEAR(ledger.CumulativeBudgetKwh(FromCivil(2015, 12, 31, 23)),
              8760.0, 1e-6);
}

TEST(BudgetLedgerTest, CarryoverIsBudgetMinusConsumption) {
  const AmortizationPlan plan = YearPlan(AmortizationKind::kLaf, 8760.0);
  BudgetLedger ledger(&plan);
  ledger.Charge(FromCivil(2015, 1, 1, 0), 0.4);
  // One hour in: 1.0 released, 0.4 used.
  EXPECT_NEAR(ledger.CarryoverKwh(FromCivil(2015, 1, 1, 0, 30)), 0.6, 1e-6);
  ledger.Charge(FromCivil(2015, 1, 1, 1), 2.0);
  EXPECT_NEAR(ledger.CarryoverKwh(FromCivil(2015, 1, 1, 1, 30)), -0.4, 1e-6);
}

TEST(BudgetLedgerTest, WithinTotalBudget) {
  const AmortizationPlan plan = YearPlan(AmortizationKind::kEaf, 100.0);
  BudgetLedger ledger(&plan);
  ledger.Charge(FromCivil(2015, 6, 1), 99.9);
  EXPECT_TRUE(ledger.WithinTotalBudget());
  ledger.Charge(FromCivil(2015, 6, 2), 0.2);
  EXPECT_FALSE(ledger.WithinTotalBudget());
}

TEST(BudgetLedgerTest, MonthlyMapKeying) {
  const AmortizationPlan plan = YearPlan(AmortizationKind::kLaf, 100.0);
  BudgetLedger ledger(&plan);
  ledger.Charge(FromCivil(2015, 3, 31, 23, 59), 1.0);
  ledger.Charge(FromCivil(2015, 4, 1, 0, 0), 2.0);
  const auto& monthly = ledger.monthly_consumption();
  EXPECT_EQ(monthly.at(201503), 1.0);
  EXPECT_EQ(monthly.at(201504), 2.0);
}

}  // namespace
}  // namespace energy
}  // namespace imcf
