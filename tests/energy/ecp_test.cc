#include "energy/ecp.h"

#include <gtest/gtest.h>

namespace imcf {
namespace energy {
namespace {

TEST(FlatEcpTest, MatchesTableI) {
  const Ecp ecp = FlatEcp();
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(1), 775.50);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(2), 528.75);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(3), 246.75);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(4), 141.00);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(5), 176.25);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(6), 211.50);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(7), 246.75);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(8), 317.25);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(9), 211.50);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(10), 176.25);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(11), 211.50);
  EXPECT_DOUBLE_EQ(ecp.MonthKwh(12), 423.00);
  EXPECT_DOUBLE_EQ(ecp.TotalKwh(), 3666.00);
}

TEST(FlatEcpTest, TableIPerHourColumn) {
  const Ecp ecp = FlatEcp();
  // Table I "kWh per hour": January 775.50 / (31*24) = 1.04.
  EXPECT_NEAR(ecp.MonthKwhPerHour(2014, 1), 1.04, 0.005);
  EXPECT_NEAR(ecp.MonthKwhPerHour(2014, 2), 0.79, 0.005);
  EXPECT_NEAR(ecp.MonthKwhPerHour(2014, 4), 0.196, 0.005);
  EXPECT_NEAR(ecp.MonthKwhPerHour(2014, 12), 0.57, 0.005);
}

TEST(EcpTest, WeightsSumToOne) {
  const Ecp ecp = FlatEcp();
  double sum = 0.0;
  for (int m = 1; m <= 12; ++m) sum += ecp.Weight(m);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Eq. 5 example: w_1 = 775.50 / 3666 = 0.2115.
  EXPECT_NEAR(ecp.Weight(1), 0.2115, 5e-4);
  EXPECT_NEAR(ecp.Weight(2), 0.1443, 5e-4);
}

TEST(EcpTest, FromMonthlyValidation) {
  EXPECT_TRUE(Ecp::FromMonthly({1, 2, 3}).status().IsInvalidArgument());
  std::vector<double> negative(12, 10.0);
  negative[5] = -1.0;
  EXPECT_TRUE(Ecp::FromMonthly(negative).status().IsInvalidArgument());
  EXPECT_TRUE(Ecp::FromMonthly(std::vector<double>(12, 0.0))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Ecp::FromMonthly(std::vector<double>(12, 5.0)).ok());
}

TEST(EcpTest, ScaledPreservesWeights) {
  const Ecp base = FlatEcp();
  const Ecp scaled = base.Scaled(4.0);
  EXPECT_DOUBLE_EQ(scaled.TotalKwh(), 4.0 * base.TotalKwh());
  for (int m = 1; m <= 12; ++m) {
    EXPECT_DOUBLE_EQ(scaled.MonthKwh(m), 4.0 * base.MonthKwh(m));
    EXPECT_NEAR(scaled.Weight(m), base.Weight(m), 1e-12);
  }
}

TEST(EcpTest, JanuaryDominatesApril) {
  // The Table I shape that drives the whole calibration story.
  const Ecp ecp = FlatEcp();
  EXPECT_GT(ecp.MonthKwh(1) / ecp.MonthKwh(4), 5.0);
  EXPECT_GT(ecp.MonthKwh(8), ecp.MonthKwh(7));  // August cooling bump
}

}  // namespace
}  // namespace energy
}  // namespace imcf
