#include "energy/load_scheduler.h"

#include <gtest/gtest.h>

namespace imcf {
namespace energy {
namespace {

std::vector<double> AmpleHeadroom() { return std::vector<double>(24, 10.0); }

ShiftableLoad Washer() { return {"washer", 2.0, 2, 8, 22}; }

TEST(LoadSchedulerTest, ValidationErrors) {
  CarbonProfile profile;
  std::vector<double> short_headroom(12, 1.0);
  EXPECT_FALSE(ScheduleDay({Washer()}, profile, 0,
                           PlacementPolicy::kEarliest, &short_headroom)
                   .ok());
  auto headroom = AmpleHeadroom();
  ShiftableLoad bad = Washer();
  bad.duration_hours = 0;
  EXPECT_FALSE(
      ScheduleDay({bad}, profile, 0, PlacementPolicy::kEarliest, &headroom)
          .ok());
  bad = Washer();
  bad.earliest_hour = 20;
  bad.latest_hour = 8;
  EXPECT_FALSE(
      ScheduleDay({bad}, profile, 0, PlacementPolicy::kEarliest, &headroom)
          .ok());
}

TEST(LoadSchedulerTest, EarliestPolicyTakesFirstFeasible) {
  CarbonProfile profile;
  auto headroom = AmpleHeadroom();
  const auto placements =
      ScheduleDay({Washer()}, profile, FromCivil(2015, 6, 10),
                  PlacementPolicy::kEarliest, &headroom);
  ASSERT_TRUE(placements.ok());
  ASSERT_EQ(placements->size(), 1u);
  EXPECT_EQ((*placements)[0].start_hour, 8);
  // Headroom debited for both run hours.
  EXPECT_DOUBLE_EQ(headroom[8], 8.0);
  EXPECT_DOUBLE_EQ(headroom[9], 8.0);
  EXPECT_DOUBLE_EQ(headroom[10], 10.0);
}

TEST(LoadSchedulerTest, CarbonAwarePicksCleanerHours) {
  CarbonProfile profile;
  auto headroom_naive = AmpleHeadroom();
  auto headroom_aware = AmpleHeadroom();
  const SimTime summer_day = FromCivil(2015, 7, 10);
  const auto naive =
      ScheduleDay({Washer()}, profile, summer_day,
                  PlacementPolicy::kEarliest, &headroom_naive);
  const auto aware =
      ScheduleDay({Washer()}, profile, summer_day,
                  PlacementPolicy::kCarbonAware, &headroom_aware);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(aware.ok());
  EXPECT_LE(TotalCo2G(*aware), TotalCo2G(*naive));
  // In July the solar dip makes late morning / midday cleanest.
  const int start = (*aware)[0].start_hour;
  EXPECT_GE(start, 9);
  EXPECT_LE(start, 16);
}

TEST(LoadSchedulerTest, RespectsWindow) {
  CarbonProfile profile;
  auto headroom = AmpleHeadroom();
  ShiftableLoad night_ev{"ev", 3.7, 3, 0, 6};
  const auto placements =
      ScheduleDay({night_ev}, profile, FromCivil(2015, 1, 10),
                  PlacementPolicy::kCarbonAware, &headroom);
  ASSERT_TRUE(placements.ok());
  const int start = (*placements)[0].start_hour;
  ASSERT_GE(start, 0);
  EXPECT_LE(start + 3 - 1, 6);  // run finishes inside the window
}

TEST(LoadSchedulerTest, HeadroomLimitsPlacement) {
  CarbonProfile profile;
  std::vector<double> headroom(24, 0.5);  // never enough for a 2 kW washer
  const auto placements =
      ScheduleDay({Washer()}, profile, FromCivil(2015, 6, 10),
                  PlacementPolicy::kCarbonAware, &headroom);
  ASSERT_TRUE(placements.ok());
  EXPECT_EQ((*placements)[0].start_hour, -1);
  EXPECT_DOUBLE_EQ((*placements)[0].energy_kwh, 0.0);
  EXPECT_DOUBLE_EQ(TotalCo2G(*placements), 0.0);
}

TEST(LoadSchedulerTest, PartialHeadroomForcesLaterStart) {
  CarbonProfile profile;
  auto headroom = AmpleHeadroom();
  for (int h = 0; h < 12; ++h) headroom[static_cast<size_t>(h)] = 0.0;
  const auto placements =
      ScheduleDay({Washer()}, profile, FromCivil(2015, 6, 10),
                  PlacementPolicy::kEarliest, &headroom);
  ASSERT_TRUE(placements.ok());
  EXPECT_EQ((*placements)[0].start_hour, 12);
}

TEST(LoadSchedulerTest, BigRocksPlacedFirst) {
  CarbonProfile profile;
  // Only hours 10-12 have headroom for the EV; the washer could fit in
  // many places. If the washer were placed first into 10-11, the EV could
  // not be served at all.
  std::vector<double> headroom(24, 1.9);
  for (int h = 10; h <= 12; ++h) headroom[static_cast<size_t>(h)] = 4.0;
  ShiftableLoad ev{"ev", 3.7, 3, 0, 23};
  ShiftableLoad small_washer{"washer", 1.5, 2, 8, 22};
  const auto placements =
      ScheduleDay({small_washer, ev}, profile, FromCivil(2015, 6, 10),
                  PlacementPolicy::kEarliest, &headroom);
  ASSERT_TRUE(placements.ok());
  for (const Placement& p : *placements) {
    EXPECT_GE(p.start_hour, 0) << p.load;
    if (p.load == "ev") {
      EXPECT_EQ(p.start_hour, 10);
    }
  }
}

TEST(LoadSchedulerTest, DefaultFleetPlausible) {
  const auto fleet = DefaultShiftableLoads();
  EXPECT_GE(fleet.size(), 3u);
  double total = 0.0;
  for (const ShiftableLoad& load : fleet) {
    EXPECT_GT(load.power_kw, 0.0);
    total += load.EnergyKwh();
  }
  EXPECT_GT(total, 10.0);  // a meaningful daily shiftable pool
  EXPECT_LT(total, 40.0);
}

TEST(LoadSchedulerTest, CarbonAwareNeverWorseAcrossSeasons) {
  CarbonProfile profile;
  const auto fleet = DefaultShiftableLoads();
  for (int month : {1, 4, 7, 10}) {
    auto h1 = AmpleHeadroom();
    auto h2 = AmpleHeadroom();
    const SimTime day = FromCivil(2015, month, 15);
    const auto naive = ScheduleDay(fleet, profile, day,
                                   PlacementPolicy::kEarliest, &h1);
    const auto aware = ScheduleDay(fleet, profile, day,
                                   PlacementPolicy::kCarbonAware, &h2);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(aware.ok());
    EXPECT_LE(TotalCo2G(*aware), TotalCo2G(*naive) + 1e-9)
        << MonthName(month);
  }
}

}  // namespace
}  // namespace energy
}  // namespace imcf
