
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/ambient_test.cc" "tests/CMakeFiles/trace_ambient_test.dir/trace/ambient_test.cc.o" "gcc" "tests/CMakeFiles/trace_ambient_test.dir/trace/ambient_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/controller/CMakeFiles/imcf_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/imcf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/imcf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/imcf_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/imcf_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/imcf_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/imcf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/imcf_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/imcf_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/imcf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/imcf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
