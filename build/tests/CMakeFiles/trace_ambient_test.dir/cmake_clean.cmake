file(REMOVE_RECURSE
  "CMakeFiles/trace_ambient_test.dir/trace/ambient_test.cc.o"
  "CMakeFiles/trace_ambient_test.dir/trace/ambient_test.cc.o.d"
  "trace_ambient_test"
  "trace_ambient_test.pdb"
  "trace_ambient_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_ambient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
