# Empty compiler generated dependencies file for trace_ambient_test.
# This may be replaced when dependencies are built.
