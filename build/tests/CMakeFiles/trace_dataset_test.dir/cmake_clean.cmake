file(REMOVE_RECURSE
  "CMakeFiles/trace_dataset_test.dir/trace/dataset_test.cc.o"
  "CMakeFiles/trace_dataset_test.dir/trace/dataset_test.cc.o.d"
  "trace_dataset_test"
  "trace_dataset_test.pdb"
  "trace_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
