# Empty compiler generated dependencies file for trace_dataset_test.
# This may be replaced when dependencies are built.
