# Empty compiler generated dependencies file for core_annealer_test.
# This may be replaced when dependencies are built.
