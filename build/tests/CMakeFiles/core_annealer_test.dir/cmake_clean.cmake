file(REMOVE_RECURSE
  "CMakeFiles/core_annealer_test.dir/core/annealer_test.cc.o"
  "CMakeFiles/core_annealer_test.dir/core/annealer_test.cc.o.d"
  "core_annealer_test"
  "core_annealer_test.pdb"
  "core_annealer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_annealer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
