file(REMOVE_RECURSE
  "CMakeFiles/controller_scheduler_test.dir/controller/scheduler_test.cc.o"
  "CMakeFiles/controller_scheduler_test.dir/controller/scheduler_test.cc.o.d"
  "controller_scheduler_test"
  "controller_scheduler_test.pdb"
  "controller_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
