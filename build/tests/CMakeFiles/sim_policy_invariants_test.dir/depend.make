# Empty dependencies file for sim_policy_invariants_test.
# This may be replaced when dependencies are built.
