file(REMOVE_RECURSE
  "CMakeFiles/storage_record_log_test.dir/storage/record_log_test.cc.o"
  "CMakeFiles/storage_record_log_test.dir/storage/record_log_test.cc.o.d"
  "storage_record_log_test"
  "storage_record_log_test.pdb"
  "storage_record_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_record_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
