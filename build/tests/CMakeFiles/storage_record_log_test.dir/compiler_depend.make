# Empty compiler generated dependencies file for storage_record_log_test.
# This may be replaced when dependencies are built.
