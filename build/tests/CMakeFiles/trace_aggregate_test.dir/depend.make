# Empty dependencies file for trace_aggregate_test.
# This may be replaced when dependencies are built.
