file(REMOVE_RECURSE
  "CMakeFiles/trace_aggregate_test.dir/trace/aggregate_test.cc.o"
  "CMakeFiles/trace_aggregate_test.dir/trace/aggregate_test.cc.o.d"
  "trace_aggregate_test"
  "trace_aggregate_test.pdb"
  "trace_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
