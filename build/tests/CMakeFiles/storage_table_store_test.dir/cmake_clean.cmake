file(REMOVE_RECURSE
  "CMakeFiles/storage_table_store_test.dir/storage/table_store_test.cc.o"
  "CMakeFiles/storage_table_store_test.dir/storage/table_store_test.cc.o.d"
  "storage_table_store_test"
  "storage_table_store_test.pdb"
  "storage_table_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_table_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
