file(REMOVE_RECURSE
  "CMakeFiles/sim_carbon_test.dir/sim/carbon_sim_test.cc.o"
  "CMakeFiles/sim_carbon_test.dir/sim/carbon_sim_test.cc.o.d"
  "sim_carbon_test"
  "sim_carbon_test.pdb"
  "sim_carbon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_carbon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
