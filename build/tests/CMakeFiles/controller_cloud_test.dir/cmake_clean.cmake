file(REMOVE_RECURSE
  "CMakeFiles/controller_cloud_test.dir/controller/cloud_test.cc.o"
  "CMakeFiles/controller_cloud_test.dir/controller/cloud_test.cc.o.d"
  "controller_cloud_test"
  "controller_cloud_test.pdb"
  "controller_cloud_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_cloud_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
