# Empty dependencies file for controller_cloud_test.
# This may be replaced when dependencies are built.
