file(REMOVE_RECURSE
  "CMakeFiles/energy_amortization_test.dir/energy/amortization_test.cc.o"
  "CMakeFiles/energy_amortization_test.dir/energy/amortization_test.cc.o.d"
  "energy_amortization_test"
  "energy_amortization_test.pdb"
  "energy_amortization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_amortization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
