file(REMOVE_RECURSE
  "CMakeFiles/firewall_chain_test.dir/firewall/chain_test.cc.o"
  "CMakeFiles/firewall_chain_test.dir/firewall/chain_test.cc.o.d"
  "firewall_chain_test"
  "firewall_chain_test.pdb"
  "firewall_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
