# Empty compiler generated dependencies file for firewall_chain_test.
# This may be replaced when dependencies are built.
