file(REMOVE_RECURSE
  "CMakeFiles/energy_carbon_test.dir/energy/carbon_test.cc.o"
  "CMakeFiles/energy_carbon_test.dir/energy/carbon_test.cc.o.d"
  "energy_carbon_test"
  "energy_carbon_test.pdb"
  "energy_carbon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_carbon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
