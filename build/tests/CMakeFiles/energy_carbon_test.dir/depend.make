# Empty dependencies file for energy_carbon_test.
# This may be replaced when dependencies are built.
