# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for energy_load_scheduler_test.
