file(REMOVE_RECURSE
  "CMakeFiles/energy_load_scheduler_test.dir/energy/load_scheduler_test.cc.o"
  "CMakeFiles/energy_load_scheduler_test.dir/energy/load_scheduler_test.cc.o.d"
  "energy_load_scheduler_test"
  "energy_load_scheduler_test.pdb"
  "energy_load_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_load_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
