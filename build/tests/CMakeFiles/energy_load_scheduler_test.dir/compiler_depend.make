# Empty compiler generated dependencies file for energy_load_scheduler_test.
# This may be replaced when dependencies are built.
