file(REMOVE_RECURSE
  "CMakeFiles/core_genetic_test.dir/core/genetic_test.cc.o"
  "CMakeFiles/core_genetic_test.dir/core/genetic_test.cc.o.d"
  "core_genetic_test"
  "core_genetic_test.pdb"
  "core_genetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_genetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
