# Empty compiler generated dependencies file for core_genetic_test.
# This may be replaced when dependencies are built.
