file(REMOVE_RECURSE
  "CMakeFiles/energy_ecp_test.dir/energy/ecp_test.cc.o"
  "CMakeFiles/energy_ecp_test.dir/energy/ecp_test.cc.o.d"
  "energy_ecp_test"
  "energy_ecp_test.pdb"
  "energy_ecp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_ecp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
