file(REMOVE_RECURSE
  "CMakeFiles/controller_resident_test.dir/controller/resident_test.cc.o"
  "CMakeFiles/controller_resident_test.dir/controller/resident_test.cc.o.d"
  "controller_resident_test"
  "controller_resident_test.pdb"
  "controller_resident_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_resident_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
