# Empty dependencies file for controller_resident_test.
# This may be replaced when dependencies are built.
