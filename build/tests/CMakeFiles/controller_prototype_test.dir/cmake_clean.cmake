file(REMOVE_RECURSE
  "CMakeFiles/controller_prototype_test.dir/controller/prototype_test.cc.o"
  "CMakeFiles/controller_prototype_test.dir/controller/prototype_test.cc.o.d"
  "controller_prototype_test"
  "controller_prototype_test.pdb"
  "controller_prototype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_prototype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
