# Empty compiler generated dependencies file for controller_prototype_test.
# This may be replaced when dependencies are built.
