file(REMOVE_RECURSE
  "CMakeFiles/rules_parser_test.dir/rules/parser_test.cc.o"
  "CMakeFiles/rules_parser_test.dir/rules/parser_test.cc.o.d"
  "rules_parser_test"
  "rules_parser_test.pdb"
  "rules_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
