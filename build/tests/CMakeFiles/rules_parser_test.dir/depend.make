# Empty dependencies file for rules_parser_test.
# This may be replaced when dependencies are built.
