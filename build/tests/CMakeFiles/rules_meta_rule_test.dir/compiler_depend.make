# Empty compiler generated dependencies file for rules_meta_rule_test.
# This may be replaced when dependencies are built.
