file(REMOVE_RECURSE
  "CMakeFiles/storage_coding_test.dir/storage/coding_test.cc.o"
  "CMakeFiles/storage_coding_test.dir/storage/coding_test.cc.o.d"
  "storage_coding_test"
  "storage_coding_test.pdb"
  "storage_coding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_coding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
