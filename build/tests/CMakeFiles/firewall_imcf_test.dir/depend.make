# Empty dependencies file for firewall_imcf_test.
# This may be replaced when dependencies are built.
