file(REMOVE_RECURSE
  "CMakeFiles/firewall_imcf_test.dir/firewall/imcf_firewall_test.cc.o"
  "CMakeFiles/firewall_imcf_test.dir/firewall/imcf_firewall_test.cc.o.d"
  "firewall_imcf_test"
  "firewall_imcf_test.pdb"
  "firewall_imcf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_imcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
