file(REMOVE_RECURSE
  "CMakeFiles/core_hill_climber_test.dir/core/hill_climber_test.cc.o"
  "CMakeFiles/core_hill_climber_test.dir/core/hill_climber_test.cc.o.d"
  "core_hill_climber_test"
  "core_hill_climber_test.pdb"
  "core_hill_climber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hill_climber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
