# Empty dependencies file for core_hill_climber_test.
# This may be replaced when dependencies are built.
