file(REMOVE_RECURSE
  "CMakeFiles/core_solution_test.dir/core/solution_test.cc.o"
  "CMakeFiles/core_solution_test.dir/core/solution_test.cc.o.d"
  "core_solution_test"
  "core_solution_test.pdb"
  "core_solution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_solution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
