# Empty dependencies file for core_solution_test.
# This may be replaced when dependencies are built.
