file(REMOVE_RECURSE
  "CMakeFiles/controller_items_test.dir/controller/items_test.cc.o"
  "CMakeFiles/controller_items_test.dir/controller/items_test.cc.o.d"
  "controller_items_test"
  "controller_items_test.pdb"
  "controller_items_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_items_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
