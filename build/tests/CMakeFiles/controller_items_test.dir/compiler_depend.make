# Empty compiler generated dependencies file for controller_items_test.
# This may be replaced when dependencies are built.
