file(REMOVE_RECURSE
  "CMakeFiles/rules_trigger_rule_test.dir/rules/trigger_rule_test.cc.o"
  "CMakeFiles/rules_trigger_rule_test.dir/rules/trigger_rule_test.cc.o.d"
  "rules_trigger_rule_test"
  "rules_trigger_rule_test.pdb"
  "rules_trigger_rule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_trigger_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
