# Empty dependencies file for rules_trigger_rule_test.
# This may be replaced when dependencies are built.
