file(REMOVE_RECURSE
  "CMakeFiles/rules_conflict_test.dir/rules/conflict_test.cc.o"
  "CMakeFiles/rules_conflict_test.dir/rules/conflict_test.cc.o.d"
  "rules_conflict_test"
  "rules_conflict_test.pdb"
  "rules_conflict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_conflict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
