# Empty dependencies file for rules_conflict_test.
# This may be replaced when dependencies are built.
