
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/aggregate.cc" "src/trace/CMakeFiles/imcf_trace.dir/aggregate.cc.o" "gcc" "src/trace/CMakeFiles/imcf_trace.dir/aggregate.cc.o.d"
  "/root/repo/src/trace/ambient.cc" "src/trace/CMakeFiles/imcf_trace.dir/ambient.cc.o" "gcc" "src/trace/CMakeFiles/imcf_trace.dir/ambient.cc.o.d"
  "/root/repo/src/trace/dataset.cc" "src/trace/CMakeFiles/imcf_trace.dir/dataset.cc.o" "gcc" "src/trace/CMakeFiles/imcf_trace.dir/dataset.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/trace/CMakeFiles/imcf_trace.dir/generator.cc.o" "gcc" "src/trace/CMakeFiles/imcf_trace.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imcf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/imcf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/imcf_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/imcf_devices.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
