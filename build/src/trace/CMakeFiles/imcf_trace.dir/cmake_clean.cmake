file(REMOVE_RECURSE
  "CMakeFiles/imcf_trace.dir/aggregate.cc.o"
  "CMakeFiles/imcf_trace.dir/aggregate.cc.o.d"
  "CMakeFiles/imcf_trace.dir/ambient.cc.o"
  "CMakeFiles/imcf_trace.dir/ambient.cc.o.d"
  "CMakeFiles/imcf_trace.dir/dataset.cc.o"
  "CMakeFiles/imcf_trace.dir/dataset.cc.o.d"
  "CMakeFiles/imcf_trace.dir/generator.cc.o"
  "CMakeFiles/imcf_trace.dir/generator.cc.o.d"
  "libimcf_trace.a"
  "libimcf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
