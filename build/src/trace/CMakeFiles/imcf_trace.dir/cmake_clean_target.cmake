file(REMOVE_RECURSE
  "libimcf_trace.a"
)
