# Empty dependencies file for imcf_trace.
# This may be replaced when dependencies are built.
