file(REMOVE_RECURSE
  "libimcf_storage.a"
)
