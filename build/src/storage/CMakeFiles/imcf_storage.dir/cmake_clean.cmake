file(REMOVE_RECURSE
  "CMakeFiles/imcf_storage.dir/coding.cc.o"
  "CMakeFiles/imcf_storage.dir/coding.cc.o.d"
  "CMakeFiles/imcf_storage.dir/csv.cc.o"
  "CMakeFiles/imcf_storage.dir/csv.cc.o.d"
  "CMakeFiles/imcf_storage.dir/record_log.cc.o"
  "CMakeFiles/imcf_storage.dir/record_log.cc.o.d"
  "CMakeFiles/imcf_storage.dir/table_store.cc.o"
  "CMakeFiles/imcf_storage.dir/table_store.cc.o.d"
  "CMakeFiles/imcf_storage.dir/trace_file.cc.o"
  "CMakeFiles/imcf_storage.dir/trace_file.cc.o.d"
  "libimcf_storage.a"
  "libimcf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
