# Empty dependencies file for imcf_storage.
# This may be replaced when dependencies are built.
