
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/coding.cc" "src/storage/CMakeFiles/imcf_storage.dir/coding.cc.o" "gcc" "src/storage/CMakeFiles/imcf_storage.dir/coding.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/storage/CMakeFiles/imcf_storage.dir/csv.cc.o" "gcc" "src/storage/CMakeFiles/imcf_storage.dir/csv.cc.o.d"
  "/root/repo/src/storage/record_log.cc" "src/storage/CMakeFiles/imcf_storage.dir/record_log.cc.o" "gcc" "src/storage/CMakeFiles/imcf_storage.dir/record_log.cc.o.d"
  "/root/repo/src/storage/table_store.cc" "src/storage/CMakeFiles/imcf_storage.dir/table_store.cc.o" "gcc" "src/storage/CMakeFiles/imcf_storage.dir/table_store.cc.o.d"
  "/root/repo/src/storage/trace_file.cc" "src/storage/CMakeFiles/imcf_storage.dir/trace_file.cc.o" "gcc" "src/storage/CMakeFiles/imcf_storage.dir/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imcf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
