# Empty compiler generated dependencies file for imcf_core.
# This may be replaced when dependencies are built.
