
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annealer.cc" "src/core/CMakeFiles/imcf_core.dir/annealer.cc.o" "gcc" "src/core/CMakeFiles/imcf_core.dir/annealer.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/imcf_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/imcf_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/imcf_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/imcf_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/genetic.cc" "src/core/CMakeFiles/imcf_core.dir/genetic.cc.o" "gcc" "src/core/CMakeFiles/imcf_core.dir/genetic.cc.o.d"
  "/root/repo/src/core/hill_climber.cc" "src/core/CMakeFiles/imcf_core.dir/hill_climber.cc.o" "gcc" "src/core/CMakeFiles/imcf_core.dir/hill_climber.cc.o.d"
  "/root/repo/src/core/solution.cc" "src/core/CMakeFiles/imcf_core.dir/solution.cc.o" "gcc" "src/core/CMakeFiles/imcf_core.dir/solution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imcf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/imcf_devices.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
