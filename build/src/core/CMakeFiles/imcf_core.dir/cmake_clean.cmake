file(REMOVE_RECURSE
  "CMakeFiles/imcf_core.dir/annealer.cc.o"
  "CMakeFiles/imcf_core.dir/annealer.cc.o.d"
  "CMakeFiles/imcf_core.dir/baselines.cc.o"
  "CMakeFiles/imcf_core.dir/baselines.cc.o.d"
  "CMakeFiles/imcf_core.dir/evaluator.cc.o"
  "CMakeFiles/imcf_core.dir/evaluator.cc.o.d"
  "CMakeFiles/imcf_core.dir/genetic.cc.o"
  "CMakeFiles/imcf_core.dir/genetic.cc.o.d"
  "CMakeFiles/imcf_core.dir/hill_climber.cc.o"
  "CMakeFiles/imcf_core.dir/hill_climber.cc.o.d"
  "CMakeFiles/imcf_core.dir/solution.cc.o"
  "CMakeFiles/imcf_core.dir/solution.cc.o.d"
  "libimcf_core.a"
  "libimcf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
