file(REMOVE_RECURSE
  "libimcf_core.a"
)
