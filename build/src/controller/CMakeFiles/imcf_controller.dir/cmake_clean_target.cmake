file(REMOVE_RECURSE
  "libimcf_controller.a"
)
