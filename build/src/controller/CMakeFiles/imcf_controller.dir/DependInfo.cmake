
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/cloud.cc" "src/controller/CMakeFiles/imcf_controller.dir/cloud.cc.o" "gcc" "src/controller/CMakeFiles/imcf_controller.dir/cloud.cc.o.d"
  "/root/repo/src/controller/items.cc" "src/controller/CMakeFiles/imcf_controller.dir/items.cc.o" "gcc" "src/controller/CMakeFiles/imcf_controller.dir/items.cc.o.d"
  "/root/repo/src/controller/prototype.cc" "src/controller/CMakeFiles/imcf_controller.dir/prototype.cc.o" "gcc" "src/controller/CMakeFiles/imcf_controller.dir/prototype.cc.o.d"
  "/root/repo/src/controller/resident.cc" "src/controller/CMakeFiles/imcf_controller.dir/resident.cc.o" "gcc" "src/controller/CMakeFiles/imcf_controller.dir/resident.cc.o.d"
  "/root/repo/src/controller/scheduler.cc" "src/controller/CMakeFiles/imcf_controller.dir/scheduler.cc.o" "gcc" "src/controller/CMakeFiles/imcf_controller.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imcf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/imcf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/imcf_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/imcf_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/imcf_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/imcf_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/imcf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/imcf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/imcf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/imcf_weather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
