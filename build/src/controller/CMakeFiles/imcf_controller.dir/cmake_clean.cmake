file(REMOVE_RECURSE
  "CMakeFiles/imcf_controller.dir/cloud.cc.o"
  "CMakeFiles/imcf_controller.dir/cloud.cc.o.d"
  "CMakeFiles/imcf_controller.dir/items.cc.o"
  "CMakeFiles/imcf_controller.dir/items.cc.o.d"
  "CMakeFiles/imcf_controller.dir/prototype.cc.o"
  "CMakeFiles/imcf_controller.dir/prototype.cc.o.d"
  "CMakeFiles/imcf_controller.dir/resident.cc.o"
  "CMakeFiles/imcf_controller.dir/resident.cc.o.d"
  "CMakeFiles/imcf_controller.dir/scheduler.cc.o"
  "CMakeFiles/imcf_controller.dir/scheduler.cc.o.d"
  "libimcf_controller.a"
  "libimcf_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
