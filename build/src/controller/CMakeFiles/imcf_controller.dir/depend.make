# Empty dependencies file for imcf_controller.
# This may be replaced when dependencies are built.
