file(REMOVE_RECURSE
  "CMakeFiles/imcf_weather.dir/weather.cc.o"
  "CMakeFiles/imcf_weather.dir/weather.cc.o.d"
  "libimcf_weather.a"
  "libimcf_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
