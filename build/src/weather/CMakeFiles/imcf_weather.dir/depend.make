# Empty dependencies file for imcf_weather.
# This may be replaced when dependencies are built.
