file(REMOVE_RECURSE
  "libimcf_weather.a"
)
