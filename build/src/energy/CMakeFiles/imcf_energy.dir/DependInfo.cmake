
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/amortization.cc" "src/energy/CMakeFiles/imcf_energy.dir/amortization.cc.o" "gcc" "src/energy/CMakeFiles/imcf_energy.dir/amortization.cc.o.d"
  "/root/repo/src/energy/budget.cc" "src/energy/CMakeFiles/imcf_energy.dir/budget.cc.o" "gcc" "src/energy/CMakeFiles/imcf_energy.dir/budget.cc.o.d"
  "/root/repo/src/energy/carbon.cc" "src/energy/CMakeFiles/imcf_energy.dir/carbon.cc.o" "gcc" "src/energy/CMakeFiles/imcf_energy.dir/carbon.cc.o.d"
  "/root/repo/src/energy/ecp.cc" "src/energy/CMakeFiles/imcf_energy.dir/ecp.cc.o" "gcc" "src/energy/CMakeFiles/imcf_energy.dir/ecp.cc.o.d"
  "/root/repo/src/energy/load_scheduler.cc" "src/energy/CMakeFiles/imcf_energy.dir/load_scheduler.cc.o" "gcc" "src/energy/CMakeFiles/imcf_energy.dir/load_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imcf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
