file(REMOVE_RECURSE
  "libimcf_energy.a"
)
