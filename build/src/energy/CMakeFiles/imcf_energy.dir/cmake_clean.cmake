file(REMOVE_RECURSE
  "CMakeFiles/imcf_energy.dir/amortization.cc.o"
  "CMakeFiles/imcf_energy.dir/amortization.cc.o.d"
  "CMakeFiles/imcf_energy.dir/budget.cc.o"
  "CMakeFiles/imcf_energy.dir/budget.cc.o.d"
  "CMakeFiles/imcf_energy.dir/carbon.cc.o"
  "CMakeFiles/imcf_energy.dir/carbon.cc.o.d"
  "CMakeFiles/imcf_energy.dir/ecp.cc.o"
  "CMakeFiles/imcf_energy.dir/ecp.cc.o.d"
  "CMakeFiles/imcf_energy.dir/load_scheduler.cc.o"
  "CMakeFiles/imcf_energy.dir/load_scheduler.cc.o.d"
  "libimcf_energy.a"
  "libimcf_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
