# Empty dependencies file for imcf_energy.
# This may be replaced when dependencies are built.
