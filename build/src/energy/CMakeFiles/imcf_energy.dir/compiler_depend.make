# Empty compiler generated dependencies file for imcf_energy.
# This may be replaced when dependencies are built.
