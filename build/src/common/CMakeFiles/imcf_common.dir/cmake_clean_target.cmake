file(REMOVE_RECURSE
  "libimcf_common.a"
)
