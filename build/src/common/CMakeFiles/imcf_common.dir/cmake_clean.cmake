file(REMOVE_RECURSE
  "CMakeFiles/imcf_common.dir/crc32.cc.o"
  "CMakeFiles/imcf_common.dir/crc32.cc.o.d"
  "CMakeFiles/imcf_common.dir/logging.cc.o"
  "CMakeFiles/imcf_common.dir/logging.cc.o.d"
  "CMakeFiles/imcf_common.dir/rng.cc.o"
  "CMakeFiles/imcf_common.dir/rng.cc.o.d"
  "CMakeFiles/imcf_common.dir/stats.cc.o"
  "CMakeFiles/imcf_common.dir/stats.cc.o.d"
  "CMakeFiles/imcf_common.dir/status.cc.o"
  "CMakeFiles/imcf_common.dir/status.cc.o.d"
  "CMakeFiles/imcf_common.dir/strings.cc.o"
  "CMakeFiles/imcf_common.dir/strings.cc.o.d"
  "CMakeFiles/imcf_common.dir/time.cc.o"
  "CMakeFiles/imcf_common.dir/time.cc.o.d"
  "libimcf_common.a"
  "libimcf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
