# Empty compiler generated dependencies file for imcf_common.
# This may be replaced when dependencies are built.
