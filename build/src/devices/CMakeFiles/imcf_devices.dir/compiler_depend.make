# Empty compiler generated dependencies file for imcf_devices.
# This may be replaced when dependencies are built.
