file(REMOVE_RECURSE
  "libimcf_devices.a"
)
