file(REMOVE_RECURSE
  "CMakeFiles/imcf_devices.dir/device.cc.o"
  "CMakeFiles/imcf_devices.dir/device.cc.o.d"
  "CMakeFiles/imcf_devices.dir/energy_model.cc.o"
  "CMakeFiles/imcf_devices.dir/energy_model.cc.o.d"
  "libimcf_devices.a"
  "libimcf_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
