# Empty dependencies file for imcf_firewall.
# This may be replaced when dependencies are built.
