file(REMOVE_RECURSE
  "CMakeFiles/imcf_firewall.dir/chain.cc.o"
  "CMakeFiles/imcf_firewall.dir/chain.cc.o.d"
  "CMakeFiles/imcf_firewall.dir/imcf_firewall.cc.o"
  "CMakeFiles/imcf_firewall.dir/imcf_firewall.cc.o.d"
  "libimcf_firewall.a"
  "libimcf_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
