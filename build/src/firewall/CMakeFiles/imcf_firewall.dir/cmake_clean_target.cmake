file(REMOVE_RECURSE
  "libimcf_firewall.a"
)
