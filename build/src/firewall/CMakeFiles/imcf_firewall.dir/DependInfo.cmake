
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firewall/chain.cc" "src/firewall/CMakeFiles/imcf_firewall.dir/chain.cc.o" "gcc" "src/firewall/CMakeFiles/imcf_firewall.dir/chain.cc.o.d"
  "/root/repo/src/firewall/imcf_firewall.cc" "src/firewall/CMakeFiles/imcf_firewall.dir/imcf_firewall.cc.o" "gcc" "src/firewall/CMakeFiles/imcf_firewall.dir/imcf_firewall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imcf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/imcf_devices.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
