file(REMOVE_RECURSE
  "libimcf_sim.a"
)
