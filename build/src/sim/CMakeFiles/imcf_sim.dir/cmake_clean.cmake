file(REMOVE_RECURSE
  "CMakeFiles/imcf_sim.dir/simulation.cc.o"
  "CMakeFiles/imcf_sim.dir/simulation.cc.o.d"
  "libimcf_sim.a"
  "libimcf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
