# Empty dependencies file for imcf_sim.
# This may be replaced when dependencies are built.
