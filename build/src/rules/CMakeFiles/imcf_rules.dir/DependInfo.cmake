
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/conflict.cc" "src/rules/CMakeFiles/imcf_rules.dir/conflict.cc.o" "gcc" "src/rules/CMakeFiles/imcf_rules.dir/conflict.cc.o.d"
  "/root/repo/src/rules/meta_rule.cc" "src/rules/CMakeFiles/imcf_rules.dir/meta_rule.cc.o" "gcc" "src/rules/CMakeFiles/imcf_rules.dir/meta_rule.cc.o.d"
  "/root/repo/src/rules/parser.cc" "src/rules/CMakeFiles/imcf_rules.dir/parser.cc.o" "gcc" "src/rules/CMakeFiles/imcf_rules.dir/parser.cc.o.d"
  "/root/repo/src/rules/trigger_rule.cc" "src/rules/CMakeFiles/imcf_rules.dir/trigger_rule.cc.o" "gcc" "src/rules/CMakeFiles/imcf_rules.dir/trigger_rule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imcf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/imcf_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/imcf_weather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
