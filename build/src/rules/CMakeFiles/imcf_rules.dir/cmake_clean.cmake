file(REMOVE_RECURSE
  "CMakeFiles/imcf_rules.dir/conflict.cc.o"
  "CMakeFiles/imcf_rules.dir/conflict.cc.o.d"
  "CMakeFiles/imcf_rules.dir/meta_rule.cc.o"
  "CMakeFiles/imcf_rules.dir/meta_rule.cc.o.d"
  "CMakeFiles/imcf_rules.dir/parser.cc.o"
  "CMakeFiles/imcf_rules.dir/parser.cc.o.d"
  "CMakeFiles/imcf_rules.dir/trigger_rule.cc.o"
  "CMakeFiles/imcf_rules.dir/trigger_rule.cc.o.d"
  "libimcf_rules.a"
  "libimcf_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
