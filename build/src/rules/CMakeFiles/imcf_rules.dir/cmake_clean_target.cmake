file(REMOVE_RECURSE
  "libimcf_rules.a"
)
