# Empty compiler generated dependencies file for imcf_rules.
# This may be replaced when dependencies are built.
