file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_init.dir/bench_fig8_init.cc.o"
  "CMakeFiles/bench_fig8_init.dir/bench_fig8_init.cc.o.d"
  "bench_fig8_init"
  "bench_fig8_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
