# Empty dependencies file for bench_fig9_savings.
# This may be replaced when dependencies are built.
