# Empty dependencies file for bench_table4_prototype.
# This may be replaced when dependencies are built.
