# Empty compiler generated dependencies file for imcf_bench_util.
# This may be replaced when dependencies are built.
