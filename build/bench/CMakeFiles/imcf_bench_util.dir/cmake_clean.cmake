file(REMOVE_RECURSE
  "CMakeFiles/imcf_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/imcf_bench_util.dir/bench_util.cc.o.d"
  "libimcf_bench_util.a"
  "libimcf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
