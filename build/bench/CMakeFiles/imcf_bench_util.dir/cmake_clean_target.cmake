file(REMOVE_RECURSE
  "libimcf_bench_util.a"
)
