# Empty dependencies file for bench_fig7_kopt.
# This may be replaced when dependencies are built.
