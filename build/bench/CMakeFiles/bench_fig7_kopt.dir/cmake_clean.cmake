file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_kopt.dir/bench_fig7_kopt.cc.o"
  "CMakeFiles/bench_fig7_kopt.dir/bench_fig7_kopt.cc.o.d"
  "bench_fig7_kopt"
  "bench_fig7_kopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_kopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
