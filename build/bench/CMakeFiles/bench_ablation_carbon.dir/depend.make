# Empty dependencies file for bench_ablation_carbon.
# This may be replaced when dependencies are built.
