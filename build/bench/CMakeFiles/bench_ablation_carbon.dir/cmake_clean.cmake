file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_carbon.dir/bench_ablation_carbon.cc.o"
  "CMakeFiles/bench_ablation_carbon.dir/bench_ablation_carbon.cc.o.d"
  "bench_ablation_carbon"
  "bench_ablation_carbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
