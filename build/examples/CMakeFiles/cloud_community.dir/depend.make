# Empty dependencies file for cloud_community.
# This may be replaced when dependencies are built.
