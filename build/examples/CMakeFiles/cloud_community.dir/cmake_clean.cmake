file(REMOVE_RECURSE
  "CMakeFiles/cloud_community.dir/cloud_community.cpp.o"
  "CMakeFiles/cloud_community.dir/cloud_community.cpp.o.d"
  "cloud_community"
  "cloud_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
