# Empty dependencies file for imcf_cli.
# This may be replaced when dependencies are built.
