file(REMOVE_RECURSE
  "CMakeFiles/imcf_cli.dir/imcf_cli.cpp.o"
  "CMakeFiles/imcf_cli.dir/imcf_cli.cpp.o.d"
  "imcf_cli"
  "imcf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imcf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
