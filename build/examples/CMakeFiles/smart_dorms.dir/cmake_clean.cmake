file(REMOVE_RECURSE
  "CMakeFiles/smart_dorms.dir/smart_dorms.cpp.o"
  "CMakeFiles/smart_dorms.dir/smart_dorms.cpp.o.d"
  "smart_dorms"
  "smart_dorms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_dorms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
