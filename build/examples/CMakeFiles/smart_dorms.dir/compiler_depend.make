# Empty compiler generated dependencies file for smart_dorms.
# This may be replaced when dependencies are built.
