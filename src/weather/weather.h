// Synthetic weather service.
//
// The paper's prototype study "uses data from the open weather API" to
// measure environmental parameters, and the IFTTT baseline (Table III)
// conditions on Season and Weather (Sunny/Cloudy). Live API access is a data
// gate for a reproduction, so this module provides a deterministic synthetic
// weather model: a pure function of (seed, simulation time) producing the
// same fields the paper's rules consume — season, sky condition, outdoor
// temperature and daylight. The default parameters approximate the climate
// of the CASAS testbed region (Pullman, WA: cold winters, warm dry summers),
// which is what shapes the ECP of Table I (heavy January heating).

#ifndef IMCF_WEATHER_WEATHER_H_
#define IMCF_WEATHER_WEATHER_H_

#include <cstdint>
#include <string>

#include "common/time.h"

namespace imcf {
namespace weather {

/// Meteorological season (northern hemisphere, month-based).
enum class Season { kWinter, kSpring, kSummer, kAutumn };

/// Sky condition, the granularity the IFTTT recipes use.
enum class Sky { kSunny, kCloudy };

const char* SeasonName(Season s);
const char* SkyName(Sky s);

/// Season for the month of `t` (Dec-Feb winter, Mar-May spring, ...).
Season SeasonOf(SimTime t);

/// One weather observation.
struct WeatherSample {
  Season season = Season::kWinter;
  Sky sky = Sky::kSunny;
  double outdoor_temp_c = 0.0;   ///< outdoor dry-bulb temperature
  double outdoor_daily_mean_c = 0.0;  ///< same, without the diurnal swing
  double daylight = 0.0;         ///< outdoor daylight level in [0, 1]
  double day_length_hours = 12;  ///< daylight duration of the current day
};

/// Interface so tests and the live controller can substitute scripted
/// weather for the synthetic model.
class WeatherService {
 public:
  virtual ~WeatherService() = default;

  /// Weather at simulation time `t`. Must be deterministic in `t`.
  virtual WeatherSample At(SimTime t) const = 0;
};

/// Tunable climate parameters of the synthetic model.
struct ClimateOptions {
  uint64_t seed = 42;            ///< drives day-to-day variability
  double mean_temp_c = 9.5;      ///< annual mean outdoor temperature
  double annual_amplitude_c = 11.5;  ///< summer-winter half-swing
  double diurnal_amplitude_c = 5.5;  ///< day-night half-swing
  double day_noise_c = 3.0;      ///< stddev of per-day temperature offset
  double cloudy_winter_prob = 0.65;  ///< chance a winter day is cloudy
  double cloudy_summer_prob = 0.15;  ///< chance a summer day is cloudy
  double min_day_length_h = 8.5;     ///< winter-solstice daylight hours
  double max_day_length_h = 15.5;    ///< summer-solstice daylight hours
};

/// Deterministic synthetic climate: annual + diurnal sinusoids plus
/// hash-derived per-day offsets (smoothly interpolated between days so the
/// temperature trace has no jumps at midnight).
class SyntheticWeather : public WeatherService {
 public:
  explicit SyntheticWeather(ClimateOptions options = {});

  WeatherSample At(SimTime t) const override;

  const ClimateOptions& options() const { return options_; }

 private:
  /// Per-day pseudo-random temperature offset (°C), smooth across days.
  double DayOffset(int64_t day_index) const;

  /// Whether the given day is cloudy.
  bool IsCloudy(int64_t day_index, Season season) const;

  ClimateOptions options_;
};

}  // namespace weather
}  // namespace imcf

#endif  // IMCF_WEATHER_WEATHER_H_
