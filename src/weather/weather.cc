#include "weather/weather.h"

#include <cmath>

#include "common/rng.h"
#include "common/units.h"

namespace imcf {
namespace weather {

namespace {

constexpr double kTau = 2.0 * M_PI;

// Annual-phase anchors as fractions of the year. Using YearFraction(t)
// (which divides by the *actual* 365/366-day year) instead of an integer
// day-of-year over 365.25 keeps the annual phase exactly continuous across
// Dec 31 -> Jan 1 midnight and drift-free through leap days.
constexpr double kColdestFrac = 14.5 / 365.25;   // mid January
constexpr double kSolsticeFrac = 171.5 / 365.25; // June solstice

// Coldest hour of the day (pre-dawn).
constexpr double kColdestHour = 5.0;

int64_t DayIndexOf(SimTime t) { return t >= 0 ? t / kSecondsPerDay : (t - kSecondsPerDay + 1) / kSecondsPerDay; }

}  // namespace

const char* SeasonName(Season s) {
  switch (s) {
    case Season::kWinter:
      return "Winter";
    case Season::kSpring:
      return "Spring";
    case Season::kSummer:
      return "Summer";
    case Season::kAutumn:
      return "Autumn";
  }
  return "?";
}

const char* SkyName(Sky s) {
  return s == Sky::kSunny ? "Sunny" : "Cloudy";
}

Season SeasonOf(SimTime t) {
  const int month = ToCivil(t).month;
  if (month == 12 || month <= 2) return Season::kWinter;
  if (month <= 5) return Season::kSpring;
  if (month <= 8) return Season::kSummer;
  return Season::kAutumn;
}

SyntheticWeather::SyntheticWeather(ClimateOptions options)
    : options_(options) {}

double SyntheticWeather::DayOffset(int64_t day_index) const {
  // Hash each day to a Gaussian-ish offset via the central limit of four
  // uniforms, then callers interpolate between consecutive days.
  const uint64_t h = MixHash(options_.seed, static_cast<uint64_t>(day_index));
  double sum = 0.0;
  for (int i = 0; i < 4; ++i) {
    const uint64_t hi = MixHash(h, static_cast<uint64_t>(i));
    sum += static_cast<double>(hi >> 11) * 0x1.0p-53;  // [0,1)
  }
  // Sum of 4 uniforms: mean 2, var 4/12 -> scale to unit variance.
  const double z = (sum - 2.0) / std::sqrt(4.0 / 12.0);
  return z * options_.day_noise_c;
}

bool SyntheticWeather::IsCloudy(int64_t day_index, Season season) const {
  double p;
  switch (season) {
    case Season::kWinter:
      p = options_.cloudy_winter_prob;
      break;
    case Season::kSummer:
      p = options_.cloudy_summer_prob;
      break;
    default:
      p = 0.5 * (options_.cloudy_winter_prob + options_.cloudy_summer_prob);
      break;
  }
  const uint64_t h =
      MixHash(options_.seed ^ 0xC10D5ULL, static_cast<uint64_t>(day_index));
  return (static_cast<double>(h >> 11) * 0x1.0p-53) < p;
}

WeatherSample SyntheticWeather::At(SimTime t) const {
  WeatherSample sample;
  sample.season = SeasonOf(t);

  const int64_t day_index = DayIndexOf(t);
  const double yfrac = YearFraction(t);
  const double hour = static_cast<double>(MinuteOfDay(t)) / 60.0;

  // Annual component: minimum (-A) around mid January, maximum mid July.
  const double annual =
      -options_.annual_amplitude_c * std::cos(kTau * (yfrac - kColdestFrac));

  // Diurnal component: coldest pre-dawn, warmest mid afternoon.
  const double diurnal =
      -options_.diurnal_amplitude_c * std::cos(kTau * (hour - kColdestHour) / 24.0);

  // Smoothly interpolated per-day offset.
  const double frac = hour / 24.0;
  const double offset =
      Lerp(DayOffset(day_index), DayOffset(day_index + 1), frac);

  sample.sky = IsCloudy(day_index, sample.season) ? Sky::kCloudy : Sky::kSunny;

  // Cloud cover damps both the diurnal swing and, in summer, the peak.
  const double cloud_damp = sample.sky == Sky::kCloudy ? 0.6 : 1.0;
  sample.outdoor_daily_mean_c = options_.mean_temp_c + annual + offset;
  sample.outdoor_temp_c = sample.outdoor_daily_mean_c + diurnal * cloud_damp;

  // Day length oscillates with the season (solstice anchored near doy 172).
  const double mid =
      0.5 * (options_.min_day_length_h + options_.max_day_length_h);
  const double half =
      0.5 * (options_.max_day_length_h - options_.min_day_length_h);
  sample.day_length_hours =
      mid + half * std::cos(kTau * (yfrac - kSolsticeFrac));

  // Daylight: sine arch between sunrise and sunset, scaled down on cloudy
  // days.
  const double sunrise = 12.0 - sample.day_length_hours / 2.0;
  const double sunset = 12.0 + sample.day_length_hours / 2.0;
  double daylight = 0.0;
  if (hour > sunrise && hour < sunset) {
    daylight = std::sin(M_PI * (hour - sunrise) / sample.day_length_hours);
  }
  if (sample.sky == Sky::kCloudy) daylight *= 0.35;
  sample.daylight = Clamp(daylight, 0.0, 1.0);
  return sample;
}

}  // namespace weather
}  // namespace imcf
