#include "storage/trace_file.h"

#include <cstring>
#include <memory>

#include "common/crc32.h"
#include "storage/coding.h"

namespace imcf {

namespace {

constexpr char kMagic[] = "IMCFTRC1";
constexpr size_t kMagicLen = 8;
constexpr size_t kBlockRecords = 4096;

float BitsToFloat(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

uint32_t FloatToBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

Status ReadExact(std::FILE* f, char* buf, size_t n, const char* what) {
  if (std::fread(buf, 1, n, f) != n) {
    return Status::Corruption(std::string("truncated ") + what);
  }
  return Status::Ok();
}

// Reads one LEB128 varint directly from the file.
Result<uint64_t> ReadVarintFromFile(std::FILE* f) {
  uint64_t v = 0;
  int shift = 0;
  while (shift <= 63) {
    const int c = std::fgetc(f);
    if (c == EOF) return Status::Corruption("eof inside varint");
    v |= static_cast<uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::Corruption("overlong varint");
}

}  // namespace

TraceFileWriter::~TraceFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status TraceFileWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("trace file already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create trace file: " + path);
  }
  path_ = path;
  if (std::fwrite(kMagic, 1, kMagicLen, file_) != kMagicLen) {
    return Status::IOError("cannot write header: " + path);
  }
  return Status::Ok();
}

Status TraceFileWriter::Append(const SensorRecord& record) {
  if (file_ == nullptr || finished_) {
    return Status::FailedPrecondition("trace file not open for append");
  }
  if (total_count_ + static_cast<int64_t>(pending_.size()) > 0 &&
      record.time < last_time_) {
    return Status::InvalidArgument(
        "trace readings must be appended in time order");
  }
  last_time_ = record.time;
  pending_.push_back(record);
  if (pending_.size() >= kBlockRecords) {
    IMCF_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::Ok();
}

Status TraceFileWriter::FlushBlock() {
  if (pending_.empty()) return Status::Ok();
  std::string payload;
  payload.reserve(pending_.size() * 8 + 16);
  PutVarint64(&payload, pending_.size());
  PutFixed64(&payload, static_cast<uint64_t>(pending_.front().time));
  SimTime prev = pending_.front().time;
  for (const SensorRecord& r : pending_) {
    PutVarint64(&payload, static_cast<uint64_t>(r.time - prev));
    prev = r.time;
    PutVarint64(&payload, r.sensor_id);
    payload.push_back(static_cast<char>(r.kind));
    PutFixed32(&payload, FloatToBits(r.value));
  }
  std::string frame;
  PutVarint64(&frame, payload.size());
  frame += payload;
  PutFixed32(&frame, MaskCrc(Crc32c(payload)));
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("block write failed: " + path_);
  }
  total_count_ += static_cast<int64_t>(pending_.size());
  pending_.clear();
  return Status::Ok();
}

Status TraceFileWriter::Finish() {
  if (finished_) return Status::Ok();
  if (file_ == nullptr) return Status::FailedPrecondition("not open");
  IMCF_RETURN_IF_ERROR(FlushBlock());
  std::string footer;
  PutVarint64(&footer, 0);  // zero-length block marks the footer
  PutFixed64(&footer, static_cast<uint64_t>(total_count_));
  if (std::fwrite(footer.data(), 1, footer.size(), file_) != footer.size()) {
    return Status::IOError("footer write failed: " + path_);
  }
  const bool ok = std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
  if (!ok) return Status::IOError("flush failed: " + path_);
  return Status::Ok();
}

TraceFileReader::~TraceFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<TraceFileReader>> TraceFileReader::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open trace file: " + path);
  char magic[kMagicLen];
  if (std::fread(magic, 1, kMagicLen, f) != kMagicLen ||
      std::memcmp(magic, kMagic, kMagicLen) != 0) {
    std::fclose(f);
    return Status::Corruption("bad trace file magic: " + path);
  }
  auto reader = std::unique_ptr<TraceFileReader>(new TraceFileReader());
  reader->file_ = f;
  return reader;
}

Status TraceFileReader::LoadNextBlock() {
  IMCF_ASSIGN_OR_RETURN(uint64_t payload_len, ReadVarintFromFile(file_));
  if (payload_len == 0) {
    // Footer: total record count follows.
    char buf[8];
    IMCF_RETURN_IF_ERROR(ReadExact(file_, buf, 8, "footer"));
    footer_count_ = static_cast<int64_t>(GetFixed64(buf));
    at_end_ = true;
    return Status::Ok();
  }
  std::string payload(payload_len, '\0');
  IMCF_RETURN_IF_ERROR(ReadExact(file_, payload.data(), payload_len, "block"));
  char crc_buf[4];
  IMCF_RETURN_IF_ERROR(ReadExact(file_, crc_buf, 4, "block crc"));
  const uint32_t stored = UnmaskCrc(GetFixed32(crc_buf));
  if (stored != Crc32c(payload)) {
    return Status::Corruption("trace block checksum mismatch");
  }
  Decoder dec(payload);
  IMCF_ASSIGN_OR_RETURN(uint64_t count, dec.ReadVarint64());
  IMCF_ASSIGN_OR_RETURN(uint64_t base_time, dec.ReadFixed64());
  block_.clear();
  block_.reserve(count);
  SimTime t = static_cast<SimTime>(base_time);
  for (uint64_t i = 0; i < count; ++i) {
    IMCF_ASSIGN_OR_RETURN(uint64_t delta, dec.ReadVarint64());
    // The first record's stored delta is 0 relative to base_time.
    if (i > 0) t += static_cast<SimTime>(delta);
    SensorRecord r;
    r.time = (i == 0) ? static_cast<SimTime>(base_time) : t;
    IMCF_ASSIGN_OR_RETURN(uint64_t sensor_id, dec.ReadVarint64());
    r.sensor_id = static_cast<uint32_t>(sensor_id);
    IMCF_ASSIGN_OR_RETURN(std::string_view kind, dec.ReadBytes(1));
    r.kind = static_cast<uint8_t>(kind[0]);
    IMCF_ASSIGN_OR_RETURN(uint32_t bits, dec.ReadFixed32());
    r.value = BitsToFloat(bits);
    block_.push_back(r);
  }
  if (!dec.empty()) return Status::Corruption("trailing bytes in block");
  block_pos_ = 0;
  return Status::Ok();
}

bool TraceFileReader::Next(SensorRecord* record) {
  if (!status_.ok() || at_end_) return false;
  while (block_pos_ >= block_.size()) {
    status_ = LoadNextBlock();
    if (!status_.ok() || at_end_) return false;
  }
  *record = block_[block_pos_++];
  return true;
}

Result<std::vector<SensorRecord>> TraceFileReader::ReadAll(
    const std::string& path) {
  IMCF_ASSIGN_OR_RETURN(std::unique_ptr<TraceFileReader> reader, Open(path));
  std::vector<SensorRecord> out;
  SensorRecord r;
  while (reader->Next(&r)) out.push_back(r);
  IMCF_RETURN_IF_ERROR(reader->status());
  if (reader->footer_count() >= 0 &&
      reader->footer_count() != static_cast<int64_t>(out.size())) {
    return Status::Corruption("footer count mismatch");
  }
  return out;
}

}  // namespace imcf
