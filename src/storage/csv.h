// CSV encoding/decoding (RFC-4180 subset: quoted fields, embedded commas,
// quotes and newlines). Used to exchange traces, rule tables and experiment
// reports with external tooling.

#ifndef IMCF_STORAGE_CSV_H_
#define IMCF_STORAGE_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace imcf {

/// One CSV record.
using CsvRow = std::vector<std::string>;

/// Encodes a row, quoting fields that need it; no trailing newline.
std::string EncodeCsvRow(const CsvRow& row);

/// Parses one CSV line into fields; handles quoted fields. Fails on
/// unterminated quotes.
Result<CsvRow> ParseCsvLine(std::string_view line);

/// Parses a whole CSV document (splitting on '\n', tolerating trailing
/// '\r'). Empty trailing line is ignored.
Result<std::vector<CsvRow>> ParseCsv(std::string_view text);

/// Reads and parses a CSV file from disk.
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path);

/// Writes rows to a CSV file, one record per line.
Status WriteCsvFile(const std::string& path,
                    const std::vector<CsvRow>& rows);

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (truncating).
Status WriteStringToFile(const std::string& path, std::string_view data);

}  // namespace imcf

#endif  // IMCF_STORAGE_CSV_H_
