// TableStore: a small embedded, schema-checked, append-only table store.
//
// The paper's prototype persists user configuration (meta-rules, budgets,
// item states) in MariaDB. This module provides the equivalent substrate:
// named tables with typed columns, durable via the CRC-framed RecordLog,
// recovered on open. It intentionally supports only what the IMCF stack
// needs — insert, full scan, predicate scan and truncate — no query planner.

#ifndef IMCF_STORAGE_TABLE_STORE_H_
#define IMCF_STORAGE_TABLE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "storage/record_log.h"

namespace imcf {

/// Column types supported by the store.
enum class ColumnType : uint8_t { kInt = 0, kDouble = 1, kString = 2 };

/// A typed cell value.
using Value = std::variant<int64_t, double, std::string>;

/// One record.
using Row = std::vector<Value>;

/// A named, typed column.
struct Column {
  std::string name;
  ColumnType type;
};

/// Schema of a table: its name and ordered columns.
struct TableSchema {
  std::string name;
  std::vector<Column> columns;

  /// Index of a column by name, or -1.
  int ColumnIndex(const std::string& column_name) const;
};

/// Returns the ColumnType a Value currently holds.
ColumnType TypeOf(const Value& v);

/// Renders a value for display/CSV export.
std::string ValueToString(const Value& v);

/// An open table: in-memory rows backed by an append-only log.
class Table {
 public:
  Table(TableSchema schema, std::string log_path);

  /// Recovers rows from the backing log (tolerates a torn tail).
  Status Recover();

  /// Validates against the schema, appends to the log and to memory.
  Status Insert(const Row& row);

  /// All rows, in insertion order.
  const std::vector<Row>& rows() const { return rows_; }

  /// Rows matching `pred`.
  std::vector<Row> Select(const std::function<bool(const Row&)>& pred) const;

  /// Deletes all rows. O(1): appends a truncation marker to the log (the
  /// superseded rows become stale records) instead of rewriting the file,
  /// then compacts once stale records cross the threshold. Crash-safe at
  /// every step — the log is never destroyed in place.
  Status Truncate();

  /// Rewrites the backing log to schema + live rows, dropping stale
  /// records. Writes `<path>.compacting` fully, then renames it over the
  /// log, so a crash leaves either the old or the new log intact.
  Status Compact();

  /// Log records recovery would discard (superseded rows + markers).
  size_t stale_records() const { return stale_records_; }

  /// Stale-record count at which Truncate() auto-compacts; 0 disables
  /// automatic compaction (Compact() stays available).
  void set_compaction_threshold(size_t n) { compaction_threshold_ = n; }
  size_t compaction_threshold() const { return compaction_threshold_; }

  const TableSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Flushes the backing log.
  Status Flush();

 private:
  Status CheckRow(const Row& row) const;

  TableSchema schema_;
  std::string log_path_;
  RecordLogWriter log_;
  std::vector<Row> rows_;
  size_t stale_records_ = 0;
  size_t compaction_threshold_ = 1024;
};

/// A directory of tables. Each table lives in `<dir>/<name>.tlog`, with the
/// schema serialized as the first record.
class TableStore {
 public:
  /// Opens (creating if needed) the store rooted at `dir`.
  static Result<std::unique_ptr<TableStore>> Open(const std::string& dir);

  /// Creates a table; error if it already exists.
  Result<Table*> CreateTable(const TableSchema& schema);

  /// Opens an existing table or creates it with `schema`.
  Result<Table*> OpenOrCreateTable(const TableSchema& schema);

  /// Returns an open table by name.
  Result<Table*> GetTable(const std::string& name);

  /// Names of all open tables.
  std::vector<std::string> TableNames() const;

  const std::string& dir() const { return dir_; }

 private:
  explicit TableStore(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

/// Serializes a row against a schema (binary, varint/length-prefixed).
std::string EncodeRow(const TableSchema& schema, const Row& row);

/// Parses a row serialized by EncodeRow.
Result<Row> DecodeRow(const TableSchema& schema, std::string_view data);

/// Serializes a schema for the table log header record.
std::string EncodeSchema(const TableSchema& schema);

/// Parses a schema header record.
Result<TableSchema> DecodeSchema(std::string_view data);

}  // namespace imcf

#endif  // IMCF_STORAGE_TABLE_STORE_H_
