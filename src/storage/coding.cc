#include "storage/coding.h"

#include <cstring>

namespace imcf {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  dst->append(buf, 8);
}

uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarintSigned64(std::string* dst, int64_t v) {
  // zigzag: maps small negatives to small positives.
  const uint64_t encoded =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint64(dst, encoded);
}

Result<uint32_t> Decoder::ReadFixed32() {
  if (remaining() < 4) return Status::Corruption("truncated fixed32");
  const uint32_t v = GetFixed32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::ReadFixed64() {
  if (remaining() < 8) return Status::Corruption("truncated fixed64");
  const uint64_t v = GetFixed64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<uint64_t> Decoder::ReadVarint64() {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::Corruption("truncated or overlong varint");
}

Result<int64_t> Decoder::ReadVarintSigned64() {
  IMCF_ASSIGN_OR_RETURN(uint64_t encoded, ReadVarint64());
  return static_cast<int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
}

Result<std::string_view> Decoder::ReadBytes(size_t n) {
  if (remaining() < n) return Status::Corruption("truncated bytes");
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

Result<double> ReadDouble(Decoder* dec) {
  IMCF_ASSIGN_OR_RETURN(uint64_t bits, dec->ReadFixed64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

Result<std::string_view> ReadLengthPrefixed(Decoder* dec) {
  IMCF_ASSIGN_OR_RETURN(uint64_t n, dec->ReadVarint64());
  return dec->ReadBytes(static_cast<size_t>(n));
}

}  // namespace imcf
