#include "storage/table_store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>

#include "common/strings.h"
#include "storage/coding.h"

namespace imcf {

int TableSchema::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

ColumnType TypeOf(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return ColumnType::kInt;
  if (std::holds_alternative<double>(v)) return ColumnType::kDouble;
  return ColumnType::kString;
}

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case ColumnType::kInt:
      return StrFormat("%lld",
                       static_cast<long long>(std::get<int64_t>(v)));
    case ColumnType::kDouble:
      return StrFormat("%.6g", std::get<double>(v));
    case ColumnType::kString:
      return std::get<std::string>(v);
  }
  return "";
}

std::string EncodeRow(const TableSchema& schema, const Row& row) {
  std::string out;
  out.push_back(1);  // record kind: row
  for (size_t i = 0; i < row.size(); ++i) {
    switch (schema.columns[i].type) {
      case ColumnType::kInt:
        PutVarintSigned64(&out, std::get<int64_t>(row[i]));
        break;
      case ColumnType::kDouble:
        PutDouble(&out, std::get<double>(row[i]));
        break;
      case ColumnType::kString:
        PutLengthPrefixed(&out, std::get<std::string>(row[i]));
        break;
    }
  }
  return out;
}

Result<Row> DecodeRow(const TableSchema& schema, std::string_view data) {
  Decoder dec(data);
  IMCF_ASSIGN_OR_RETURN(std::string_view kind, dec.ReadBytes(1));
  if (kind[0] != 1) return Status::Corruption("not a row record");
  Row row;
  row.reserve(schema.columns.size());
  for (const Column& col : schema.columns) {
    switch (col.type) {
      case ColumnType::kInt: {
        IMCF_ASSIGN_OR_RETURN(int64_t v, dec.ReadVarintSigned64());
        row.emplace_back(v);
        break;
      }
      case ColumnType::kDouble: {
        IMCF_ASSIGN_OR_RETURN(double v, ReadDouble(&dec));
        row.emplace_back(v);
        break;
      }
      case ColumnType::kString: {
        IMCF_ASSIGN_OR_RETURN(std::string_view v, ReadLengthPrefixed(&dec));
        row.emplace_back(std::string(v));
        break;
      }
    }
  }
  if (!dec.empty()) return Status::Corruption("trailing bytes in row record");
  return row;
}

std::string EncodeSchema(const TableSchema& schema) {
  std::string out;
  out.push_back(0);  // record kind: schema
  PutLengthPrefixed(&out, schema.name);
  PutVarint64(&out, schema.columns.size());
  for (const Column& col : schema.columns) {
    PutLengthPrefixed(&out, col.name);
    out.push_back(static_cast<char>(col.type));
  }
  return out;
}

Result<TableSchema> DecodeSchema(std::string_view data) {
  Decoder dec(data);
  IMCF_ASSIGN_OR_RETURN(std::string_view kind, dec.ReadBytes(1));
  if (kind[0] != 0) return Status::Corruption("not a schema record");
  TableSchema schema;
  IMCF_ASSIGN_OR_RETURN(std::string_view name, ReadLengthPrefixed(&dec));
  schema.name = std::string(name);
  IMCF_ASSIGN_OR_RETURN(uint64_t n_cols, dec.ReadVarint64());
  for (uint64_t i = 0; i < n_cols; ++i) {
    Column col;
    IMCF_ASSIGN_OR_RETURN(std::string_view col_name, ReadLengthPrefixed(&dec));
    col.name = std::string(col_name);
    IMCF_ASSIGN_OR_RETURN(std::string_view type_byte, dec.ReadBytes(1));
    const uint8_t t = static_cast<uint8_t>(type_byte[0]);
    if (t > static_cast<uint8_t>(ColumnType::kString)) {
      return Status::Corruption("unknown column type");
    }
    col.type = static_cast<ColumnType>(t);
    schema.columns.push_back(std::move(col));
  }
  return schema;
}

Table::Table(TableSchema schema, std::string log_path)
    : schema_(std::move(schema)), log_path_(std::move(log_path)) {}

Status Table::Recover() {
  // Read back whatever exists; a fresh table has no file yet.
  std::FILE* probe = std::fopen(log_path_.c_str(), "rb");
  const bool exists = probe != nullptr;
  if (probe != nullptr) std::fclose(probe);
  if (exists) {
    IMCF_ASSIGN_OR_RETURN(std::vector<std::string> records,
                          RecordLogReader::ReadAll(log_path_));
    bool saw_schema = false;
    for (const std::string& record : records) {
      if (record.empty()) return Status::Corruption("empty record");
      if (record[0] == 0) {
        IMCF_ASSIGN_OR_RETURN(TableSchema stored, DecodeSchema(record));
        if (stored.columns.size() != schema_.columns.size()) {
          return Status::FailedPrecondition(
              "schema mismatch for table " + schema_.name);
        }
        saw_schema = true;
      } else if (record[0] == 2) {
        // Truncation marker: every row before it (and the marker itself)
        // is stale until the next compaction.
        stale_records_ += rows_.size() + 1;
        rows_.clear();
      } else {
        IMCF_ASSIGN_OR_RETURN(Row row, DecodeRow(schema_, record));
        rows_.push_back(std::move(row));
      }
    }
    if (!records.empty() && !saw_schema) {
      return Status::Corruption("table log missing schema header: " +
                                log_path_);
    }
  }
  IMCF_RETURN_IF_ERROR(log_.Open(log_path_));
  if (!exists) {
    IMCF_RETURN_IF_ERROR(log_.Append(EncodeSchema(schema_)));
    IMCF_RETURN_IF_ERROR(log_.Flush());
  }
  return Status::Ok();
}

Status Table::CheckRow(const Row& row) const {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument(StrFormat(
        "table %s expects %zu columns, got %zu", schema_.name.c_str(),
        schema_.columns.size(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (TypeOf(row[i]) != schema_.columns[i].type) {
      return Status::InvalidArgument(
          StrFormat("type mismatch in column '%s' of table %s",
                    schema_.columns[i].name.c_str(), schema_.name.c_str()));
    }
  }
  return Status::Ok();
}

Status Table::Insert(const Row& row) {
  IMCF_RETURN_IF_ERROR(CheckRow(row));
  IMCF_RETURN_IF_ERROR(log_.Append(EncodeRow(schema_, row)));
  rows_.push_back(row);
  return Status::Ok();
}

std::vector<Row> Table::Select(
    const std::function<bool(const Row&)>& pred) const {
  std::vector<Row> out;
  for (const Row& row : rows_) {
    if (pred(row)) out.push_back(row);
  }
  return out;
}

Status Table::Truncate() {
  // An empty table replays to empty at this point in the log already; a
  // marker would only add a stale record.
  if (rows_.empty()) return Status::Ok();
  std::string marker(1, static_cast<char>(2));
  IMCF_RETURN_IF_ERROR(log_.Append(marker));
  IMCF_RETURN_IF_ERROR(log_.Flush());
  stale_records_ += rows_.size() + 1;  // dead rows + the marker itself
  rows_.clear();
  if (compaction_threshold_ > 0 && stale_records_ >= compaction_threshold_) {
    return Compact();
  }
  return Status::Ok();
}

Status Table::Compact() {
  if (stale_records_ == 0) return Status::Ok();
  const std::string tmp_path = log_path_ + ".compacting";
  std::remove(tmp_path.c_str());  // leftover from a crashed compaction
  {
    RecordLogWriter tmp;
    IMCF_RETURN_IF_ERROR(tmp.Open(tmp_path));
    IMCF_RETURN_IF_ERROR(tmp.Append(EncodeSchema(schema_)));
    for (const Row& row : rows_) {
      IMCF_RETURN_IF_ERROR(tmp.Append(EncodeRow(schema_, row)));
    }
    // Sync BEFORE the rename: renaming an unsynced temp file can publish
    // the table's name pointing at blocks that never reached disk, turning
    // a crash into a truncated-to-empty table.
    IMCF_RETURN_IF_ERROR(tmp.Sync());
    IMCF_RETURN_IF_ERROR(tmp.Close());
  }
  IMCF_RETURN_IF_ERROR(log_.Close());
  if (std::rename(tmp_path.c_str(), log_path_.c_str()) != 0) {
    return Status::IOError("cannot rename compacted log: " + log_path_);
  }
  // And sync the parent directory AFTER: the rename itself is directory
  // metadata, durable only once the directory inode is.
  const size_t slash = log_path_.find_last_of('/');
  const std::string parent =
      slash == std::string::npos ? std::string(".") : log_path_.substr(0, slash);
  IMCF_RETURN_IF_ERROR(SyncDirectory(parent));
  stale_records_ = 0;
  return log_.Open(log_path_);
}

Status Table::Flush() { return log_.Flush(); }

Result<std::unique_ptr<TableStore>> TableStore::Open(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0) {
    if (::mkdir(dir.c_str(), 0755) != 0) {
      return Status::IOError("cannot create store directory: " + dir);
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("not a directory: " + dir);
  }
  return std::unique_ptr<TableStore>(new TableStore(dir));
}

Result<Table*> TableStore::CreateTable(const TableSchema& schema) {
  if (tables_.count(schema.name) > 0) {
    return Status::AlreadyExists("table exists: " + schema.name);
  }
  auto table = std::make_unique<Table>(schema, dir_ + "/" + schema.name +
                                                   ".tlog");
  IMCF_RETURN_IF_ERROR(table->Recover());
  Table* ptr = table.get();
  tables_[schema.name] = std::move(table);
  return ptr;
}

Result<Table*> TableStore::OpenOrCreateTable(const TableSchema& schema) {
  auto it = tables_.find(schema.name);
  if (it != tables_.end()) return it->second.get();
  return CreateTable(schema);
}

Result<Table*> TableStore::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

std::vector<std::string> TableStore::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace imcf
