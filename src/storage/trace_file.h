// Binary columnar trace file format for sensor readings.
//
// The paper's evaluation feeds multi-gigabyte CASAS sensor traces (5.6M
// readings) through the simulator. Storing those as CSV is ~10x larger and
// slow to parse, so readings are persisted in a compact block format:
//
//   file   := header block* footer
//   header := magic "IMCFTRC1"
//   block  := [varint payload_len][payload][masked crc32c(payload)]
//   payload:= varint count
//             fixed64 base_time
//             count * { varint  time_delta   (seconds since previous)
//                       varint  sensor_id
//                       byte    kind
//                       fixed32 value (IEEE-754 float bits) }
//   footer := varint 0 (empty block terminator) fixed64 total_count
//
// Readings must be appended in non-decreasing time order (the natural order
// of a sensor log); deltas then encode in 1-2 bytes.

#ifndef IMCF_STORAGE_TRACE_FILE_H_
#define IMCF_STORAGE_TRACE_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"

namespace imcf {

/// One stored sensor reading.
struct SensorRecord {
  SimTime time = 0;        ///< seconds
  uint32_t sensor_id = 0;  ///< dense id assigned by the trace builder
  uint8_t kind = 0;        ///< trace::SensorKind enum value
  float value = 0.0f;      ///< measurement (°C, light %, 0/1 door state)

  friend bool operator==(const SensorRecord&, const SensorRecord&) = default;
};

/// Streams readings into the block format described above.
class TraceFileWriter {
 public:
  TraceFileWriter() = default;
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  /// Creates/truncates `path` and writes the header.
  Status Open(const std::string& path);

  /// Appends one reading; must not decrease in time.
  Status Append(const SensorRecord& record);

  /// Flushes the open block and writes the footer. Must be called to
  /// produce a valid file.
  Status Finish();

  int64_t records_written() const { return total_count_; }

 private:
  Status FlushBlock();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<SensorRecord> pending_;
  SimTime last_time_ = 0;
  int64_t total_count_ = 0;
  bool finished_ = false;
};

/// Sequential reader over a trace file.
class TraceFileReader {
 public:
  /// Opens and validates the header.
  static Result<std::unique_ptr<TraceFileReader>> Open(
      const std::string& path);

  ~TraceFileReader();

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  /// Reads the next record into *record. Returns false at end of file.
  /// Corruption surfaces through status().
  bool Next(SensorRecord* record);

  /// OK unless a corrupt block was encountered.
  const Status& status() const { return status_; }

  /// Total record count from the footer (-1 until the footer is reached).
  int64_t footer_count() const { return footer_count_; }

  /// Convenience: reads an entire file into memory.
  static Result<std::vector<SensorRecord>> ReadAll(const std::string& path);

 private:
  TraceFileReader() = default;

  Status LoadNextBlock();

  std::FILE* file_ = nullptr;
  Status status_;
  std::vector<SensorRecord> block_;
  size_t block_pos_ = 0;
  int64_t footer_count_ = -1;
  bool at_end_ = false;
};

}  // namespace imcf

#endif  // IMCF_STORAGE_TRACE_FILE_H_
