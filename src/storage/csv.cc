#include "storage/csv.h"

#include <cstdio>

namespace imcf {

namespace {

bool NeedsQuoting(std::string_view field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

std::string EncodeCsvRow(const CsvRow& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& field = row[i];
    if (NeedsQuoting(field)) {
      out.push_back('"');
      for (char c : field) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out.append(field);
    }
  }
  return out;
}

Result<CsvRow> ParseCsvLine(std::string_view line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        row.push_back(std::move(field));
        field.clear();
      } else if (c == '\r') {
        // tolerate CRLF
      } else {
        field.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quoted CSV field");
  }
  row.push_back(std::move(field));
  return row;
}

Result<std::vector<CsvRow>> ParseCsv(std::string_view text) {
  // Quote-aware document scan: newlines inside quoted fields belong to the
  // field, so records cannot be found by naive line splitting.
  std::vector<CsvRow> rows;
  // First pass: newline count bounds the record count (quoted newlines make
  // it an overestimate, which reserve tolerates), so the row vector never
  // reallocates while large documents stream in.
  size_t newlines = 0;
  for (char c : text) {
    if (c == '\n') ++newlines;
  }
  rows.reserve(newlines + 1);
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool record_started = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        record_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        record_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (record_started || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
        } else {
          rows.push_back(CsvRow{""});
        }
        record_started = false;
        break;
      default:
        field.push_back(c);
        record_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quoted CSV field");
  }
  if (record_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path) {
  IMCF_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsv(text);
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) {
    out += EncodeCsvRow(row);
    out.push_back('\n');
  }
  return WriteStringToFile(path, out);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::IOError("read failed: " + path);
  return data;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool flush_ok = std::fflush(f) == 0;
  std::fclose(f);
  if (written != data.size() || !flush_ok) {
    return Status::IOError("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace imcf
