#include "storage/record_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "storage/csv.h"

namespace imcf {

namespace {

/// The test-only sync observer (see SetSyncObserverForTest).
std::function<Status(const std::string&, bool)>& SyncObserver() {
  static std::function<Status(const std::string&, bool)> observer;
  return observer;
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  dst->append(buf, 4);
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

}  // namespace

RecordLogWriter::~RecordLogWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RecordLogWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("log already open: " + path_);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log for append: " + path);
  }
  path_ = path;
  return Status::Ok();
}

Status RecordLogWriter::Append(std::string_view payload) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("log not open");
  }
  std::string frame;
  frame.reserve(8 + payload.size());
  // CRC covers the length field and the payload.
  std::string length_bytes;
  PutFixed32(&length_bytes, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32c(0, length_bytes.data(), length_bytes.size());
  crc = Crc32c(crc, payload.data(), payload.size());
  PutFixed32(&frame, MaskCrc(crc));
  frame += length_bytes;
  frame.append(payload.data(), payload.size());
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("append failed: " + path_);
  }
  return Status::Ok();
}

Status RecordLogWriter::Flush() {
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");
  if (std::fflush(file_) != 0) return Status::IOError("flush failed: " + path_);
  return Status::Ok();
}

Status RecordLogWriter::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");
  if (std::fflush(file_) != 0) return Status::IOError("flush failed: " + path_);
  if (SyncObserver()) {
    IMCF_RETURN_IF_ERROR(SyncObserver()(path_, /*is_directory=*/false));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("fsync failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status RecordLogWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  const bool ok = std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!ok) return Status::IOError("close failed: " + path_);
  return Status::Ok();
}

Status SyncDirectory(const std::string& dir_path) {
  if (SyncObserver()) {
    IMCF_RETURN_IF_ERROR(SyncObserver()(dir_path, /*is_directory=*/true));
  }
  const int fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("cannot open directory for sync: " + dir_path +
                           ": " + std::strerror(errno));
  }
  const bool ok = ::fsync(fd) == 0;
  const int saved_errno = errno;
  ::close(fd);
  if (!ok) {
    return Status::IOError("directory fsync failed: " + dir_path + ": " +
                           std::strerror(saved_errno));
  }
  return Status::Ok();
}

void SetSyncObserverForTest(
    std::function<Status(const std::string& path, bool is_directory)>
        observer) {
  SyncObserver() = std::move(observer);
}

Result<std::vector<std::string>> RecordLogReader::ReadAll(
    const std::string& path, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  IMCF_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  std::vector<std::string> records;
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    const uint32_t stored_crc = UnmaskCrc(GetFixed32(data.data() + pos));
    const uint32_t length = GetFixed32(data.data() + pos + 4);
    if (data.size() - pos - 8 < length) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    uint32_t crc = Crc32c(0, data.data() + pos + 4, 4);
    crc = Crc32c(crc, data.data() + pos + 8, length);
    if (crc != stored_crc) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    records.emplace_back(data.substr(pos + 8, length));
    pos += 8 + length;
  }
  return records;
}

}  // namespace imcf
