// Append-only record log with per-record CRC framing.
//
// This is the durability primitive beneath the TableStore (IMCF's stand-in
// for the paper's MariaDB persistence layer). Each record is framed as
//
//   [masked crc32c : 4 bytes][length : 4 bytes LE][payload : length bytes]
//
// where the CRC covers length + payload. Readers stop at the first torn or
// corrupt record, so a crash mid-append loses at most the last record —
// the same contract as a write-ahead log.

#ifndef IMCF_STORAGE_RECORD_LOG_H_
#define IMCF_STORAGE_RECORD_LOG_H_

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace imcf {

/// Appends CRC-framed records to a file.
class RecordLogWriter {
 public:
  RecordLogWriter() = default;
  ~RecordLogWriter();

  RecordLogWriter(const RecordLogWriter&) = delete;
  RecordLogWriter& operator=(const RecordLogWriter&) = delete;

  /// Opens `path` for appending (creates it if missing).
  Status Open(const std::string& path);

  /// Appends one record; returns after the data is handed to the OS.
  Status Append(std::string_view payload);

  /// Flushes buffered data.
  Status Flush();

  /// Flushes buffered data AND forces it to stable storage (fsync). Flush
  /// alone hands bytes to the OS; only Sync survives a power cut. Callers
  /// that rename this file into place must Sync it first, or the rename can
  /// publish a name pointing at unwritten blocks.
  Status Sync();

  /// Flushes and closes; further appends fail.
  Status Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Fsyncs a directory, making previously-renamed entries in it durable. A
/// rename is only crash-safe once the parent directory's own metadata has
/// reached disk — syncing the file alone pins the bytes, not the name.
Status SyncDirectory(const std::string& dir_path);

/// Test hook observing (and optionally fault-injecting) every sync.
/// Called with (path, is_directory) before the real fsync; a non-OK return
/// is propagated without syncing. Pass nullptr to reset. Not thread-safe —
/// set it from a quiesced test only.
void SetSyncObserverForTest(
    std::function<Status(const std::string& path, bool is_directory)>
        observer);

/// Reads back all intact records of a log.
class RecordLogReader {
 public:
  /// Reads every valid record from `path`. If the file ends in a torn or
  /// corrupt record, reading stops there; `truncated` (optional) is set to
  /// true in that case.
  static Result<std::vector<std::string>> ReadAll(const std::string& path,
                                                  bool* truncated = nullptr);
};

}  // namespace imcf

#endif  // IMCF_STORAGE_RECORD_LOG_H_
