// Binary encoding primitives (fixed-width little-endian integers, LEB128
// varints, zigzag) shared by the record log, table store and trace file
// formats.

#ifndef IMCF_STORAGE_CODING_H_
#define IMCF_STORAGE_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace imcf {

/// Appends a 32-bit little-endian integer.
void PutFixed32(std::string* dst, uint32_t v);

/// Appends a 64-bit little-endian integer.
void PutFixed64(std::string* dst, uint64_t v);

/// Reads a 32-bit little-endian integer at `p` (caller checks bounds).
uint32_t GetFixed32(const char* p);

/// Reads a 64-bit little-endian integer at `p` (caller checks bounds).
uint64_t GetFixed64(const char* p);

/// Appends an unsigned LEB128 varint (1..10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

/// Appends a zigzag-encoded signed varint (efficient for small deltas of
/// either sign, e.g. timestamp deltas).
void PutVarintSigned64(std::string* dst, int64_t v);

/// Cursor over an immutable byte buffer with bounds-checked reads.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  /// Bytes remaining.
  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

  Result<uint32_t> ReadFixed32();
  Result<uint64_t> ReadFixed64();
  Result<uint64_t> ReadVarint64();
  Result<int64_t> ReadVarintSigned64();
  /// Reads exactly n raw bytes.
  Result<std::string_view> ReadBytes(size_t n);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Appends a double by bit pattern (little-endian IEEE-754).
void PutDouble(std::string* dst, double v);

/// Reads a double written by PutDouble.
Result<double> ReadDouble(Decoder* dec);

/// Appends a varint-length-prefixed string.
void PutLengthPrefixed(std::string* dst, std::string_view s);

/// Reads a varint-length-prefixed string.
Result<std::string_view> ReadLengthPrefixed(Decoder* dec);

}  // namespace imcf

#endif  // IMCF_STORAGE_CODING_H_
