#include "devices/energy_model.h"

#include <cmath>

#include "common/units.h"

namespace imcf {
namespace devices {

double HvacEnergyModel::PowerKw(double setpoint_c, double ambient_c) const {
  const double gap = std::fabs(setpoint_c - ambient_c);
  // The fan runs for the whole actuation window; the compressor engages
  // only outside the deadband and is capped at the rated draw.
  double compressor = 0.0;
  if (gap > options_.deadband_c) {
    compressor =
        Clamp(options_.kw_per_degree * gap, 0.0, options_.rated_power_kw);
  }
  return options_.fan_kw + compressor;
}

double LightEnergyModel::PowerKw(double intensity_pct) const {
  const double intensity = Clamp(intensity_pct, 0.0, 100.0);
  return options_.max_power_kw * intensity / 100.0;
}

double UnitEnergyModels::CommandEnergyKwh(CommandType type, double value,
                                          double ambient_temp_c,
                                          double hours) const {
  switch (type) {
    case CommandType::kSetTemperature:
      return hvac.EnergyKwh(value, ambient_temp_c, hours);
    case CommandType::kSetLight:
      return light.EnergyKwh(value, hours);
    case CommandType::kTurnOff:
      return 0.0;
  }
  return 0.0;
}

}  // namespace devices
}  // namespace imcf
