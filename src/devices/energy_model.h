// Device energy models.
//
// The paper's cost metric e_j(MR_i) is "the energy consumption of device j
// given the action defined by output O_i^j of meta-rule MR_i". These models
// supply that quantity for the two device families in the evaluation:
//
//  * HVAC split units: electrical power grows with the gap between the
//    commanded setpoint and the unconditioned ambient temperature of the
//    zone (a proportional-band model with standby draw and a rated cap).
//    This reproduces the U.S. DoE rule of thumb quoted in the paper (≈6%
//    energy per 1°C of setpoint adjustment).
//  * Luminaires: power scales linearly with the commanded intensity.
//
// Zone size is captured by `kw_per_degree` (a 50 m² flat needs more power
// per degree than a 10 m² dorm room); the dataset specs in src/trace pick
// per-dataset values.

#ifndef IMCF_DEVICES_ENERGY_MODEL_H_
#define IMCF_DEVICES_ENERGY_MODEL_H_

#include "devices/device.h"

namespace imcf {
namespace devices {

/// HVAC proportional-band parameters.
struct HvacModelOptions {
  double kw_per_degree = 0.070;  ///< compressor kW per °C of gap
  double rated_power_kw = 2.5;   ///< compressor cap
  double fan_kw = 0.10;          ///< circulation fan, drawn whenever the
                                 ///< unit executes a setpoint command
  double deadband_c = 0.25;      ///< gap below which the compressor idles
};

/// Electrical model of a split unit.
class HvacEnergyModel {
 public:
  explicit HvacEnergyModel(HvacModelOptions options = {})
      : options_(options) {}

  /// Average electrical power (kW) to hold `setpoint_c` in a zone whose
  /// unconditioned ambient temperature is `ambient_c`. Symmetric in heating
  /// and cooling.
  double PowerKw(double setpoint_c, double ambient_c) const;

  /// Energy (kWh) to hold the setpoint for `hours`.
  double EnergyKwh(double setpoint_c, double ambient_c, double hours) const {
    return PowerKw(setpoint_c, ambient_c) * hours;
  }

  const HvacModelOptions& options() const { return options_; }

 private:
  HvacModelOptions options_;
};

/// Luminaire parameters.
struct LightModelOptions {
  double max_power_kw = 0.25;  ///< draw at 100% intensity
};

/// Electrical model of a dimmable light.
class LightEnergyModel {
 public:
  explicit LightEnergyModel(LightModelOptions options = {})
      : options_(options) {}

  /// Power (kW) at `intensity_pct` in [0, 100].
  double PowerKw(double intensity_pct) const;

  /// Energy (kWh) at the intensity for `hours`.
  double EnergyKwh(double intensity_pct, double hours) const {
    return PowerKw(intensity_pct) * hours;
  }

  const LightModelOptions& options() const { return options_; }

 private:
  LightModelOptions options_;
};

/// Bundle of the per-unit device models for one dataset.
struct UnitEnergyModels {
  HvacEnergyModel hvac;
  LightEnergyModel light;

  /// Energy (kWh) of executing `command` for `hours` in a zone with the
  /// given ambient conditions. kTurnOff consumes nothing.
  double CommandEnergyKwh(CommandType type, double value, double ambient_temp_c,
                          double hours) const;
};

}  // namespace devices
}  // namespace imcf

#endif  // IMCF_DEVICES_ENERGY_MODEL_H_
