#include "devices/device.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace imcf {
namespace devices {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kHvac:
      return "hvac";
    case DeviceKind::kLight:
      return "light";
  }
  return "?";
}

const char* CommandTypeName(CommandType type) {
  switch (type) {
    case CommandType::kSetTemperature:
      return "Set Temperature";
    case CommandType::kSetLight:
      return "Set Light";
    case CommandType::kTurnOff:
      return "Turn Off";
  }
  return "?";
}

Result<DeviceId> DeviceRegistry::Add(std::string name, DeviceKind kind,
                                     int unit, std::string address) {
  for (const Thing& t : things_) {
    if (t.name == name) {
      return Status::AlreadyExists("device name taken: " + name);
    }
  }
  Thing t;
  t.id = static_cast<DeviceId>(things_.size());
  t.name = std::move(name);
  t.kind = kind;
  t.unit = unit;
  t.address = std::move(address);
  things_.push_back(std::move(t));
  return things_.back().id;
}

Result<const Thing*> DeviceRegistry::Get(DeviceId id) const {
  if (id >= things_.size()) {
    return Status::NotFound(StrFormat("no device with id %u", id));
  }
  return &things_[id];
}

Result<const Thing*> DeviceRegistry::FindByName(const std::string& name) const {
  for (const Thing& t : things_) {
    if (t.name == name) return &t;
  }
  return Status::NotFound("no device named: " + name);
}

Result<DeviceId> DeviceRegistry::FindByUnitAndKind(int unit,
                                                   DeviceKind kind) const {
  for (const Thing& t : things_) {
    if (t.unit == unit && t.kind == kind) return t.id;
  }
  return Status::NotFound(StrFormat("no %s device in unit %d",
                                    DeviceKindName(kind), unit));
}

int DeviceRegistry::UnitCount() const {
  std::set<int> units;
  for (const Thing& t : things_) units.insert(t.unit);
  return static_cast<int>(units.size());
}

}  // namespace devices
}  // namespace imcf
