// Thing (device) model and registry.
//
// Mirrors openHAB's vocabulary, which the paper's Local Controller extends:
// a *Thing* is a physical IoT device reachable at a network address, exposing
// channels the controller actuates (an A/C split unit's power/setpoint, a
// luminaire's dimmer). Buildings are organised into *units* (a flat, one
// quarter of the house, one dorm apartment room) so that replicated datasets
// (House = flat x4, Dorms = 50 apartments) keep a device-per-unit structure.

#ifndef IMCF_DEVICES_DEVICE_H_
#define IMCF_DEVICES_DEVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"

namespace imcf {
namespace devices {

/// Dense device identifier assigned by the registry.
using DeviceId = uint32_t;

/// Kinds of actuatable devices IMCF manages in the evaluation.
enum class DeviceKind : uint8_t {
  kHvac = 0,   ///< heating/cooling split unit (Set Temperature)
  kLight = 1,  ///< dimmable luminaire (Set Light, 0-100%)
};

const char* DeviceKindName(DeviceKind kind);

/// A registered device.
struct Thing {
  DeviceId id = 0;
  std::string name;        ///< e.g. "living_room_ac"
  DeviceKind kind = DeviceKind::kHvac;
  int unit = 0;            ///< building unit (apartment / zone) index
  std::string address;     ///< e.g. "192.168.0.5" (used by the firewall)
};

/// Registry of all Things in a smart space. Ids are dense and stable, so
/// per-device state can live in flat vectors.
class DeviceRegistry {
 public:
  /// Registers a device; returns its assigned id. Names must be unique.
  Result<DeviceId> Add(std::string name, DeviceKind kind, int unit,
                       std::string address = "");

  /// Looks up a device by id.
  Result<const Thing*> Get(DeviceId id) const;

  /// Looks up a device by name.
  Result<const Thing*> FindByName(const std::string& name) const;

  /// The device of `kind` in `unit`, if any (each unit has at most one HVAC
  /// and one light in the evaluation datasets).
  Result<DeviceId> FindByUnitAndKind(int unit, DeviceKind kind) const;

  const std::vector<Thing>& things() const { return things_; }
  size_t size() const { return things_.size(); }

  /// Number of distinct units that have at least one device.
  int UnitCount() const;

 private:
  std::vector<Thing> things_;
};

/// Command types a meta-rule or IFTTT recipe can issue (Table II/III
/// "Action" column).
enum class CommandType : uint8_t {
  kSetTemperature = 0,  ///< HVAC setpoint in °C
  kSetLight = 1,        ///< light intensity in [0, 100]
  kTurnOff = 2,         ///< stop actuating (device falls back to ambient)
};

const char* CommandTypeName(CommandType type);

/// One actuation request flowing from the rule layer through the firewall to
/// a device.
struct ActuationCommand {
  DeviceId device = 0;
  CommandType type = CommandType::kSetTemperature;
  double value = 0.0;
  int rule_id = -1;       ///< originating meta-rule (-1: manual / IFTTT)
  SimTime time = 0;       ///< issue time
  std::string source;     ///< "mrt", "ifttt", "manual", ...
};

}  // namespace devices
}  // namespace imcf

#endif  // IMCF_DEVICES_DEVICE_H_
