// Fixed-size worker pool for deterministic fan-out of independent work.
//
// IMCF's simulation workload decomposes into embarrassingly-parallel items —
// (policy, dataset-replica, repetition) cells and independent slot problems —
// that share no mutable state. The pool runs a classic work queue over a
// fixed set of worker threads; ParallelFor partitions an index range so the
// result slot of each item is fixed by its index, never by scheduling order.
//
// Determinism contract: tasks must derive any randomness from their index
// (e.g. Rng(MixHash(seed, task_index))) and write only to per-index output
// slots. Under that contract a ParallelFor over n items produces bit-identical
// results for any thread count, including the serial threads==1 path, which
// runs inline without touching a thread.

#ifndef IMCF_COMMON_THREAD_POOL_H_
#define IMCF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace imcf {

/// Fixed pool of worker threads consuming a FIFO work queue. Threads start
/// in the constructor and join in the destructor; Submit after shutdown is
/// a programming error (the task is silently dropped). A task that throws
/// does not kill its worker or wedge Wait(): the exception is swallowed and
/// counted (imcf_pool_task_exceptions_total) — report failures through the
/// task's output slot instead of throwing.
class ThreadPool {
 public:
  /// Creates `threads` workers. `threads <= 0` selects the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks run in FIFO dequeue order but complete in
  /// arbitrary order; synchronize through Wait() or per-slot outputs.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Number of worker threads the hardware supports (>= 1).
  static int HardwareThreads();

 private:
  /// Queued task plus its enqueue timestamp, so dequeue can observe how
  /// long the task sat in the queue (imcf_pool_task_wait_ns).
  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::queue<QueuedTask> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;  // queued + executing tasks
  bool shutdown_ = false;
};

/// Runs body(i) for every i in [0, n) across up to `threads` workers.
/// `threads <= 1` (or n <= 1) executes inline on the caller's thread in
/// index order — the serial reference path (where exceptions propagate to
/// the caller as usual). On worker threads an exception from `body` is
/// swallowed and counted, and the remaining items still run; report
/// failures through per-index output slots (e.g. a Result<T> per item).
void ParallelFor(int threads, int n, const std::function<void(int)>& body);

/// ParallelFor over an existing pool (amortizes thread startup across many
/// loops, e.g. benchmark iterations). `pool == nullptr` runs inline.
void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& body);

}  // namespace imcf

#endif  // IMCF_COMMON_THREAD_POOL_H_
