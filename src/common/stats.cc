#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace imcf {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString(int precision) const {
  return StrFormat("%.*f ± %.*f", precision, mean(), precision, stddev());
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mu) * (x - mu);
  return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

}  // namespace imcf
