// Status: the error-handling vocabulary used across the IMCF codebase.
//
// Following the convention of production database systems (RocksDB, Arrow),
// fallible operations return a Status (or a Result<T>, see result.h) instead
// of throwing exceptions. Hot paths stay exception-free and every failure
// carries a code plus a human-readable message.

#ifndef IMCF_COMMON_STATUS_H_
#define IMCF_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace imcf {

/// Canonical error codes. Mirrors the subset of the Abseil/gRPC canonical
/// space that the IMCF modules actually need.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns the lowercase human-readable name of a code ("ok", "not found"...).
const char* StatusCodeToString(StatusCode code);

/// A Status is either OK (the common case, cheap to copy) or an error code
/// with a message. Functions that can fail return Status; use the
/// IMCF_RETURN_IF_ERROR macro to propagate.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace imcf

/// Propagates a non-OK Status to the caller.
#define IMCF_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::imcf::Status _imcf_status = (expr);         \
    if (!_imcf_status.ok()) return _imcf_status;  \
  } while (0)

#endif  // IMCF_COMMON_STATUS_H_
