// Portable SIMD wrapper for the planner's hot numeric loops.
//
// Dispatch policy is compile-time only: a translation unit built with
// -mavx2 (CMake applies it per-source-file to the SoA evaluator when the
// compiler supports it and IMCF_SIMD_AVX2 is ON) gets the AVX2 kernels;
// every other TU — and every build with IMCF_SIMD_FORCE_SCALAR defined —
// gets the guarded scalar fallback with identical semantics. There is no
// runtime CPU detection: the repo targets fixed fleets (CI runners, the
// bench machine) where the ISA is known at configure time.
//
// The functions are `static inline` deliberately: each TU keeps its own
// copy, so a scalar TU and an AVX2 TU can coexist in one binary without
// ODR merging picking the wrong instruction set for either.
//
// Numerics: the vectorized reductions accumulate in lane order (4 partial
// sums folded pairwise at the end) rather than strict left-to-right, so
// results may differ from the scalar fallback in the last ulps. Callers
// that need bit-exact sequential sums use SumColumnsScalar explicitly.

#ifndef IMCF_COMMON_SIMD_H_
#define IMCF_COMMON_SIMD_H_

#include <cstddef>

#if defined(__AVX2__) && !defined(IMCF_SIMD_FORCE_SCALAR)
#define IMCF_SIMD_USE_AVX2 1
#include <immintrin.h>
#endif

namespace imcf {
namespace simd {

/// Name of the backend this TU was compiled against.
static inline const char* BackendName() {
#if defined(IMCF_SIMD_USE_AVX2)
  return "avx2";
#else
  return "scalar";
#endif
}

/// Strict left-to-right sums of two parallel columns: *sum_a = Σ a[i],
/// *sum_b = Σ b[i]. The reference semantics for SumColumns.
static inline void SumColumnsScalar(const double* a, const double* b,
                                    size_t n, double* sum_a, double* sum_b) {
  double ta = 0.0;
  double tb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ta += a[i];
    tb += b[i];
  }
  *sum_a = ta;
  *sum_b = tb;
}

/// Sums two parallel columns with the fastest backend this TU was compiled
/// for. Deterministic for a given backend and n (the lane-fold order is
/// fixed), but the AVX2 result can differ from the scalar one in the final
/// ulps — see the header comment.
static inline void SumColumns(const double* a, const double* b, size_t n,
                              double* sum_a, double* sum_b) {
#if defined(IMCF_SIMD_USE_AVX2)
  if (n < 4) {
    // Stay off the YMM registers entirely for tiny columns. Touching them
    // here is not just wasted work: with the vector loop skipped, the
    // compiler's automatic vzeroupper placement can miss the early-exit
    // path, and returning with dirty upper halves puts a false dependency
    // on every legacy-SSE FP instruction the (non-AVX) caller runs next —
    // measured as ~300 extra cycles per call on small slot problems.
    SumColumnsScalar(a, b, n, sum_a, sum_b);
    return;
  }
  __m256d va = _mm256_setzero_pd();
  __m256d vb = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    va = _mm256_add_pd(va, _mm256_loadu_pd(a + i));
    vb = _mm256_add_pd(vb, _mm256_loadu_pd(b + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, va);
  double ta = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  _mm256_store_pd(lanes, vb);
  double tb = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  // The vector loop is done with the 256-bit registers; clean the upper
  // state before handing control back to (potentially SSE-only) callers.
  _mm256_zeroupper();
  for (; i < n; ++i) {
    ta += a[i];
    tb += b[i];
  }
  *sum_a = ta;
  *sum_b = tb;
#else
  SumColumnsScalar(a, b, n, sum_a, sum_b);
#endif
}

}  // namespace simd
}  // namespace imcf

#endif  // IMCF_COMMON_SIMD_H_
