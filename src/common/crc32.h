// CRC-32C (Castagnoli) checksums, used by the storage layer to detect
// corruption of trace-file blocks and table-store records.

#ifndef IMCF_COMMON_CRC32_H_
#define IMCF_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace imcf {

/// Extends `crc` with `data` (pass 0 to start a fresh checksum).
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

/// Checksum of a byte string, starting from 0.
inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(0, data.data(), data.size());
}

/// Masked CRC, as in LevelDB/RocksDB: storing the CRC of data that itself
/// contains CRCs can defeat the checksum, so stored values are masked.
uint32_t MaskCrc(uint32_t crc);

/// Inverse of MaskCrc.
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace imcf

#endif  // IMCF_COMMON_CRC32_H_
