// Simulation time and calendar arithmetic.
//
// IMCF's evaluation is trace-driven over multi-year periods at hourly (or
// finer) granularity, and its rules and amortization plans are defined over
// calendar concepts (months, seasons, time-of-day windows like
// "17:00-24:00"). This header provides a deterministic proleptic-Gregorian
// calendar with no timezone/DST complications: simulation time is a plain
// count of seconds and all conversions are pure functions.

#ifndef IMCF_COMMON_TIME_H_
#define IMCF_COMMON_TIME_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace imcf {

/// Seconds since the Unix epoch (1970-01-01 00:00:00), proleptic Gregorian,
/// no leap seconds. All simulation clocks use this type.
using SimTime = int64_t;

inline constexpr int64_t kSecondsPerMinute = 60;
inline constexpr int64_t kSecondsPerHour = 3600;
inline constexpr int64_t kSecondsPerDay = 86400;
inline constexpr int64_t kMinutesPerDay = 1440;

/// A broken-down calendar date-time (local civil time of the smart space).
struct CivilTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;   ///< 0..23
  int minute = 0; ///< 0..59
  int second = 0; ///< 0..59

  friend bool operator==(const CivilTime&, const CivilTime&) = default;
};

/// True iff `year` is a Gregorian leap year.
bool IsLeapYear(int year);

/// Number of days in `month` (1..12) of `year`.
int DaysInMonth(int year, int month);

/// English month name ("January".."December"); month in 1..12.
const char* MonthName(int month);

/// Days since 1970-01-01 for the given civil date (may be negative).
int64_t DaysFromCivil(int year, int month, int day);

/// Converts a civil date-time to simulation time.
SimTime FromCivil(const CivilTime& ct);

/// Convenience overload.
SimTime FromCivil(int year, int month, int day, int hour = 0, int minute = 0,
                  int second = 0);

/// Converts simulation time back to a civil date-time.
CivilTime ToCivil(SimTime t);

/// Day of week for a simulation time; 0 = Sunday .. 6 = Saturday.
int DayOfWeek(SimTime t);

/// Day of year, 1-based (Jan 1 => 1).
int DayOfYear(SimTime t);

/// Fraction of the calendar year elapsed at `t`, in [0, 1).
double YearFraction(SimTime t);

/// Hour index (floor(t / 3600)); adjacent hours differ by 1.
int64_t HourIndex(SimTime t);

/// Formats as "YYYY-MM-DD HH:MM:SS".
std::string FormatTime(SimTime t);

/// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS".
Result<SimTime> ParseTime(const std::string& text);

/// Minutes since midnight, in [0, 1440).
int MinuteOfDay(SimTime t);

/// A daily time-of-day window, e.g. the "17:00 - 24:00" of a meta-rule.
/// Stored as minutes since midnight; `end` may be 1440 ("24:00"). Windows
/// where end <= start wrap past midnight (e.g. 22:00 - 06:00). The window is
/// half-open: [start, end).
struct TimeWindow {
  int start_minute = 0;
  int end_minute = kMinutesPerDay;

  /// True iff the given minute-of-day falls inside the window.
  bool ContainsMinute(int minute_of_day) const;

  /// True iff the instant `t` falls inside the window.
  bool Contains(SimTime t) const { return ContainsMinute(MinuteOfDay(t)); }

  /// Window length in minutes (wrapping windows measure across midnight).
  int DurationMinutes() const;

  /// Formats as "HH:MM - HH:MM".
  std::string ToString() const;

  friend bool operator==(const TimeWindow&, const TimeWindow&) = default;
};

/// Parses "HH:MM - HH:MM" (also accepts "HH:MM-HH:MM"); "24:00" is a valid
/// end bound.
Result<TimeWindow> ParseTimeWindow(const std::string& text);

}  // namespace imcf

#endif  // IMCF_COMMON_TIME_H_
