#include "common/rng.h"

#include <cmath>

namespace imcf {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box–Muller; u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t MixHash(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

uint64_t MixHash(uint64_t a, uint64_t b) {
  return MixHash(a ^ (MixHash(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace imcf
