#include "common/rng.h"

#include <cmath>

namespace imcf {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

double Rng::Gaussian() {
  // Box–Muller; u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t MixHash(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

uint64_t MixHash(uint64_t a, uint64_t b) {
  return MixHash(a ^ (MixHash(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace imcf
