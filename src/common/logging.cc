#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace imcf {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// The default sink: one fprintf per line (atomic enough on POSIX stderr,
/// which is unbuffered).
class StderrSink : public LogSink {
 public:
  void Write(LogLevel /*level*/, const std::string& line) override {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
};

LogSink* DefaultSink() {
  static StderrSink* sink = new StderrSink();
  return sink;
}

std::atomic<LogSink*> g_sink{nullptr};  // nullptr selects DefaultSink()

/// Monotonic seconds since the first log call of the process.
double SecondsSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Small sequential id per logging thread (t0, t1, ...), assigned in first-
/// log order — stable within a run and far more readable than native ids.
int ThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

LogSink* SetLogSink(LogSink* sink) {
  LogSink* previous = g_sink.exchange(sink, std::memory_order_acq_rel);
  return previous != nullptr ? previous : DefaultSink();
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%.6f t%d %s %s:%d] ",
                SecondsSinceStart(), ThreadId(), LevelName(level),
                Basename(file), line);
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = DefaultSink();
  sink->Write(level, prefix + message);
}

}  // namespace imcf
