#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace imcf {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

}  // namespace imcf
