// Small string utilities shared across modules (splitting, trimming,
// numeric parsing with Status-based errors, printf-style formatting).

#ifndef IMCF_COMMON_STRINGS_H_
#define IMCF_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace imcf {

/// Splits `text` on `sep`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True iff `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Parses a base-10 signed integer, rejecting trailing garbage.
Result<int64_t> ParseInt(std::string_view text);

/// Parses a floating-point number, rejecting trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// snprintf into a std::string. Marked printf-like so the compiler checks
/// format arguments.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins the pieces with `sep` between them.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace imcf

#endif  // IMCF_COMMON_STRINGS_H_
