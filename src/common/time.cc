#include "common/time.h"

#include <cstdio>

#include "common/strings.h"

namespace imcf {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

const char* MonthName(int month) {
  static constexpr const char* kNames[] = {
      "January", "February", "March",     "April",   "May",      "June",
      "July",    "August",   "September", "October", "November", "December"};
  return kNames[month - 1];
}

// Howard Hinnant's days-from-civil algorithm (public domain).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1; // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

namespace {

// Inverse of DaysFromCivil (Hinnant's civil-from-days).
void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;     // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

// Floor division/modulus for possibly-negative times.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace

SimTime FromCivil(const CivilTime& ct) {
  return DaysFromCivil(ct.year, ct.month, ct.day) * kSecondsPerDay +
         ct.hour * kSecondsPerHour + ct.minute * kSecondsPerMinute + ct.second;
}

SimTime FromCivil(int year, int month, int day, int hour, int minute,
                  int second) {
  return FromCivil(CivilTime{year, month, day, hour, minute, second});
}

CivilTime ToCivil(SimTime t) {
  const int64_t days = FloorDiv(t, kSecondsPerDay);
  int64_t rem = FloorMod(t, kSecondsPerDay);
  CivilTime ct;
  CivilFromDays(days, &ct.year, &ct.month, &ct.day);
  ct.hour = static_cast<int>(rem / kSecondsPerHour);
  rem %= kSecondsPerHour;
  ct.minute = static_cast<int>(rem / kSecondsPerMinute);
  ct.second = static_cast<int>(rem % kSecondsPerMinute);
  return ct;
}

int DayOfWeek(SimTime t) {
  // 1970-01-01 was a Thursday (= 4 with Sunday = 0).
  const int64_t days = FloorDiv(t, kSecondsPerDay);
  return static_cast<int>(FloorMod(days + 4, 7));
}

int DayOfYear(SimTime t) {
  const CivilTime ct = ToCivil(t);
  return static_cast<int>(DaysFromCivil(ct.year, ct.month, ct.day) -
                          DaysFromCivil(ct.year, 1, 1)) +
         1;
}

double YearFraction(SimTime t) {
  const CivilTime ct = ToCivil(t);
  const SimTime year_start = FromCivil(ct.year, 1, 1);
  const SimTime next_year = FromCivil(ct.year + 1, 1, 1);
  return static_cast<double>(t - year_start) /
         static_cast<double>(next_year - year_start);
}

int64_t HourIndex(SimTime t) { return FloorDiv(t, kSecondsPerHour); }

std::string FormatTime(SimTime t) {
  const CivilTime ct = ToCivil(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return buf;
}

Result<SimTime> ParseTime(const std::string& text) {
  CivilTime ct;
  int fields = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &ct.year,
                           &ct.month, &ct.day, &ct.hour, &ct.minute,
                           &ct.second);
  if (fields != 3 && fields != 6) {
    return Status::InvalidArgument("cannot parse time: '" + text + "'");
  }
  if (ct.month < 1 || ct.month > 12 || ct.day < 1 ||
      ct.day > DaysInMonth(ct.year, ct.month) || ct.hour < 0 || ct.hour > 23 ||
      ct.minute < 0 || ct.minute > 59 || ct.second < 0 || ct.second > 59) {
    return Status::OutOfRange("time out of range: '" + text + "'");
  }
  return FromCivil(ct);
}

int MinuteOfDay(SimTime t) {
  return static_cast<int>(FloorMod(t, kSecondsPerDay) / kSecondsPerMinute);
}

bool TimeWindow::ContainsMinute(int minute_of_day) const {
  if (start_minute < end_minute) {
    return minute_of_day >= start_minute && minute_of_day < end_minute;
  }
  // Wrapping window (e.g. 22:00 - 06:00) or empty (start == end => wraps to
  // full day only when start == end == 0/1440; treat equal bounds as empty).
  if (start_minute == end_minute) return false;
  return minute_of_day >= start_minute || minute_of_day < end_minute;
}

int TimeWindow::DurationMinutes() const {
  if (start_minute <= end_minute) return end_minute - start_minute;
  return kMinutesPerDay - start_minute + end_minute;
}

std::string TimeWindow::ToString() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02d:%02d - %02d:%02d", start_minute / 60,
                start_minute % 60, end_minute / 60, end_minute % 60);
  return buf;
}

Result<TimeWindow> ParseTimeWindow(const std::string& text) {
  int h1 = 0, m1 = 0, h2 = 0, m2 = 0;
  if (std::sscanf(text.c_str(), "%d:%d - %d:%d", &h1, &m1, &h2, &m2) != 4 &&
      std::sscanf(text.c_str(), "%d:%d-%d:%d", &h1, &m1, &h2, &m2) != 4) {
    return Status::InvalidArgument("cannot parse time window: '" + text + "'");
  }
  if (h1 < 0 || h1 > 23 || m1 < 0 || m1 > 59 || h2 < 0 || h2 > 24 || m2 < 0 ||
      m2 > 59 || (h2 == 24 && m2 != 0)) {
    return Status::OutOfRange("time window out of range: '" + text + "'");
  }
  return TimeWindow{h1 * 60 + m1, h2 * 60 + m2};
}

}  // namespace imcf
