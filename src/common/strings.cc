#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace imcf {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt(std::string_view text) {
  const std::string s = Trim(text);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  const int64_t value = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + s + "'");
  }
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("cannot parse integer: '" + s + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string s = Trim(text);
  if (s.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: '" + s + "'");
  }
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("cannot parse number: '" + s + "'");
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace imcf
