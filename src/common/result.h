// Result<T>: value-or-Status, the return type of fallible producers.
//
// Result<T> either holds a T (status is OK) or a non-OK Status. It is the
// IMCF analogue of arrow::Result / absl::StatusOr. Accessing the value of an
// errored Result aborts, so callers must check ok() (or use the
// IMCF_ASSIGN_OR_RETURN macro) first.

#ifndef IMCF_COMMON_RESULT_H_
#define IMCF_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace imcf {

template <typename T>
class Result {
 public:
  /// Constructs an OK result holding a copy/move of `value`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::fprintf(stderr, "Result constructed from OK status without value\n");
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; aborts if this Result is an error.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Accessing value of errored Result: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace imcf

// Internal helpers for unique temporary names inside the macro below.
#define IMCF_MACRO_CONCAT_INNER(x, y) x##y
#define IMCF_MACRO_CONCAT(x, y) IMCF_MACRO_CONCAT_INNER(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status from the
/// enclosing function, otherwise move-assigns the value into `lhs`.
#define IMCF_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto IMCF_MACRO_CONCAT(_imcf_result_, __LINE__) = (rexpr);         \
  if (!IMCF_MACRO_CONCAT(_imcf_result_, __LINE__).ok())              \
    return IMCF_MACRO_CONCAT(_imcf_result_, __LINE__).status();      \
  lhs = std::move(IMCF_MACRO_CONCAT(_imcf_result_, __LINE__)).value()

#endif  // IMCF_COMMON_RESULT_H_
