// Streaming statistics accumulators.
//
// The paper reports "the mean and standard deviation of the results ... with
// error bars in all experimental studies ... based on ten repetitions". These
// accumulators back those summaries (Welford's online algorithm, numerically
// stable for long trace runs).

#ifndef IMCF_COMMON_STATS_H_
#define IMCF_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace imcf {

/// Single-pass mean / variance / min / max accumulator.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// "mean ± stddev" with the requested precision.
  std::string ToString(int precision = 2) const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Computes mean of a sample vector (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double StdDev(const std::vector<double>& xs);

}  // namespace imcf

#endif  // IMCF_COMMON_STATS_H_
