// Physical units and conversion helpers used throughout IMCF.
//
// Quantities are carried as plain doubles with unit-suffixed names
// (energy_kwh, power_kw, temp_c, light_pct); this header centralises the few
// conversions and the EU tariff constant the paper quotes ("1 kWh costs
// around 0.20 Euros in EU").

#ifndef IMCF_COMMON_UNITS_H_
#define IMCF_COMMON_UNITS_H_

namespace imcf {

/// Average EU electricity price the paper uses to map money <-> energy.
inline constexpr double kEuroPerKwh = 0.20;

/// Converts a monetary budget in euros to an energy budget in kWh.
inline double EurosToKwh(double euros) { return euros / kEuroPerKwh; }

/// Converts an energy amount in kWh to euros.
inline double KwhToEuros(double kwh) { return kwh * kEuroPerKwh; }

/// Energy (kWh) drawn by a constant load of `power_kw` over `hours`.
inline double EnergyKwh(double power_kw, double hours) {
  return power_kw * hours;
}

/// Clamps a value into [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Linear interpolation between a and b by t in [0,1].
inline double Lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace imcf

#endif  // IMCF_COMMON_UNITS_H_
