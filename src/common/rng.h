// Deterministic pseudo-random number generation.
//
// Every stochastic component of IMCF (trace synthesis, random initialization
// of the Energy Planner, k-opt neighbour selection, MRT variations) draws
// from an explicitly-seeded generator so that runs are exactly reproducible.
// The generator is xoshiro256++ seeded via splitmix64 — small, fast, and
// high-quality; <random> engines are avoided because their distributions are
// not portable across standard libraries.
//
// The integer paths (Next / UniformInt) are defined inline: the planners
// draw several bounded integers per move, and out-of-line calls would both
// cost the call and hide the loop-invariant `limit` computation (one 64-bit
// division) from the optimizer. The algorithms are fixed — any change to
// the draw sequence breaks every seeded witness in the repo.

#ifndef IMCF_COMMON_RNG_H_
#define IMCF_COMMON_RNG_H_

#include <cstdint>

namespace imcf {

/// xoshiro256++ generator with splitmix64 seeding. Copyable; copies evolve
/// independently, which makes forking sub-streams trivial.
class Rng {
 public:
  /// Seeds the generator; equal seeds give equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    uint64_t v;
    do {
      v = Next();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % range);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    // 53 high-quality bits -> [0, 1).
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  /// Standard normal deviate (Box–Muller; consumes two uniforms).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns a new generator seeded from this stream, for independent
  /// sub-streams (one per dataset unit, per repetition, ...).
  Rng Fork();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Stateless 64-bit mix of the input (splitmix64 finalizer). Used to derive
/// deterministic per-entity seeds, e.g. hash of (base_seed, unit, hour).
uint64_t MixHash(uint64_t x);

/// Combines two values into one hash deterministically.
uint64_t MixHash(uint64_t a, uint64_t b);

}  // namespace imcf

#endif  // IMCF_COMMON_RNG_H_
