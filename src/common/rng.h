// Deterministic pseudo-random number generation.
//
// Every stochastic component of IMCF (trace synthesis, random initialization
// of the Energy Planner, k-opt neighbour selection, MRT variations) draws
// from an explicitly-seeded generator so that runs are exactly reproducible.
// The generator is xoshiro256++ seeded via splitmix64 — small, fast, and
// high-quality; <random> engines are avoided because their distributions are
// not portable across standard libraries.

#ifndef IMCF_COMMON_RNG_H_
#define IMCF_COMMON_RNG_H_

#include <cstdint>

namespace imcf {

/// xoshiro256++ generator with splitmix64 seeding. Copyable; copies evolve
/// independently, which makes forking sub-streams trivial.
class Rng {
 public:
  /// Seeds the generator; equal seeds give equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal deviate (Box–Muller; consumes two uniforms).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns a new generator seeded from this stream, for independent
  /// sub-streams (one per dataset unit, per repetition, ...).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Stateless 64-bit mix of the input (splitmix64 finalizer). Used to derive
/// deterministic per-entity seeds, e.g. hash of (base_seed, unit, hour).
uint64_t MixHash(uint64_t x);

/// Combines two values into one hash deterministically.
uint64_t MixHash(uint64_t a, uint64_t b);

}  // namespace imcf

#endif  // IMCF_COMMON_RNG_H_
