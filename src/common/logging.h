// Minimal leveled logging to stderr.
//
// IMCF runs inside benchmarks and long trace-driven simulations, so logging
// defaults to WARNING and is cheap when disabled. The macro captures file and
// line for the message prefix.

#ifndef IMCF_COMMON_LOGGING_H_
#define IMCF_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace imcf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted. Safe to call from any thread at
/// any time: the level is an atomic, so worker threads spawned by the
/// thread pool observe changes without tearing.
void SetLogLevel(LogLevel level);

/// Returns the current minimum level.
LogLevel GetLogLevel();

/// Writes one formatted log line to stderr.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {

/// Stream-collecting helper behind IMCF_LOG; emits on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace imcf

/// Usage: IMCF_LOG(kInfo) << "loaded " << n << " rules";
#define IMCF_LOG(level)                                             \
  if (::imcf::LogLevel::level < ::imcf::GetLogLevel()) {            \
  } else                                                            \
    ::imcf::internal::LogStream(::imcf::LogLevel::level, __FILE__,  \
                                __LINE__)

#endif  // IMCF_COMMON_LOGGING_H_
