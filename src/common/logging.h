// Minimal leveled logging with a pluggable sink.
//
// IMCF runs inside benchmarks and long trace-driven simulations, so logging
// defaults to WARNING and is cheap when disabled. The macro captures file and
// line for the message prefix. Lines go to the installed LogSink (stderr by
// default); tests install a capturing sink to assert on log output. Each
// line is prefixed with seconds since process start (monotonic) and a small
// sequential thread id, so interleaved pool output stays attributable.

#ifndef IMCF_COMMON_LOGGING_H_
#define IMCF_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace imcf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted. Safe to call from any thread at
/// any time: the level is an atomic, so worker threads spawned by the
/// thread pool observe changes without tearing.
void SetLogLevel(LogLevel level);

/// Returns the current minimum level.
LogLevel GetLogLevel();

/// Destination for formatted log lines. Write() receives one complete line
/// (prefix included, no trailing newline) and must be thread-safe — the
/// pool's workers log concurrently.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const std::string& line) = 0;
};

/// Installs `sink` as the log destination and returns the previous sink.
/// Passing nullptr restores the default stderr sink. The caller keeps
/// ownership; the sink must outlive all logging (tests swap it around
/// scopes, the default sink is a process-lifetime singleton).
LogSink* SetLogSink(LogSink* sink);

/// Writes one formatted log line to the installed sink.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {

/// Stream-collecting helper behind IMCF_LOG; emits on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace imcf

/// Usage: IMCF_LOG(kInfo) << "loaded " << n << " rules";
#define IMCF_LOG(level)                                             \
  if (::imcf::LogLevel::level < ::imcf::GetLogLevel()) {            \
  } else                                                            \
    ::imcf::internal::LogStream(::imcf::LogLevel::level, __FILE__,  \
                                __LINE__)

#endif  // IMCF_COMMON_LOGGING_H_
