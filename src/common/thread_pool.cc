#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace imcf {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = HardwareThreads();
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(int threads, int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (threads <= 0) threads = ThreadPool::HardwareThreads();
  if (threads > n) threads = n;
  if (threads <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic chunking over a shared counter: items are claimed one at a time
  // so an expensive item (a dorms-scale simulation run) doesn't serialize a
  // whole static stripe behind it. Each item still writes only to its own
  // index, so scheduling order never shows in the results.
  ThreadPool pool(threads);
  ParallelFor(&pool, n, body);
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (pool == nullptr || pool->thread_count() <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  const int claimers = std::min(pool->thread_count(), n);
  std::atomic<int> next{0};
  for (int w = 0; w < claimers; ++w) {
    pool->Submit([&body, &next, n] {
      for (int i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace imcf
