#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace imcf {

namespace {

/// Pool instrumentation, resolved once. Queue depth is a gauge (rises on
/// Submit, falls on dequeue); wait and run latencies are histograms in
/// wall nanoseconds; tasks_total counts completed tasks.
struct PoolMetrics {
  obs::Counter* tasks_total;
  obs::Counter* task_exceptions_total;
  obs::Gauge* queue_depth;
  obs::Histogram* task_wait_ns;
  obs::Histogram* task_run_ns;

  static const PoolMetrics& Get() {
    static const PoolMetrics* m = [] {
      auto& reg = obs::MetricRegistry::Default();
      auto* pm = new PoolMetrics();
      pm->tasks_total = reg.GetCounter("imcf_pool_tasks_total",
                                       "Tasks executed by the thread pool");
      pm->task_exceptions_total = reg.GetCounter(
          "imcf_pool_task_exceptions_total",
          "Tasks that threw; the exception was swallowed by the worker");
      pm->queue_depth = reg.GetGauge("imcf_pool_queue_depth",
                                     "Tasks currently queued (not running)");
      pm->task_wait_ns = reg.GetHistogram(
          "imcf_pool_task_wait_ns",
          "Wall time a task spent queued before a worker picked it up",
          obs::LatencyBoundsNs());
      pm->task_run_ns = reg.GetHistogram(
          "imcf_pool_task_run_ns", "Wall time a task spent executing",
          obs::LatencyBoundsNs());
      return pm;
    }();
    return *m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = HardwareThreads();
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      // Registering the name before any span gives the flight recorder a
      // labeled lane for this worker (/tracez, Perfetto thread_name).
      obs::FlightRecorder::Default().SetCurrentThreadName(
          StrFormat("pool-%d", i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  // joinable() guards against a worker that failed to start and against a
  // second pass over already-joined threads; clearing afterwards makes the
  // teardown idempotent.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push(QueuedTask{std::move(task), obs::ScopedTimer::NowNs()});
    ++in_flight_;
  }
  PoolMetrics::Get().queue_depth->Add(1.0);
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  const PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    const int64_t dequeue_ns = obs::ScopedTimer::NowNs();
    metrics.queue_depth->Add(-1.0);
    metrics.task_wait_ns->Observe(
        static_cast<double>(dequeue_ns - task.enqueue_ns));
    // A throwing task must neither take down the worker (std::terminate)
    // nor leak its in_flight_ slot (which would wedge Wait() forever).
    try {
      task.fn();
    } catch (...) {
      metrics.task_exceptions_total->Increment();
    }
    metrics.task_run_ns->Observe(
        static_cast<double>(obs::ScopedTimer::NowNs() - dequeue_ns));
    metrics.tasks_total->Increment();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(int threads, int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (threads <= 0) threads = ThreadPool::HardwareThreads();
  if (threads > n) threads = n;
  if (threads <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  // Dynamic chunking over a shared counter: items are claimed one at a time
  // so an expensive item (a dorms-scale simulation run) doesn't serialize a
  // whole static stripe behind it. Each item still writes only to its own
  // index, so scheduling order never shows in the results.
  ThreadPool pool(threads);
  ParallelFor(&pool, n, body);
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (pool == nullptr || pool->thread_count() <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  const int claimers = std::min(pool->thread_count(), n);
  std::atomic<int> next{0};
  for (int w = 0; w < claimers; ++w) {
    pool->Submit([&body, &next, n] {
      for (int i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        // Isolate each item: a throwing body must not take the claiming
        // loop (and with it every item this claimer would still have
        // picked up) down with it.
        try {
          body(i);
        } catch (...) {
          PoolMetrics::Get().task_exceptions_total->Increment();
        }
      }
    });
  }
  pool->Wait();
}

}  // namespace imcf
