#include "common/crc32.h"

#include <array>

namespace imcf {

namespace {

// Lazily-built lookup table for the Castagnoli polynomial (reflected
// 0x82F63B78).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t MaskCrc(uint32_t crc) {
  // Rotate right by 15 bits and add a constant (LevelDB scheme).
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace imcf
