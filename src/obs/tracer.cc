#include "obs/tracer.h"

#include <atomic>
#include <cstring>

#include "obs/scoped_timer.h"

namespace imcf {
namespace obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Span ids are process-unique and monotone: a span created after another
/// gets a larger id. Within one trace all spans are created on one logical
/// request path, so sorting children by span id recovers creation order —
/// that is what makes the canonical export deterministic even though the
/// raw ids are not.
std::atomic<uint64_t> g_next_span_id{1};

std::atomic<uint64_t> g_next_trace_id{1};

/// Fixed-depth ambient context stack per thread. Depth 32 is far beyond
/// the deepest real nesting (request -> plan -> search -> ...); overflow
/// spans still record, they just cannot parent further ambient children.
constexpr int kMaxContextDepth = 32;

struct ContextStack {
  TraceContext frames[kMaxContextDepth];
  int depth = 0;
};

thread_local ContextStack t_context_stack;

}  // namespace

bool Tracer::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Tracer::set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

TraceContext Tracer::Current() {
  const ContextStack& stack = t_context_stack;
  if (stack.depth == 0) return {};
  return stack.frames[stack.depth - 1];
}

uint64_t Tracer::MintTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Push(TraceContext context) {
  ContextStack& stack = t_context_stack;
  if (stack.depth >= kMaxContextDepth) return;
  stack.frames[stack.depth++] = context;
}

void Tracer::Pop() {
  ContextStack& stack = t_context_stack;
  if (stack.depth > 0) --stack.depth;
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : ScopedSpan(name, category, Tracer::Current()) {}

ScopedSpan::ScopedSpan(const char* name, const char* category,
                       TraceContext parent) {
  if (!Tracer::enabled() || !parent.valid()) return;
  active_ = true;
  record_.trace_id = parent.trace_id;
  record_.span_id = Tracer::NextSpanId();
  record_.parent_span_id = parent.span_id;
  record_.name = name;
  record_.category = category;
  record_.wall_start_ns = ScopedTimer::NowNs();
  Tracer::Push({record_.trace_id, record_.span_id});
  pushed_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  if (pushed_) Tracer::Pop();
  record_.wall_end_ns = ScopedTimer::NowNs();
  if (sim_clock_ != nullptr) record_.sim_end = *sim_clock_;
  FlightRecorder::Default().Record(record_);
}

void ScopedSpan::Detail(std::string_view text) {
  if (!active_) return;
  const size_t n = text.size() < kSpanDetailBytes - 1
                       ? text.size()
                       : kSpanDetailBytes - 1;
  if (n > 0) std::memcpy(record_.detail, text.data(), n);
  record_.detail[n] = '\0';
}

void ScopedSpan::Arg(const char* name, int64_t value) {
  if (!active_) return;
  if (record_.arg_name == nullptr) {
    record_.arg_name = name;
    record_.arg_value = value;
  } else if (record_.arg2_name == nullptr) {
    record_.arg2_name = name;
    record_.arg2_value = value;
  }
}

void ScopedSpan::SimSpan(int64_t sim_start, int64_t sim_end) {
  if (!active_) return;
  record_.sim_start = sim_start;
  record_.sim_end = sim_end;
  sim_clock_ = nullptr;
}

void ScopedSpan::BindSimClock(const int64_t* sim_clock) {
  if (!active_ || sim_clock == nullptr) return;
  sim_clock_ = sim_clock;
  record_.sim_start = *sim_clock;
}

void TraceEvent(const char* name, const char* category,
                std::string_view detail, const char* arg_name,
                int64_t arg_value) {
  if (!Tracer::enabled()) return;
  const TraceContext parent = Tracer::Current();
  if (!parent.valid()) return;
  SpanRecord record;
  record.trace_id = parent.trace_id;
  record.span_id = Tracer::NextSpanId();
  record.parent_span_id = parent.span_id;
  record.name = name;
  record.category = category;
  const int64_t now = ScopedTimer::NowNs();
  record.wall_start_ns = now;
  record.wall_end_ns = now;
  if (arg_name != nullptr) {
    record.arg_name = arg_name;
    record.arg_value = arg_value;
  }
  const size_t n = detail.size() < kSpanDetailBytes - 1
                       ? detail.size()
                       : kSpanDetailBytes - 1;
  if (n > 0) std::memcpy(record.detail, detail.data(), n);
  record.detail[n] = '\0';
  FlightRecorder::Default().Record(record);
}

}  // namespace obs
}  // namespace imcf
