#include "obs/accounting/cost_ledger.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace imcf {
namespace obs {
namespace {

/// The thread's ambient cost sink. Owned by the innermost live ScopedCost;
/// null when no scope is open (hooks no-op, so bench/test code that calls
/// the planner without a tenant costs one TLS load + branch).
thread_local TenantCost* g_ambient_cost = nullptr;

int64_t SortValue(const TenantCost& cost, CostSortKey key) {
  switch (key) {
    case CostSortKey::kCpu:
      return cost.total_ns();
    case CostSortKey::kBytes:
      return cost.arena_bytes;
    case CostSortKey::kPlans:
      return cost.plans_ok;
    case CostSortKey::kSheds:
      return cost.sheds + cost.deadline_misses;
  }
  return 0;
}

}  // namespace

const char* CostPhaseName(CostPhase phase) {
  switch (phase) {
    case CostPhase::kQueueWait:
      return "queue_wait";
    case CostPhase::kPlan:
      return "plan";
    case CostPhase::kSim:
      return "sim";
    case CostPhase::kCommandBus:
      return "command_bus";
    case CostPhase::kConflict:
      return "conflict";
  }
  return "unknown";
}

TenantCost& TenantCost::operator+=(const TenantCost& other) {
  for (size_t i = 0; i < kNumCostPhases; ++i) phase_ns[i] += other.phase_ns[i];
  arena_bytes += other.arena_bytes;
  flip_evals += other.flip_evals;
  plans_ok += other.plans_ok;
  commands_ok += other.commands_ok;
  queries_ok += other.queries_ok;
  mrt_updates_ok += other.mrt_updates_ok;
  errors += other.errors;
  sheds += other.sheds;
  deadline_misses += other.deadline_misses;
  faults += other.faults;
  conflict_rejections += other.conflict_rejections;
  return *this;
}

int64_t TenantCost::total_ns() const {
  int64_t total = 0;
  for (size_t i = 0; i < kNumCostPhases; ++i) total += phase_ns[i];
  return total;
}

CostSortKey ParseCostSortKey(const std::string& name) {
  if (name == "bytes") return CostSortKey::kBytes;
  if (name == "plans") return CostSortKey::kPlans;
  if (name == "sheds") return CostSortKey::kSheds;
  return CostSortKey::kCpu;
}

CostLedger::CostLedger(int shards) {
  if (shards < 1) shards = 1;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

void CostLedger::Apply(int shard, const std::string& tenant,
                       const TenantCost& delta) {
  Shard& s = *shards_[static_cast<size_t>(shard) % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mu);
  s.tenants[tenant] += delta;
}

void CostLedger::AddPhaseNs(int shard, const std::string& tenant,
                            CostPhase phase, int64_t ns) {
  Shard& s = *shards_[static_cast<size_t>(shard) % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mu);
  s.tenants[tenant].phase_ns[static_cast<size_t>(phase)] += ns;
}

std::vector<CostLedger::Row> CostLedger::Snapshot() const {
  // Merge shard maps into one; std::map keeps the result tenant-sorted.
  // A tenant lives in exactly one shard, but merging by id keeps the
  // snapshot correct even if the caller's striping disagrees with ours.
  std::map<std::string, TenantCost> merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [tenant, cost] : shard->tenants) merged[tenant] += cost;
  }
  std::vector<Row> rows;
  rows.reserve(merged.size());
  for (auto& [tenant, cost] : merged) rows.push_back(Row{tenant, cost});
  return rows;
}

std::vector<CostLedger::Row> CostLedger::TopK(size_t k, CostSortKey key) const {
  std::vector<Row> rows = Snapshot();
  std::stable_sort(rows.begin(), rows.end(),
                   [key](const Row& a, const Row& b) {
                     int64_t va = SortValue(a.cost, key);
                     int64_t vb = SortValue(b.cost, key);
                     if (va != vb) return va > vb;
                     return a.tenant < b.tenant;
                   });
  if (k > 0 && rows.size() > k) rows.resize(k);
  return rows;
}

std::string CostLedger::CanonicalText() const {
  // One line per tenant, deterministic fields only: the *_ns columns are
  // wall measurements and vary run to run, so they are masked the same way
  // CanonicalTraceText masks span timings.
  std::string out;
  for (const Row& row : Snapshot()) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "%s arena_bytes=%lld flip_evals=%lld plans_ok=%lld "
                  "commands_ok=%lld queries_ok=%lld mrt_updates_ok=%lld "
                  "errors=%lld sheds=%lld deadline_misses=%lld faults=%lld "
                  "conflict_rejections=%lld\n",
                  row.tenant.c_str(),
                  static_cast<long long>(row.cost.arena_bytes),
                  static_cast<long long>(row.cost.flip_evals),
                  static_cast<long long>(row.cost.plans_ok),
                  static_cast<long long>(row.cost.commands_ok),
                  static_cast<long long>(row.cost.queries_ok),
                  static_cast<long long>(row.cost.mrt_updates_ok),
                  static_cast<long long>(row.cost.errors),
                  static_cast<long long>(row.cost.sheds),
                  static_cast<long long>(row.cost.deadline_misses),
                  static_cast<long long>(row.cost.faults),
                  static_cast<long long>(row.cost.conflict_rejections));
    out += line;
  }
  return out;
}

std::string CostLedger::ToJson(size_t k, CostSortKey key) const {
  JsonWriter w;
  w.BeginArray();
  for (const Row& row : TopK(k, key)) {
    w.BeginObject();
    w.Key("tenant").String(row.tenant);
    w.Key("cpu_ns").BeginObject();
    for (size_t i = 0; i < kNumCostPhases; ++i) {
      w.Key(CostPhaseName(static_cast<CostPhase>(i)))
          .Int(row.cost.phase_ns[i]);
    }
    w.Key("total").Int(row.cost.total_ns());
    w.EndObject();
    w.Key("arena_bytes").Int(row.cost.arena_bytes);
    w.Key("flip_evals").Int(row.cost.flip_evals);
    w.Key("plans_ok").Int(row.cost.plans_ok);
    w.Key("commands_ok").Int(row.cost.commands_ok);
    w.Key("queries_ok").Int(row.cost.queries_ok);
    w.Key("mrt_updates_ok").Int(row.cost.mrt_updates_ok);
    w.Key("errors").Int(row.cost.errors);
    w.Key("sheds").Int(row.cost.sheds);
    w.Key("deadline_misses").Int(row.cost.deadline_misses);
    w.Key("faults").Int(row.cost.faults);
    w.Key("conflict_rejections").Int(row.cost.conflict_rejections);
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

void CostLedger::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->tenants.clear();
  }
}

ScopedCost::ScopedCost(CostLedger* ledger, int shard,
                       const std::string& tenant)
    : ledger_(ledger),
      shard_(shard),
      tenant_(&tenant),
      active_(ledger != nullptr) {
  if (!active_) return;
  saved_ambient_ = g_ambient_cost;
  g_ambient_cost = &local_;
}

ScopedCost::~ScopedCost() {
  if (!active_) return;
  g_ambient_cost = saved_ambient_;
  if (local_ == TenantCost{}) return;  // nothing accrued; skip the lock
  ledger_->Apply(shard_, *tenant_, local_);
}

void CostAddPhaseNs(CostPhase phase, int64_t ns) {
  if (TenantCost* sink = g_ambient_cost) {
    sink->phase_ns[static_cast<size_t>(phase)] += ns;
  }
}

void CostAddArenaBytes(int64_t bytes) {
  if (TenantCost* sink = g_ambient_cost) sink->arena_bytes += bytes;
}

void CostAddFlipEvals(int64_t n) {
  if (TenantCost* sink = g_ambient_cost) sink->flip_evals += n;
}

void CostAddFault(int64_t n) {
  if (TenantCost* sink = g_ambient_cost) sink->faults += n;
}

TenantCost* AmbientCost() { return g_ambient_cost; }

}  // namespace obs
}  // namespace imcf
