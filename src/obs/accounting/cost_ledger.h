// Per-tenant cost attribution: who is spending what, by phase.
//
// The metrics registry (obs/metrics.h) answers "how much did the fleet
// spend"; the flight recorder answers "where did THIS request go". Neither
// can answer the meta-control firewall's core arbitration question — which
// *tenant* is consuming the shared budget — so the CostLedger attributes
// every unit of work to its tenant: CPU nanoseconds by phase (queue wait,
// plan search, simulation, command bus), PlanArena bytes, evaluator flip
// evaluations, and outcome tallies (ok / error / shed / deadline / fault).
//
// Design rules, in the spirit of the rest of obs:
//
//   * Lock-cheap. A ScopedCost accumulates into plain (non-atomic) fields
//     of a stack-local TenantCost and takes exactly one shard mutex at
//     destruction to merge. Layers below the scope (the simulator, the
//     evaluators, the batch planner) add through a thread-local pointer —
//     one TLS read and a plain add, no atomics, no branches beyond a null
//     check.
//   * Deterministic. Every non-timing field is an int64 count, so ledger
//     totals are sums of commutative integer adds: bit-identical for any
//     worker count, like the canonical trace trees (DESIGN.md §11). The
//     *_ns fields are wall measurements and are masked by CanonicalText().
//   * Compiles out. -DIMCF_DISABLE_ACCOUNTING turns ScopedCost and the
//     CostAdd* hooks into empty inline stubs (the IMCF_DISABLE_TRACING
//     pattern); the ledger classes still build so introspection pages
//     degrade to empty rather than vanishing.
//
// This module is a dependency leaf (std only), like the rest of obs.

#ifndef IMCF_OBS_ACCOUNTING_COST_LEDGER_H_
#define IMCF_OBS_ACCOUNTING_COST_LEDGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace imcf {
namespace obs {

/// Where a unit of tenant work spent its CPU time.
enum class CostPhase : uint8_t {
  kQueueWait = 0,   ///< admission to drain (wall, observed by the drain)
  kPlan = 1,        ///< planner search (ep.search / PlanSlot)
  kSim = 2,         ///< simulation outside the planner (sim.run remainder)
  kCommandBus = 3,  ///< fault-gated command delivery
  kConflict = 4,    ///< admission/update conflict analysis
};

inline constexpr size_t kNumCostPhases = 5;

const char* CostPhaseName(CostPhase phase);

/// One tenant's accumulated cost. Addition-merge semantics: every field is
/// a sum, so merging shard ledgers or per-request deltas is `+=` per field
/// and order-independent (all-int64 keeps merges bit-exact).
struct TenantCost {
  int64_t phase_ns[kNumCostPhases] = {};  ///< wall measurements
  int64_t arena_bytes = 0;     ///< PlanArena bytes allocated on behalf
  int64_t flip_evals = 0;      ///< evaluator flip/full evaluations
  int64_t plans_ok = 0;        ///< plan requests served successfully
  int64_t commands_ok = 0;     ///< commands delivered
  int64_t queries_ok = 0;      ///< queries served
  int64_t mrt_updates_ok = 0;  ///< MRT updates accepted by the conflict pass
  int64_t errors = 0;          ///< kError outcomes
  int64_t sheds = 0;           ///< admission rejections charged to the tenant
  int64_t deadline_misses = 0; ///< kDeadlineExceeded outcomes
  int64_t faults = 0;          ///< injected-fault encounters (bus retries etc.)
  int64_t conflict_rejections = 0;  ///< kConflictRejected verdicts

  TenantCost& operator+=(const TenantCost& other);

  /// Total CPU nanoseconds across all phases.
  int64_t total_ns() const;

  friend bool operator==(const TenantCost&, const TenantCost&) = default;
};

/// Sort keys for the top-K ledger view (/tenantz?sort=...).
enum class CostSortKey : uint8_t {
  kCpu = 0,    ///< total_ns, descending
  kBytes = 1,  ///< arena_bytes, descending
  kPlans = 2,  ///< plans_ok, descending
  kSheds = 3,  ///< sheds + deadline_misses, descending
};

/// Parses "cpu" | "bytes" | "plans" | "sheds" (defaults to kCpu).
CostSortKey ParseCostSortKey(const std::string& name);

/// The fleet-wide ledger: one sub-ledger per shard, each a mutex over a
/// tenant->cost map. Writers touch only their tenant's shard; a snapshot
/// walks the shards in index order and merges per tenant id, so the merged
/// view is deterministic regardless of write interleaving.
class CostLedger {
 public:
  struct Row {
    std::string tenant;
    TenantCost cost;
  };

  /// `shards` must match the caller's shard striping (>= 1).
  explicit CostLedger(int shards = 8);

  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  /// Merges `delta` into (shard, tenant) under the shard's mutex. One call
  /// per unit of work — batch locally, flush once (ScopedCost does).
  void Apply(int shard, const std::string& tenant, const TenantCost& delta);

  /// Convenience single-field add (the drain's queue-wait observation).
  void AddPhaseNs(int shard, const std::string& tenant, CostPhase phase,
                  int64_t ns);

  /// Consistent merged copy, sorted by tenant id (deterministic).
  std::vector<Row> Snapshot() const;

  /// Top-`k` tenants by `key` (descending; tenant id breaks ties so the
  /// order is total). k == 0 returns every tenant.
  std::vector<Row> TopK(size_t k, CostSortKey key) const;

  /// Determinism witness: every deterministic field of every tenant, one
  /// line per tenant sorted by id, wall-measurement fields masked. Two
  /// runs of the same request stream produce identical text at any worker
  /// count.
  std::string CanonicalText() const;

  /// Renders the top-K view as a JSON array (the /tenantz body). The
  /// *_ns measurements ARE included here — introspection wants them; only
  /// the canonical witness masks them.
  std::string ToJson(size_t k, CostSortKey key) const;

  /// Drops every row (tests, between bench cells).
  void Clear();

  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, TenantCost> tenants;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

// ---------------------------------------------------------------------------
// Ambient accumulation hooks.
//
// A ScopedCost publishes its local TenantCost as the thread's ambient cost
// sink; layers that know their cost but not their tenant (the simulator's
// phase split, the evaluators' flip tallies, the arena) add through the
// CostAdd* free functions. One scope per unit of tenant work, opened where
// the tenant is known (TenantRegistry::WithTenant, the cloud controller's
// coordination loop), flushed to the ledger exactly once at destruction.
// ---------------------------------------------------------------------------

/// RAII cost scope: stack-local accumulator, ambient for nested layers,
/// one locked merge into the ledger at destruction. Scopes nest — an inner
/// scope shadows the outer one (its costs flush to its own tenant), and the
/// outer sink is restored on exit. A scope with a null ledger is inert.
/// Call sites use IMCF_COST_SCOPE so a -DIMCF_DISABLE_ACCOUNTING build
/// compiles the instrumentation out entirely (NoopCost below).
class ScopedCost {
 public:
  ScopedCost(CostLedger* ledger, int shard, const std::string& tenant);
  /// The tenant id is borrowed until the flush at destruction; a temporary
  /// would dangle, so it is rejected at compile time.
  ScopedCost(CostLedger* ledger, int shard, std::string&& tenant) = delete;
  ~ScopedCost();

  ScopedCost(const ScopedCost&) = delete;
  ScopedCost& operator=(const ScopedCost&) = delete;

  /// The scope's accumulator (null when inert). Callers that already hold
  /// the scope add directly instead of via the ambient hooks.
  TenantCost* local() { return active_ ? &local_ : nullptr; }
  bool active() const { return active_; }

 private:
  CostLedger* ledger_ = nullptr;
  int shard_ = 0;
  const std::string* tenant_ = nullptr;  ///< borrowed; outlives the scope
  TenantCost local_;
  TenantCost* saved_ambient_ = nullptr;
  bool active_ = false;
};

/// Adds to the calling thread's ambient cost sink; no-ops without one.
/// Call sites use the IMCF_COST_ADD_* macros, never these directly.
void CostAddPhaseNs(CostPhase phase, int64_t ns);
void CostAddArenaBytes(int64_t bytes);
void CostAddFlipEvals(int64_t n);
void CostAddFault(int64_t n = 1);

/// The ambient sink itself (null when no scope is open). Exposed for tests
/// and for callers that batch several adds.
TenantCost* AmbientCost();

/// No-op stand-in the disabled macro path expands to: same surface as
/// ScopedCost, empty bodies, one byte, no TLS touch, no allocation.
class NoopCost {
 public:
  TenantCost* local() { return nullptr; }
  bool active() const { return false; }
};

#if defined(IMCF_DISABLE_ACCOUNTING)
#define IMCF_ACCOUNTING_ENABLED 0
#define IMCF_COST_SCOPE(var, ledger, shard, tenant) \
  [[maybe_unused]] ::imcf::obs::NoopCost var
#define IMCF_COST_ADD_PHASE_NS(phase, ns) \
  do {                                    \
  } while (0)
#define IMCF_COST_ADD_ARENA_BYTES(bytes) \
  do {                                   \
  } while (0)
#define IMCF_COST_ADD_FLIP_EVALS(n) \
  do {                              \
  } while (0)
#define IMCF_COST_ADD_FAULT(n) \
  do {                         \
  } while (0)
#else
#define IMCF_ACCOUNTING_ENABLED 1
/// Opens cost scope `var` charging (shard, tenant) on `ledger`.
#define IMCF_COST_SCOPE(var, ledger, shard, tenant) \
  ::imcf::obs::ScopedCost var((ledger), (shard), (tenant))
#define IMCF_COST_ADD_PHASE_NS(phase, ns) \
  ::imcf::obs::CostAddPhaseNs((phase), (ns))
#define IMCF_COST_ADD_ARENA_BYTES(bytes) \
  ::imcf::obs::CostAddArenaBytes((bytes))
#define IMCF_COST_ADD_FLIP_EVALS(n) ::imcf::obs::CostAddFlipEvals((n))
#define IMCF_COST_ADD_FAULT(n) ::imcf::obs::CostAddFault((n))
#endif  // IMCF_DISABLE_ACCOUNTING

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_ACCOUNTING_COST_LEDGER_H_
