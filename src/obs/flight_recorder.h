// Always-on flight recorder: lock-free per-thread span ring-buffers.
//
// The tracer (obs/tracer.h) answers "where did THIS request spend its
// time"; the flight recorder is where its spans land. Design constraints,
// in order:
//
//   * Fixed memory, always on. Each writer thread owns one ring of
//     `capacity` slots (default 8192, env IMCF_TRACE_RING). New spans
//     overwrite the oldest (head-tail overwrite), so steady-state cost is
//     bounded no matter how long the service runs — exactly a black-box
//     flight recorder, dumpable after the fact.
//   * Lock-free writers. A thread's ring is single-producer: recording a
//     span is a handful of relaxed atomic stores bracketed by a per-slot
//     sequence number (seqlock), never a mutex. Writers on different
//     threads touch different rings and never contend.
//   * Readers are rare and best-effort. Snapshot() walks every ring under
//     the registry mutex (which only guards ring *enumeration*), copying
//     slots with bounded seqlock retries; a slot being overwritten mid-copy
//     is skipped rather than torn. Dumps happen on demand, on shed spikes
//     and at bench end — not on the hot path.
//
// Span names/categories/arg names must be string literals (static storage
// duration): rings store the pointers, not copies. The only dynamic
// payload is the fixed 48-byte `detail` buffer.

#ifndef IMCF_OBS_FLIGHT_RECORDER_H_
#define IMCF_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace imcf {
namespace obs {

/// Bytes of inline annotation per span (including the NUL).
inline constexpr size_t kSpanDetailBytes = 48;

/// One completed span, as read back out of a ring. All ids are opaque;
/// `sim_start`/`sim_end` are SimTime seconds (0 when the span was not bound
/// to the simulation clock). `name`, `category` and the arg names point at
/// string literals.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 for trace roots
  const char* name = "";
  const char* category = "";
  int64_t wall_start_ns = 0;
  int64_t wall_end_ns = 0;
  int64_t sim_start = 0;
  int64_t sim_end = 0;
  int thread_index = 0;  ///< ring index, stable per writer thread
  /// Registered name of the writer thread ("" when it never named itself;
  /// see SetCurrentThreadName). Filled in by Snapshot, not stored per slot.
  std::string thread_name;
  const char* arg_name = nullptr;  ///< optional numeric annotations
  int64_t arg_value = 0;
  const char* arg2_name = nullptr;
  int64_t arg2_value = 0;
  char detail[kSpanDetailBytes] = {};  ///< NUL-terminated annotation
};

/// The recorder: a registry of per-thread rings.
class FlightRecorder {
 public:
  /// Process-wide recorder every ScopedSpan records into. Its capacity
  /// comes from env IMCF_TRACE_RING (slots per thread, clamped to
  /// [64, 1M], rounded up to a power of two; default 8192).
  static FlightRecorder& Default();

  /// `capacity` slots per thread ring, rounded up to a power of two
  /// (0 selects the default). Tests build small recorders directly.
  explicit FlightRecorder(size_t capacity = 0);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one span into the calling thread's ring (creating the ring on
  /// first use). Lock-free after the first call per thread.
  void Record(const SpanRecord& record);

  /// Registers a human-readable name ("pool-3", "drain") for the calling
  /// thread, so dumps label lanes instead of showing bare ring indices.
  /// Applies to this recorder's ring immediately (creating it if needed)
  /// and is remembered thread-locally, so rings this thread later creates
  /// in OTHER recorder instances inherit the name too. Typically called
  /// once at thread start (the thread pool names its workers).
  void SetCurrentThreadName(const std::string& name);

  /// Registered writer names indexed by SpanRecord::thread_index ("" for
  /// threads that never named themselves) — the dump-header lane table.
  std::vector<std::string> thread_names() const;

  /// Best-effort consistent copy of every ring, oldest first within each
  /// ring. Slots under concurrent overwrite are skipped.
  std::vector<SpanRecord> Snapshot() const;

  /// Drops all recorded spans. Only safe when writer threads are quiesced
  /// (tests, between bench cells); concurrent writers may resurrect slots.
  void Clear();

  /// Slots per thread ring.
  size_t capacity() const { return capacity_; }

  /// Spans ever recorded (monotonic; exceeds capacity once rings wrap).
  int64_t total_recorded() const;

  /// Writer threads that have recorded at least one span.
  size_t ring_count() const;

 private:
  struct Slot;
  struct Ring;

  Ring* RingForThisThread();

  const uint64_t instance_id_;  ///< keys the thread-local ring cache
  size_t capacity_;             ///< power of two
  mutable std::mutex mu_;       ///< guards rings_ enumeration only
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_FLIGHT_RECORDER_H_
