#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace imcf {
namespace obs {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Canonical key for one label set: "k1=v1,k2=v2" with keys sorted.
std::string LabelKey(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key += ',';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

Labels Canonicalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

[[noreturn]] void DieOnTypeConflict(const std::string& name) {
  std::fprintf(stderr,
               "metric '%s' re-registered with a different type\n",
               name.c_str());
  std::abort();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]),
      exemplar_ids_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      exemplar_values_(new std::atomic<double>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
    exemplar_ids_[i].store(0, std::memory_order_relaxed);
    exemplar_values_[i].store(0.0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v, uint64_t exemplar_trace_id) {
  // First bucket with bound >= v; +Inf bucket otherwise. Bucket counts are
  // tiny arrays (<= ~20) so a linear scan beats binary search in practice.
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  if (exemplar_trace_id != 0) {
    exemplar_ids_[i].store(exemplar_trace_id, std::memory_order_relaxed);
    exemplar_values_[i].store(v, std::memory_order_relaxed);
  }
}

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Quantile(double q) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank statistics: report the bucket holding the ceil(q*n)-th
  // observation (1-based; rank 0 would sit before the first sample, so it
  // clamps up). Selecting by rank — first *non-empty* bucket with
  // cumulative count >= rank — rather than a strict `< target` scan keeps
  // empty leading buckets from being reported and puts exact-boundary
  // ranks in the bucket that actually holds the observation.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(n))));
  int64_t cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const int64_t in_bucket = bucket_count(i);
    if (in_bucket <= 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds_.size()) {
      // +Inf bucket: the largest finite bound is the best estimate.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(0, count)));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

const std::vector<double>& LatencyBoundsNs() {
  static const std::vector<double> kBounds =
      ExponentialBuckets(1e3, 4.0, 13);  // 1 µs .. ~16.8 s
  return kBounds;
}

const std::vector<double>& DurationBoundsSeconds() {
  static const std::vector<double> kBounds =
      ExponentialBuckets(1e-3, 4.0, 10);  // 1 ms .. ~262 s
  return kBounds;
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Entry* MetricRegistry::Find(const std::string& name,
                                            const Labels& canonical,
                                            MetricType type) {
  auto family = families_.find(name);
  if (family == families_.end()) return nullptr;
  auto entry = family->second.find(LabelKey(canonical));
  if (entry == family->second.end()) {
    // The family exists (fixing its type); a new label instance joins it.
    if (family->second.begin()->second.type != type) {
      DieOnTypeConflict(name);
    }
    return nullptr;
  }
  if (entry->second.type != type) DieOnTypeConflict(name);
  return &entry->second;
}

MetricRegistry::Entry* MetricRegistry::Register(const std::string& name,
                                                const std::string& help,
                                                Labels canonical,
                                                MetricType type) {
  Entry entry;
  entry.type = type;
  entry.help = help;
  entry.labels = canonical;
  auto [it, inserted] =
      families_[name].emplace(LabelKey(canonical), std::move(entry));
  (void)inserted;
  return &it->second;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help, Labels labels) {
  const Labels canonical = Canonicalize(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = Find(name, canonical, MetricType::kCounter);
  if (entry == nullptr) {
    entry = Register(name, help, canonical, MetricType::kCounter);
    entry->counter = std::make_unique<Counter>();
  }
  return entry->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help, Labels labels) {
  const Labels canonical = Canonicalize(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = Find(name, canonical, MetricType::kGauge);
  if (entry == nullptr) {
    entry = Register(name, help, canonical, MetricType::kGauge);
    entry->gauge = std::make_unique<Gauge>();
  }
  return entry->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        std::vector<double> bounds,
                                        Labels labels) {
  const Labels canonical = Canonicalize(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = Find(name, canonical, MetricType::kHistogram);
  if (entry == nullptr) {
    entry = Register(name, help, canonical, MetricType::kHistogram);
    entry->histogram.reset(new Histogram(std::move(bounds)));
  }
  return entry->histogram.get();
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  for (const auto& [name, family] : families_) {
    for (const auto& [label_key, entry] : family) {
      (void)label_key;
      MetricSnapshot snap;
      snap.name = name;
      snap.help = entry.help;
      snap.type = entry.type;
      snap.labels = entry.labels;
      switch (entry.type) {
        case MetricType::kCounter:
          snap.value = static_cast<double>(entry.counter->value());
          break;
        case MetricType::kGauge:
          snap.value = entry.gauge->value();
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *entry.histogram;
          snap.bounds = h.bounds();
          snap.buckets.reserve(snap.bounds.size() + 1);
          snap.exemplar_ids.reserve(snap.bounds.size() + 1);
          snap.exemplar_values.reserve(snap.bounds.size() + 1);
          for (size_t i = 0; i <= snap.bounds.size(); ++i) {
            snap.buckets.push_back(h.bucket_count(i));
            snap.exemplar_ids.push_back(h.exemplar_trace_id(i));
            snap.exemplar_values.push_back(h.exemplar_value(i));
          }
          snap.count = h.count();
          snap.sum = h.sum();
          break;
        }
      }
      out.push_back(std::move(snap));
    }
  }
  // std::map iteration is already (name, label-key) ordered — deterministic.
  return out;
}

}  // namespace obs
}  // namespace imcf
