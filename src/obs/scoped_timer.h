// RAII timing spans, virtual-time-aware.
//
// IMCF code runs on two clocks at once: the wall clock (how long planning
// *really* takes — the paper's F_T) and the simulation clock (how much
// virtual time a span covers — e.g. one VirtualScheduler::AdvanceTo over a
// week). A ScopedTimer dual-stamps a span: elapsed wall nanoseconds go to
// one histogram, and, when bound to a simulation clock, the SimTime the
// span advanced goes to a second histogram in simulated seconds. Either
// stamp can be omitted (null histogram) for single-clock spans.

#ifndef IMCF_OBS_SCOPED_TIMER_H_
#define IMCF_OBS_SCOPED_TIMER_H_

#include <cstdint>

#include "obs/metrics.h"

namespace imcf {
namespace obs {

/// Times the enclosing scope. Destruction observes:
///   * wall nanoseconds into `wall_ns` (if non-null), and also adds wall
///     seconds to `*wall_seconds_accum` (if non-null) so callers keeping a
///     running F_T total need no second clock read;
///   * the simulation-time delta (in seconds) into `sim_seconds` when the
///     timer was bound to a simulation clock via the three-arg constructor
///     (`sim_clock` points at a SimTime — seconds since epoch — that the
///     span mutates, e.g. VirtualScheduler's now).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* wall_ns,
                       double* wall_seconds_accum = nullptr)
      : wall_ns_(wall_ns),
        wall_seconds_accum_(wall_seconds_accum),
        start_ns_(NowNs()) {}

  ScopedTimer(Histogram* wall_ns, const int64_t* sim_clock,
              Histogram* sim_seconds)
      : wall_ns_(wall_ns),
        sim_clock_(sim_clock),
        sim_seconds_(sim_seconds),
        start_ns_(NowNs()),
        sim_start_(sim_clock != nullptr ? *sim_clock : 0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer();

  /// Wall nanoseconds elapsed so far.
  int64_t ElapsedNs() const { return NowNs() - start_ns_; }

  /// Monotonic wall clock reading in nanoseconds.
  static int64_t NowNs();

 private:
  Histogram* wall_ns_ = nullptr;
  double* wall_seconds_accum_ = nullptr;
  const int64_t* sim_clock_ = nullptr;
  Histogram* sim_seconds_ = nullptr;
  int64_t start_ns_ = 0;
  int64_t sim_start_ = 0;
};

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_SCOPED_TIMER_H_
