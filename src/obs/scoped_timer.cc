#include "obs/scoped_timer.h"

#include <chrono>

namespace imcf {
namespace obs {

int64_t ScopedTimer::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScopedTimer::~ScopedTimer() {
  const int64_t elapsed = NowNs() - start_ns_;
  if (wall_ns_ != nullptr) {
    wall_ns_->Observe(static_cast<double>(elapsed));
  }
  if (wall_seconds_accum_ != nullptr) {
    *wall_seconds_accum_ += static_cast<double>(elapsed) * 1e-9;
  }
  if (sim_clock_ != nullptr && sim_seconds_ != nullptr) {
    sim_seconds_->Observe(static_cast<double>(*sim_clock_ - sim_start_));
  }
}

}  // namespace obs
}  // namespace imcf
