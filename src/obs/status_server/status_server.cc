#include "obs/status_server/status_server.h"

#include <poll.h>
#include <sys/socket.h>

#include "net/socket_util.h"
#include "obs/export.h"
#include "obs/trace_export.h"

namespace imcf {
namespace obs {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

/// Hard cap on the buffered request line. A peer that sends this much
/// without a CRLF gets a 400, not an ever-growing buffer.
constexpr size_t kMaxRequestLineBytes = 8192;

enum class ReadResult {
  kOk,       ///< *line holds the request line (without the CRLF)
  kClosed,   ///< peer closed or errored before finishing a line
  kTooLong,  ///< peer exceeded kMaxRequestLineBytes without a CRLF
};

/// Reads until the end of the request line (we ignore headers — HTTP/1.0
/// GET with no body is all we serve). Built on net::RecvSome, which
/// restarts on EINTR; the three outcomes are distinguished so the caller
/// can answer a flooding peer with a 400.
ReadResult ReadRequestLine(int fd, std::string* line) {
  char buf[1024];
  std::string data;
  while (data.find("\r\n") == std::string::npos) {
    if (data.size() >= kMaxRequestLineBytes) return ReadResult::kTooLong;
    ssize_t n = net::RecvSome(fd, buf, sizeof(buf));
    if (n <= 0) return ReadResult::kClosed;
    data.append(buf, static_cast<size_t>(n));
  }
  *line = data.substr(0, data.find("\r\n"));
  return ReadResult::kOk;
}

}  // namespace

HttpRequest ParseRequestTarget(const std::string& target) {
  HttpRequest request;
  size_t qmark = target.find('?');
  request.path = target.substr(0, qmark);
  if (qmark == std::string::npos) return request;
  std::string query = target.substr(qmark + 1);
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    std::string pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[pair] = "";
      } else {
        request.query[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
    }
    pos = amp + 1;
  }
  return request;
}

StatusServer::~StatusServer() { Stop(); }

void StatusServer::Handle(const std::string& path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(handler);
}

bool StatusServer::Start(int port, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error) *error = "already running";
    return false;
  }
  const int fd = net::BindListen(port, /*backlog=*/16, &port_, error);
  if (fd < 0) return false;
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void StatusServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    net::CloseQuietly(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void StatusServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/250);
    if (ready <= 0) continue;  // timeout (re-check running_) or EINTR
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    net::CloseQuietly(fd);
  }
}

void StatusServer::HandleConnection(int fd) {
  std::string line;
  const ReadResult read = ReadRequestLine(fd, &line);
  if (read == ReadResult::kClosed) return;

  // "GET /path?query HTTP/1.0"
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  HttpResponse response;
  if (read == ReadResult::kTooLong) {
    response = HttpResponse{400, "text/plain; charset=utf-8",
                            "request line too long\n"};
  } else if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = HttpResponse{400, "text/plain; charset=utf-8",
                            "malformed request line\n"};
  } else if (line.substr(0, sp1) != "GET") {
    response = HttpResponse{405, "text/plain; charset=utf-8", "GET only\n"};
  } else {
    HttpRequest request =
        ParseRequestTarget(line.substr(sp1 + 1, sp2 - sp1 - 1));
    HttpHandler handler;
    {
      std::lock_guard<std::mutex> lock(handlers_mu_);
      auto it = handlers_.find(request.path);
      if (it != handlers_.end()) handler = it->second;
    }
    if (handler) {
      response = handler(request);
    } else {
      std::string body = "no handler for " + request.path + "\nknown paths:\n";
      std::lock_guard<std::mutex> lock(handlers_mu_);
      for (const auto& [path, unused] : handlers_) body += "  " + path + "\n";
      response = HttpResponse{404, "text/plain; charset=utf-8", body};
    }
  }

  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  const std::string reply = head + response.body;
  (void)net::SendAll(fd, reply.data(), reply.size());
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

void RegisterDefaultHandlers(StatusServer* server, MetricRegistry* registry,
                             FlightRecorder* recorder) {
  if (registry != nullptr) {
    server->Handle("/metrics", [registry](const HttpRequest&) {
      return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                          ToPrometheusText(*registry)};
    });
  }
  if (recorder != nullptr) {
    server->Handle("/tracez", [recorder](const HttpRequest&) {
      return HttpResponse{200, "application/json",
                          TraceEventJson(recorder->Snapshot())};
    });
  }
}

}  // namespace obs
}  // namespace imcf
