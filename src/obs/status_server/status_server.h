// Minimal HTTP/1.0 status server: the fleet's first externally visible
// surface.
//
// Serves hand-registered GET handlers (/metrics, /statusz, /tenantz, /sloz,
// /tracez) from a single blocking-accept thread. Deliberately primitive —
// one connection at a time, Connection: close, no keep-alive, no TLS, no
// request bodies — because its job is operator introspection on a trusted
// network, not serving traffic; ROADMAP item 1's real network front door
// will be its own subsystem. Port 0 binds an ephemeral port (tests read it
// back via port()), and the accept loop polls with a short timeout so
// Stop() takes effect within ~250 ms without needing a self-connect.
//
// POSIX sockets only; like the rest of obs this stays a dependency leaf
// (std + libc), so errors surface as bool + message rather than
// common/Status (common already depends on obs).

#ifndef IMCF_OBS_STATUS_SERVER_STATUS_SERVER_H_
#define IMCF_OBS_STATUS_SERVER_STATUS_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace imcf {
namespace obs {

/// A parsed GET request: path split from the query string, query decoded
/// into key -> value (last key wins; no %-unescaping — introspection
/// parameters are plain tokens like "cpu" or "32").
struct HttpRequest {
  std::string path;
  std::map<std::string, std::string> query;
};

/// What a handler produces. Body is returned verbatim.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Registered per path; must be thread-safe against the serving thread.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class StatusServer {
 public:
  StatusServer() = default;
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Registers `handler` for exact-match `path` ("/metrics"). Replaces any
  /// existing handler. Safe before or after Start.
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and starts the accept thread.
  /// Returns false with `*error` filled on bind/listen failure.
  bool Start(int port, std::string* error);

  /// The bound port (valid after a successful Start; 0 otherwise).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops accepting, joins the serving thread. Idempotent; called by the
  /// destructor.
  void Stop();

  /// Requests served since Start (the /statusz counter, and a convenient
  /// test synchronization point).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  std::map<std::string, HttpHandler> handlers_;
  mutable std::mutex handlers_mu_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_served_{0};
  std::thread thread_;
};

/// Parses "/tenantz?sort=cpu&k=10" into path + query map.
HttpRequest ParseRequestTarget(const std::string& target);

class MetricRegistry;
class FlightRecorder;

/// Registers the obs-level default pages: /metrics (Prometheus text
/// exposition with exemplars) and /tracez (Chrome trace-event JSON of a
/// fresh flight-recorder snapshot). Pass null to skip either. The serving
/// layer adds its own pages (/statusz, /tenantz, /sloz) on top via
/// serve/introspection.h.
void RegisterDefaultHandlers(StatusServer* server, MetricRegistry* registry,
                             FlightRecorder* recorder);

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_STATUS_SERVER_STATUS_SERVER_H_
