#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json_writer.h"

namespace imcf {
namespace obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  return buf;
}

/// Escapes a Prometheus label value: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Escapes HELP text per the exposition format: backslash and newline
/// (double quotes are legal in help, unlike in label values).
std::string EscapeHelpText(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Quantile over snapshot bucket data — the same rank statistic as
/// Histogram::Quantile (report the bucket holding the 1-based ceil(q*n)-th
/// observation; the +Inf bucket degrades to the largest finite bound), so
/// the JSON export quotes the numbers the live histogram would.
double SnapshotQuantile(const MetricSnapshot& m, double q) {
  if (m.count <= 0) return 0.0;
  const int64_t rank = std::max<int64_t>(
      1,
      static_cast<int64_t>(std::ceil(q * static_cast<double>(m.count))));
  int64_t cumulative = 0;
  for (size_t i = 0; i < m.buckets.size(); ++i) {
    const int64_t in_bucket = m.buckets[i];
    if (in_bucket <= 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= m.bounds.size()) {
      return m.bounds.empty() ? 0.0 : m.bounds.back();
    }
    const double lower = i == 0 ? 0.0 : m.bounds[i - 1];
    const double upper = m.bounds[i];
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return m.bounds.empty() ? 0.0 : m.bounds.back();
}

/// Renders `{k="v",...}` including an optional extra (le) label, or an
/// empty string when there are no labels at all.
std::string LabelBlock(const Labels& labels, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += EscapeLabelValue(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

/// OpenMetrics exemplar suffix for bucket `i`, or "" when the bucket never
/// saw a tagged observation — so registries without exemplars export
/// byte-identical v0.0.4 text.
std::string ExemplarSuffix(const MetricSnapshot& m, size_t i) {
  if (i >= m.exemplar_ids.size() || m.exemplar_ids[i] == 0) return "";
  char buf[96];
  std::snprintf(buf, sizeof(buf), " # {trace_id=\"0x%016llx\"} %s",
                static_cast<unsigned long long>(m.exemplar_ids[i]),
                FormatDouble(m.exemplar_values[i]).c_str());
  return buf;
}

}  // namespace

std::string ToPrometheusText(const MetricRegistry& registry) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : snapshot) {
    if (m.name != last_family) {
      last_family = m.name;
      out += "# HELP " + m.name + " " + EscapeHelpText(m.help) + "\n";
      out += "# TYPE " + m.name + " " + TypeName(m.type) + "\n";
    }
    if (m.type == MetricType::kHistogram) {
      int64_t cumulative = 0;
      for (size_t i = 0; i < m.bounds.size(); ++i) {
        cumulative += m.buckets[i];
        out += m.name + "_bucket" +
               LabelBlock(m.labels, "le", FormatDouble(m.bounds[i])) + " " +
               std::to_string(cumulative) + ExemplarSuffix(m, i) + "\n";
      }
      cumulative += m.buckets.empty() ? 0 : m.buckets.back();
      out += m.name + "_bucket" + LabelBlock(m.labels, "le", "+Inf") + " " +
             std::to_string(cumulative) +
             ExemplarSuffix(m, m.bounds.size()) + "\n";
      out += m.name + "_sum" + LabelBlock(m.labels) + " " +
             FormatDouble(m.sum) + "\n";
      out += m.name + "_count" + LabelBlock(m.labels) + " " +
             std::to_string(m.count) + "\n";
    } else {
      out += m.name + LabelBlock(m.labels) + " " + FormatDouble(m.value) +
             "\n";
    }
  }
  return out;
}

std::string ToJson(const MetricRegistry& registry) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  JsonWriter w;
  w.BeginArray();
  for (const MetricSnapshot& m : snapshot) {
    w.BeginObject();
    w.Key("name").String(m.name);
    w.Key("type").String(TypeName(m.type));
    if (!m.labels.empty()) {
      w.Key("labels").BeginObject();
      for (const auto& [k, v] : m.labels) {
        w.Key(k).String(v);
      }
      w.EndObject();
    }
    if (m.type == MetricType::kHistogram) {
      // count + sum travel with the quantiles so merged snapshots can
      // recompute exact means; quantiles alone cannot.
      w.Key("count").Int(m.count);
      w.Key("sum").Double(m.sum);
      w.Key("mean").Double(
          m.count > 0 ? m.sum / static_cast<double>(m.count) : 0.0);
      w.Key("quantiles").BeginObject();
      w.Key("p50").Double(SnapshotQuantile(m, 0.50));
      w.Key("p90").Double(SnapshotQuantile(m, 0.90));
      w.Key("p99").Double(SnapshotQuantile(m, 0.99));
      w.EndObject();
      w.Key("bounds").BeginArray();
      for (double b : m.bounds) w.Double(b);
      w.EndArray();
      w.Key("buckets").BeginArray();
      for (int64_t c : m.buckets) w.Int(c);
      w.EndArray();
      bool any_exemplar = false;
      for (uint64_t id : m.exemplar_ids) any_exemplar |= id != 0;
      if (any_exemplar) {
        // One entry per exemplar-carrying bucket: `le` names the bucket
        // ("+Inf" for the overflow bucket), ids render as 0x-hex to match
        // the trace exports.
        w.Key("exemplars").BeginArray();
        for (size_t i = 0; i < m.exemplar_ids.size(); ++i) {
          if (m.exemplar_ids[i] == 0) continue;
          char hex[32];
          std::snprintf(hex, sizeof(hex), "0x%016llx",
                        static_cast<unsigned long long>(m.exemplar_ids[i]));
          w.BeginObject();
          w.Key("le").String(i < m.bounds.size()
                                 ? FormatDouble(m.bounds[i])
                                 : "+Inf");
          w.Key("trace_id").String(hex);
          w.Key("value").Double(m.exemplar_values[i]);
          w.EndObject();
        }
        w.EndArray();
      }
    } else {
      w.Key("value").Double(m.value);
    }
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

}  // namespace obs
}  // namespace imcf
