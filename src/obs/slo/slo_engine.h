// Per-tenant SLO burn-rate engine over sliding sim-time windows.
//
// An SLO says "at most X% of this tenant's requests may be bad"; the error
// budget is that X%. The burn rate is how fast the budget is being spent:
// bad_fraction / budget, so burn 1.0 exhausts the budget exactly at the end
// of the window and burn 2.0 exhausts it halfway through. Following the
// multi-window pattern, an alert fires only when BOTH a short window (fast
// signal) and a long window (sustained, not a blip) burn at or above the
// threshold — a short spike that already drained out of the long window
// stays quiet, and a long-dead incident no longer pins the alert.
//
// Three objectives per tenant, matching what the fleet actually promises:
//
//   * kPlanLatency  — fraction of plan requests slower (wall) than the
//                     target must stay under 1 - latency_target_quantile.
//   * kShedRate     — fraction of submissions shed at admission must stay
//                     under max_shed_rate.
//   * kDeadlineHit  — fraction of deadline-carrying requests that miss must
//                     stay under 1 - min_deadline_hit_rate.
//
// Windows slide on SIMULATION time (the fleet's drain clock), bucketed into
// bucket_seconds rings with lazy invalidation: each bucket remembers which
// absolute bucket index it holds, so a sim-clock jump across any number of
// boundaries simply orphans stale buckets (they read as zero) instead of
// requiring an eager sweep. Every bad event carries the request's trace id;
// the newest one in the window is reported as the alert's exemplar, linking
// a burning SLO straight to flight-recorder spans.
//
// Like the rest of obs, this module is a dependency leaf (std only).

#ifndef IMCF_OBS_SLO_SLO_ENGINE_H_
#define IMCF_OBS_SLO_SLO_ENGINE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace imcf {
namespace obs {

/// Objectives tracked per tenant.
enum class SloObjective : uint8_t {
  kPlanLatency = 0,  ///< plan wall latency at the target quantile
  kShedRate = 1,     ///< admission sheds / submissions
  kDeadlineHit = 2,  ///< deadline misses / deadline-carrying requests
};

inline constexpr size_t kNumSloObjectives = 3;

const char* SloObjectiveName(SloObjective objective);

/// Per-tenant objectives and window geometry. The defaults are deliberately
/// loose (a fleet under test should be quiet); tests and tenants with real
/// promises tighten them via SloEngine::SetObjectives.
struct SloOptions {
  /// kPlanLatency: a plan request is bad if its wall time exceeds this.
  int64_t plan_latency_ms = 250;
  /// ...and at most (1 - quantile) of plan requests may be bad.
  double latency_target_quantile = 0.99;
  /// kShedRate: budgeted fraction of submissions shed at admission.
  double max_shed_rate = 0.05;
  /// kDeadlineHit: required hit rate among deadline-carrying requests.
  double min_deadline_hit_rate = 0.95;
  /// Fire when BOTH windows burn at or above this (>= — exactly-at fires).
  double burn_threshold = 2.0;
  /// Short (fast) and long (sustained) windows, in sim seconds.
  int64_t short_window_seconds = 3600;
  int64_t long_window_seconds = 86400;
  /// Ring bucket width; must divide into sensibly many buckets per window.
  int64_t bucket_seconds = 900;
};

/// One request's worth of SLO-relevant facts, fed once per response (or
/// once per shed decision, with shed = true and everything else false).
struct SloEvent {
  int64_t sim_time = 0;        ///< fleet drain clock (sim seconds)
  bool shed = false;           ///< rejected at admission
  bool is_plan = false;        ///< counts toward kPlanLatency
  int64_t plan_wall_ns = 0;    ///< wall time of the plan, if is_plan
  bool had_deadline = false;   ///< counts toward kDeadlineHit
  bool deadline_miss = false;  ///< ...and missed it
  uint64_t trace_id = 0;       ///< exemplar link into the flight recorder
};

/// Evaluated state of one (tenant, objective) pair.
struct BurnStatus {
  std::string tenant;
  SloObjective objective = SloObjective::kPlanLatency;
  double short_burn = 0.0;
  double long_burn = 0.0;
  bool firing = false;
  uint64_t exemplar_trace_id = 0;  ///< newest bad event in the long window
};

/// The engine: per-tenant bucket rings, evaluated on demand. Observe is a
/// short mutex hold (once per response — three orders of magnitude cooler
/// than the planner's inner loops); Evaluate walks every tenant and is meant
/// for drain-edge checks and the /sloz page.
class SloEngine {
 public:
  explicit SloEngine(SloOptions defaults = {});

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Overrides the objectives for one tenant (takes effect on the next
  /// Observe/Evaluate; existing window contents are kept).
  void SetObjectives(const std::string& tenant, const SloOptions& options);

  /// Feeds one request's facts into the tenant's windows.
  void Observe(const std::string& tenant, const SloEvent& event);

  /// Burn state of every (tenant, objective), sorted by tenant then
  /// objective — deterministic for a given event stream and sim_now.
  std::vector<BurnStatus> Evaluate(int64_t sim_now) const;

  /// Rising-edge filter over Evaluate: the pairs that are firing now but
  /// were not firing at the previous NewlyFiring call. Drives the one-shot
  /// burn dumps (a sustained burn dumps once, not once per drain).
  std::vector<BurnStatus> NewlyFiring(int64_t sim_now);

  /// The /sloz body: Evaluate rendered as a JSON array.
  std::string ToJson(int64_t sim_now) const;

  /// Drops all windows and edge state (tests, between bench cells).
  void Clear();

 private:
  /// One ring bucket: absolute bucket index + per-objective good/bad
  /// tallies. A slot whose `index` disagrees with the index the reader or
  /// writer expects is stale (the clock moved on) and reads as zero.
  struct Bucket {
    int64_t index = -1;
    int64_t good[kNumSloObjectives] = {0, 0, 0};
    int64_t bad[kNumSloObjectives] = {0, 0, 0};
    uint64_t exemplar[kNumSloObjectives] = {0, 0, 0};  ///< last bad trace
  };

  struct Tenant {
    SloOptions options;
    std::vector<Bucket> ring;  ///< sized for the long window
  };

  struct WindowTotals {
    int64_t good = 0;
    int64_t bad = 0;
    uint64_t exemplar = 0;
    int64_t exemplar_index = -1;  ///< bucket index the exemplar came from
  };

  Tenant& TenantState(const std::string& id);
  Bucket& BucketFor(Tenant& tenant, int64_t bucket_index);
  WindowTotals Sum(const Tenant& tenant, SloObjective objective,
                   int64_t sim_now, int64_t window_seconds) const;
  static double Burn(const WindowTotals& totals, double budget);

  SloOptions defaults_;
  mutable std::mutex mu_;
  std::map<std::string, Tenant> tenants_;
  /// (tenant, objective) pairs firing at the last NewlyFiring call.
  std::set<std::pair<std::string, int>> firing_;
};

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_SLO_SLO_ENGINE_H_
