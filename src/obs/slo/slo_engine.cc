#include "obs/slo/slo_engine.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_writer.h"

namespace imcf {
namespace obs {
namespace {

/// Error budget for one objective: the allowed bad fraction. Clamped away
/// from zero so a misconfigured 100% target degrades to a huge burn rather
/// than a division by zero.
double BudgetFor(const SloOptions& options, SloObjective objective) {
  double budget = 0.0;
  switch (objective) {
    case SloObjective::kPlanLatency:
      budget = 1.0 - options.latency_target_quantile;
      break;
    case SloObjective::kShedRate:
      budget = options.max_shed_rate;
      break;
    case SloObjective::kDeadlineHit:
      budget = 1.0 - options.min_deadline_hit_rate;
      break;
  }
  return std::max(budget, 1e-9);
}

}  // namespace

const char* SloObjectiveName(SloObjective objective) {
  switch (objective) {
    case SloObjective::kPlanLatency:
      return "plan_latency";
    case SloObjective::kShedRate:
      return "shed_rate";
    case SloObjective::kDeadlineHit:
      return "deadline_hit";
  }
  return "unknown";
}

SloEngine::SloEngine(SloOptions defaults) : defaults_(defaults) {
  if (defaults_.bucket_seconds < 1) defaults_.bucket_seconds = 1;
}

SloEngine::Tenant& SloEngine::TenantState(const std::string& id) {
  auto [it, inserted] = tenants_.try_emplace(id);
  Tenant& tenant = it->second;
  if (inserted) {
    tenant.options = defaults_;
    // One slot per long-window bucket plus one: the window straddles up to
    // buckets+1 ring slots because "now" is mid-bucket.
    size_t slots = static_cast<size_t>(tenant.options.long_window_seconds /
                                       tenant.options.bucket_seconds) +
                   1;
    tenant.ring.resize(std::max<size_t>(slots, 2));
  }
  return tenant;
}

SloEngine::Bucket& SloEngine::BucketFor(Tenant& tenant, int64_t bucket_index) {
  Bucket& bucket =
      tenant.ring[static_cast<size_t>(bucket_index) % tenant.ring.size()];
  if (bucket.index != bucket_index) {
    // Stale occupant from >long_window ago (or a clock jump): reclaim.
    bucket = Bucket{};
    bucket.index = bucket_index;
  }
  return bucket;
}

void SloEngine::SetObjectives(const std::string& tenant,
                              const SloOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& state = TenantState(tenant);
  SloOptions sanitized = options;
  if (sanitized.bucket_seconds < 1) sanitized.bucket_seconds = 1;
  bool regeometry =
      sanitized.bucket_seconds != state.options.bucket_seconds ||
      sanitized.long_window_seconds != state.options.long_window_seconds;
  state.options = sanitized;
  if (regeometry) {
    size_t slots = static_cast<size_t>(sanitized.long_window_seconds /
                                       sanitized.bucket_seconds) +
                   1;
    state.ring.assign(std::max<size_t>(slots, 2), Bucket{});
  }
}

void SloEngine::Observe(const std::string& tenant, const SloEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& state = TenantState(tenant);
  int64_t bucket_index = event.sim_time / state.options.bucket_seconds;
  if (bucket_index < 0) bucket_index = 0;
  Bucket& bucket = BucketFor(state, bucket_index);

  auto tally = [&](SloObjective objective, bool bad) {
    size_t i = static_cast<size_t>(objective);
    (bad ? bucket.bad[i] : bucket.good[i]) += 1;
    if (bad && event.trace_id != 0) bucket.exemplar[i] = event.trace_id;
  };

  // Every submission counts toward the shed objective; only served plans
  // count toward latency; only deadline-carrying requests toward deadlines.
  tally(SloObjective::kShedRate, event.shed);
  if (event.shed) return;  // shed requests produce no latency/deadline facts
  if (event.is_plan) {
    bool slow =
        event.plan_wall_ns > state.options.plan_latency_ms * 1'000'000;
    tally(SloObjective::kPlanLatency, slow);
  }
  if (event.had_deadline) {
    tally(SloObjective::kDeadlineHit, event.deadline_miss);
  }
}

SloEngine::WindowTotals SloEngine::Sum(const Tenant& tenant,
                                       SloObjective objective,
                                       int64_t sim_now,
                                       int64_t window_seconds) const {
  size_t obj = static_cast<size_t>(objective);
  int64_t now_index = sim_now / tenant.options.bucket_seconds;
  int64_t window_buckets =
      window_seconds / tenant.options.bucket_seconds;  // >= 1 by sanitation
  if (window_buckets < 1) window_buckets = 1;
  int64_t first = now_index - window_buckets + 1;

  WindowTotals totals;
  // The ring may be larger than the window (short window over the
  // long-window ring), so walk the window's index range, not the ring.
  for (int64_t index = first; index <= now_index; ++index) {
    if (index < 0) continue;
    const Bucket& bucket =
        tenant.ring[static_cast<size_t>(index) % tenant.ring.size()];
    if (bucket.index != index) continue;  // stale or never written
    totals.good += bucket.good[obj];
    totals.bad += bucket.bad[obj];
    if (bucket.exemplar[obj] != 0 && index > totals.exemplar_index) {
      totals.exemplar = bucket.exemplar[obj];
      totals.exemplar_index = index;
    }
  }
  return totals;
}

double SloEngine::Burn(const WindowTotals& totals, double budget) {
  int64_t total = totals.good + totals.bad;
  if (total == 0) return 0.0;  // empty window burns nothing
  double bad_fraction =
      static_cast<double>(totals.bad) / static_cast<double>(total);
  return bad_fraction / budget;
}

std::vector<BurnStatus> SloEngine::Evaluate(int64_t sim_now) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BurnStatus> out;
  out.reserve(tenants_.size() * kNumSloObjectives);
  for (const auto& [id, tenant] : tenants_) {  // map order: sorted by tenant
    for (size_t obj = 0; obj < kNumSloObjectives; ++obj) {
      SloObjective objective = static_cast<SloObjective>(obj);
      double budget = BudgetFor(tenant.options, objective);
      WindowTotals short_totals =
          Sum(tenant, objective, sim_now, tenant.options.short_window_seconds);
      WindowTotals long_totals =
          Sum(tenant, objective, sim_now, tenant.options.long_window_seconds);
      BurnStatus status;
      status.tenant = id;
      status.objective = objective;
      status.short_burn = Burn(short_totals, budget);
      status.long_burn = Burn(long_totals, budget);
      status.firing = status.short_burn >= tenant.options.burn_threshold &&
                      status.long_burn >= tenant.options.burn_threshold;
      status.exemplar_trace_id = long_totals.exemplar;
      out.push_back(std::move(status));
    }
  }
  return out;
}

std::vector<BurnStatus> SloEngine::NewlyFiring(int64_t sim_now) {
  std::vector<BurnStatus> evaluated = Evaluate(sim_now);
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::pair<std::string, int>> now_firing;
  std::vector<BurnStatus> fresh;
  for (BurnStatus& status : evaluated) {
    if (!status.firing) continue;
    auto key = std::make_pair(status.tenant,
                              static_cast<int>(status.objective));
    now_firing.insert(key);
    if (!firing_.count(key)) fresh.push_back(std::move(status));
  }
  firing_ = std::move(now_firing);
  return fresh;
}

std::string SloEngine::ToJson(int64_t sim_now) const {
  char hex[32];
  JsonWriter w;
  w.BeginObject();
  w.Key("sim_now").Int(sim_now);
  w.Key("objectives").BeginArray();
  for (const BurnStatus& status : Evaluate(sim_now)) {
    w.BeginObject();
    w.Key("tenant").String(status.tenant);
    w.Key("objective").String(SloObjectiveName(status.objective));
    w.Key("short_burn").Double(status.short_burn);
    w.Key("long_burn").Double(status.long_burn);
    w.Key("firing").Bool(status.firing);
    if (status.exemplar_trace_id != 0) {
      std::snprintf(hex, sizeof(hex), "0x%016llx",
                    static_cast<unsigned long long>(status.exemplar_trace_id));
      w.Key("exemplar_trace_id").String(hex);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

void SloEngine::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.clear();
  firing_.clear();
}

}  // namespace obs
}  // namespace imcf
