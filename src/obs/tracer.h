// Request-scoped span tracing.
//
// The metrics registry says how MUCH (counters, histograms); spans say
// WHERE one request spent its time. A TraceContext (trace id + parent span
// id) is minted per unit of root work — a FleetService request, a
// simulation grid cell, a CMC coordination round — and flows through the
// layers two ways:
//
//   * implicitly, via a thread-local context stack: a ScopedSpan opened
//     while another span is live on the same thread becomes its child
//     (firewall decisions under the planner under the simulator...);
//   * explicitly, across threads: the serving layer stores the submit
//     span's context() in the queued request, and the draining worker
//     opens its execute span with that context as parent — the
//     enqueue -> drain handoff keeps one request one tree.
//
// Spans dual-stamp like obs::ScopedTimer: wall nanoseconds always, and
// SimTime seconds when bound via SimSpan()/BindSimClock(). Completed spans
// land in the FlightRecorder (obs/flight_recorder.h); obs/trace_export.h
// turns snapshots into Perfetto JSON, canonical (determinism-witness) text
// and compact slow-request lines.
//
// Determinism contract: span *content* (names, details, args, sim stamps,
// parent links, per-trace creation order) is a pure function of the
// request stream for any worker count; only wall stamps, raw ids and
// thread indices are measurements. CanonicalTraceText masks the latter, so
// span trees are bit-comparable at 1/4/8 workers.
//
// Cost: recording a span is ~a dozen relaxed atomic stores; a span that is
// runtime-disabled (Tracer::set_enabled(false)) or has no trace context
// costs one TLS read and a branch. Compiling with -DIMCF_DISABLE_TRACING
// (CMake option IMCF_DISABLE_TRACING) replaces the IMCF_TRACE_* macros
// with empty NoopSpan stubs, removing the instrumentation entirely.
//
// Names, categories and arg names MUST be string literals — the flight
// recorder stores the pointers. Dynamic text goes in Detail() (48 bytes,
// truncated).

#ifndef IMCF_OBS_TRACER_H_
#define IMCF_OBS_TRACER_H_

#include <cstdint>
#include <string_view>

#include "obs/flight_recorder.h"

namespace imcf {
namespace obs {

/// Where a new span attaches: the trace it belongs to and the span that
/// becomes its parent (0 = the new span is the trace root).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// Static tracer state: the runtime switch, span-id minting and the
/// thread-local ambient context.
class Tracer {
 public:
  /// Runtime switch (default on — the flight recorder is always on).
  /// Disabled spans cost one relaxed load and a branch.
  static bool enabled();
  static void set_enabled(bool enabled);

  /// Ambient context: the innermost live span on this thread, or an
  /// invalid context when none is open.
  static TraceContext Current();

  /// Root context for an explicitly minted trace id.
  static TraceContext Root(uint64_t trace_id) { return {trace_id, 0}; }

  /// Fresh process-unique trace id for ad-hoc roots (examples, CMC runs).
  /// Deterministic callers (serve, sim grid) derive ids from request/cell
  /// coordinates instead — see DESIGN.md §11.
  static uint64_t MintTraceId();

 private:
  friend class ScopedSpan;
  friend void TraceEvent(const char* name, const char* category,
                         std::string_view detail, const char* arg_name,
                         int64_t arg_value);
  static uint64_t NextSpanId();
  static void Push(TraceContext context);
  static void Pop();
};

/// RAII span. Construction stamps wall start and pushes the span onto the
/// thread's context stack; destruction stamps wall end and records into
/// FlightRecorder::Default(). A span constructed while tracing is disabled
/// or without a valid trace context is inert (no stamps, no record).
class ScopedSpan {
 public:
  /// Child of the thread's ambient context (inert when there is none).
  ScopedSpan(const char* name, const char* category);

  /// Child of an explicit context — the cross-thread handoff constructor —
  /// or a trace root when `parent` is Tracer::Root(id).
  ScopedSpan(const char* name, const char* category, TraceContext parent);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

  /// Sets the span's text annotation (truncated to 47 bytes).
  void Detail(std::string_view text);

  /// Attaches a numeric annotation; the first two calls win, later ones
  /// are dropped. `name` must be a string literal.
  void Arg(const char* name, int64_t value);

  /// Stamps the simulation-time interval the span covers (seconds).
  void SimSpan(int64_t sim_start, int64_t sim_end);

  /// Binds the span to a simulation clock (SimTime seconds, borrowed,
  /// must outlive the span): sim_start is read now, sim_end at
  /// destruction — the dual-stamp pattern of obs::ScopedTimer.
  void BindSimClock(const int64_t* sim_clock);

  /// Context for children of this span (cross-thread propagation).
  TraceContext context() const {
    return {record_.trace_id, record_.span_id};
  }

  /// Whether this span records anything (false when disabled/contextless).
  bool active() const { return active_; }

 private:
  SpanRecord record_;
  const int64_t* sim_clock_ = nullptr;
  bool active_ = false;
  bool pushed_ = false;
};

/// Records an instantaneous event (wall start == end) under the thread's
/// ambient context; dropped when there is none. Cheap enough for per-drop
/// firewall verdicts and per-retry bus annotations.
void TraceEvent(const char* name, const char* category,
                std::string_view detail = {},
                const char* arg_name = nullptr, int64_t arg_value = 0);

/// No-op stand-in the disabled macro path expands to: same surface as
/// ScopedSpan, empty bodies, no storage beyond one byte, no allocation.
class NoopSpan {
 public:
  void Detail(std::string_view) {}
  void Arg(const char*, int64_t) {}
  void SimSpan(int64_t, int64_t) {}
  void BindSimClock(const int64_t*) {}
  TraceContext context() const { return {}; }
  bool active() const { return false; }
};

#if defined(IMCF_DISABLE_TRACING)
#define IMCF_TRACING_ENABLED 0
#define IMCF_TRACE_SPAN(var, name, category) \
  [[maybe_unused]] ::imcf::obs::NoopSpan var
#define IMCF_TRACE_SPAN_IN(var, name, category, parent) \
  [[maybe_unused]] ::imcf::obs::NoopSpan var
#define IMCF_TRACE_EVENT(...) \
  do {                        \
  } while (0)
#else
#define IMCF_TRACING_ENABLED 1
/// Opens span `var` as a child of the thread's ambient context.
#define IMCF_TRACE_SPAN(var, name, category) \
  ::imcf::obs::ScopedSpan var((name), (category))
/// Opens span `var` under an explicit TraceContext (cross-thread handoff).
#define IMCF_TRACE_SPAN_IN(var, name, category, parent) \
  ::imcf::obs::ScopedSpan var((name), (category), (parent))
/// Records an instant event under the ambient context.
#define IMCF_TRACE_EVENT(...) ::imcf::obs::TraceEvent(__VA_ARGS__)
#endif

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_TRACER_H_
