// Lock-cheap metrics registry: monotonic counters, gauges and fixed-bucket
// histograms, all safe to update concurrently from the thread pool's
// workers.
//
// The paper's evaluation is entirely about *measured* planner behaviour
// (response time F_T, iterations to convergence, commands filtered), so the
// hot and decision paths publish first-class telemetry instead of ad-hoc
// prints. Design rules:
//
//   * Updates are single relaxed atomic operations — no locks, no
//     allocation — so instrumenting a path costs nanoseconds. Hot loops
//     should still batch locally and flush once per unit of work (the
//     planner flushes once per PlanSlot, the evaluator once per lifetime).
//   * Registration (name -> metric lookup) takes a mutex; callers cache the
//     returned pointer (function-local static), which stays valid for the
//     registry's lifetime.
//   * Naming scheme: `imcf_<subsystem>_<name>`, counters suffixed `_total`,
//     durations suffixed with their unit (`_ns`, `_seconds`). Labels are
//     for small closed sets only (a DecisionReason, a cron job name) —
//     never per-device or per-rule cardinality.
//
// This module is a dependency leaf (std only) so even `common/` (thread
// pool, logging) can publish metrics without a cycle.

#ifndef IMCF_OBS_METRICS_H_
#define IMCF_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace imcf {
namespace obs {

/// Metric labels: small, closed key/value sets (see cardinality rules in
/// the header comment). Order-insensitive — the registry canonicalizes.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge (queue depths, clock readings).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with cumulative-bucket quantile estimates.
/// Observations land in the first bucket whose upper bound is >= the value
/// (Prometheus `le` semantics); values above every bound land in the
/// implicit +Inf bucket.
///
/// Each bucket additionally remembers the trace id and value of the last
/// observation tagged with one (an OpenMetrics *exemplar*), so a scrape of
/// a latency histogram links straight to a flight-recorder trace that
/// landed in that bucket. Exemplars are best-effort: the id/value pair is
/// two relaxed atomics, so a reader racing two writers may pair one
/// writer's id with the other's value — both are real recent observations
/// of that bucket, which is all an exemplar promises.
class Histogram {
 public:
  void Observe(double v) { Observe(v, 0); }
  /// As Observe(v); additionally records (trace_id, v) as the bucket's
  /// exemplar when trace_id != 0.
  void Observe(double v, uint64_t exemplar_trace_id);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean observation (0 when empty).
  double mean() const;

  /// Upper bounds, ascending, excluding the implicit +Inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` in [0, bounds().size()] — the last
  /// index is the +Inf bucket.
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Trace id of bucket `i`'s last tagged observation (0 = none yet).
  uint64_t exemplar_trace_id(size_t i) const {
    return exemplar_ids_[i].load(std::memory_order_relaxed);
  }
  /// Observed value that came with that exemplar.
  double exemplar_value(size_t i) const {
    return exemplar_values_[i].load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// target bucket; observations in the +Inf bucket report the largest
  /// finite bound. 0 when empty.
  double Quantile(double q) const;

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  std::unique_ptr<std::atomic<uint64_t>[]> exemplar_ids_;    // same length
  std::unique_ptr<std::atomic<double>[]> exemplar_values_;   // same length
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` exponential bucket bounds: start, start*factor, ...
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);
/// `count` linear bucket bounds: start, start+width, ...
std::vector<double> LinearBuckets(double start, double width, int count);
/// Canonical latency bounds in nanoseconds (1 µs .. ~17 s, ×4 steps).
const std::vector<double>& LatencyBoundsNs();
/// Canonical duration bounds in seconds (1 ms .. ~4 min, ×4 steps).
const std::vector<double>& DurationBoundsSeconds();

/// What a metric is, for exporters.
enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one metric, consumed by the exporters.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;               ///< canonicalized (sorted by key)
  double value = 0.0;          ///< counter / gauge
  std::vector<double> bounds;  ///< histogram only
  std::vector<int64_t> buckets;
  /// Per-bucket exemplars, parallel to `buckets` (id 0 = no exemplar).
  std::vector<uint64_t> exemplar_ids;
  std::vector<double> exemplar_values;
  int64_t count = 0;
  double sum = 0.0;
};

/// Owns metrics and hands out stable pointers. Get* registers on first use
/// and returns the existing instance afterwards; re-registering a name
/// with a different metric type aborts (a programming error, caught in
/// tests). Instances never move or die before the registry does.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation publishes to.
  static MetricRegistry& Default();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  /// `bounds` must be ascending; only the first registration's bounds are
  /// used for a given (name, labels).
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds, Labels labels = {});

  /// Consistent copy of every metric, sorted by (name, labels) so exporter
  /// output is deterministic regardless of registration order.
  std::vector<MetricSnapshot> Snapshot() const;

 private:
  struct Entry {
    MetricType type;
    std::string help;
    Labels labels;  // canonicalized
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(const std::string& name, const Labels& canonical,
              MetricType type);
  Entry* Register(const std::string& name, const std::string& help,
                  Labels canonical, MetricType type);

  mutable std::mutex mu_;
  /// name -> one entry per canonical label set (keyed by serialization).
  std::map<std::string, std::map<std::string, Entry>> families_;
};

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_METRICS_H_
