#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <unordered_map>

#include "obs/json_writer.h"

namespace imcf {
namespace obs {

namespace {

std::string HexId(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

/// (trace_id -> span_id -> children in creation order), plus per-trace
/// roots. Span ids are globally monotone, so sorting siblings by span id
/// recovers creation order.
struct TraceForest {
  /// Trace id -> root records, creation order.
  std::map<uint64_t, std::vector<const SpanRecord*>> roots;
  /// Span id -> child records, creation order.
  std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
};

TraceForest BuildForest(const std::vector<SpanRecord>& records) {
  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  by_id.reserve(records.size());
  for (const SpanRecord& r : records) by_id[r.span_id] = &r;

  TraceForest forest;
  for (const SpanRecord& r : records) {
    // A parent that was overwritten in the ring orphans the subtree; treat
    // the orphan as a root so its spans still render.
    if (r.parent_span_id != 0 && by_id.count(r.parent_span_id) > 0) {
      forest.children[r.parent_span_id].push_back(&r);
    } else {
      forest.roots[r.trace_id].push_back(&r);
    }
  }
  auto by_creation = [](const SpanRecord* a, const SpanRecord* b) {
    return a->span_id < b->span_id;
  };
  for (auto& [trace_id, roots] : forest.roots) {
    std::sort(roots.begin(), roots.end(), by_creation);
  }
  for (auto& [span_id, kids] : forest.children) {
    std::sort(kids.begin(), kids.end(), by_creation);
  }
  return forest;
}

void CanonicalNode(const TraceForest& forest, const SpanRecord& r, int depth,
                   std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += r.name;
  *out += " [";
  *out += r.category;
  *out += ']';
  if (r.sim_start != 0 || r.sim_end != 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " sim=[%lld..%lld]",
                  static_cast<long long>(r.sim_start),
                  static_cast<long long>(r.sim_end));
    *out += buf;
  }
  for (const auto& [name, value] :
       {std::pair<const char*, int64_t>{r.arg_name, r.arg_value},
        std::pair<const char*, int64_t>{r.arg2_name, r.arg2_value}}) {
    if (name == nullptr) continue;
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %s=%lld", name,
                  static_cast<long long>(value));
    *out += buf;
  }
  if (r.detail[0] != '\0') {
    *out += " \"";
    *out += r.detail;
    *out += '"';
  }
  *out += '\n';
  auto it = forest.children.find(r.span_id);
  if (it == forest.children.end()) return;
  for (const SpanRecord* child : it->second) {
    CanonicalNode(forest, *child, depth + 1, out);
  }
}

void CompactNode(const TraceForest& forest, const SpanRecord& r,
                 std::string* out) {
  *out += r.name;
  if (r.detail[0] != '\0') {
    *out += '(';
    *out += r.detail;
    *out += ')';
  }
  auto it = forest.children.find(r.span_id);
  if (it == forest.children.end()) return;
  // Render each child subtree, then collapse runs of identical renderings
  // (8760 hourly slots become `plan.slot x8760`, not a 100 KB line).
  std::vector<std::string> rendered;
  rendered.reserve(it->second.size());
  for (const SpanRecord* child : it->second) {
    std::string s;
    CompactNode(forest, *child, &s);
    rendered.push_back(std::move(s));
  }
  *out += '{';
  for (size_t i = 0; i < rendered.size();) {
    size_t run = 1;
    while (i + run < rendered.size() && rendered[i + run] == rendered[i]) {
      ++run;
    }
    if (i > 0) *out += ',';
    *out += rendered[i];
    if (run > 1) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), " x%zu", run);
      *out += buf;
    }
    i += run;
  }
  *out += '}';
}

}  // namespace

std::string TraceEventJson(const std::vector<SpanRecord>& records) {
  std::vector<const SpanRecord*> sorted;
  sorted.reserve(records.size());
  for (const SpanRecord& r : records) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->wall_start_ns != b->wall_start_ns) {
                return a->wall_start_ns < b->wall_start_ns;
              }
              return a->span_id < b->span_id;
            });

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  // Lane labels first: one Chrome metadata event (ph "M") per writer
  // thread that registered a name, so Perfetto shows "drain"/"pool-3"
  // instead of bare numeric tids.
  std::map<int, std::string> lane_names;
  for (const SpanRecord& r : records) {
    if (!r.thread_name.empty()) lane_names[r.thread_index] = r.thread_name;
  }
  for (const auto& [tid, name] : lane_names) {
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(1);
    w.Key("tid").Int(tid);
    w.Key("args").BeginObject();
    w.Key("name").String(name);
    w.EndObject();
    w.EndObject();
  }
  for (const SpanRecord* r : sorted) {
    const bool instant = r->wall_end_ns == r->wall_start_ns;
    w.BeginObject();
    w.Key("name").String(r->name);
    w.Key("cat").String(r->category);
    w.Key("ph").String(instant ? "i" : "X");
    // Chrome trace timestamps are microseconds (fractional allowed).
    w.Key("ts").Double(static_cast<double>(r->wall_start_ns) / 1000.0);
    if (instant) {
      w.Key("s").String("t");  // thread-scoped instant marker
    } else {
      w.Key("dur").Double(
          static_cast<double>(r->wall_end_ns - r->wall_start_ns) / 1000.0);
    }
    w.Key("pid").Int(1);
    w.Key("tid").Int(r->thread_index);
    w.Key("args").BeginObject();
    w.Key("trace_id").String(HexId(r->trace_id));
    w.Key("span_id").String(HexId(r->span_id));
    if (r->parent_span_id != 0) {
      w.Key("parent_span_id").String(HexId(r->parent_span_id));
    }
    if (r->sim_start != 0 || r->sim_end != 0) {
      w.Key("sim_start").Int(r->sim_start);
      w.Key("sim_end").Int(r->sim_end);
    }
    if (r->arg_name != nullptr) w.Key(r->arg_name).Int(r->arg_value);
    if (r->arg2_name != nullptr) w.Key(r->arg2_name).Int(r->arg2_value);
    if (r->detail[0] != '\0') w.Key("detail").String(r->detail);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.str();
}

bool WriteTraceJson(const FlightRecorder& recorder, const std::string& path) {
  const std::string json = TraceEventJson(recorder.Snapshot());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out << json << '\n';
  return out.good();
}

std::string CanonicalTraceText(const std::vector<SpanRecord>& records) {
  const TraceForest forest = BuildForest(records);
  std::string out;
  for (const auto& [trace_id, roots] : forest.roots) {
    out += "trace ";
    out += HexId(trace_id);
    out += '\n';
    for (const SpanRecord* root : roots) {
      CanonicalNode(forest, *root, 1, &out);
    }
  }
  return out;
}

std::string CompactTraceLine(const std::vector<SpanRecord>& records,
                             uint64_t trace_id) {
  std::vector<SpanRecord> mine;
  for (const SpanRecord& r : records) {
    if (r.trace_id == trace_id) mine.push_back(r);
  }
  const TraceForest forest = BuildForest(mine);
  auto it = forest.roots.find(trace_id);
  if (it == forest.roots.end()) return "";
  std::string out;
  for (size_t i = 0; i < it->second.size(); ++i) {
    if (i > 0) out += ';';
    CompactNode(forest, *it->second[i], &out);
  }
  return out;
}

}  // namespace obs
}  // namespace imcf
