// Minimal streaming JSON emitter (no DOM, no dependencies).
//
// Backs the machine-readable exports: the registry's JSON exposition and
// the benches' BENCH_<name>.json run-reports. Comma placement is handled by
// a container-state stack, strings are escaped per RFC 8259, and doubles
// print with %.15g (clean for the repo's values, ~1e-15 relative loss).

#ifndef IMCF_OBS_JSON_WRITER_H_
#define IMCF_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace imcf {
namespace obs {

/// Append-only JSON builder. Call sequence must describe a well-formed
/// document (one top-level value); misuse shows up as malformed output,
/// which the exporter golden tests pin down.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the key of the next object member.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);  ///< NaN/Inf emit null
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices pre-rendered JSON (e.g. an already-exported registry) as one
  /// value. The caller guarantees `json` is valid.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

  /// RFC 8259 string escaping (without the surrounding quotes).
  static std::string Escape(std::string_view text);

 private:
  void BeforeValue();

  std::string out_;
  /// One frame per open container: true = array, false = object.
  std::vector<bool> is_array_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_JSON_WRITER_H_
