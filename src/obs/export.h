// Registry exposition formats.
//
// Two consumers, two formats:
//   * ToPrometheusText — Prometheus text exposition v0.0.4, for scraping or
//     eyeballing (`curl`/dump-to-stderr). Histograms expand to cumulative
//     `_bucket{le="..."}` samples plus `_sum` and `_count`.
//   * ToJson — one JSON object per metric, embedded verbatim into the
//     benches' BENCH_<name>.json run-reports.
//
// Both walk MetricRegistry::Snapshot(), which is ordered by
// (name, label-key), so output is deterministic — golden-testable.

#ifndef IMCF_OBS_EXPORT_H_
#define IMCF_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace imcf {
namespace obs {

/// Renders the registry in Prometheus text exposition format v0.0.4.
std::string ToPrometheusText(const MetricRegistry& registry);

/// Renders the registry as a JSON array of metric objects.
std::string ToJson(const MetricRegistry& registry);

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_EXPORT_H_
