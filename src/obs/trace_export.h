// Sinks for flight-recorder snapshots.
//
// Three renderings of the same std::vector<SpanRecord>:
//
//   * TraceEventJson — Chrome trace-event JSON, loadable in Perfetto
//     (https://ui.perfetto.dev) or chrome://tracing. Wall stamps become the
//     timeline; trace/span ids, sim-time stamps and details ride in args.
//   * CanonicalTraceText — the determinism witness: span trees with every
//     measurement (wall stamps, raw ids, thread indices) masked, children
//     in creation order. Two runs of the same workload produce identical
//     canonical text regardless of worker count.
//   * CompactTraceLine — a one-line span-tree collapse for the serving
//     layer's slow-request log: `root{child,leaf(detail)x3{...}}`.

#ifndef IMCF_OBS_TRACE_EXPORT_H_
#define IMCF_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace imcf {
namespace obs {

/// Renders spans as a Chrome trace-event JSON document:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}. Events are sorted by
/// (wall start, span id) so the output is stable for a fixed snapshot;
/// zero-duration spans become instant events (ph "i").
std::string TraceEventJson(const std::vector<SpanRecord>& records);

/// Snapshots `recorder` and writes TraceEventJson to `path`. Returns false
/// when the file cannot be written (obs is a dependency leaf, so no Status
/// here; callers log).
bool WriteTraceJson(const FlightRecorder& recorder, const std::string& path);

/// Renders spans as indented per-trace trees with all nondeterministic
/// fields masked: traces sorted by trace id, children in creation order,
/// printing name, category, sim stamps, args and detail only. Spans whose
/// parent is missing (overwritten in the ring) root their own subtree.
std::string CanonicalTraceText(const std::vector<SpanRecord>& records);

/// Renders one trace as a single line for the slow-request log:
/// `name{child,child}`, detail appended as `name(detail)`, runs of
/// identical consecutive sibling subtrees collapsed as `...xN`.
std::string CompactTraceLine(const std::vector<SpanRecord>& records,
                             uint64_t trace_id);

}  // namespace obs
}  // namespace imcf

#endif  // IMCF_OBS_TRACE_EXPORT_H_
