#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace imcf {
namespace obs {

std::string JsonWriter::Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  is_array_.push_back(false);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  is_array_.pop_back();
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  is_array_.push_back(true);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  is_array_.pop_back();
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace obs
}  // namespace imcf
