#include "obs/flight_recorder.h"

#include <cstdlib>
#include <cstring>

namespace imcf {
namespace obs {

namespace {

constexpr size_t kDefaultCapacity = 8192;
constexpr size_t kMinCapacity = 64;
constexpr size_t kMaxCapacity = size_t{1} << 20;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

size_t ClampCapacity(size_t requested) {
  if (requested == 0) requested = kDefaultCapacity;
  if (requested < kMinCapacity) requested = kMinCapacity;
  if (requested > kMaxCapacity) requested = kMaxCapacity;
  return RoundUpPow2(requested);
}

size_t CapacityFromEnv() {
  const char* env = std::getenv("IMCF_TRACE_RING");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) {
      return ClampCapacity(static_cast<size_t>(parsed));
    }
  }
  return ClampCapacity(kDefaultCapacity);
}

std::atomic<uint64_t> g_next_instance_id{1};

/// The calling thread's registered name, inherited by rings it creates
/// later (in any recorder instance).
std::string& CurrentThreadNameSlot() {
  thread_local std::string name;
  return name;
}

}  // namespace

/// One ring slot. Every payload field is a relaxed atomic so seqlock
/// readers racing a writer read *stale or mixed* values, never undefined
/// ones; `seq` (odd while a write is in flight) lets readers detect and
/// retry/skip the mix. Plain stores would be UB under the data race.
struct FlightRecorder::Slot {
  std::atomic<uint64_t> seq{0};  ///< even: stable; odd: write in flight
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_span_id{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> category{nullptr};
  std::atomic<int64_t> wall_start_ns{0};
  std::atomic<int64_t> wall_end_ns{0};
  std::atomic<int64_t> sim_start{0};
  std::atomic<int64_t> sim_end{0};
  std::atomic<const char*> arg_name{nullptr};
  std::atomic<int64_t> arg_value{0};
  std::atomic<const char*> arg2_name{nullptr};
  std::atomic<int64_t> arg2_value{0};
  std::atomic<uint64_t> detail[kSpanDetailBytes / 8];
};

struct FlightRecorder::Ring {
  explicit Ring(size_t capacity, int index)
      : slots(new Slot[capacity]), mask(capacity - 1), thread_index(index) {}

  std::unique_ptr<Slot[]> slots;
  const size_t mask;
  const int thread_index;
  std::string name;  ///< writer's registered name; guarded by recorder mu_
  std::atomic<uint64_t> head{0};  ///< next write position (monotonic)
};

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* const recorder =
      new FlightRecorder(CapacityFromEnv());
  return *recorder;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(ClampCapacity(capacity)) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  // Per-thread cache of (recorder instance id -> ring). Instance ids are
  // never reused, so a cached entry for a destroyed recorder simply never
  // matches again; the vector stays tiny (one entry per recorder this
  // thread has written to).
  struct CacheEntry {
    uint64_t instance_id;
    Ring* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.instance_id == instance_id_) return entry.ring;
  }
  Ring* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<int>(rings_.size())));
    ring = rings_.back().get();
    ring->name = CurrentThreadNameSlot();
  }
  cache.push_back(CacheEntry{instance_id_, ring});
  return ring;
}

void FlightRecorder::SetCurrentThreadName(const std::string& name) {
  CurrentThreadNameSlot() = name;
  Ring* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(mu_);
  ring->name = name;
}

std::vector<std::string> FlightRecorder::thread_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(rings_.size());
  // Rings are appended in thread_index order, so position == index.
  for (const auto& ring : rings_) names.push_back(ring->name);
  return names;
}

void FlightRecorder::Record(const SpanRecord& record) {
  Ring* ring = RingForThisThread();
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[h & ring->mask];

  const uint64_t seq0 = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq0 + 1, std::memory_order_release);  // mark in-flight

  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.span_id.store(record.span_id, std::memory_order_relaxed);
  slot.parent_span_id.store(record.parent_span_id,
                            std::memory_order_relaxed);
  slot.name.store(record.name, std::memory_order_relaxed);
  slot.category.store(record.category, std::memory_order_relaxed);
  slot.wall_start_ns.store(record.wall_start_ns, std::memory_order_relaxed);
  slot.wall_end_ns.store(record.wall_end_ns, std::memory_order_relaxed);
  slot.sim_start.store(record.sim_start, std::memory_order_relaxed);
  slot.sim_end.store(record.sim_end, std::memory_order_relaxed);
  slot.arg_name.store(record.arg_name, std::memory_order_relaxed);
  slot.arg_value.store(record.arg_value, std::memory_order_relaxed);
  slot.arg2_name.store(record.arg2_name, std::memory_order_relaxed);
  slot.arg2_value.store(record.arg2_value, std::memory_order_relaxed);
  uint64_t packed[kSpanDetailBytes / 8];
  std::memcpy(packed, record.detail, kSpanDetailBytes);
  for (size_t i = 0; i < kSpanDetailBytes / 8; ++i) {
    slot.detail[i].store(packed[i], std::memory_order_relaxed);
  }

  slot.seq.store(seq0 + 2, std::memory_order_release);  // stable again
  ring->head.store(h + 1, std::memory_order_release);
}

std::vector<SpanRecord> FlightRecorder::Snapshot() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(head, ring->mask + 1);
    out.reserve(out.size() + n);
    for (uint64_t i = head - n; i < head; ++i) {
      const Slot& slot = ring->slots[i & ring->mask];
      SpanRecord record;
      bool stable = false;
      for (int attempt = 0; attempt < 4 && !stable; ++attempt) {
        const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 & 1) continue;  // write in flight
        record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
        record.span_id = slot.span_id.load(std::memory_order_relaxed);
        record.parent_span_id =
            slot.parent_span_id.load(std::memory_order_relaxed);
        record.name = slot.name.load(std::memory_order_relaxed);
        record.category = slot.category.load(std::memory_order_relaxed);
        record.wall_start_ns =
            slot.wall_start_ns.load(std::memory_order_relaxed);
        record.wall_end_ns = slot.wall_end_ns.load(std::memory_order_relaxed);
        record.sim_start = slot.sim_start.load(std::memory_order_relaxed);
        record.sim_end = slot.sim_end.load(std::memory_order_relaxed);
        record.arg_name = slot.arg_name.load(std::memory_order_relaxed);
        record.arg_value = slot.arg_value.load(std::memory_order_relaxed);
        record.arg2_name = slot.arg2_name.load(std::memory_order_relaxed);
        record.arg2_value = slot.arg2_value.load(std::memory_order_relaxed);
        uint64_t packed[kSpanDetailBytes / 8];
        for (size_t d = 0; d < kSpanDetailBytes / 8; ++d) {
          packed[d] = slot.detail[d].load(std::memory_order_relaxed);
        }
        std::memcpy(record.detail, packed, kSpanDetailBytes);
        const uint64_t s2 = slot.seq.load(std::memory_order_acquire);
        stable = (s1 == s2);
      }
      if (!stable || record.name == nullptr) continue;
      record.detail[kSpanDetailBytes - 1] = '\0';
      record.thread_index = ring->thread_index;
      record.thread_name = ring->name;
      out.push_back(record);
    }
  }
  return out;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) {
    ring->head.store(0, std::memory_order_release);
    for (size_t i = 0; i <= ring->mask; ++i) {
      ring->slots[i].name.store(nullptr, std::memory_order_relaxed);
    }
  }
}

int64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& ring : rings_) {
    total += static_cast<int64_t>(ring->head.load(std::memory_order_acquire));
  }
  return total;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

}  // namespace obs
}  // namespace imcf
