#include "fault/fault_plan.h"

#include "common/rng.h"

namespace imcf {
namespace fault {

namespace {

/// Uniform double in [0, 1) from a hash value (same bit recipe the weather
/// model uses).
double ToUniform(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Domain separators so the stuck-window stream is independent of the
/// per-second stream.
constexpr uint64_t kAttemptDomain = 0xFA17A77E;
constexpr uint64_t kStuckDomain = 0xFA1757CC;

int64_t WindowIndex(SimTime t, SimTime window) {
  if (window <= 0) window = kSecondsPerHour;
  // Floor division so negative times stay in contiguous windows.
  const int64_t q = t / window;
  return (t % window != 0 && t < 0) ? q - 1 : q;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kTransientError:
      return "transient-error";
    case FaultKind::kStuck:
      return "stuck";
  }
  return "?";
}

FaultOptions FaultOptions::UniformRate(double rate, uint64_t seed) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  FaultOptions options;
  options.enabled = true;
  options.seed = seed;
  FaultRates rates;
  rates.drop_prob = rate / 3.0;
  rates.delay_prob = rate / 3.0;
  rates.transient_error_prob = rate / 3.0;
  options.device = rates;
  options.device.stuck_prob = rate / 4.0;
  options.weather = rates;
  options.cmc = rates;
  return options;
}

uint64_t ChannelHash(std::string_view channel) {
  // FNV-1a, then one splitmix finalizer for avalanche.
  uint64_t h = 1469598103934665603ULL;
  for (const char c : channel) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return MixHash(h);
}

const FaultRates& FaultPlan::RatesFor(std::string_view channel) const {
  if (channel.substr(0, 7) == "device:") return options_.device;
  if (channel.substr(0, 4) == "cmc:") return options_.cmc;
  return options_.weather;
}

FaultDecision FaultPlan::At(std::string_view channel, SimTime t) const {
  FaultDecision decision;
  if (!options_.enabled) return decision;
  const FaultRates& rates = RatesFor(channel);
  if (rates.zero()) return decision;

  const uint64_t ch = ChannelHash(channel);

  // Stuck windows first: a stuck device swallows everything for the whole
  // window, which is what distinguishes it from a per-attempt fault.
  if (rates.stuck_prob > 0.0) {
    const int64_t window = WindowIndex(t, rates.stuck_window_seconds);
    const uint64_t hw = MixHash(MixHash(options_.seed ^ kStuckDomain, ch),
                                static_cast<uint64_t>(window));
    if (ToUniform(hw) < rates.stuck_prob) {
      decision.kind = FaultKind::kStuck;
      return decision;
    }
  }

  // Per-attempt faults: one uniform draw sliced into disjoint intervals.
  const uint64_t ha = MixHash(MixHash(options_.seed ^ kAttemptDomain, ch),
                              static_cast<uint64_t>(t));
  const double u = ToUniform(ha);
  double edge = rates.drop_prob;
  if (u < edge) {
    decision.kind = FaultKind::kDrop;
    return decision;
  }
  edge += rates.delay_prob;
  if (u < edge) {
    decision.kind = FaultKind::kDelay;
    decision.delay_seconds = rates.delay_seconds;
    return decision;
  }
  edge += rates.transient_error_prob;
  if (u < edge) {
    decision.kind = FaultKind::kTransientError;
    return decision;
  }
  return decision;
}

}  // namespace fault
}  // namespace imcf
