#include "fault/retry.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace imcf {
namespace fault {

SimTime RetryPolicy::BackoffSeconds(int attempt, uint64_t token) const {
  if (attempt < 1) attempt = 1;
  double backoff = static_cast<double>(initial_backoff_seconds) *
                   std::pow(backoff_multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(max_backoff_seconds));
  if (jitter_fraction > 0.0) {
    // Deterministic jitter: the stream is keyed on (token, attempt), never
    // on shared state, so replay is exact for any interleaving.
    Rng rng(MixHash(token, static_cast<uint64_t>(attempt)));
    backoff *= 1.0 + rng.UniformDouble() * jitter_fraction;
  }
  return static_cast<SimTime>(std::llround(backoff));
}

RetryTrace RunWithRetry(
    const RetryPolicy& policy, uint64_t token, SimTime start,
    const std::function<AttemptResult(SimTime when)>& attempt) {
  RetryTrace trace;
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int a = 1; a <= max_attempts; ++a) {
    if (a > 1) {
      const SimTime backoff = policy.BackoffSeconds(a - 1, token);
      if (trace.elapsed_seconds + backoff > policy.command_timeout_seconds) {
        trace.timed_out = true;
        break;
      }
      trace.elapsed_seconds += backoff;
    }
    ++trace.attempts;
    const AttemptResult result = attempt(start + trace.elapsed_seconds);
    trace.last_fault = result.fault;
    switch (result.fault) {
      case FaultKind::kNone:
      case FaultKind::kDelay:
        trace.elapsed_seconds += result.latency_seconds;
        trace.success = true;
        return trace;
      case FaultKind::kDrop:
      case FaultKind::kStuck:
        // Nothing comes back; the sender detects the loss by timeout.
        trace.elapsed_seconds += policy.attempt_timeout_seconds;
        break;
      case FaultKind::kTransientError:
        // An explicit error response is immediate.
        break;
    }
    if (trace.elapsed_seconds >= policy.command_timeout_seconds) {
      trace.timed_out = true;
      break;
    }
  }
  return trace;
}

}  // namespace fault
}  // namespace imcf
