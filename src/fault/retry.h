// Bounded retries with exponential backoff over virtual time.
//
// Every retry decision is deterministic: the backoff jitter for attempt k of
// an operation identified by `token` comes from Rng(MixHash(token, k)), and
// all waiting elapses *virtual* seconds (the VirtualScheduler's clock), not
// wall time. The same (policy, token, fault schedule) therefore produces the
// identical retry trace on every run and every thread count.

#ifndef IMCF_FAULT_RETRY_H_
#define IMCF_FAULT_RETRY_H_

#include <functional>

#include "common/time.h"
#include "fault/fault_plan.h"

namespace imcf {
namespace fault {

/// Retry configuration for one class of operations.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 3;
  /// Backoff before the first retry, in virtual seconds.
  SimTime initial_backoff_seconds = 2;
  /// Backoff growth per retry (exponential).
  double backoff_multiplier = 2.0;
  /// Backoff ceiling, in virtual seconds.
  SimTime max_backoff_seconds = 60;
  /// Deterministic jitter: the backoff is scaled by a factor drawn
  /// uniformly from [1, 1 + jitter_fraction).
  double jitter_fraction = 0.25;
  /// A lost (dropped/stuck) attempt is declared dead after this many
  /// virtual seconds.
  SimTime attempt_timeout_seconds = 10;
  /// Total virtual-time budget for the whole operation; once elapsed time
  /// would exceed it, no further attempt is made.
  SimTime command_timeout_seconds = 300;

  /// Jittered backoff before retry number `attempt` (1 = the backoff after
  /// the first failed attempt). Deterministic in (policy, token, attempt).
  SimTime BackoffSeconds(int attempt, uint64_t token) const;
};

/// Outcome of a single delivery attempt, reported by the attempt callback.
struct AttemptResult {
  FaultKind fault = FaultKind::kNone;  ///< kNone / kDelay mean success
  SimTime latency_seconds = 0;         ///< completion latency of the attempt
};

/// Trace of one retried operation.
struct RetryTrace {
  bool success = false;
  int attempts = 0;                 ///< attempts actually made (>= 1)
  SimTime elapsed_seconds = 0;      ///< virtual time spent, incl. backoff
  FaultKind last_fault = FaultKind::kNone;
  bool timed_out = false;           ///< stopped by command_timeout_seconds
};

/// Runs `attempt` under `policy`. The callback receives the virtual send
/// time of each attempt (start + accumulated timeouts/backoff) and reports
/// what the channel did; kNone and kDelay count as success, kDrop and
/// kStuck burn the attempt timeout, kTransientError fails fast. `token`
/// seeds the jitter stream.
RetryTrace RunWithRetry(
    const RetryPolicy& policy, uint64_t token, SimTime start,
    const std::function<AttemptResult(SimTime when)>& attempt);

}  // namespace fault
}  // namespace imcf

#endif  // IMCF_FAULT_RETRY_H_
