#include "fault/command_bus.h"

#include <string>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace imcf {
namespace fault {

CommandBus::CommandBus(const FaultPlan* plan, RetryPolicy policy,
                       const devices::DeviceRegistry* registry)
    : plan_(plan), policy_(policy), registry_(registry) {}

CommandBus::~CommandBus() {
  // One flush per bus lifetime; kind labels are a closed 5-value set.
  using obs::Counter;
  auto& reg = obs::MetricRegistry::Default();
  static Counter* const deliveries = reg.GetCounter(
      "imcf_fault_deliveries_total", "Command deliveries attempted");
  static Counter* const delivered = reg.GetCounter(
      "imcf_fault_delivered_total", "Commands eventually delivered");
  static Counter* const after_retry = reg.GetCounter(
      "imcf_fault_delivered_after_retry_total",
      "Commands delivered only after at least one retry");
  static Counter* const undeliverable = reg.GetCounter(
      "imcf_fault_undeliverable_total",
      "Commands that exhausted retries or timed out");
  static Counter* const retries = reg.GetCounter(
      "imcf_fault_retries_total", "Delivery attempts beyond the first");
  deliveries->Increment(stats_.deliveries);
  delivered->Increment(stats_.delivered);
  after_retry->Increment(stats_.delivered_after_retry);
  undeliverable->Increment(stats_.undeliverable);
  retries->Increment(stats_.retries);
  for (size_t i = 1; i < kNumFaultKinds; ++i) {
    reg.GetCounter("imcf_fault_injected_total",
                   "Injected faults observed by the command bus",
                   {{"kind", FaultKindName(static_cast<FaultKind>(i))}})
        ->Increment(stats_.faults[i]);
  }
}

Delivery CommandBus::Deliver(const devices::ActuationCommand& cmd) {
  ++stats_.deliveries;
  Delivery delivery;
  if (plan_ == nullptr || !plan_->enabled()) {
    delivery.delivered = true;
    delivery.attempts = 1;
    ++stats_.delivered;
    ++stats_.attempts;
    return delivery;
  }

  std::string channel = "device:";
  if (registry_ != nullptr) {
    auto thing = registry_->Get(cmd.device);
    if (thing.ok()) channel += (*thing)->name;
  }
  if (channel.size() == 7) channel += '#' + std::to_string(cmd.device);

  const uint64_t token =
      MixHash(ChannelHash(channel), static_cast<uint64_t>(cmd.time));
  const RetryTrace trace = RunWithRetry(
      policy_, token, cmd.time, [this, &channel](SimTime when) {
        const FaultDecision decision = plan_->At(channel, when);
        if (decision.faulted()) {
          ++stats_.faults[static_cast<size_t>(decision.kind)];
        }
        AttemptResult result;
        result.fault = decision.kind;
        if (decision.kind == FaultKind::kDelay) {
          if (decision.delay_seconds > policy_.attempt_timeout_seconds) {
            // So late the sender already gave up on the attempt.
            result.fault = FaultKind::kDrop;
          } else {
            result.latency_seconds = decision.delay_seconds;
          }
        }
        return result;
      });

  delivery.delivered = trace.success;
  delivery.attempts = trace.attempts;
  delivery.latency_seconds = trace.elapsed_seconds;
  delivery.last_fault = trace.last_fault;
  // Clean first-attempt deliveries stay span-free; only retries and
  // failures leave events (the channel names the device, the attempt count
  // the retry depth). Fault decisions are (seed, channel, time)-pure, so
  // these events are deterministic.
  if (!trace.success) {
    IMCF_TRACE_EVENT("bus.undeliverable", "fault", channel, "attempts",
                     trace.attempts);
  } else if (trace.attempts > 1) {
    IMCF_TRACE_EVENT("bus.retry_delivered", "fault", channel, "attempts",
                     trace.attempts);
  }
  stats_.attempts += trace.attempts;
  stats_.retries += trace.attempts > 0 ? trace.attempts - 1 : 0;
  if (trace.success) {
    ++stats_.delivered;
    if (trace.attempts > 1) ++stats_.delivered_after_retry;
  } else {
    ++stats_.undeliverable;
  }
  return delivery;
}

}  // namespace fault
}  // namespace imcf
