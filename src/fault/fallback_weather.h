// Graceful degradation of the weather service.
//
// The prototype "uses data from the open weather API" — a link that goes
// down in practice. FallbackWeather wraps any WeatherService with the
// FaultPlan's "weather" channel: when the service is out at hour H, it
// serves the last-known sample (the newest earlier hour the plan reports
// healthy, within a bounded lookback), so the planner keeps planning from
// slightly stale conditions instead of failing.
//
// The fallback is *stateless*: instead of caching the last response (which
// would make At() depend on call order and break deterministic replay), it
// re-derives the last healthy hour from the plan itself — a pure function
// of t, identical across runs and threads.

#ifndef IMCF_FAULT_FALLBACK_WEATHER_H_
#define IMCF_FAULT_FALLBACK_WEATHER_H_

#include <atomic>
#include <cstdint>

#include "fault/fault_plan.h"
#include "weather/weather.h"

namespace imcf {
namespace fault {

/// Weather proxy with outage fallback.
class FallbackWeather : public weather::WeatherService {
 public:
  /// `inner` and `plan` are borrowed and must outlive the proxy.
  FallbackWeather(const weather::WeatherService* inner, const FaultPlan* plan);

  /// Flushes outage/fallback tallies to the obs registry.
  ~FallbackWeather() override;

  /// Weather at `t`; on outage, the last-known healthy sample within
  /// `kMaxLookbackHours`. Deterministic in t.
  weather::WeatherSample At(SimTime t) const override;

  /// Outage decisions observed (requests that hit a faulted hour).
  int64_t outages() const { return outages_.load(std::memory_order_relaxed); }
  /// Requests served from an earlier healthy hour.
  int64_t fallbacks() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }

  /// How far back an outage may reach for a healthy sample.
  static constexpr int kMaxLookbackHours = 48;

 private:
  const weather::WeatherService* inner_;  // not owned
  const FaultPlan* plan_;                 // not owned, may be null
  mutable std::atomic<int64_t> outages_{0};
  mutable std::atomic<int64_t> fallbacks_{0};
};

}  // namespace fault
}  // namespace imcf

#endif  // IMCF_FAULT_FALLBACK_WEATHER_H_
