#include "fault/fallback_weather.h"

#include "obs/metrics.h"

namespace imcf {
namespace fault {

namespace {

constexpr std::string_view kWeatherChannel = "weather";

SimTime AlignToHour(SimTime t) {
  const SimTime rem = ((t % kSecondsPerHour) + kSecondsPerHour) %
                      kSecondsPerHour;
  return t - rem;
}

}  // namespace

FallbackWeather::FallbackWeather(const weather::WeatherService* inner,
                                 const FaultPlan* plan)
    : inner_(inner), plan_(plan) {}

FallbackWeather::~FallbackWeather() {
  auto& reg = obs::MetricRegistry::Default();
  static obs::Counter* const outages = reg.GetCounter(
      "imcf_fault_weather_outages_total",
      "Weather requests that hit an injected outage");
  static obs::Counter* const fallbacks = reg.GetCounter(
      "imcf_fault_weather_fallbacks_total",
      "Weather requests served from the last-known healthy sample");
  outages->Increment(outages_.load(std::memory_order_relaxed));
  fallbacks->Increment(fallbacks_.load(std::memory_order_relaxed));
}

weather::WeatherSample FallbackWeather::At(SimTime t) const {
  if (plan_ == nullptr || !plan_->enabled()) return inner_->At(t);
  const SimTime hour = AlignToHour(t);
  if (!plan_->At(kWeatherChannel, hour).faulted()) return inner_->At(t);

  outages_.fetch_add(1, std::memory_order_relaxed);
  for (int back = 1; back <= kMaxLookbackHours; ++back) {
    const SimTime earlier =
        hour - static_cast<SimTime>(back) * kSecondsPerHour;
    if (!plan_->At(kWeatherChannel, earlier).faulted()) {
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return inner_->At(earlier);
    }
  }
  // Outage longer than the lookback: degrade to the synthetic model
  // directly rather than fail (it is the last line of defence).
  return inner_->At(t);
}

}  // namespace fault
}  // namespace imcf
