// The command bus: fault-aware delivery of accepted actuation commands.
//
// In the paper's prototype the Local Controller actuates Things over the
// LAN; a command that passes the firewall can still fail in transit. The
// CommandBus models that last hop: each delivery consults the FaultPlan on
// the device's channel and, on failure, retries under the RetryPolicy with
// deterministic backoff. Callers treat an undeliverable command exactly like
// a dropped one for energy/convenience accounting — the device never moved,
// so nothing may be charged (the consistency invariant of DESIGN.md §9).
//
// Stats are tallied locally (the bus is a per-run object, like the
// firewall) and flushed to the obs registry once at destruction.

#ifndef IMCF_FAULT_COMMAND_BUS_H_
#define IMCF_FAULT_COMMAND_BUS_H_

#include <cstdint>

#include "devices/device.h"
#include "fault/fault_plan.h"
#include "fault/retry.h"

namespace imcf {
namespace fault {

/// Aggregate delivery counters for one bus lifetime.
struct BusStats {
  int64_t deliveries = 0;            ///< Deliver() calls
  int64_t delivered = 0;             ///< eventually succeeded
  int64_t delivered_after_retry = 0; ///< succeeded with attempts > 1
  int64_t undeliverable = 0;         ///< exhausted retries / timed out
  int64_t attempts = 0;              ///< total attempts across deliveries
  int64_t retries = 0;               ///< attempts beyond the first
  /// Injected faults observed, indexed by FaultKind.
  int64_t faults[kNumFaultKinds] = {};
};

/// Outcome of one delivery.
struct Delivery {
  bool delivered = false;
  int attempts = 0;
  SimTime latency_seconds = 0;  ///< virtual time from issue to completion
  FaultKind last_fault = FaultKind::kNone;
};

/// Fault-aware delivery of accepted commands to devices.
class CommandBus {
 public:
  /// `plan` and `registry` are borrowed and must outlive the bus. A null or
  /// disabled plan delivers everything instantly on the first attempt.
  CommandBus(const FaultPlan* plan, RetryPolicy policy,
             const devices::DeviceRegistry* registry);

  /// Flushes BusStats to the default metric registry (imcf_fault_*).
  ~CommandBus();

  CommandBus(const CommandBus&) = delete;
  CommandBus& operator=(const CommandBus&) = delete;

  /// Attempts delivery of `cmd` at virtual time `cmd.time`. Deterministic
  /// in (plan seed, device channel, cmd.time).
  Delivery Deliver(const devices::ActuationCommand& cmd);

  const BusStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  const FaultPlan* plan_;                    // not owned, may be null
  RetryPolicy policy_;
  const devices::DeviceRegistry* registry_;  // not owned, may be null
  BusStats stats_;
};

}  // namespace fault
}  // namespace imcf

#endif  // IMCF_FAULT_COMMAND_BUS_H_
