// Deterministic fault injection for the command path.
//
// The paper's prototype (§IV) drives real openHAB devices over the LAN and a
// live weather API — exactly the links that fail in deployment. This module
// injects those failures *deterministically*: a FaultPlan is a pure function
// of (seed, channel, SimTime) deciding whether a given interaction is
// dropped, delayed, errors transiently, or hits a stuck device. Because the
// decision never consults mutable state, the same (seed, plan) replays the
// identical fault schedule for any call order and any thread count — the
// property the parallel simulation engine (DESIGN.md §7) is built on.
//
// Channels name the wrapped links:
//   "device:<thing-name>"  — command-bus delivery to one device
//   "weather"              — the weather service
//   "cmc:<household>"      — CMC probe simulations against one household
//
// Fault kinds (per attempt at one (channel, t) key):
//   kDrop           — the message vanishes; the sender times out.
//   kDelay          — delivered late by `delay_seconds`.
//   kTransientError — an immediate error response; retrying may succeed.
//   kStuck          — the device is unresponsive for a whole stuck window
//                     (hashed per window, not per second, so retries inside
//                     the window keep failing).

#ifndef IMCF_FAULT_FAULT_PLAN_H_
#define IMCF_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string_view>

#include "common/time.h"

namespace imcf {
namespace fault {

/// What happened to one interaction attempt.
enum class FaultKind : uint8_t {
  kNone = 0,
  kDrop = 1,
  kDelay = 2,
  kTransientError = 3,
  kStuck = 4,
};

/// Number of FaultKind values (for per-kind tallies).
inline constexpr size_t kNumFaultKinds = 5;

const char* FaultKindName(FaultKind kind);

/// Per-channel-class fault rates. Probabilities are per attempt (drop,
/// delay, transient) or per stuck window (stuck); they are disjoint slices
/// of one uniform draw, so their sum must stay <= 1.
struct FaultRates {
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  SimTime delay_seconds = 5;
  double transient_error_prob = 0.0;
  /// Probability that a whole stuck window is stuck.
  double stuck_prob = 0.0;
  /// Width of one stuck window in seconds.
  SimTime stuck_window_seconds = kSecondsPerHour;

  /// True iff every probability is zero.
  bool zero() const {
    return drop_prob <= 0.0 && delay_prob <= 0.0 &&
           transient_error_prob <= 0.0 && stuck_prob <= 0.0;
  }
};

/// The full plan configuration. Disabled by default so every existing code
/// path is bit-identical until a caller opts in.
struct FaultOptions {
  bool enabled = false;
  uint64_t seed = 7;
  FaultRates device;   ///< command-bus channels ("device:*")
  FaultRates weather;  ///< the weather service ("weather")
  FaultRates cmc;      ///< CMC probe channels ("cmc:*")

  /// Convenience constructor for sweeps: `rate` split evenly across drop /
  /// delay / transient on every channel class, plus rate/4 stuck windows on
  /// devices. rate in [0, 1].
  static FaultOptions UniformRate(double rate, uint64_t seed = 7);
};

/// One fault decision.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  SimTime delay_seconds = 0;  ///< set iff kind == kDelay

  bool faulted() const { return kind != FaultKind::kNone; }
};

/// The seedable, deterministic fault schedule.
class FaultPlan {
 public:
  /// Default-constructed plans are disabled (never fault).
  FaultPlan() = default;
  explicit FaultPlan(FaultOptions options) : options_(options) {}

  bool enabled() const { return options_.enabled; }
  const FaultOptions& options() const { return options_; }

  /// The fault decision for one interaction attempt on `channel` at `t`.
  /// Pure function of (options.seed, channel, t): identical across calls,
  /// instances, and threads.
  FaultDecision At(std::string_view channel, SimTime t) const;

 private:
  const FaultRates& RatesFor(std::string_view channel) const;

  FaultOptions options_{};
};

/// Stable 64-bit hash of a channel name (exposed so retry tokens can be
/// derived from the same key space).
uint64_t ChannelHash(std::string_view channel);

}  // namespace fault
}  // namespace imcf

#endif  // IMCF_FAULT_FAULT_PLAN_H_
