#include "firewall/chain.h"

#include "common/strings.h"

namespace imcf {
namespace firewall {

const char* VerdictName(Verdict verdict) {
  return verdict == Verdict::kAccept ? "ACCEPT" : "DROP";
}

bool ChainRule::Matches(const devices::ActuationCommand& cmd,
                        const devices::Thing* thing) const {
  if (address.has_value()) {
    if (thing == nullptr || thing->address != *address) return false;
  }
  if (device.has_value() && cmd.device != *device) return false;
  if (command.has_value() && cmd.type != *command) return false;
  if (source.has_value() && cmd.source != *source) return false;
  return true;
}

std::string ChainRule::ToString() const {
  std::string out;
  if (address) out += " -s " + *address;
  if (device) out += StrFormat(" --device %u", *device);
  if (command) out += StrFormat(" --cmd '%s'", devices::CommandTypeName(*command));
  if (source) out += " --source " + *source;
  out += StrFormat(" -j %s", VerdictName(target));
  return Trim(out);
}

void Chain::Append(ChainRule rule) { rules_.push_back(std::move(rule)); }

void Chain::Insert(ChainRule rule) {
  rules_.insert(rules_.begin(), std::move(rule));
}

Verdict Chain::Filter(const devices::ActuationCommand& cmd,
                      const devices::Thing* thing) const {
  for (const ChainRule& rule : rules_) {
    if (rule.Matches(cmd, thing)) return rule.target;
  }
  return default_policy_;
}

}  // namespace firewall
}  // namespace imcf
