// The Meta-Control Firewall: where the Energy Planner's decisions become
// enforced command filtering.
//
// Every actuation command (from meta-rules, IFTTT recipes or manual app
// interactions) passes through here before reaching a device. Verdicts come
// from two layers, evaluated in order:
//
//   1. the static admin chain (address/device/type rules — the in-process
//      analogue of the prototype's iptables configuration), then
//   2. the dynamic *plan filter*: the adoption vector the EP produced for
//      the current slot. Commands issued by a meta-rule the planner dropped
//      (s_i = 0) are DROPped; necessity rules and manual commands bypass
//      this layer.
//
// When a fault::CommandBus is attached, accepted commands additionally go
// through fault-aware delivery: a command whose device stays unreachable
// after bounded retries is reported as kDeviceUnavailable (verdict kDrop),
// so callers never account energy for an actuation that did not happen.
//
// Decisions are recorded in a bounded audit log so examples and tests can
// observe exactly which RAW pipelines the firewall filtered — the paper's
// headline metaphor.

#ifndef IMCF_FIREWALL_IMCF_FIREWALL_H_
#define IMCF_FIREWALL_IMCF_FIREWALL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "fault/command_bus.h"
#include "firewall/chain.h"

namespace imcf {
namespace firewall {

/// Why a command was accepted or dropped.
enum class DecisionReason : uint8_t {
  kDefaultPolicy = 0,      ///< no rule matched; chain default applied
  kChainRule = 1,          ///< a static chain rule matched
  kPlanDropped = 2,        ///< the EP dropped the originating meta-rule
  kPlanAdopted = 3,        ///< the EP adopted the originating meta-rule
  kBypass = 4,             ///< manual/necessity command, plan layer bypassed
  kDeviceUnavailable = 5,  ///< accepted but undeliverable after retries
};

const char* DecisionReasonName(DecisionReason reason);

/// One audited decision.
struct Decision {
  Verdict verdict = Verdict::kAccept;
  DecisionReason reason = DecisionReason::kDefaultPolicy;
  devices::ActuationCommand command;
};

/// Number of DecisionReason values (for per-reason tallies).
inline constexpr size_t kNumDecisionReasons = 6;

/// Aggregate counters.
struct FirewallStats {
  int64_t total = 0;
  int64_t accepted = 0;
  int64_t dropped_by_chain = 0;
  int64_t dropped_by_plan = 0;
  int64_t device_unavailable = 0;
  /// Decisions per DecisionReason, indexed by the enum's value.
  int64_t by_reason[kNumDecisionReasons] = {};
};

/// The firewall itself.
class MetaControlFirewall {
 public:
  /// `registry` resolves device addresses for chain matching; may outlive
  /// calls but is not owned. `audit_capacity` bounds the decision log.
  explicit MetaControlFirewall(const devices::DeviceRegistry* registry,
                               size_t audit_capacity = 1024);

  /// Flushes accumulated FirewallStats to the default metric registry
  /// (imcf_firewall_* counters, decisions labelled by reason).
  ~MetaControlFirewall();

  /// The static admin chain (mutable: append iptables-style rules).
  Chain* chain() { return &chain_; }
  const Chain& chain() const { return chain_; }

  /// Installs the planner's verdicts for the current slot: meta-rule ids
  /// whose commands must be dropped. Replaces the previous slot's set.
  void SetDroppedRules(std::vector<int> dropped_rule_ids);

  /// Attaches fault-aware delivery: accepted commands are handed to `bus`
  /// (borrowed; may be null to detach) and undeliverable ones come back as
  /// kDeviceUnavailable. Without a bus, acceptance implies actuation.
  void set_command_bus(fault::CommandBus* bus) { bus_ = bus; }

  /// Filters one command (and, with a command bus attached, delivers it),
  /// recording the decision.
  Decision Filter(const devices::ActuationCommand& cmd);

  const FirewallStats& stats() const { return stats_; }
  const std::deque<Decision>& audit_log() const { return audit_; }
  void ClearAudit() { audit_.clear(); }

 private:
  void Record(Decision decision);

  const devices::DeviceRegistry* registry_;  // not owned
  fault::CommandBus* bus_ = nullptr;         // not owned, may be null
  Chain chain_;
  std::unordered_set<int> dropped_rules_;
  FirewallStats stats_;
  std::deque<Decision> audit_;
  size_t audit_capacity_;
};

}  // namespace firewall
}  // namespace imcf

#endif  // IMCF_FIREWALL_IMCF_FIREWALL_H_
