#include "firewall/imcf_firewall.h"

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace imcf {
namespace firewall {

const char* DecisionReasonName(DecisionReason reason) {
  switch (reason) {
    case DecisionReason::kDefaultPolicy:
      return "default-policy";
    case DecisionReason::kChainRule:
      return "chain-rule";
    case DecisionReason::kPlanDropped:
      return "plan-dropped";
    case DecisionReason::kPlanAdopted:
      return "plan-adopted";
    case DecisionReason::kBypass:
      return "bypass";
    case DecisionReason::kDeviceUnavailable:
      return "device-unavailable";
  }
  return "?";
}

MetaControlFirewall::MetaControlFirewall(
    const devices::DeviceRegistry* registry, size_t audit_capacity)
    : registry_(registry),
      chain_("OUTPUT", Verdict::kAccept),
      audit_capacity_(audit_capacity) {}

MetaControlFirewall::~MetaControlFirewall() {
  // Firewalls are per-study objects; one flush at teardown exports the
  // whole lifetime. The reason label is a closed 5-value set, so the
  // cardinality stays bounded.
  using obs::Counter;
  auto& reg = obs::MetricRegistry::Default();
  static Counter* const commands = reg.GetCounter(
      "imcf_firewall_commands_total", "Actuation commands filtered");
  static Counter* const accepted = reg.GetCounter(
      "imcf_firewall_accepted_total", "Commands accepted");
  static Counter* const dropped_chain = reg.GetCounter(
      "imcf_firewall_dropped_by_chain_total",
      "Commands dropped by the static chain");
  static Counter* const dropped_plan = reg.GetCounter(
      "imcf_firewall_dropped_by_plan_total",
      "Commands dropped by the EP plan filter");
  static Counter* const unavailable = reg.GetCounter(
      "imcf_firewall_device_unavailable_total",
      "Accepted commands that failed fault-aware delivery");
  commands->Increment(stats_.total);
  accepted->Increment(stats_.accepted);
  dropped_chain->Increment(stats_.dropped_by_chain);
  dropped_plan->Increment(stats_.dropped_by_plan);
  unavailable->Increment(stats_.device_unavailable);
  for (size_t i = 0; i < kNumDecisionReasons; ++i) {
    // Labelled family: one instance per DecisionReason. Not cached in a
    // static (the pointer differs per label), but this runs once per
    // firewall lifetime, not per command.
    reg.GetCounter("imcf_firewall_decisions_total",
                   "Filter decisions by reason",
                   {{"reason",
                     DecisionReasonName(static_cast<DecisionReason>(i))}})
        ->Increment(stats_.by_reason[i]);
  }
}

void MetaControlFirewall::SetDroppedRules(std::vector<int> dropped_rule_ids) {
  dropped_rules_.clear();
  dropped_rules_.insert(dropped_rule_ids.begin(), dropped_rule_ids.end());
}

Decision MetaControlFirewall::Filter(const devices::ActuationCommand& cmd) {
  Decision decision;
  decision.command = cmd;

  // Layer 1: the static chain.
  const devices::Thing* thing = nullptr;
  if (registry_ != nullptr) {
    auto lookup = registry_->Get(cmd.device);
    if (lookup.ok()) thing = lookup.value();
  }
  bool matched_chain = false;
  for (const ChainRule& rule : chain_.rules()) {
    if (rule.Matches(cmd, thing)) {
      decision.verdict = rule.target;
      decision.reason = DecisionReason::kChainRule;
      matched_chain = true;
      break;
    }
  }
  if (matched_chain && decision.verdict == Verdict::kDrop) {
    Record(decision);
    return decision;
  }

  // Layer 2: the plan filter (meta-rule commands only).
  if (cmd.rule_id >= 0) {
    if (dropped_rules_.count(cmd.rule_id) > 0) {
      decision.verdict = Verdict::kDrop;
      decision.reason = DecisionReason::kPlanDropped;
    } else {
      decision.verdict = Verdict::kAccept;
      decision.reason = DecisionReason::kPlanAdopted;
    }
  } else if (!matched_chain) {
    decision.verdict = chain_.default_policy();
    decision.reason = DecisionReason::kBypass;
  }

  // Layer 3 (optional): fault-aware delivery. An accepted command only
  // counts as accepted if the bus actually delivered it.
  if (bus_ != nullptr && decision.verdict == Verdict::kAccept) {
    const fault::Delivery delivery = bus_->Deliver(cmd);
    if (!delivery.delivered) {
      decision.verdict = Verdict::kDrop;
      decision.reason = DecisionReason::kDeviceUnavailable;
    }
  }

  Record(decision);
  return decision;
}

void MetaControlFirewall::Record(Decision decision) {
  // Drops only: accepted commands are the common case and stay span-free;
  // each drop leaves one event naming the deciding layer (the reason) and
  // the rule, nested under the slot/request span that issued the command.
  if (decision.verdict == Verdict::kDrop) {
    IMCF_TRACE_EVENT("fw.drop", "firewall",
                     DecisionReasonName(decision.reason), "rule",
                     decision.command.rule_id);
  }
  ++stats_.total;
  ++stats_.by_reason[static_cast<size_t>(decision.reason)];
  if (decision.verdict == Verdict::kAccept) {
    ++stats_.accepted;
  } else if (decision.reason == DecisionReason::kPlanDropped) {
    ++stats_.dropped_by_plan;
  } else if (decision.reason == DecisionReason::kDeviceUnavailable) {
    ++stats_.device_unavailable;
  } else {
    ++stats_.dropped_by_chain;
  }
  audit_.push_back(std::move(decision));
  while (audit_.size() > audit_capacity_) audit_.pop_front();
}

}  // namespace firewall
}  // namespace imcf
