#include "firewall/imcf_firewall.h"

namespace imcf {
namespace firewall {

const char* DecisionReasonName(DecisionReason reason) {
  switch (reason) {
    case DecisionReason::kDefaultPolicy:
      return "default-policy";
    case DecisionReason::kChainRule:
      return "chain-rule";
    case DecisionReason::kPlanDropped:
      return "plan-dropped";
    case DecisionReason::kPlanAdopted:
      return "plan-adopted";
    case DecisionReason::kBypass:
      return "bypass";
  }
  return "?";
}

MetaControlFirewall::MetaControlFirewall(
    const devices::DeviceRegistry* registry, size_t audit_capacity)
    : registry_(registry),
      chain_("OUTPUT", Verdict::kAccept),
      audit_capacity_(audit_capacity) {}

void MetaControlFirewall::SetDroppedRules(std::vector<int> dropped_rule_ids) {
  dropped_rules_.clear();
  dropped_rules_.insert(dropped_rule_ids.begin(), dropped_rule_ids.end());
}

Decision MetaControlFirewall::Filter(const devices::ActuationCommand& cmd) {
  Decision decision;
  decision.command = cmd;

  // Layer 1: the static chain.
  const devices::Thing* thing = nullptr;
  if (registry_ != nullptr) {
    auto lookup = registry_->Get(cmd.device);
    if (lookup.ok()) thing = lookup.value();
  }
  bool matched_chain = false;
  for (const ChainRule& rule : chain_.rules()) {
    if (rule.Matches(cmd, thing)) {
      decision.verdict = rule.target;
      decision.reason = DecisionReason::kChainRule;
      matched_chain = true;
      break;
    }
  }
  if (matched_chain && decision.verdict == Verdict::kDrop) {
    Record(decision);
    return decision;
  }

  // Layer 2: the plan filter (meta-rule commands only).
  if (cmd.rule_id >= 0) {
    if (dropped_rules_.count(cmd.rule_id) > 0) {
      decision.verdict = Verdict::kDrop;
      decision.reason = DecisionReason::kPlanDropped;
    } else {
      decision.verdict = Verdict::kAccept;
      decision.reason = DecisionReason::kPlanAdopted;
    }
  } else if (!matched_chain) {
    decision.verdict = chain_.default_policy();
    decision.reason = DecisionReason::kBypass;
  }

  Record(decision);
  return decision;
}

void MetaControlFirewall::Record(Decision decision) {
  ++stats_.total;
  if (decision.verdict == Verdict::kAccept) {
    ++stats_.accepted;
  } else if (decision.reason == DecisionReason::kPlanDropped) {
    ++stats_.dropped_by_plan;
  } else {
    ++stats_.dropped_by_chain;
  }
  audit_.push_back(std::move(decision));
  while (audit_.size() > audit_capacity_) audit_.pop_front();
}

}  // namespace firewall
}  // namespace imcf
