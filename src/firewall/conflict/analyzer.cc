#include "firewall/conflict/analyzer.h"

#include <algorithm>
#include <optional>

#include "common/strings.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace imcf {
namespace firewall {
namespace conflict {

namespace {

// Device kind whose output a trigger field observes; nullopt for
// environmental fields (season, weather, door) no actuator controls.
std::optional<devices::DeviceKind> TriggerSourceKind(
    rules::TriggerField field) {
  switch (field) {
    case rules::TriggerField::kTemperature:
      return devices::DeviceKind::kHvac;
    case rules::TriggerField::kLightLevel:
      return devices::DeviceKind::kLight;
    case rules::TriggerField::kSeason:
    case rules::TriggerField::kWeather:
    case rules::TriggerField::kDoor:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<devices::DeviceKind> ActionDestKind(rules::RuleAction action) {
  switch (action) {
    case rules::RuleAction::kSetTemperature:
      return devices::DeviceKind::kHvac;
    case rules::RuleAction::kSetLight:
      return devices::DeviceKind::kLight;
    case rules::RuleAction::kSetKwhLimit:
      return std::nullopt;
  }
  return std::nullopt;
}

// Minutes of the hour [hour*60, hour*60+60) covered by `window`, honouring
// wrap-around windows.
int MinutesOfHourInWindow(const TimeWindow& window, int hour) {
  const int h0 = hour * 60;
  const int h1 = h0 + 60;
  auto overlap = [&](int a, int b) {
    const int lo = std::max(a, h0);
    const int hi = std::min(b, h1);
    return std::max(0, hi - lo);
  };
  if (window.start_minute <= window.end_minute) {
    return overlap(window.start_minute, window.end_minute);
  }
  // Wrapping window = [start, 24:00) ∪ [0:00, end).
  return overlap(window.start_minute, kMinutesPerDay) +
         overlap(0, window.end_minute);
}

obs::Counter* ChecksCounter() {
  static obs::Counter* counter = obs::MetricRegistry::Default().GetCounter(
      "imcf_conflict_checks_total",
      "Rule-set conflict analyses run (admissions + MRT updates)");
  return counter;
}

obs::Counter* RulesAnalyzedCounter() {
  static obs::Counter* counter = obs::MetricRegistry::Default().GetCounter(
      "imcf_conflict_rules_analyzed_total",
      "Rules scanned by the conflict pass");
  return counter;
}

obs::Counter* RejectionsCounter() {
  static obs::Counter* counter = obs::MetricRegistry::Default().GetCounter(
      "imcf_conflict_rejections_total",
      "Rule sets rejected by the conflict pass");
  return counter;
}

obs::Counter* FindingsCounter(ConflictClass cls) {
  static obs::Counter* counters[kNumConflictClasses] = {nullptr, nullptr,
                                                        nullptr};
  const size_t i = static_cast<size_t>(cls);
  if (counters[i] == nullptr) {
    counters[i] = obs::MetricRegistry::Default().GetCounter(
        "imcf_conflict_findings_total", "Conflict findings by detector class",
        {{"class", ConflictClassName(cls)}});
  }
  return counters[i];
}

}  // namespace

std::vector<CommandEdge> DeriveCommandEdges(
    const rules::TriggerRuleTable& ifttt, int units) {
  std::vector<CommandEdge> edges;
  for (const rules::TriggerRule& rule : ifttt.rules()) {
    const auto src = TriggerSourceKind(rule.field);
    const auto dst = ActionDestKind(rule.action);
    if (!src || !dst) continue;
    // Same-kind rules (temperature trigger -> temperature action) are
    // stabilizing feedback, not a command hop to another device.
    if (*src == *dst) continue;
    for (int unit = 0; unit < units; ++unit) {
      edges.push_back(
          CommandEdge{DeviceNode(unit, *src), DeviceNode(unit, *dst)});
    }
  }
  return edges;
}

ConflictAnalyzer::ConflictAnalyzer(int shards, ConflictOptions options)
    : options_(options) {
  if (shards < 1) shards = 1;
  graphs_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    graphs_.push_back(std::make_unique<DeviceCommandGraph>());
  }
}

ConflictReport ConflictAnalyzer::Analyze(int shard, const std::string& tenant,
                                         const TenantRuleSet& rule_set) {
  IMCF_TRACE_SPAN(span, "conflict.analyze", "firewall");
  ConflictReport report;
  report.tenant = tenant;

  // (a) intra-tenant contradictory setpoints.
  if (rule_set.mrt != nullptr) {
    report.rules_analyzed += FindContradictorySetpoints(
        *rule_set.mrt, options_.setpoint, &report);
  }

  // (c) budget infeasibility: necessity-rule demand alone vs budget/day.
  if (rule_set.mrt != nullptr && rule_set.hourly_energy != nullptr &&
      rule_set.budget_kwh > 0 && rule_set.period_days > 0) {
    double necessity_kwh_per_day = 0.0;
    for (int id : rule_set.mrt->necessity_ids()) {
      const rules::MetaRule& rule = *rule_set.mrt->Get(id).value();
      for (int hour = 0; hour < 24; ++hour) {
        const int minutes = MinutesOfHourInWindow(rule.window, hour);
        if (minutes == 0) continue;
        necessity_kwh_per_day +=
            rule_set.hourly_energy(rule, hour) * minutes / 60.0;
      }
    }
    const double budget_per_day = rule_set.budget_kwh / rule_set.period_days;
    if (necessity_kwh_per_day > budget_per_day * (1.0 + 1e-9)) {
      ConflictFinding finding;
      finding.cls = ConflictClass::kBudgetInfeasible;
      finding.severity = necessity_kwh_per_day - budget_per_day;
      finding.description = StrFormat(
          "necessity rules demand %.3f kWh/day but the budget allows %.3f "
          "kWh/day (%g kWh over %d days); no adoption vector is feasible",
          necessity_kwh_per_day, budget_per_day, rule_set.budget_kwh,
          rule_set.period_days);
      report.Add(std::move(finding));
    }
  }

  // (b) inter-tenant command cycles via the shard's device graph.
  DeviceCommandGraph& graph =
      *graphs_[static_cast<size_t>(shard) % graphs_.size()];
  std::vector<CommandEdge> edges;
  if (rule_set.ifttt != nullptr) {
    report.rules_analyzed += static_cast<int64_t>(rule_set.ifttt->size());
    edges = DeriveCommandEdges(*rule_set.ifttt, rule_set.units);
  }
  const std::vector<CommandEdge> previous = graph.EdgesOf(tenant);
  std::vector<ConflictFinding> cycles = graph.TryInstall(tenant, edges);
  for (ConflictFinding& finding : cycles) report.Add(std::move(finding));
  if (!report.ok() && cycles.empty()) {
    // Rejected for a non-cycle reason after the graph already swapped to
    // the new edges: restore the previously-admitted rule set's edges.
    if (previous.empty()) {
      graph.Remove(tenant);
    } else {
      graph.TryInstall(tenant, previous);
    }
  }

  span.Arg("findings", static_cast<int64_t>(report.findings.size()));
  span.Arg("rules", report.rules_analyzed);

  ChecksCounter()->Increment();
  RulesAnalyzedCounter()->Increment(report.rules_analyzed);
  if (!report.ok()) RejectionsCounter()->Increment();
  for (size_t c = 0; c < kNumConflictClasses; ++c) {
    if (report.by_class[c] > 0) {
      FindingsCounter(static_cast<ConflictClass>(c))
          ->Increment(report.by_class[c]);
    }
  }

  DataflowPolicy policy;
  if (rule_set.mrt != nullptr && rule_set.ifttt != nullptr) {
    policy = DerivePolicy(*rule_set.mrt, *rule_set.ifttt);
  }
  {
    std::lock_guard<std::mutex> lock(verdicts_mu_);
    Verdict& verdict = verdicts_[tenant];
    verdict.checks += 1;
    // A rejected *update* leaves the previously-admitted set active, but
    // the page should surface the latest verdict, not the stale pass.
    verdict.admitted = report.ok();
    verdict.last_report = report;
    if (report.ok()) verdict.policy = policy;
  }
  return report;
}

void ConflictAnalyzer::Forget(int shard, const std::string& tenant) {
  graphs_[static_cast<size_t>(shard) % graphs_.size()]->Remove(tenant);
  std::lock_guard<std::mutex> lock(verdicts_mu_);
  verdicts_.erase(tenant);
}

DataflowPolicy ConflictAnalyzer::PolicyFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(verdicts_mu_);
  auto it = verdicts_.find(tenant);
  return it == verdicts_.end() ? DataflowPolicy{} : it->second.policy;
}

std::string ConflictAnalyzer::ToJson() const {
  std::lock_guard<std::mutex> lock(verdicts_mu_);
  obs::JsonWriter json;
  json.BeginObject();
  int64_t total_checks = 0;
  int64_t total_rejected = 0;
  int64_t total_rules = 0;
  json.Key("tenants").BeginArray();
  for (const auto& [tenant, verdict] : verdicts_) {
    total_checks += verdict.checks;
    if (!verdict.admitted) total_rejected += 1;
    total_rules += verdict.last_report.rules_analyzed;
    json.BeginObject();
    json.Key("tenant").String(tenant);
    json.Key("verdict").String(verdict.admitted ? "ok" : "rejected");
    json.Key("checks").Int(verdict.checks);
    json.Key("rules_analyzed").Int(verdict.last_report.rules_analyzed);
    json.Key("by_class").BeginObject();
    for (size_t c = 0; c < kNumConflictClasses; ++c) {
      json.Key(ConflictClassName(static_cast<ConflictClass>(c)))
          .Int(verdict.last_report.by_class[c]);
    }
    json.EndObject();
    json.Key("findings").BeginArray();
    size_t shown = 0;
    for (const ConflictFinding& finding : verdict.last_report.findings) {
      if (++shown > 8) break;  // page stays bounded; counts stay exact
      json.BeginObject();
      json.Key("class").String(ConflictClassName(finding.cls));
      if (finding.rule_a >= 0) json.Key("rule_a").Int(finding.rule_a);
      if (finding.rule_b >= 0) json.Key("rule_b").Int(finding.rule_b);
      if (!finding.other_tenant.empty()) {
        json.Key("other_tenant").String(finding.other_tenant);
      }
      json.Key("severity").Double(finding.severity);
      json.Key("description").String(finding.description);
      json.EndObject();
    }
    json.EndArray();
    json.Key("dataflow_fields").BeginArray();
    for (const std::string& field : DataflowFieldList(verdict.policy)) {
      json.String(field);
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Key("totals").BeginObject();
  json.Key("tenants").Int(static_cast<int64_t>(verdicts_.size()));
  json.Key("checks").Int(total_checks);
  json.Key("rejected").Int(total_rejected);
  json.Key("rules_analyzed").Int(total_rules);
  json.EndObject();
  json.EndObject();
  return json.str();
}

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf
