#include "firewall/conflict/device_graph.h"

#include <algorithm>
#include <deque>

#include "common/strings.h"

namespace imcf {
namespace firewall {
namespace conflict {

int DeviceNode(int unit, devices::DeviceKind kind) {
  return unit * 2 + (kind == devices::DeviceKind::kHvac ? 0 : 1);
}

std::string NodeName(int node) {
  return StrFormat("unit%d/%s", node / 2, (node % 2 == 0) ? "hvac" : "light");
}

namespace {

using Neighbor = std::pair<int, std::string>;

void InsertSorted(std::vector<Neighbor>* list, Neighbor entry) {
  list->insert(std::lower_bound(list->begin(), list->end(), entry),
               std::move(entry));
}

}  // namespace

bool DeviceCommandGraph::FindForeignPathLocked(
    int start, int goal, const std::string& tenant,
    std::string* foreign_owner, int* path_len) const {
  // BFS over (node, seen-foreign-edge) states: 2N states, so the walk is
  // linear in the graph and — because adjacency lists are kept sorted —
  // fully deterministic.
  struct State {
    int node;
    bool foreign;
    std::string owner;  ///< owner of the first foreign edge on the path
    int depth;
  };
  std::map<int, uint8_t> visited;  // bit 0: plain, bit 1: foreign
  std::deque<State> queue;
  queue.push_back(State{start, false, std::string(), 0});
  visited[start] = 1;
  while (!queue.empty()) {
    State state = std::move(queue.front());
    queue.pop_front();
    if (state.node == goal && state.foreign) {
      *foreign_owner = state.owner;
      *path_len = state.depth;
      return true;
    }
    auto adj = adjacency_.find(state.node);
    if (adj == adjacency_.end()) continue;
    for (const Neighbor& edge : adj->second) {
      const bool edge_foreign = edge.second != tenant;
      const bool next_foreign = state.foreign || edge_foreign;
      const uint8_t bit = next_foreign ? 2 : 1;
      uint8_t& seen = visited[edge.first];
      if (seen & bit) continue;
      seen |= bit;
      queue.push_back(State{edge.first, next_foreign,
                            state.foreign ? state.owner
                            : edge_foreign ? edge.second
                                           : std::string(),
                            state.depth + 1});
    }
  }
  return false;
}

std::vector<ConflictFinding> DeviceCommandGraph::TryInstall(
    const std::string& tenant, const std::vector<CommandEdge>& edges) {
  std::lock_guard<std::mutex> lock(mu_);

  // Replace semantics: drop the tenant's previous edges first, remembering
  // them so a rejected update leaves the old rule set installed.
  std::vector<CommandEdge> previous;
  auto prev_it = by_tenant_.find(tenant);
  if (prev_it != by_tenant_.end()) previous = prev_it->second;
  RemoveLocked(tenant);

  for (const CommandEdge& edge : edges) {
    InsertSorted(&adjacency_[edge.from], Neighbor{edge.to, tenant});
  }
  by_tenant_[tenant] = edges;

  std::vector<ConflictFinding> findings;
  std::vector<std::pair<int, int>> flagged;  // dedup per (from, to)
  for (const CommandEdge& edge : edges) {
    const std::pair<int, int> key{edge.from, edge.to};
    if (std::find(flagged.begin(), flagged.end(), key) != flagged.end()) {
      continue;
    }
    std::string foreign_owner;
    int path_len = 0;
    if (!FindForeignPathLocked(edge.to, edge.from, tenant, &foreign_owner,
                               &path_len)) {
      continue;
    }
    flagged.push_back(key);
    ConflictFinding finding;
    finding.cls = ConflictClass::kCommandCycle;
    finding.other_tenant = foreign_owner;
    finding.severity = path_len + 1;  // cycle length: path + the new edge
    finding.description = StrFormat(
        "command edge %s -> %s closes a cycle through rules of tenant '%s'",
        NodeName(edge.from).c_str(), NodeName(edge.to).c_str(),
        foreign_owner.c_str());
    findings.push_back(std::move(finding));
  }

  if (!findings.empty()) {
    RemoveLocked(tenant);
    if (!previous.empty()) {
      for (const CommandEdge& edge : previous) {
        InsertSorted(&adjacency_[edge.from], Neighbor{edge.to, tenant});
      }
      by_tenant_[tenant] = std::move(previous);
    }
  }
  return findings;
}

void DeviceCommandGraph::Remove(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  RemoveLocked(tenant);
}

std::vector<CommandEdge> DeviceCommandGraph::EdgesOf(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_tenant_.find(tenant);
  return it == by_tenant_.end() ? std::vector<CommandEdge>() : it->second;
}

void DeviceCommandGraph::RemoveLocked(const std::string& tenant) {
  auto it = by_tenant_.find(tenant);
  if (it == by_tenant_.end()) return;
  for (const CommandEdge& edge : it->second) {
    auto adj = adjacency_.find(edge.from);
    if (adj == adjacency_.end()) continue;
    auto pos = std::find(adj->second.begin(), adj->second.end(),
                         Neighbor{edge.to, tenant});
    if (pos != adj->second.end()) adj->second.erase(pos);
    if (adj->second.empty()) adjacency_.erase(adj);
  }
  by_tenant_.erase(it);
}

size_t DeviceCommandGraph::edge_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& entry : by_tenant_) total += entry.second.size();
  return total;
}

size_t DeviceCommandGraph::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_tenant_.size();
}

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf
