#include "firewall/conflict/conflict_report.h"

#include "common/strings.h"

namespace imcf {
namespace firewall {
namespace conflict {

const char* ConflictClassName(ConflictClass cls) {
  switch (cls) {
    case ConflictClass::kContradictorySetpoint:
      return "contradictory_setpoint";
    case ConflictClass::kCommandCycle:
      return "command_cycle";
    case ConflictClass::kBudgetInfeasible:
      return "budget_infeasible";
  }
  return "?";
}

void ConflictReport::Add(ConflictFinding finding) {
  by_class[static_cast<size_t>(finding.cls)] += 1;
  findings.push_back(std::move(finding));
}

std::string ConflictReport::Summary() const {
  if (ok()) {
    return StrFormat("no conflicts (%lld rules analyzed)",
                     static_cast<long long>(rules_analyzed));
  }
  std::string out;
  for (size_t c = 0; c < kNumConflictClasses; ++c) {
    if (by_class[c] == 0) continue;
    if (!out.empty()) out += ", ";
    out += StrFormat("%lld %s", static_cast<long long>(by_class[c]),
                     ConflictClassName(static_cast<ConflictClass>(c)));
  }
  out += StrFormat(" (%lld rules analyzed)",
                   static_cast<long long>(rules_analyzed));
  return out;
}

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf
