// The admission-time conflict pass: one call that runs all three detector
// classes over a tenant's proposed rule set and returns the ConflictReport
// the serving layer turns into a kConflictRejected outcome.
//
// The analyzer is sharded the same way as TenantRegistry: tenants placed on
// different shards never share devices, so each shard owns an independent
// DeviceCommandGraph and there is no global lock on the admission path. It
// also keeps the last verdict per tenant (admitted or rejected, findings,
// derived dataflow policy) so the /conflictz status page can render the
// fleet's conflict posture without re-running any analysis.
//
// Detector (c), budget infeasibility, is a *lower bound* argument: the
// daily energy demanded by necessity rules alone — rules the paper says
// "should always be executed" and the planner can never drop — is compared
// against the tenant's per-day budget. If even that floor exceeds the
// budget, every adoption vector violates it and planning is wasted work;
// convenience rules are ignored precisely so a feasible-but-tight MRT is
// never falsely rejected.

#ifndef IMCF_FIREWALL_CONFLICT_ANALYZER_H_
#define IMCF_FIREWALL_CONFLICT_ANALYZER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "firewall/conflict/conflict_report.h"
#include "firewall/conflict/dataflow_policy.h"
#include "firewall/conflict/device_graph.h"
#include "firewall/conflict/setpoint_analyzer.h"
#include "rules/meta_rule.h"
#include "rules/trigger_rule.h"

namespace imcf {
namespace firewall {
namespace conflict {

/// Power draw (kW) of executing `rule` during hour-of-day `hour`, supplied
/// by the caller (the registry derives it from the tenant's device spec so
/// the firewall layer stays ignorant of energy models).
using HourlyEnergyFn = std::function<double(const rules::MetaRule&, int hour)>;

struct ConflictOptions {
  SetpointOptions setpoint;
};

/// Everything the pass needs to know about one tenant's proposed rules.
/// Pointers are borrowed for the duration of Analyze only.
struct TenantRuleSet {
  const rules::MetaRuleTable* mrt = nullptr;
  const rules::TriggerRuleTable* ifttt = nullptr;
  double budget_kwh = 0.0;  ///< total budget; <= 0 skips detector (c)
  int period_days = 0;      ///< budget horizon; <= 0 skips detector (c)
  int units = 1;            ///< building units (graph node range)
  HourlyEnergyFn hourly_energy;  ///< null skips detector (c)
};

/// Command edges contributed by `ifttt`: one per cross-kind trigger rule
/// per unit (see device_graph.h for the model). Exposed for the bench and
/// the differential tests.
std::vector<CommandEdge> DeriveCommandEdges(
    const rules::TriggerRuleTable& ifttt, int units);

/// Runs the three detectors; thread-safe across shards and within a shard.
class ConflictAnalyzer {
 public:
  explicit ConflictAnalyzer(int shards, ConflictOptions options = {});

  /// Analyzes `tenant`'s rule set against shard-local state. An ok() report
  /// leaves the tenant's command edges installed in the shard graph; a
  /// rejection leaves the graph exactly as before the call. Also records
  /// the verdict (and derived dataflow policy) for /conflictz.
  ConflictReport Analyze(int shard, const std::string& tenant,
                         const TenantRuleSet& rule_set);

  /// Drops the tenant's graph edges and verdict (tenant eviction).
  void Forget(int shard, const std::string& tenant);

  /// Last derived dataflow policy for `tenant` (empty policy if unknown).
  DataflowPolicy PolicyFor(const std::string& tenant) const;

  /// The /conflictz document: per-tenant verdicts plus fleet totals.
  std::string ToJson() const;

  const ConflictOptions& options() const { return options_; }

 private:
  struct Verdict {
    bool admitted = false;
    int64_t checks = 0;  ///< times this tenant's rule set was analyzed
    ConflictReport last_report;
    DataflowPolicy policy;
  };

  ConflictOptions options_;
  std::vector<std::unique_ptr<DeviceCommandGraph>> graphs_;  // per shard

  mutable std::mutex verdicts_mu_;
  std::map<std::string, Verdict> verdicts_;
};

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf

#endif  // IMCF_FIREWALL_CONFLICT_ANALYZER_H_
