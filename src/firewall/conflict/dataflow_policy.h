// Per-tenant dataflow policy: forward only the context fields the tenant's
// rules actually consume.
//
// PFirewall's observation (PAPERS.md) is that a smart-home platform should
// not see every sensor reading — only the minimal dataflow its automations
// need. The same holds inside this fleet: a tenant whose rules never
// mention the door has no business reading door state through the query
// API. DerivePolicy computes, from the active MRT and IFTTT tables, the
// exact field set the rule evaluators touch; FilterContext then blanks
// everything else before a context snapshot leaves the serving layer.
//
// Derivation is conservative in the tenant's favour (an MRT actuation rule
// needs the clock for its window; a SetTemperature action implies the
// closed-loop controller reads indoor + outdoor temperature) and strict
// everywhere else — fields no rule consumes are zeroed, not passed through.

#ifndef IMCF_FIREWALL_CONFLICT_DATAFLOW_POLICY_H_
#define IMCF_FIREWALL_CONFLICT_DATAFLOW_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rules/context.h"
#include "rules/meta_rule.h"
#include "rules/trigger_rule.h"

namespace imcf {
namespace firewall {
namespace conflict {

/// Bit per field of rules::EvaluationContext (weather sub-fields split to
/// the granularity the trigger rules distinguish).
enum ContextField : uint32_t {
  kFieldTime = 1u << 0,          ///< clock / rule windows
  kFieldSeason = 1u << 1,        ///< weather.season
  kFieldSky = 1u << 2,           ///< weather.sky
  kFieldOutdoorTemp = 1u << 3,   ///< weather.outdoor_temp_c (+ daily mean)
  kFieldDaylight = 1u << 4,      ///< weather.daylight (+ day length)
  kFieldAmbientTemp = 1u << 5,   ///< indoor temperature
  kFieldAmbientLight = 1u << 6,  ///< indoor light level
  kFieldDoor = 1u << 7,          ///< door open/closed
};

/// The set of context fields one tenant's rules may observe.
struct DataflowPolicy {
  uint32_t fields = 0;

  bool Allows(ContextField field) const { return (fields & field) != 0; }
};

/// Field set consumed by the union of `mrt` and `ifttt`.
DataflowPolicy DerivePolicy(const rules::MetaRuleTable& mrt,
                            const rules::TriggerRuleTable& ifttt);

/// Returns `ctx` with every field the policy does not allow reset to its
/// default-constructed value (the query API's redaction step).
rules::EvaluationContext FilterContext(const rules::EvaluationContext& ctx,
                                       const DataflowPolicy& policy);

/// Stable field names for /conflictz JSON, in bit order ("time", "season",
/// "sky", "outdoor_temp", "daylight", "ambient_temp", "ambient_light",
/// "door").
std::vector<std::string> DataflowFieldList(const DataflowPolicy& policy);

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf

#endif  // IMCF_FIREWALL_CONFLICT_DATAFLOW_POLICY_H_
