#include "firewall/conflict/setpoint_analyzer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/strings.h"
#include "rules/conflict.h"

namespace imcf {
namespace firewall {
namespace conflict {

namespace {

struct Keyed {
  int64_t key;  ///< unit * 2 + kind (kHvac = 0, kLight = 1)
  const rules::MetaRule* rule;
};

int64_t BucketKey(const rules::MetaRule& rule) {
  const int kind =
      rule.TargetKind() == devices::DeviceKind::kHvac ? 0 : 1;
  return static_cast<int64_t>(rule.unit) * 2 + kind;
}

}  // namespace

int64_t FindContradictorySetpoints(const rules::MetaRuleTable& table,
                                   const SetpointOptions& options,
                                   ConflictReport* report) {
  // Gather actuation rows (necessity rules actuate too — a necessity rule
  // contradicting a convenience one is still a contradiction the planner
  // cannot resolve by dropping the necessity side).
  std::vector<Keyed> keyed;
  keyed.reserve(table.size());
  for (const rules::MetaRule& rule : table.rules()) {
    if (rule.action == rules::RuleAction::kSetKwhLimit) continue;
    keyed.push_back(Keyed{BucketKey(rule), &rule});
  }
  const int64_t scanned = static_cast<int64_t>(keyed.size());

  // Bucket by (unit, kind); ids are already insertion-ordered within the
  // table, and a stable sort on the key alone preserves that order, so the
  // pairwise walk below visits pairs deterministically.
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key < b.key; });

  size_t found = 0;
  for (size_t lo = 0; lo < keyed.size() && found < options.max_findings;) {
    size_t hi = lo + 1;
    while (hi < keyed.size() && keyed[hi].key == keyed[lo].key) ++hi;
    const bool is_hvac = (keyed[lo].key & 1) == 0;
    const double gap_threshold =
        is_hvac ? options.temperature_gap_c : options.light_gap_pct;
    for (size_t i = lo; i < hi && found < options.max_findings; ++i) {
      const rules::MetaRule& a = *keyed[i].rule;
      for (size_t j = i + 1; j < hi && found < options.max_findings; ++j) {
        const rules::MetaRule& b = *keyed[j].rule;
        const double gap = std::fabs(a.value - b.value);
        if (gap < gap_threshold) continue;
        const int overlap = rules::WindowOverlapMinutes(a.window, b.window);
        if (overlap < options.min_overlap_minutes) continue;
        ConflictFinding finding;
        finding.cls = ConflictClass::kContradictorySetpoint;
        finding.rule_a = a.id;
        finding.rule_b = b.id;
        finding.severity = gap;
        finding.description = StrFormat(
            "'%s' (%g) and '%s' (%g) contradict on unit %d %s for %d "
            "min/day (gap %g >= %g)",
            a.description.c_str(), a.value, b.description.c_str(), b.value,
            a.unit, is_hvac ? "hvac" : "light", overlap, gap, gap_threshold);
        report->Add(std::move(finding));
        ++found;
      }
    }
    lo = hi;
  }
  return scanned;
}

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf
