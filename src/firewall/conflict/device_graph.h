// Detector class (b): inter-tenant command cycles through shared devices.
//
// A trigger rule that reads one sensor kind and actuates the other closes
// half of a feedback loop: "IF temperature > 24 THEN SetLight 0" means the
// HVAC's output can command the lights. When *another* tenant on the same
// shard wires the reverse half ("IF light < 10 THEN SetTemperature 26"),
// the two rule sets form a command cycle neither tenant can see alone —
// every actuation by one perturbs the field the other triggers on, and the
// fleet oscillates. IoTC² models this as reachability over a device
// interaction graph; this is the per-shard incarnation:
//
//   node  = (unit, device kind) — the shared physical device
//   edge  = a cross-kind trigger rule of some tenant: source node is the
//           device whose output the trigger field observes, destination is
//           the device the action commands. Same-kind rules (temperature
//           trigger → SetTemperature) are stabilizing feedback and are
//           deliberately NOT edges.
//
// TryInstall is transactional: a tenant's edges are added tentatively and
// rolled back if they close a cycle that spans ≥ 2 tenants, so a rejected
// admission leaves the graph exactly as it was. Intra-tenant loops are the
// tenant's own business (and the firewall chain already rate-limits them);
// only *inter*-tenant cycles reject.

#ifndef IMCF_FIREWALL_CONFLICT_DEVICE_GRAPH_H_
#define IMCF_FIREWALL_CONFLICT_DEVICE_GRAPH_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "devices/device.h"
#include "firewall/conflict/conflict_report.h"

namespace imcf {
namespace firewall {
namespace conflict {

/// Graph node id for a shared device: unit * 2 + kind ordinal.
int DeviceNode(int unit, devices::DeviceKind kind);

/// Debug name for a node: "unit3/hvac", "unit0/light".
std::string NodeName(int node);

/// One directed command edge contributed by a tenant's rule set.
struct CommandEdge {
  int from = 0;  ///< device whose output the trigger observes
  int to = 0;    ///< device the action commands
};

/// Per-shard directed multigraph of command edges, keyed by owning tenant.
/// Thread-safe; every mutation is transactional (all-or-nothing).
class DeviceCommandGraph {
 public:
  /// Tentatively adds `edges` for `tenant`. If any new edge closes a cycle
  /// that involves at least one edge owned by a *different* tenant, all of
  /// `tenant`'s edges are rolled back and one finding per offending edge
  /// (deduplicated, deterministic order) is returned. An empty result means
  /// the edges are installed. Re-installing an already-present tenant first
  /// removes its previous edges (Replace semantics).
  std::vector<ConflictFinding> TryInstall(
      const std::string& tenant, const std::vector<CommandEdge>& edges);

  /// Removes every edge owned by `tenant` (no-op if absent).
  void Remove(const std::string& tenant);

  /// The edges currently installed for `tenant` (empty if absent). Lets the
  /// analyzer restore a tenant's previous edges when an update is rejected
  /// for a non-cycle reason after the graph was already swapped.
  std::vector<CommandEdge> EdgesOf(const std::string& tenant) const;

  size_t edge_count() const;
  size_t tenant_count() const;

 private:
  // Walks from `start` looking for `goal`, tracking whether the path used
  // an edge owned by someone other than `tenant`. Returns the owner of the
  // first foreign edge on a closing path, or nullopt when no inter-tenant
  // path exists. Caller holds mu_.
  bool FindForeignPathLocked(int start, int goal, const std::string& tenant,
                             std::string* foreign_owner, int* path_len) const;

  void RemoveLocked(const std::string& tenant);

  mutable std::mutex mu_;
  // node -> outgoing (neighbor, owning tenant), kept sorted for
  // deterministic traversal.
  std::map<int, std::vector<std::pair<int, std::string>>> adjacency_;
  std::map<std::string, std::vector<CommandEdge>> by_tenant_;
};

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf

#endif  // IMCF_FIREWALL_CONFLICT_DEVICE_GRAPH_H_
