#include "firewall/conflict/dataflow_policy.h"

namespace imcf {
namespace firewall {
namespace conflict {

namespace {

// Fields the closed-loop control path reads when executing an action of
// this kind: an HVAC setpoint compares indoor against outdoor temperature;
// a light setpoint dims against ambient light and daylight.
uint32_t ActionFields(rules::RuleAction action) {
  switch (action) {
    case rules::RuleAction::kSetTemperature:
      return kFieldAmbientTemp | kFieldOutdoorTemp;
    case rules::RuleAction::kSetLight:
      return kFieldAmbientLight | kFieldDaylight;
    case rules::RuleAction::kSetKwhLimit:
      return 0;
  }
  return 0;
}

uint32_t TriggerFields(rules::TriggerField field) {
  switch (field) {
    case rules::TriggerField::kSeason:
      return kFieldSeason;
    case rules::TriggerField::kWeather:
      return kFieldSky;
    case rules::TriggerField::kTemperature:
      return kFieldAmbientTemp;
    case rules::TriggerField::kLightLevel:
      return kFieldAmbientLight;
    case rules::TriggerField::kDoor:
      return kFieldDoor;
  }
  return 0;
}

}  // namespace

DataflowPolicy DerivePolicy(const rules::MetaRuleTable& mrt,
                            const rules::TriggerRuleTable& ifttt) {
  DataflowPolicy policy;
  for (const rules::MetaRule& rule : mrt.rules()) {
    if (rule.action == rules::RuleAction::kSetKwhLimit) continue;
    policy.fields |= kFieldTime;  // daily windows read the clock
    policy.fields |= ActionFields(rule.action);
  }
  for (const rules::TriggerRule& rule : ifttt.rules()) {
    policy.fields |= TriggerFields(rule.field);
    policy.fields |= ActionFields(rule.action);
  }
  return policy;
}

rules::EvaluationContext FilterContext(const rules::EvaluationContext& ctx,
                                       const DataflowPolicy& policy) {
  rules::EvaluationContext out;  // defaults == redacted
  if (policy.Allows(kFieldTime)) out.time = ctx.time;
  if (policy.Allows(kFieldSeason)) out.weather.season = ctx.weather.season;
  if (policy.Allows(kFieldSky)) out.weather.sky = ctx.weather.sky;
  if (policy.Allows(kFieldOutdoorTemp)) {
    out.weather.outdoor_temp_c = ctx.weather.outdoor_temp_c;
    out.weather.outdoor_daily_mean_c = ctx.weather.outdoor_daily_mean_c;
  }
  if (policy.Allows(kFieldDaylight)) {
    out.weather.daylight = ctx.weather.daylight;
    out.weather.day_length_hours = ctx.weather.day_length_hours;
  } else {
    out.weather.day_length_hours = 0;  // default is 12; redact fully
  }
  if (policy.Allows(kFieldAmbientTemp)) out.ambient_temp_c = ctx.ambient_temp_c;
  if (policy.Allows(kFieldAmbientLight)) {
    out.ambient_light_pct = ctx.ambient_light_pct;
  }
  if (policy.Allows(kFieldDoor)) out.door_open = ctx.door_open;
  return out;
}

std::vector<std::string> DataflowFieldList(const DataflowPolicy& policy) {
  static const char* kNames[] = {"time",     "season",       "sky",
                                 "outdoor_temp", "daylight", "ambient_temp",
                                 "ambient_light", "door"};
  std::vector<std::string> out;
  for (int bit = 0; bit < 8; ++bit) {
    if (policy.fields & (1u << bit)) out.push_back(kNames[bit]);
  }
  return out;
}

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf
