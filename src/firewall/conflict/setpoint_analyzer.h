// Detector class (a): intra-tenant contradictory setpoints.
//
// Two actuation rules of the same tenant targeting the same (unit, device
// kind) with overlapping daily windows and setpoints far enough apart are
// *contradictory*: whichever wins, the loser's comfort intent is violated
// for the whole overlap, and the paper's last-writer-wins arbitration hides
// the bug from the user. The existing rules::FindWindowConflicts surfaces
// every pairwise clash for offline lint reports; this analyzer is the
// admission-gate variant:
//
//   * thresholded — stock datasets legitimately contain small overlaps and
//     small gaps (VariedMrt shifts windows by up to ±60·variation minutes
//     and perturbs values within the clamp ranges), so only overlaps of at
//     least `min_overlap_minutes` with a per-kind value gap above
//     `temperature_gap_c` / `light_gap_pct` reject a tenant;
//   * near-linear — rules are bucketed by (unit, kind) before the pairwise
//     sweep, so a million-rule corpus (bench_conflict_detection) costs
//     O(n log n) + O(Σ bucket²) with 3-row buckets in practice, not O(n²);
//   * bounded — the scan stops after `max_findings` findings; an admission
//     verdict needs evidence, not an exhaustive list.

#ifndef IMCF_FIREWALL_CONFLICT_SETPOINT_ANALYZER_H_
#define IMCF_FIREWALL_CONFLICT_SETPOINT_ANALYZER_H_

#include <cstdint>

#include "firewall/conflict/conflict_report.h"
#include "rules/meta_rule.h"

namespace imcf {
namespace firewall {
namespace conflict {

/// Rejection thresholds. Defaults are calibrated so every stock dataset
/// (flat / house / dorms at their Table II variations) admits: VariedMrt
/// window shifts produce at most 60 minutes of overlap at variation 1.0,
/// comfortably under the 120-minute floor.
struct SetpointOptions {
  int min_overlap_minutes = 120;  ///< daily overlap below this is benign
  double temperature_gap_c = 6.0; ///< HVAC setpoint gap that contradicts
  double light_gap_pct = 50.0;    ///< light level gap that contradicts
  size_t max_findings = 16;       ///< stop scanning after this many
};

/// Scans every actuation rule of `table` (convenience and necessity rows;
/// kWh-limit rows are budget configuration, not setpoints) and appends one
/// finding per contradictory pair to `report`. Returns the number of rules
/// scanned. Deterministic: buckets iterate in (unit, kind, id) order.
int64_t FindContradictorySetpoints(const rules::MetaRuleTable& table,
                                   const SetpointOptions& options,
                                   ConflictReport* report);

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf

#endif  // IMCF_FIREWALL_CONFLICT_SETPOINT_ANALYZER_H_
