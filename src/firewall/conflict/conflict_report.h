// Typed result of the admission-time rule-set analysis pass.
//
// The meta-control firewall mediates *commands*, but until this subsystem
// it trusted the rule sets it was handed. IoTC² (PAPERS.md) frames conflict
// detection in large-scale IoT rule sets as a structural analysis problem;
// this header is the vocabulary the three detector classes share:
//
//   kContradictorySetpoint — one tenant drives the same device during the
//       same daily window toward setpoints far enough apart that no
//       schedule can honour both (setpoint_analyzer.h).
//   kCommandCycle — tenants' trigger rules close a command loop through
//       shared devices: actuating A changes a sensor field a rule of
//       another tenant triggers on, commanding B, and so on back to A
//       (device_graph.h).
//   kBudgetInfeasible — the rules the planner can never drop (necessity
//       rules) already exceed the tenant's energy budget, so every
//       adoption vector violates it (analyzer.h).
//
// A ConflictReport is what TenantRegistry/FleetService turn into the
// kConflictRejected admission outcome; it is deliberately plain data so
// the serving layer can render it into metrics, the cost ledger, traces
// and the /conflictz page without re-running the analysis.

#ifndef IMCF_FIREWALL_CONFLICT_CONFLICT_REPORT_H_
#define IMCF_FIREWALL_CONFLICT_CONFLICT_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace imcf {
namespace firewall {
namespace conflict {

/// The three detector classes of the admission pass.
enum class ConflictClass : uint8_t {
  kContradictorySetpoint = 0,
  kCommandCycle = 1,
  kBudgetInfeasible = 2,
};

inline constexpr size_t kNumConflictClasses = 3;

/// Stable metric/JSON label ("contradictory_setpoint", "command_cycle",
/// "budget_infeasible").
const char* ConflictClassName(ConflictClass cls);

/// One detected conflict.
struct ConflictFinding {
  ConflictClass cls = ConflictClass::kContradictorySetpoint;
  int rule_a = -1;           ///< offending rule id (when rule-scoped)
  int rule_b = -1;           ///< the other rule of the pair, or -1
  /// For command cycles: the tenant owning the edge that closes the loop
  /// (the conflict is *inter*-tenant; this names the counterparty).
  std::string other_tenant;
  /// Class-specific magnitude: setpoint gap (°C / light %), cycle length
  /// in edges, or kWh/day of budget overrun.
  double severity = 0.0;
  std::string description;  ///< human-readable summary
};

/// The verdict for one tenant's proposed rule set.
struct ConflictReport {
  std::string tenant;
  int64_t rules_analyzed = 0;  ///< MRT rows + trigger rules scanned
  std::vector<ConflictFinding> findings;
  int64_t by_class[kNumConflictClasses] = {0, 0, 0};

  /// Appends a finding and maintains the per-class tallies.
  void Add(ConflictFinding finding);

  /// An empty report admits the tenant.
  bool ok() const { return findings.empty(); }

  int64_t CountOf(ConflictClass cls) const {
    return by_class[static_cast<size_t>(cls)];
  }

  /// One line for logs / Status messages: "2 contradictory_setpoint,
  /// 1 command_cycle (9 rules analyzed)"; "no conflicts" when ok.
  std::string Summary() const;
};

}  // namespace conflict
}  // namespace firewall
}  // namespace imcf

#endif  // IMCF_FIREWALL_CONFLICT_CONFLICT_REPORT_H_
