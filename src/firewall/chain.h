// Firewall chain: iptables-style static filtering of actuation commands.
//
// The paper's prototype enforces planner decisions at the network level
// ("iptables -A OUTPUT -s 192.168.0.5 -j DROP" — IMCF works actually like a
// real network firewall by blocking all outgoing traffic from LC to TG").
// This module reproduces that mechanism in-process: an ordered chain of
// match rules over an ActuationCommand's device address, device id, command
// type and source, each with an ACCEPT/DROP target, plus a default policy.
// First matching rule wins, as in netfilter.

#ifndef IMCF_FIREWALL_CHAIN_H_
#define IMCF_FIREWALL_CHAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "devices/device.h"

namespace imcf {
namespace firewall {

/// Filtering outcome.
enum class Verdict : uint8_t { kAccept = 0, kDrop = 1 };

const char* VerdictName(Verdict verdict);

/// One match rule. Unset (nullopt) fields match anything.
struct ChainRule {
  std::optional<std::string> address;          ///< device network address
  std::optional<devices::DeviceId> device;     ///< device id
  std::optional<devices::CommandType> command; ///< command type
  std::optional<std::string> source;           ///< command source tag
  Verdict target = Verdict::kDrop;

  /// True iff every set field matches the command (address is looked up
  /// from `thing` which may be null when unknown).
  bool Matches(const devices::ActuationCommand& cmd,
               const devices::Thing* thing) const;

  /// "-s 192.168.0.5 -j DROP"-style rendering.
  std::string ToString() const;
};

/// An ordered rule chain with a default policy.
class Chain {
 public:
  explicit Chain(std::string name, Verdict default_policy = Verdict::kAccept)
      : name_(std::move(name)), default_policy_(default_policy) {}

  /// Appends a rule (iptables -A).
  void Append(ChainRule rule);

  /// Inserts a rule at the head (iptables -I).
  void Insert(ChainRule rule);

  /// Removes all rules (iptables -F).
  void Flush() { rules_.clear(); }

  /// First matching rule's target, or the default policy.
  Verdict Filter(const devices::ActuationCommand& cmd,
                 const devices::Thing* thing) const;

  const std::string& name() const { return name_; }
  Verdict default_policy() const { return default_policy_; }
  void set_default_policy(Verdict v) { default_policy_ = v; }
  const std::vector<ChainRule>& rules() const { return rules_; }

 private:
  std::string name_;
  Verdict default_policy_;
  std::vector<ChainRule> rules_;
};

}  // namespace firewall
}  // namespace imcf

#endif  // IMCF_FIREWALL_CHAIN_H_
