#include "trace/dataset.h"

#include "common/rng.h"

namespace imcf {
namespace trace {

namespace {

// The evaluation residences are calibrated to the climate the ECP of
// Table I implies: a Mediterranean profile (the authors' institution is in
// Cyprus) — heavy January/December heating, an August cooling bump larger
// than July's, and near-idle Aprils and Octobers. A cold-winter profile
// cannot reproduce Table I's 5.5:1 January:April ratio together with the
// paper's 2-4% EP convenience error (see DESIGN.md §3 and EXPERIMENTS.md).
weather::ClimateOptions MediterraneanClimate(uint64_t seed) {
  weather::ClimateOptions climate;
  climate.seed = seed;
  climate.mean_temp_c = 17.5;
  climate.annual_amplitude_c = 11.0;
  climate.diurnal_amplitude_c = 6.0;
  climate.day_noise_c = 1.6;
  climate.cloudy_winter_prob = 0.80;
  climate.cloudy_summer_prob = 0.10;
  climate.min_day_length_h = 9.5;
  climate.max_day_length_h = 14.5;
  return climate;
}

// Shared envelope parameters; per-dataset deltas applied in the specs.
AmbientModelOptions ResidentialAmbient() {
  AmbientModelOptions ambient;
  ambient.neutral_temp_c = 16.5;
  ambient.coupling = 0.62;
  ambient.internal_gain_c = 2.0;
  ambient.thermal_lag_hours = 3.0;
  ambient.window_factor = 0.75;
  ambient.temp_noise_c = 0.35;
  ambient.light_noise = 2.5;
  // Solar-gain / occupancy seasonality on top of the first-order envelope,
  // calibrated so that monthly HVAC demand under the Table II rules tracks
  // the consumption profile of Table I (shoulder seasons are nearly
  // self-comfortable, as the tiny April/October ECP entries imply).
  ambient.monthly_bias_c = {0.5, 1.5, 5.0, 6.0, 4.0, 0.7,
                            -0.1, 0.7, 0.6, 2.6, 5.5, 4.3};
  return ambient;
}

}  // namespace

DatasetSpec FlatSpec() {
  DatasetSpec spec;
  spec.name = "flat";
  spec.units = 1;
  spec.area_m2 = 50.0;
  // 50 m² zone with a single split unit and a conventional (pre-LED)
  // lighting circuit — fixed-draw lights with no daylight sensing are a
  // large share of this flat's load, which is what gives the planner its
  // cheap daytime shedding headroom.
  spec.hvac.kw_per_degree = 0.085;
  spec.hvac.rated_power_kw = 2.5;
  spec.hvac.fan_kw = 0.12;
  spec.hvac.deadband_c = 3.0;
  spec.light.max_power_kw = 0.60;
  spec.ambient = ResidentialAmbient();
  spec.climate = MediterraneanClimate(/*seed=*/101);
  spec.budget_kwh = 11000.0;  // Table II "Energy Flat"
  spec.mrt_variation = 0.0;
  spec.seed = 7;
  return spec;
}

DatasetSpec HouseSpec() {
  DatasetSpec spec;
  spec.name = "house";
  spec.units = 4;
  spec.area_m2 = 200.0;
  // Four zones sharing interior walls: lighter per-zone HVAC load and
  // smaller lighting circuits than the detached flat.
  spec.hvac.kw_per_degree = 0.050;
  spec.hvac.rated_power_kw = 2.0;
  spec.hvac.fan_kw = 0.07;
  spec.hvac.deadband_c = 3.0;
  spec.light.max_power_kw = 0.35;
  spec.ambient = ResidentialAmbient();
  spec.ambient.coupling = 0.55;  // better envelope
  spec.climate = MediterraneanClimate(/*seed=*/211);
  spec.budget_kwh = 25500.0;  // Table II "Energy House"
  spec.mrt_variation = 0.5;
  spec.seed = 11;
  return spec;
}

DatasetSpec DormsSpec() {
  DatasetSpec spec;
  spec.name = "dorms";
  spec.units = 100;  // 50 apartments x 2 split units
  spec.area_m2 = 2000.0;
  // 10 m² dorm rooms: small split units and compact lighting.
  spec.hvac.kw_per_degree = 0.035;
  spec.hvac.rated_power_kw = 1.2;
  spec.hvac.fan_kw = 0.05;
  spec.hvac.deadband_c = 3.0;
  spec.light.max_power_kw = 0.25;
  spec.ambient = ResidentialAmbient();
  spec.ambient.coupling = 0.55;
  spec.climate = MediterraneanClimate(/*seed=*/307);
  spec.budget_kwh = 480000.0;  // Table II "Energy Dorms"
  spec.mrt_variation = 1.0;
  spec.seed = 13;
  return spec;
}

std::vector<DatasetSpec> AllSpecs() {
  return {FlatSpec(), HouseSpec(), DormsSpec()};
}

SimTime EvaluationStart() { return FromCivil(2014, 1, 1); }

int EvaluationHours() {
  // Three full years: 2014-01-01 .. 2016-12-31 (2016 is a leap year).
  return static_cast<int>((FromCivil(2017, 1, 1) - EvaluationStart()) /
                          kSecondsPerHour);
}

HourlyAmbient::HourlyAmbient(SimTime start, int hours, int units)
    : start_(start),
      hours_(hours),
      units_(units),
      temp_(static_cast<size_t>(hours) * static_cast<size_t>(units), 0.0f),
      light_(static_cast<size_t>(hours) * static_cast<size_t>(units), 0.0f) {}

HourlyAmbient BuildHourlyAmbient(const DatasetSpec& spec, SimTime start,
                                 int hours) {
  HourlyAmbient out(start, hours, spec.units);
  weather::SyntheticWeather weather(spec.climate);
  for (int u = 0; u < spec.units; ++u) {
    AmbientModel model(&weather, spec.ambient,
                       MixHash(spec.seed, static_cast<uint64_t>(u)));
    for (int h = 0; h < hours; ++h) {
      const SimTime midpoint = out.TimeOfHour(h) + kSecondsPerHour / 2;
      out.set_temp(u, h, static_cast<float>(model.IndoorTempC(midpoint)));
      out.set_light(u, h, static_cast<float>(model.IndoorLightPct(midpoint)));
    }
  }
  return out;
}

}  // namespace trace
}  // namespace imcf
