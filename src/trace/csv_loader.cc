#include "trace/csv_loader.h"

#include <cmath>
#include <cstdint>

#include "common/strings.h"
#include "common/time.h"
#include "storage/csv.h"

namespace imcf {
namespace trace {

namespace {

Status RowError(const std::string& source, size_t line,
                const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("%s:%zu: %s", source.c_str(), line, message.c_str()));
}

Result<SimTime> ParseTimeCell(const std::string& cell) {
  if (Result<int64_t> seconds = ParseInt(cell); seconds.ok()) {
    return *seconds;
  }
  return ParseTime(cell);
}

Result<SensorKind> ParseKindCell(const std::string& cell) {
  if (Result<int64_t> numeric = ParseInt(cell); numeric.ok()) {
    if (*numeric < 0 || *numeric > 2) {
      return Status::InvalidArgument("sensor kind out of range: " + cell);
    }
    return static_cast<SensorKind>(*numeric);
  }
  const std::string name = ToLower(Trim(cell));
  if (name == "temperature") return SensorKind::kTemperature;
  if (name == "light") return SensorKind::kLight;
  if (name == "door") return SensorKind::kDoor;
  return Status::InvalidArgument("unknown sensor kind: " + cell);
}

}  // namespace

Result<std::vector<Reading>> ParseReadingsCsv(std::string_view text,
                                              const std::string& source_name) {
  IMCF_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, ParseCsv(text));
  std::vector<Reading> readings;
  readings.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const CsvRow& row = rows[i];
    const size_t line = i + 1;
    if (row.size() == 1 && Trim(row[0]).empty()) continue;  // blank line
    if (row.size() != 4) {
      return RowError(source_name, line,
                      StrFormat("expected 4 columns (time,sensor_id,kind,"
                                "value), got %zu",
                                row.size()));
    }
    if (i == 0 && !ParseTimeCell(row[0]).ok()) {
      continue;  // header row
    }
    Reading reading;
    Result<SimTime> time = ParseTimeCell(row[0]);
    if (!time.ok()) {
      return RowError(source_name, line, "bad time: " + row[0]);
    }
    reading.time = *time;
    Result<int64_t> sensor_id = ParseInt(row[1]);
    if (!sensor_id.ok() || *sensor_id < 0 || *sensor_id > UINT32_MAX) {
      return RowError(source_name, line, "bad sensor id: " + row[1]);
    }
    reading.sensor_id = static_cast<uint32_t>(*sensor_id);
    Result<SensorKind> kind = ParseKindCell(row[2]);
    if (!kind.ok()) {
      return RowError(source_name, line, kind.status().message());
    }
    reading.kind = *kind;
    Result<double> value = ParseDouble(row[3]);
    if (!value.ok() || !std::isfinite(*value)) {
      return RowError(source_name, line, "bad value: " + row[3]);
    }
    reading.value = static_cast<float>(*value);
    readings.push_back(reading);
  }
  return readings;
}

Result<std::vector<Reading>> LoadReadingsCsv(const std::string& path) {
  IMCF_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  // Errors carry the file's base name so messages stay stable across
  // temp-directory runs.
  size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return ParseReadingsCsv(text, base);
}

}  // namespace trace
}  // namespace imcf
