// Sensor reading vocabulary for the CASAS-like traces.
//
// The paper's datasets are streams of timestamped sensor readings from a
// residential apartment: temperature, light and door/window sensors, on a
// second basis. A Reading is the in-memory form; storage::SensorRecord is
// its on-disk form (see storage/trace_file.h).

#ifndef IMCF_TRACE_SENSOR_H_
#define IMCF_TRACE_SENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "storage/trace_file.h"

namespace imcf {
namespace trace {

/// Kind of sensor producing a reading.
enum class SensorKind : uint8_t {
  kTemperature = 0,  ///< indoor temperature, °C
  kLight = 1,        ///< indoor light level, 0-100
  kDoor = 2,         ///< door/window state, 0 closed / 1 open
};

const char* SensorKindName(SensorKind kind);

/// One sensor measurement.
struct Reading {
  SimTime time = 0;
  uint32_t sensor_id = 0;
  SensorKind kind = SensorKind::kTemperature;
  float value = 0.0f;

  friend bool operator==(const Reading&, const Reading&) = default;
};

/// Dense sensor-id scheme: unit index and kind are recoverable from the id
/// so replicated datasets need no side table.
inline uint32_t MakeSensorId(int unit, SensorKind kind) {
  return static_cast<uint32_t>(unit) * 4u + static_cast<uint32_t>(kind);
}
inline int SensorUnit(uint32_t sensor_id) {
  return static_cast<int>(sensor_id / 4u);
}
inline SensorKind SensorKindOf(uint32_t sensor_id) {
  return static_cast<SensorKind>(sensor_id % 4u);
}

/// Conversions to/from the storage record form.
inline SensorRecord ToRecord(const Reading& r) {
  return SensorRecord{r.time, r.sensor_id, static_cast<uint8_t>(r.kind),
                      r.value};
}
inline Reading FromRecord(const SensorRecord& r) {
  return Reading{r.time, r.sensor_id, static_cast<SensorKind>(r.kind),
                 r.value};
}

}  // namespace trace
}  // namespace imcf

#endif  // IMCF_TRACE_SENSOR_H_
