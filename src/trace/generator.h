// CASAS-like trace synthesis.
//
// The paper evaluates on ~5.67M sensor readings collected at a CASAS smart
// home between October 2013 and December 2016 (temperature, light and
// door/window sensors on a second basis) and scales them up by replication
// ("House" = flat x4 with mixed readings, "Dorms" = 50 synthetic
// apartments). The raw export is not redistributable, so this generator
// synthesises streams with the same schema, rate, span and replication
// pipeline, driven by the deterministic AmbientModel.

#ifndef IMCF_TRACE_GENERATOR_H_
#define IMCF_TRACE_GENERATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "trace/ambient.h"
#include "trace/sensor.h"
#include "weather/weather.h"

namespace imcf {
namespace trace {

/// Parameters of a synthesis run.
struct GeneratorOptions {
  SimTime start = 0;
  SimTime end = 0;          ///< exclusive
  int step_seconds = 60;    ///< sampling period of temp/light sensors
  int units = 1;            ///< building units (one temp+light+door each)
  uint64_t seed = 7;
  AmbientModelOptions ambient;
  weather::ClimateOptions climate;
};

/// Streaming generator of sensor readings in non-decreasing time order.
class CasasTraceGenerator {
 public:
  explicit CasasTraceGenerator(GeneratorOptions options);

  /// Emits every reading to `sink` in time order; stops on sink error.
  /// Returns the number of readings emitted.
  Result<int64_t> Generate(
      const std::function<Status(const Reading&)>& sink) const;

  /// Generates directly into a compact binary trace file.
  Result<int64_t> WriteTraceFile(const std::string& path) const;

  /// Generates into memory (tests / small spans only).
  Result<std::vector<Reading>> GenerateAll() const;

  /// The ambient model used for `unit` (exposed so aggregation tests can
  /// compare against ground truth).
  AmbientModel ModelForUnit(int unit) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  GeneratorOptions options_;
  weather::SyntheticWeather weather_;
};

/// Replicates a reading stream by `factor`, remapping units, jittering
/// values and shuffling arrival order within small time buckets — the
/// "replicating, mixing up the readings and multiplying ... by a factor of
/// four" step the paper uses to build the House dataset. Output is again
/// time-ordered.
std::vector<Reading> ReplicateAndMix(const std::vector<Reading>& input,
                                     int factor, uint64_t seed);

}  // namespace trace
}  // namespace imcf

#endif  // IMCF_TRACE_GENERATOR_H_
