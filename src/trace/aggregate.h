// Hourly aggregation of raw reading streams.
//
// The evaluation pipeline reduces second/minute-granularity sensor streams
// to the hourly series the planner operates on (the paper plans on hourly
// budget slots). The aggregator is single-pass and bounded-memory so the
// multi-gigabyte Dorms trace can stream through it.

#ifndef IMCF_TRACE_AGGREGATE_H_
#define IMCF_TRACE_AGGREGATE_H_

#include <vector>

#include "common/result.h"
#include "trace/dataset.h"
#include "trace/sensor.h"

namespace imcf {
namespace trace {

/// Accumulates readings into per-(unit, hour) means.
class HourlyAggregator {
 public:
  /// Aggregates hours [start, start + hours) for `units` units. `start`
  /// must be hour-aligned.
  HourlyAggregator(SimTime start, int hours, int units);

  /// Adds one reading; readings outside the window or for unknown units are
  /// counted as skipped rather than failing (real traces have stragglers).
  void Add(const Reading& reading);

  /// Finalises the means. Hours that received no readings inherit the
  /// previous hour's value (sensor gap semantics); leading gaps get the
  /// first observed value.
  HourlyAmbient Finish() const;

  int64_t accepted() const { return accepted_; }
  int64_t skipped() const { return skipped_; }

 private:
  size_t Index(int unit, int h) const {
    return static_cast<size_t>(unit) * static_cast<size_t>(hours_) +
           static_cast<size_t>(h);
  }

  SimTime start_;
  int hours_;
  int units_;
  std::vector<double> temp_sum_, light_sum_;
  std::vector<int32_t> temp_count_, light_count_;
  int64_t accepted_ = 0;
  int64_t skipped_ = 0;
};

/// Streams a binary trace file through the aggregator.
Result<HourlyAmbient> AggregateTraceFile(const std::string& path,
                                         SimTime start, int hours, int units);

}  // namespace trace
}  // namespace imcf

#endif  // IMCF_TRACE_AGGREGATE_H_
