// CSV loader for sensor-reading traces.
//
// The paper's datasets arrive as CASAS-style CSV exports; this loader turns
// a `time,sensor_id,kind,value` document into trace::Readings. Malformed
// input is a Status error carrying the source name and 1-based line number
// ("trace.csv:17: ...") — a bad row never silently disappears from the
// trace, because a dropped reading skews every downstream energy figure.
//
// Accepted forms per column:
//   time       integer seconds on the sim clock, or "YYYY-MM-DD HH:MM:SS"
//   sensor_id  non-negative integer (see trace::MakeSensorId)
//   kind       0/1/2 or temperature|light|door (case-insensitive)
//   value      finite float
// A first line starting with a non-numeric `time` cell is treated as a
// header and skipped.

#ifndef IMCF_TRACE_CSV_LOADER_H_
#define IMCF_TRACE_CSV_LOADER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "trace/sensor.h"

namespace imcf {
namespace trace {

/// Parses a CSV document into readings. `source_name` labels errors
/// (typically the file name; any tag works for in-memory documents).
Result<std::vector<Reading>> ParseReadingsCsv(std::string_view text,
                                              const std::string& source_name);

/// Reads and parses a CSV trace file from disk.
Result<std::vector<Reading>> LoadReadingsCsv(const std::string& path);

}  // namespace trace
}  // namespace imcf

#endif  // IMCF_TRACE_CSV_LOADER_H_
