// Ambient (unconditioned) indoor environment model.
//
// This is the physical ground truth beneath the synthetic CASAS traces: what
// temperature and light a zone would exhibit *without* any IMCF actuation.
// The convenience error of a dropped rule is measured against these values,
// and HVAC energy grows with the setpoint-ambient gap, so this model is the
// main calibration surface of the reproduction (see DESIGN.md §1).
//
// Indoor temperature couples to the synthetic outdoor weather through a
// first-order envelope (thermal lag + damping + internal gains); indoor
// daylight is outdoor daylight through a window factor, plus small
// deterministic per-hour noise so traces look like sensor data rather than
// smooth curves.

#ifndef IMCF_TRACE_AMBIENT_H_
#define IMCF_TRACE_AMBIENT_H_

#include <array>
#include <cstdint>

#include "common/time.h"
#include "weather/weather.h"

namespace imcf {
namespace trace {

/// Envelope and gain parameters of one building unit.
struct AmbientModelOptions {
  double neutral_temp_c = 16.5;   ///< indoor temp when outdoor matches it
  double coupling = 0.55;         ///< fraction of seasonal deviation passed in
  /// Fraction of the day-night swing passed indoors. Thermal mass damps
  /// diurnal swings far more than seasonal ones, so this is much smaller
  /// than `coupling`.
  double diurnal_coupling = 0.30;
  double internal_gain_c = 2.0;   ///< occupants + appliances heat gain
  double thermal_lag_hours = 3.0; ///< envelope time shift of outdoor swings
  double window_factor = 0.62;    ///< indoor daylight / outdoor daylight
  double temp_noise_c = 0.35;     ///< per-hour sensor/process noise (stddev)
  double light_noise = 2.5;       ///< per-hour light noise (stddev, 0-100)
  /// Monthly indoor-temperature bias (January first, °C). Captures
  /// occupancy and solar-gain seasonality the first-order envelope misses;
  /// the dataset specs use it to calibrate per-month HVAC demand against
  /// the consumption profile of Table I (see EXPERIMENTS.md).
  std::array<double, 12> monthly_bias_c{};
};

/// Deterministic ambient model for one unit. Pure function of time, so the
/// simulator can sample it at any granularity without storing traces.
class AmbientModel {
 public:
  /// `unit_seed` differentiates units of a replicated dataset ("mixing up
  /// the readings" in the paper's dataset construction).
  AmbientModel(const weather::WeatherService* weather,
               AmbientModelOptions options, uint64_t unit_seed);

  /// Unconditioned indoor temperature at `t` (°C).
  double IndoorTempC(SimTime t) const;

  /// Indoor ambient light level at `t` (0-100 scale).
  double IndoorLightPct(SimTime t) const;

  /// Whether the unit's entrance door is open at `t` (sparse, short events
  /// during waking hours; used by the IFTTT door recipe).
  bool DoorOpen(SimTime t) const;

  const AmbientModelOptions& options() const { return options_; }

 private:
  /// Smooth per-hour noise: hash noise at hour boundaries, cosine-blended.
  double HourNoise(SimTime t, uint64_t stream, double stddev) const;

  const weather::WeatherService* weather_;  // not owned
  AmbientModelOptions options_;
  uint64_t unit_seed_;
};

}  // namespace trace
}  // namespace imcf

#endif  // IMCF_TRACE_AMBIENT_H_
