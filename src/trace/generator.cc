#include "trace/generator.h"

#include <algorithm>

#include "common/rng.h"

namespace imcf {
namespace trace {

CasasTraceGenerator::CasasTraceGenerator(GeneratorOptions options)
    : options_(options), weather_(options.climate) {}

AmbientModel CasasTraceGenerator::ModelForUnit(int unit) const {
  return AmbientModel(&weather_, options_.ambient,
                      MixHash(options_.seed, static_cast<uint64_t>(unit)));
}

Result<int64_t> CasasTraceGenerator::Generate(
    const std::function<Status(const Reading&)>& sink) const {
  if (options_.end <= options_.start) {
    return Status::InvalidArgument("generator span is empty");
  }
  if (options_.step_seconds <= 0) {
    return Status::InvalidArgument("step_seconds must be positive");
  }
  std::vector<AmbientModel> models;
  models.reserve(options_.units);
  for (int u = 0; u < options_.units; ++u) models.push_back(ModelForUnit(u));

  std::vector<uint8_t> door_state(options_.units, 0);
  int64_t count = 0;
  for (SimTime t = options_.start; t < options_.end;
       t += options_.step_seconds) {
    for (int u = 0; u < options_.units; ++u) {
      const AmbientModel& model = models[u];
      Reading temp{t, MakeSensorId(u, SensorKind::kTemperature),
                   SensorKind::kTemperature,
                   static_cast<float>(model.IndoorTempC(t))};
      IMCF_RETURN_IF_ERROR(sink(temp));
      ++count;
      Reading light{t, MakeSensorId(u, SensorKind::kLight), SensorKind::kLight,
                    static_cast<float>(model.IndoorLightPct(t))};
      IMCF_RETURN_IF_ERROR(sink(light));
      ++count;
      // Door sensor is event-based: emit only on state changes.
      const uint8_t open = model.DoorOpen(t) ? 1 : 0;
      if (open != door_state[u]) {
        door_state[u] = open;
        Reading door{t, MakeSensorId(u, SensorKind::kDoor), SensorKind::kDoor,
                     static_cast<float>(open)};
        IMCF_RETURN_IF_ERROR(sink(door));
        ++count;
      }
    }
  }
  return count;
}

Result<int64_t> CasasTraceGenerator::WriteTraceFile(
    const std::string& path) const {
  TraceFileWriter writer;
  IMCF_RETURN_IF_ERROR(writer.Open(path));
  IMCF_ASSIGN_OR_RETURN(
      int64_t count, Generate([&writer](const Reading& r) {
        return writer.Append(ToRecord(r));
      }));
  IMCF_RETURN_IF_ERROR(writer.Finish());
  return count;
}

Result<std::vector<Reading>> CasasTraceGenerator::GenerateAll() const {
  std::vector<Reading> out;
  IMCF_RETURN_IF_ERROR(Generate([&out](const Reading& r) {
                         out.push_back(r);
                         return Status::Ok();
                       }).status());
  return out;
}

std::vector<Reading> ReplicateAndMix(const std::vector<Reading>& input,
                                     int factor, uint64_t seed) {
  std::vector<Reading> out;
  out.reserve(input.size() * static_cast<size_t>(factor));
  // Remap unit ids densely: copy c of unit u becomes unit c * stride + u.
  int stride = 0;
  for (const Reading& r : input) {
    stride = std::max(stride, SensorUnit(r.sensor_id) + 1);
  }
  Rng rng(seed);
  for (int copy = 0; copy < factor; ++copy) {
    for (const Reading& r : input) {
      Reading m = r;
      const int unit = SensorUnit(r.sensor_id);
      m.sensor_id = MakeSensorId(copy * stride + unit, r.kind);
      // Jitter continuous measurements slightly; door states stay binary.
      if (r.kind == SensorKind::kTemperature) {
        m.value += static_cast<float>(rng.Gaussian(0.0, 0.3));
      } else if (r.kind == SensorKind::kLight) {
        m.value = static_cast<float>(
            std::clamp(m.value + rng.Gaussian(0.0, 2.0), 0.0, 100.0));
      }
      // Shift each copy by a few seconds so merged streams interleave
      // ("mixing up the readings").
      m.time += rng.UniformInt(0, 9);
      out.push_back(m);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Reading& a, const Reading& b) {
                     return a.time < b.time;
                   });
  return out;
}

}  // namespace trace
}  // namespace imcf
