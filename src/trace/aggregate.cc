#include "trace/aggregate.h"

namespace imcf {
namespace trace {

HourlyAggregator::HourlyAggregator(SimTime start, int hours, int units)
    : start_(start),
      hours_(hours),
      units_(units),
      temp_sum_(static_cast<size_t>(hours) * units, 0.0),
      light_sum_(static_cast<size_t>(hours) * units, 0.0),
      temp_count_(static_cast<size_t>(hours) * units, 0),
      light_count_(static_cast<size_t>(hours) * units, 0) {}

void HourlyAggregator::Add(const Reading& reading) {
  const int unit = SensorUnit(reading.sensor_id);
  const int64_t h64 = (reading.time - start_) / kSecondsPerHour;
  if (unit < 0 || unit >= units_ || reading.time < start_ || h64 >= hours_) {
    ++skipped_;
    return;
  }
  const int h = static_cast<int>(h64);
  switch (reading.kind) {
    case SensorKind::kTemperature:
      temp_sum_[Index(unit, h)] += reading.value;
      ++temp_count_[Index(unit, h)];
      ++accepted_;
      break;
    case SensorKind::kLight:
      light_sum_[Index(unit, h)] += reading.value;
      ++light_count_[Index(unit, h)];
      ++accepted_;
      break;
    case SensorKind::kDoor:
      // Door events don't contribute to the hourly ambient series.
      ++skipped_;
      break;
  }
}

HourlyAmbient HourlyAggregator::Finish() const {
  HourlyAmbient out(start_, hours_, units_);
  for (int u = 0; u < units_; ++u) {
    // First pass: means where data exists.
    for (int h = 0; h < hours_; ++h) {
      const size_t i = Index(u, h);
      if (temp_count_[i] > 0) {
        out.set_temp(u, h, static_cast<float>(temp_sum_[i] / temp_count_[i]));
      }
      if (light_count_[i] > 0) {
        out.set_light(u, h,
                      static_cast<float>(light_sum_[i] / light_count_[i]));
      }
    }
    // Fill gaps: carry the previous hour forward; seed leading gaps with the
    // first observed value.
    int first_temp = -1, first_light = -1;
    for (int h = 0; h < hours_; ++h) {
      if (first_temp < 0 && temp_count_[Index(u, h)] > 0) first_temp = h;
      if (first_light < 0 && light_count_[Index(u, h)] > 0) first_light = h;
    }
    for (int h = 0; h < hours_; ++h) {
      if (temp_count_[Index(u, h)] == 0) {
        if (h > 0 && (first_temp < 0 || h > first_temp)) {
          out.set_temp(u, h, out.temp(u, h - 1));
        } else if (first_temp >= 0) {
          out.set_temp(u, h, out.temp(u, first_temp));
        }
      }
      if (light_count_[Index(u, h)] == 0) {
        if (h > 0 && (first_light < 0 || h > first_light)) {
          out.set_light(u, h, out.light(u, h - 1));
        } else if (first_light >= 0) {
          out.set_light(u, h, out.light(u, first_light));
        }
      }
    }
  }
  return out;
}

Result<HourlyAmbient> AggregateTraceFile(const std::string& path,
                                         SimTime start, int hours,
                                         int units) {
  IMCF_ASSIGN_OR_RETURN(std::unique_ptr<TraceFileReader> reader,
                        TraceFileReader::Open(path));
  HourlyAggregator agg(start, hours, units);
  SensorRecord record;
  while (reader->Next(&record)) {
    agg.Add(FromRecord(record));
  }
  IMCF_RETURN_IF_ERROR(reader->status());
  return agg.Finish();
}

}  // namespace trace
}  // namespace imcf
