#include "trace/ambient.h"

#include <cmath>

#include "common/rng.h"
#include "common/units.h"

namespace imcf {
namespace trace {

namespace {

// Gaussian-ish deviate in units of stddev from a hash (sum of 4 uniforms).
double HashGaussian(uint64_t h) {
  double sum = 0.0;
  for (int i = 0; i < 4; ++i) {
    sum += static_cast<double>(MixHash(h, static_cast<uint64_t>(i)) >> 11) *
           0x1.0p-53;
  }
  return (sum - 2.0) / std::sqrt(4.0 / 12.0);
}

}  // namespace

AmbientModel::AmbientModel(const weather::WeatherService* weather,
                           AmbientModelOptions options, uint64_t unit_seed)
    : weather_(weather), options_(options), unit_seed_(unit_seed) {}

double AmbientModel::HourNoise(SimTime t, uint64_t stream,
                               double stddev) const {
  const int64_t hour = HourIndex(t);
  const double frac =
      static_cast<double>(t - hour * kSecondsPerHour) / kSecondsPerHour;
  const double a =
      HashGaussian(MixHash(unit_seed_ ^ stream, static_cast<uint64_t>(hour)));
  const double b = HashGaussian(
      MixHash(unit_seed_ ^ stream, static_cast<uint64_t>(hour + 1)));
  // Cosine blend keeps the noise continuous at hour boundaries.
  const double w = 0.5 - 0.5 * std::cos(M_PI * frac);
  return stddev * Lerp(a, b, w);
}

double AmbientModel::IndoorTempC(SimTime t) const {
  const SimTime lagged =
      t - static_cast<SimTime>(options_.thermal_lag_hours * kSecondsPerHour);
  const weather::WeatherSample w = weather_->At(lagged);
  const double envelope =
      options_.neutral_temp_c +
      options_.coupling *
          (w.outdoor_daily_mean_c - options_.neutral_temp_c) +
      options_.diurnal_coupling * (w.outdoor_temp_c - w.outdoor_daily_mean_c);
  const double bias =
      options_.monthly_bias_c[static_cast<size_t>(ToCivil(t).month - 1)];
  return envelope + options_.internal_gain_c + bias +
         HourNoise(t, 0xA1B2ULL, options_.temp_noise_c);
}

double AmbientModel::IndoorLightPct(SimTime t) const {
  const weather::WeatherSample w = weather_->At(t);
  const double light = 100.0 * options_.window_factor * w.daylight +
                       HourNoise(t, 0xC3D4ULL, options_.light_noise);
  return Clamp(light, 0.0, 100.0);
}

bool AmbientModel::DoorOpen(SimTime t) const {
  // Sparse door events: each waking hour has an independent chance of one
  // 2-minute opening at a hash-determined offset.
  const int64_t hour = HourIndex(t);
  const int hour_of_day = static_cast<int>(MinuteOfDay(t) / 60);
  if (hour_of_day < 7 || hour_of_day > 22) return false;
  const uint64_t h =
      MixHash(unit_seed_ ^ 0xD00DULL, static_cast<uint64_t>(hour));
  const double p = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (p > 0.15) return false;  // ~15% of waking hours see one opening
  const int offset_minutes = static_cast<int>(MixHash(h, 1) % 58);
  const int minute_in_hour = static_cast<int>((t / 60) % 60);
  return minute_in_hour >= offset_minutes && minute_in_hour < offset_minutes + 2;
}

}  // namespace trace
}  // namespace imcf
