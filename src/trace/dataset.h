// Evaluation dataset specifications and hourly ambient series.
//
// The paper's three datasets:
//   * Flat  — one-bedroom 50 m² apartment, one split unit (1.09 GB trace);
//   * House — flat replicated x4 with mixed readings, 4 split units, 200 m²;
//   * Dorms — 50 synthetic dorm apartments, 2 split units each (~2000 m²).
//
// A DatasetSpec bundles everything the simulator needs per dataset: unit
// count, per-unit device energy models (sized to the zone), ambient/climate
// parameters, the Table II three-year energy budget and the magnitude of
// per-unit MRT variation ("the rest [of the] datasets use uniformly random
// variations of the same table").
//
// HourlyAmbient is the dense per-(unit, hour) ambient series the trace-
// driven simulator consumes; it can be built directly from the ambient model
// or by aggregating a reading stream (see aggregate.h) — tests verify both
// paths agree.

#ifndef IMCF_TRACE_DATASET_H_
#define IMCF_TRACE_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "devices/energy_model.h"
#include "trace/ambient.h"
#include "trace/generator.h"

namespace imcf {
namespace trace {

/// Full description of an evaluation dataset.
struct DatasetSpec {
  std::string name;
  int units = 1;            ///< zones with one HVAC + one light each
  double area_m2 = 50.0;
  devices::HvacModelOptions hvac;
  devices::LightModelOptions light;
  AmbientModelOptions ambient;
  weather::ClimateOptions climate;
  double budget_kwh = 0.0;  ///< Table II "Set kWh Limit" for three years
  double mrt_variation = 0.0;  ///< per-unit rule perturbation magnitude
  uint64_t seed = 7;
};

/// The single-user flat (Table II budget: 11000 kWh / 3 years).
DatasetSpec FlatSpec();

/// The four-unit residential house (25500 kWh / 3 years).
DatasetSpec HouseSpec();

/// The 50-apartment campus dorms, two zones each (480000 kWh / 3 years).
DatasetSpec DormsSpec();

/// All three specs, in the order the paper plots them.
std::vector<DatasetSpec> AllSpecs();

/// Evaluation period used across the paper's figures: three full years.
SimTime EvaluationStart();
int EvaluationHours();

/// Dense per-(unit, hour) ambient conditions.
class HourlyAmbient {
 public:
  HourlyAmbient(SimTime start, int hours, int units);

  SimTime start() const { return start_; }
  int hours() const { return hours_; }
  int units() const { return units_; }

  /// Wall-clock time of the start of hour slot `h`.
  SimTime TimeOfHour(int h) const { return start_ + static_cast<SimTime>(h) * kSecondsPerHour; }

  float temp(int unit, int h) const { return temp_[Index(unit, h)]; }
  float light(int unit, int h) const { return light_[Index(unit, h)]; }
  void set_temp(int unit, int h, float v) { temp_[Index(unit, h)] = v; }
  void set_light(int unit, int h, float v) { light_[Index(unit, h)] = v; }

 private:
  size_t Index(int unit, int h) const {
    return static_cast<size_t>(unit) * static_cast<size_t>(hours_) +
           static_cast<size_t>(h);
  }

  SimTime start_;
  int hours_;
  int units_;
  std::vector<float> temp_;
  std::vector<float> light_;
};

/// Samples each unit's ambient model at hour midpoints — the fast path used
/// by the benchmarks.
HourlyAmbient BuildHourlyAmbient(const DatasetSpec& spec, SimTime start,
                                 int hours);

}  // namespace trace
}  // namespace imcf

#endif  // IMCF_TRACE_DATASET_H_
